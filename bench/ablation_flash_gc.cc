/**
 * @file
 * Ablation: FTL write amplification and wear under PUT-heavy load,
 * vs overprovisioning and workload skew. Sustained Iridium PUT
 * throughput degrades with GC activity; this quantifies how much
 * headroom the 7% default overprovision buys.
 */

#include <cstdio>

#include "bench_util.hh"
#include "mem/flash.hh"
#include "sim/random.hh"

namespace
{

using namespace mercury;
using namespace mercury::mem;

struct Result
{
    double writeAmplification;
    unsigned eraseSpread;
    std::uint64_t erases;
};

Result
churn(double overprovision, double zipf_like_hot_fraction,
      std::uint64_t seed)
{
    Ftl ftl(4096 * 16, 16, overprovision, 4, 32);
    Rng rng(seed);

    // Fill once.
    for (std::uint64_t lpn = 0; lpn < ftl.logicalPages(); ++lpn)
        ftl.write(lpn);

    // Overwrite churn: a hot fraction takes 90% of writes.
    const auto hot = static_cast<std::uint64_t>(
        zipf_like_hot_fraction *
        static_cast<double>(ftl.logicalPages()));
    for (std::uint64_t i = 0; i < ftl.logicalPages() * 4; ++i) {
        if (hot > 0 && rng.nextBool(0.9))
            ftl.write(rng.nextInt(hot));
        else
            ftl.write(rng.nextInt(ftl.logicalPages()));
    }
    return {ftl.writeAmplification(), ftl.eraseSpread(),
            ftl.totalErases()};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_flash_gc");
    bench::banner("Ablation: FTL write amplification vs "
                  "overprovisioning and skew");

    std::printf("%-14s %12s %12s %12s\n", "Config", "WA",
                "eraseSpread", "erases");
    bench::rule(54);
    for (double op : {0.07, 0.15, 0.28}) {
        for (double hot : {1.0, 0.1}) {
            const Result r = churn(op, hot, 42);
            std::printf("op=%.2f %s %9.2f %12u %12llu\n", op,
                        hot < 1.0 ? "hot10%" : "unifrm",
                        r.writeAmplification, r.eraseSpread,
                        static_cast<unsigned long long>(r.erases));
        }
    }
    std::printf("\nMore overprovision and more skew both cut GC "
                "work; wear leveling keeps the erase spread bounded "
                "in every case.\n");
    return 0;
}
