/**
 * @file
 * Ablation: page-structured NAND vs the paper's flat per-access
 * flash latency.
 *
 * Our flash model exposes page locality: one array sense brings a
 * 4 KiB page into the channel register and subsequent lines cost
 * only the transfer, and a write buffer coalesces scattered dirty
 * lines page-at-a-time. The paper's gem5 memory model instead
 * charged the full 10-20 us on every access. Setting the model's
 * page size to one cache line degenerates it to exactly the paper's
 * behaviour, which is how we reconcile the Iridium magnitudes in
 * EXPERIMENTS.md (large-request bandwidth in particular).
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

ServerModelParams
iridium(bool flat)
{
    ServerModelParams p;
    p.core = cpu::cortexA7Params();
    p.withL2 = true;
    p.memory = MemoryKind::Flash;
    p.storeMemLimit = 48 * miB;
    if (flat) {
        // One line per page: every access pays the array latency,
        // and every dirtied line is its own program.
        p.flashPageBytes = 64;
        p.flashCapacity = 768 * miB;
    }
    return p;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_flash_model");
    bench::banner("Ablation: page-structured NAND vs the paper's "
                  "flat per-access flash model (Iridium-1, A7+L2)");

    ServerModel paged(iridium(false));
    ServerModel flat(iridium(true));

    std::printf("%-8s %15s %15s %15s %15s\n", "Size",
                "paged GET", "flat GET", "paged PUT", "flat PUT");
    bench::rule(76);
    for (std::uint32_t size : {64u, 1024u, 16384u, 262144u,
                               1048576u}) {
        const double paged_get = paged.measureGets(size).avgTps;
        const double flat_get = flat.measureGets(size).avgTps;
        const double paged_put = paged.measurePuts(size, 6, 2).avgTps;
        const double flat_put = flat.measurePuts(size, 6, 2).avgTps;
        std::printf("%-8s %15.0f %15.0f %15.0f %15.0f\n",
                    bench::sizeLabel(size).c_str(), paged_get,
                    flat_get, paged_put, flat_put);
    }

    std::printf("\nThe flat model reproduces the paper's Iridium "
                "magnitudes (e.g. ~10 MB/s per core at 1 MB);\n"
                "the paged model is what real p-BiCS NAND with a "
                "page register delivers.\n");
    return 0;
}
