/**
 * @file
 * Ablation: L2 capacity. Sec. 4.1.3 drops the L2 entirely for
 * Mercury; Sec. 4.2.1 mandates one for Iridium. This sweep shows
 * both decisions: on Mercury at 10 ns DRAM the L2 size barely
 * matters, while Iridium needs enough L2 to hold the instruction
 * footprint and hot metadata in front of flash.
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

double
tpsFor(MemoryKind memory, std::uint64_t l2_bytes, Tick dram_latency)
{
    ServerModelParams p;
    p.core = cpu::cortexA7Params();
    p.withL2 = l2_bytes > 0;
    p.l2SizeBytes = l2_bytes;
    p.memory = memory;
    p.dramArrayLatency = dram_latency;
    p.storeMemLimit = 48 * miB;
    ServerModel model(p);
    return model.measureGets(64).avgTps;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_l2");
    using mercury::bench::rule;

    mercury::bench::banner(
        "Ablation: L2 capacity sweep (A7, 64 B GETs)");

    std::printf("%-12s %14s %14s %14s\n", "L2 size",
                "Mercury@10ns", "Mercury@100ns", "Iridium");
    rule(58);
    const struct
    {
        const char *label;
        std::uint64_t bytes;
    } sizes[] = {
        {"none", 0},
        {"512KiB", 512 * kiB},
        {"1MiB", 1 * miB},
        {"2MiB", 2 * miB},
        {"4MiB", 4 * miB},
    };
    for (const auto &size : sizes) {
        std::printf("%-12s %14.0f %14.0f %14.0f\n", size.label,
                    tpsFor(MemoryKind::StackedDram, size.bytes,
                           10 * tickNs),
                    tpsFor(MemoryKind::StackedDram, size.bytes,
                           100 * tickNs),
                    tpsFor(MemoryKind::Flash, size.bytes,
                           10 * tickUs));
    }
    std::printf("\nMercury at fast DRAM is L2-insensitive "
                "(Sec. 4.1.3 drops it); Iridium is not "
                "(Sec. 4.2.1).\n");
    return 0;
}
