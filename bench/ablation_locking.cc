/**
 * @file
 * Ablation: locking and LRU design of the functional store. Strict
 * LRU reorders its list on every GET (the memcached 1.4 global-lock
 * problem); Bags stamps a timestamp and touches no shared state.
 * This drives the *real* store implementation and reports the
 * reorder counts behind the baseline thread-scaling parameters,
 * plus the modeled USL curves they imply.
 */

#include <cstdio>

#include "baseline/baseline.hh"
#include "bench_util.hh"
#include "kvstore/store.hh"
#include "sim/random.hh"

namespace
{

using namespace mercury;
using namespace mercury::kvstore;

std::uint64_t
reordersPerMillionGets(EvictionPolicyKind eviction)
{
    StoreParams params;
    params.memLimit = 64 * miB;
    params.eviction = eviction;
    params.locking = LockingMode::Striped;
    Store store(params);

    for (int i = 0; i < 10000; ++i)
        store.set("key" + std::to_string(i), "value");

    Rng rng(7);
    const int gets = 200000;
    for (int i = 0; i < gets; ++i)
        store.get("key" + std::to_string(rng.nextInt(10000)));

    return store.lruReorderOps() * 1000000 / gets;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_locking");
    bench::banner("Ablation: LRU design vs shared-state mutations "
                  "on the GET path (functional store)");

    std::printf("%-12s %26s\n", "Policy", "reorders per 1M GETs");
    bench::rule(40);
    std::printf("%-12s %26llu\n", "StrictLru",
                static_cast<unsigned long long>(
                    reordersPerMillionGets(
                        EvictionPolicyKind::StrictLru)));
    std::printf("%-12s %26llu\n", "Bags",
                static_cast<unsigned long long>(
                    reordersPerMillionGets(EvictionPolicyKind::Bags)));

    bench::banner("Modeled thread scaling (USL) for each software "
                  "version");
    std::printf("%-8s %14s %14s %14s   (TPS)\n", "Threads",
                "1.4 (global)", "1.6 (striped)", "Bags");
    bench::rule(60);
    using namespace mercury::baseline;
    const ScalingParams v14 = scalingFor(MemcachedVersion::V14);
    const ScalingParams v16 = scalingFor(MemcachedVersion::V16);
    const ScalingParams bags = scalingFor(MemcachedVersion::Bags);
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::printf("%-8u %14.0f %14.0f %14.0f\n", n,
                    scaledTps(v14, n), scaledTps(v16, n),
                    scaledTps(bags, n));
    }
    std::printf("\nBags' empty reorder column is why its sigma is "
                "20x smaller: GETs serialize on nothing.\n");
    return 0;
}
