/**
 * @file
 * Ablation: memory-level parallelism of the out-of-order core. The
 * paper observes that aggressive cores buy little once the network
 * stack dominates (Sec. 6.1); this sweep quantifies how much of the
 * A15's edge comes from miss overlap vs raw issue width.
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

double
tpsFor(unsigned mlp, Tick dram_latency, std::uint32_t size)
{
    ServerModelParams p;
    p.core = cpu::cortexA15Params(1.0);
    p.core.mlpRandom = mlp;
    p.core.mlpSequential = std::max(mlp, 1u);
    p.withL2 = false;
    p.dramArrayLatency = dram_latency;
    p.storeMemLimit = 48 * miB;
    ServerModel model(p);
    return model.measureGets(size).avgTps;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_mlp");
    bench::banner("Ablation: A15 miss-overlap width (no L2)");

    std::printf("%-6s %16s %16s %16s\n", "MLP", "64B @10ns",
                "64B @100ns", "64K @100ns");
    bench::rule(58);
    for (unsigned mlp : {1u, 2u, 4u, 8u}) {
        std::printf("%-6u %16.0f %16.0f %16.0f\n", mlp,
                    tpsFor(mlp, 10 * tickNs, 64),
                    tpsFor(mlp, 100 * tickNs, 64),
                    tpsFor(mlp, 100 * tickNs, 65536));
    }
    std::printf("\nOverlap matters most for streaming at slow "
                "memory; at 10 ns DRAM the network stack dominates "
                "and MLP buys almost nothing.\n");
    return 0;
}
