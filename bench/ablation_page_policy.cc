/**
 * @file
 * Ablation: DRAM row-buffer policy. The paper's memory model
 * assumes closed-page latency for every access as a worst case
 * (Sec. 5.2). Open-page exposes row hits for streaming values.
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

ServerModel
make(mem::PagePolicy policy, Tick latency)
{
    ServerModelParams p;
    p.core = cpu::cortexA7Params();
    p.withL2 = false;
    p.memory = MemoryKind::StackedDram;
    p.dramPagePolicy = policy;
    p.dramArrayLatency = latency;
    p.storeMemLimit = 48 * miB;
    return ServerModel(p);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_page_policy");
    bench::banner("Ablation: DRAM closed-page (paper worst case) vs "
                  "open-page (A7, no L2)");

    for (Tick latency : {10 * tickNs, 50 * tickNs}) {
        ServerModel closed = make(mem::PagePolicy::Closed, latency);
        ServerModel open = make(mem::PagePolicy::Open, latency);

        std::printf("DRAM array latency %llu ns\n",
                    static_cast<unsigned long long>(latency /
                                                    tickNs));
        std::printf("%-8s %14s %14s %10s\n", "Size", "closed TPS",
                    "open TPS", "open gain");
        bench::rule(52);
        for (std::uint32_t size : {64u, 4096u, 65536u, 1048576u}) {
            const double closed_tps =
                closed.measureGets(size).avgTps;
            const double open_tps = open.measureGets(size).avgTps;
            std::printf("%-8s %14.0f %14.0f %9.2fx\n",
                        bench::sizeLabel(size).c_str(), closed_tps,
                        open_tps, open_tps / closed_tps);
        }
        std::printf("\n");
    }
    return 0;
}
