/**
 * @file
 * Ablation: DRAM port sharing. Sec. 4.1.2 allocates each core one
 * or more of the 16 stack ports; past 16 cores, two cores share a
 * port, which Sec. 5.3 argues is fine because Memcached scales to
 * two threads. This experiment drives k concurrent line streams at
 * a single port (vs spread over k ports) and measures the effective
 * bandwidth each stream sees.
 */

#include <cstdio>

#include "bench_util.hh"
#include "mem/dram.hh"

namespace
{

using namespace mercury;
using namespace mercury::mem;

/** Aggregate bandwidth of k interleaved streams. */
double
streamBandwidth(unsigned streams, bool share_one_port)
{
    DramModel dram(stackedDramParams());
    const std::uint64_t port_size =
        dram.capacityBytes() / dram.params().numPorts;

    const unsigned lines = 4096;
    std::vector<Tick> cursor(streams, 0);
    std::vector<Addr> base(streams);
    for (unsigned s = 0; s < streams; ++s)
        base[s] = share_one_port ? (s * 32 * miB) : (s * port_size);

    Tick done = 0;
    for (unsigned i = 0; i < lines; ++i) {
        for (unsigned s = 0; s < streams; ++s) {
            cursor[s] = dram.access(AccessType::Read,
                                    base[s] + i * 64, 64, cursor[s]);
            done = std::max(done, cursor[s]);
        }
    }
    const double bytes = static_cast<double>(streams) * lines * 64;
    return bytes / ticksToSeconds(done);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_port_sharing");
    bench::banner("Ablation: cores sharing one DRAM port vs "
                  "spreading across ports");

    std::printf("%-8s %18s %18s %12s\n", "Streams",
                "shared GB/s", "spread GB/s", "penalty");
    bench::rule(60);
    for (unsigned streams : {1u, 2u, 4u, 8u}) {
        const double shared = streamBandwidth(streams, true) / 1e9;
        const double spread = streamBandwidth(streams, false) / 1e9;
        std::printf("%-8u %18.2f %18.2f %11.2fx\n", streams, shared,
                    spread, spread / shared);
    }
    std::printf("\nTwo streams on one port stay within the 6.25 "
                "GB/s pin limit with bank parallelism hiding the "
                "array time -- the paper's 2-cores-per-port "
                "assumption. Beyond that the port pins throttle.\n");
    return 0;
}
