/**
 * @file
 * Ablation: TCP vs UDP GETs. Fig. 4 shows ~87% of a small GET is
 * network-stack time; Facebook's production answer was UDP GETs.
 * This quantifies how much of the paper's headline throughput is a
 * TCP tax, on both core types.
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

double
tpsFor(const cpu::CoreParams &core, bool udp, std::uint32_t size)
{
    ServerModelParams p;
    p.core = core;
    p.withL2 = false;
    p.udpGets = udp;
    p.storeMemLimit = 48 * miB;
    ServerModel model(p);
    return model.measureGets(size).avgTps;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_udp");
    bench::banner("Ablation: TCP vs UDP GET path (Mercury)");

    std::printf("%-12s %-8s %12s %12s %10s\n", "Core", "Size",
                "TCP TPS", "UDP TPS", "UDP gain");
    bench::rule(58);
    for (const auto &[label, core] :
         {std::pair<const char *, cpu::CoreParams>{
              "A7", cpu::cortexA7Params()},
          {"A15 @1GHz", cpu::cortexA15Params(1.0)}}) {
        for (std::uint32_t size : {64u, 1024u, 16384u}) {
            const double tcp = tpsFor(core, false, size);
            const double udp = tpsFor(core, true, size);
            std::printf("%-12s %-8s %12.0f %12.0f %9.2fx\n", label,
                        bench::sizeLabel(size).c_str(), tcp, udp,
                        udp / tcp);
        }
    }
    std::printf("\nUDP roughly halves the per-request kernel work, "
                "which is exactly the observation that motivated "
                "both Facebook's UDP GETs and TSSP's full GET "
                "offload (Sec. 3.7).\n");
    return 0;
}
