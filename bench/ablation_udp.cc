/**
 * @file
 * Ablation: TCP vs UDP vs kernel-bypass GET paths. Fig. 4 shows
 * ~87% of a small GET is network-stack time; Facebook's production
 * answer was UDP GETs, and the logical end point of that line is a
 * batched poll-mode (DPDK-style) datapath. This quantifies how much
 * of the paper's headline throughput is a kernel tax, on both core
 * types.
 *
 * Each (core, size) pair is an independent ParallelSweep point whose
 * three models register under the point's stats tree, so
 * `--stats-json` runs are machine-diffable with tools/statdiff.py
 * and `--jobs N` output stays byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "parallel_sweep.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

enum class Path { Tcp, Udp, Bypass };

const char *
pathName(Path path)
{
    switch (path) {
    case Path::Tcp:
        return "tcp";
    case Path::Udp:
        return "udp";
    case Path::Bypass:
        return "bypass";
    }
    return "?";
}

double
tpsFor(const cpu::CoreParams &core, Path path, std::uint32_t size,
       bench::PointContext &ctx, const std::string &name)
{
    ServerModelParams p;
    p.core = core;
    p.withL2 = false;
    p.storeMemLimit = 48 * miB;
    p.name = name;
    p.statsParent = ctx.statsParent();
    switch (path) {
    case Path::Tcp:
        break;
    case Path::Udp:
        p.udpGets = true;
        break;
    case Path::Bypass:
        p.datapath.kind = net::DatapathKind::Bypass;
        p.datapath.rxBatch = 32;
        p.datapath.txBatch = 32;
        break;
    }
    ServerModel model(p);
    const double tps = model.measureGets(size).avgTps;
    // Fold this model's stats into the point's fragment before it
    // unregisters (the model is transient; see Session::capture()).
    ctx.capture();
    return tps;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_udp");
    bench::banner(
        "Ablation: TCP vs UDP vs bypass GET path (Mercury)");

    struct CoreChoice
    {
        const char *label;
        const char *slug;
        cpu::CoreParams core;
    };
    const std::vector<CoreChoice> cores = {
        {"A7", "a7", cpu::cortexA7Params()},
        {"A15 @1GHz", "a15", cpu::cortexA15Params(1.0)},
    };
    const std::vector<std::uint32_t> sizes =
        session.smoke() ? std::vector<std::uint32_t>{64u}
                        : std::vector<std::uint32_t>{64u, 1024u,
                                                     16384u};

    bench::ParallelSweep sweep(session);
    for (std::size_t ci = 0; ci < cores.size(); ++ci) {
        for (std::size_t si = 0; si < sizes.size(); ++si) {
            sweep.point([&, ci, si](bench::PointContext &ctx) {
                if (ci == 0 && si == 0) {
                    ctx.printf("%-12s %-8s %12s %12s %12s %10s "
                               "%10s\n",
                               "Core", "Size", "TCP TPS", "UDP TPS",
                               "Bypass TPS", "UDP gain",
                               "Byp gain");
                    ctx.printf("%s\n",
                               bench::ruleString(82).c_str());
                }
                const CoreChoice &choice = cores[ci];
                const std::uint32_t size = sizes[si];
                const std::string stem =
                    std::string(choice.slug) + "_s" +
                    std::to_string(size) + "_";
                double tps[3] = {0, 0, 0};
                for (Path path :
                     {Path::Tcp, Path::Udp, Path::Bypass}) {
                    tps[static_cast<int>(path)] =
                        tpsFor(choice.core, path, size, ctx,
                               stem + pathName(path));
                }
                ctx.printf("%-12s %-8s %12.0f %12.0f %12.0f %9.2fx "
                           "%9.2fx\n",
                           choice.label,
                           bench::sizeLabel(size).c_str(), tps[0],
                           tps[1], tps[2], tps[1] / tps[0],
                           tps[2] / tps[0]);
                ctx.capture();
            });
        }
    }
    sweep.run();
    std::printf("\nUDP roughly halves the per-request kernel work "
                "(Facebook's UDP GETs, TSSP's GET offload, Sec. "
                "3.7); the batched bypass path removes most of the "
                "rest, leaving wire time and memcached itself.\n");
    return 0;
}
