/**
 * @file
 * Ablation: DHT load balance vs virtual-node count and physical
 * node count (Sec. 3.8). Mercury/Iridium multiply physical nodes
 * per box, which shrinks each node's arc without virtual-node
 * tricks.
 */

#include <cstdio>

#include "bench_util.hh"
#include "cluster/ring.hh"

namespace
{

using namespace mercury;
using namespace mercury::cluster;

LoadStats
statsFor(unsigned nodes, unsigned vnodes)
{
    ConsistentHashRing ring(vnodes);
    for (unsigned i = 0; i < nodes; ++i)
        ring.addNode("node" + std::to_string(i));
    return ring.sampleLoad(200000);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "ablation_virtual_nodes");
    bench::banner("Ablation: consistent-hash load imbalance "
                  "(max/mean over 200k keys)");

    std::printf("%-14s", "Nodes\\VNodes");
    for (unsigned v : {1u, 4u, 16u, 64u, 256u})
        std::printf(" %9u", v);
    std::printf("\n");
    bench::rule(66);

    for (unsigned nodes : {4u, 16u, 96u, 768u}) {
        std::printf("%-14u", nodes);
        for (unsigned vnodes : {1u, 4u, 16u, 64u, 256u}) {
            const LoadStats stats = statsFor(nodes, vnodes);
            std::printf(" %9.2f", stats.imbalance);
        }
        std::printf("\n");
    }
    std::printf("\nRelative imbalance needs virtual nodes to tame, "
                "but each node's absolute arc shrinks ~1/N: with 96 "
                "stacks per box the hottest node carries a tiny "
                "fraction of the keyspace, which is the paper's "
                "contention argument (Sec. 3.8).\n");
    return 0;
}
