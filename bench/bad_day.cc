/**
 * @file
 * Robustness extension: survive the bad day.
 *
 * Three scenario families ask what keeps a dense key-value cluster
 * answering when its worst day arrives, and what each defence costs:
 *
 *  - crash: a scheduled single-node crash against an unreplicated
 *    baseline vs R-way replicated, hedged clients. The baseline's
 *    availability dips for the whole downtime window; replication
 *    plus hedged reads ride through it.
 *  - overload: offered load far above aggregate capacity, with
 *    per-node admission control off vs on. Shedding turns a
 *    collapsing tail into a bounded one plus an honest "busy" rate.
 *  - composed: a rack-correlated crash pair, a packet-loss burst and
 *    a flash wear burst on one seeded timeline (fault::BadDayPlan),
 *    against a rack-aware replicated, hedged, budgeted, shedding
 *    cluster.
 *
 * One JSON line per scenario; under --timeseries-out each scenario
 * also emits its availability/latency recovery curve from a windowed
 * sampler, labelled by scenario. Every point owns its cluster and
 * injector stream, so points shard freely across --jobs N workers
 * with byte-identical output; the "digest" field is the
 * fault-timeline hash a reader can diff first.
 *
 * Usage: bad_day [--smoke]   (--smoke runs a tiny CI-sized set)
 */

#include <cstddef>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster_sim.hh"
#include "parallel_sweep.hh"
#include "sim/sampler.hh"

namespace
{

using namespace mercury;
using namespace mercury::cluster;

ClusterSimParams
baseParams(bool smoke)
{
    ClusterSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.withL2 = false;
    params.node.storeMemLimit = 48 * miB;
    params.nodes = 6;
    params.numKeys = 1200;
    params.zipfTheta = 0.9;
    params.requests = smoke ? 400 : 2000;
    params.warmup = smoke ? 50 : 150;
    params.availabilityWindow = 5 * tickMs;

    params.faults.enabled = true;
    params.faults.requestTimeout = 1 * tickMs;
    params.faults.nodeDowntime = 5 * tickMs;
    params.faults.backoffBase = 200 * tickUs;
    params.faults.backoffJitter = 0.2;
    params.faults.seed = 0xbadda7;
    return params;
}

void
runScenario(bench::PointContext &ctx, const std::string &scenario,
            ClusterSimParams params, double utilization,
            const fault::BadDayPlan *plan, ClusterSimResult &out)
{
    params.tracer = ctx.tracer();

    // Per-scenario recovery-curve sampler under --timeseries-out;
    // the scenario name labels every emitted window.
    std::optional<stats::Sampler> sampler;
    if (ctx.wantTimeseries()) {
        sampler.emplace(ctx.sampleInterval(),
                        "scenario=" + scenario);
        params.sampler = &*sampler;
    }

    ClusterSim sim(params);
    if (plan) {
        // Plan ticks are relative to the run's origin.
        fault::BadDayPlan shifted = *plan;
        shifted.at += sim.timeOrigin();
        fault::scheduleBadDay(sim.injector(), shifted);
    }
    const ClusterSimResult r =
        sim.run(utilization * sim.aggregateCapacity());
    if (sampler)
        ctx.timeseries(sampler->jsonl());

    bench::JsonLine line;
    line.str("scenario", scenario)
        .uint("replication", params.resilience.replicationFactor)
        .boolean("hedged", params.resilience.hedgedReads)
        .boolean("admission", params.resilience.admissionControl)
        .number("utilization", "%.2f", utilization)
        .number("availability", "%.6f", r.availability)
        .number("minWindowAvailability", "%.6f",
                r.minWindowAvailability)
        .number("p99Us", "%.1f", r.p99LatencyUs)
        .number("p999Us", "%.1f", r.p999LatencyUs)
        .number("hitRate", "%.4f", r.hitRate)
        .uint("requests", r.requests)
        .uint("ok", r.ok)
        .uint("timeouts", r.timeouts)
        .uint("failed", r.failedRequests)
        .uint("shed", r.shed)
        .uint("attemptTimeouts", r.attemptTimeouts)
        .uint("retries", r.retries)
        .uint("hedges", r.hedges)
        .uint("hedgeWins", r.hedgeWins)
        .uint("hintsQueued", r.hintsQueued)
        .uint("hintsReplayed", r.hintsReplayed)
        .uint("readRepairs", r.readRepairs)
        .uint("maxOutstanding", r.maxOutstanding)
        .uint("crashes", r.crashes)
        .uint("restarts", r.restarts)
        .hex("digest", r.faultTimelineDigest);
    ctx.printf("%s", line.text().c_str());
    out = r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "bad_day");

    bench::banner("Bad day: crashes, overload and correlated "
                  "bursts vs replication, hedging and shedding");

    bench::ParallelSweep sweep(session);
    std::vector<ClusterSimResult> results;
    results.reserve(8);
    auto slot = [&results]() -> ClusterSimResult & {
        results.emplace_back();
        return results.back();
    };

    // --- Scenario family 1: one node crashes mid-run ---------------
    //
    // maxRetries=0 keeps the baseline honest: an unreplicated client
    // whose owner is down times out instead of silently refilling a
    // neighbour, so the availability dip is visible. The replicated
    // clients get no retries either -- hedging and write fan-out are
    // what carry them.
    struct CrashVariant
    {
        const char *name;
        unsigned replication;
        bool hedged;
    };
    const CrashVariant crash_variants[] = {
        {"crash-baseline", 1, false},
        {"crash-r2-hedged", 2, true},
        {"crash-r3-hedged", 3, true},
    };
    for (const CrashVariant &variant : crash_variants) {
        ClusterSimResult &out = slot();
        sweep.point([&, variant](bench::PointContext &ctx) {
            ClusterSimParams params = baseParams(ctx.smoke());
            params.shards = ctx.shards();
            params.faults.maxRetries = 0;
            params.faults.nodeDowntime = 15 * tickMs;
            params.resilience.replicationFactor =
                variant.replication;
            params.resilience.hedgedReads = variant.hedged;
            fault::BadDayPlan plan;
            plan.at = 5 * tickMs;
            plan.crashNodes = {"node0"};
            runScenario(ctx, variant.name, params, 0.5, &plan, out);
        });
    }

    // --- Scenario family 2: overload, shedding off vs on -----------
    const bool admission_variants[] = {false, true};
    for (const bool admission : admission_variants) {
        ClusterSimResult &out = slot();
        sweep.point([&, admission](bench::PointContext &ctx) {
            ClusterSimParams params = baseParams(ctx.smoke());
            params.shards = ctx.shards();
            params.nodes = 4;
            params.faults.maxRetries = 1;
            params.resilience.admissionControl = admission;
            const char *name = admission ? "overload-shedding"
                                         : "overload-baseline";
            runScenario(ctx, name, params, 1.6, nullptr, out);
        });
    }

    // --- Scenario family 3: the composed bad day --------------------
    //
    // Flash-backed nodes in four racks; rack 0 (node0, node4) loses
    // both machines a stagger apart while a cluster-wide loss burst
    // and a flash wear burst run. Rack-aware replication guarantees
    // no replica set lives entirely in the dead rack.
    {
        ClusterSimResult &out = slot();
        sweep.point([&](bench::PointContext &ctx) {
            ClusterSimParams params = baseParams(ctx.smoke());
            params.shards = ctx.shards();
            params.nodes = 8;
            params.racks = 4;
            params.node.memory = server::MemoryKind::Flash;
            params.faults.maxRetries = 2;
            params.resilience.replicationFactor = 2;
            params.resilience.rackAwareReplicas = true;
            params.resilience.hedgedReads = true;
            params.resilience.admissionControl = true;
            // Flash-backed nodes queue in hundreds of microseconds
            // even healthy; shed only genuine pile-ups.
            params.resilience.sloQueueDelay = 5 * tickMs;
            params.resilience.retryBudgetFraction = 0.5;
            fault::BadDayPlan plan;
            plan.at = 5 * tickMs;
            plan.crashNodes = {"node0", "node4"};
            plan.crashStagger = 2 * tickMs;
            plan.downtime = 15 * tickMs;
            plan.lossProbability = 0.02;
            plan.lossDuration = 20 * tickMs;
            plan.flashProgramFailProbability = 0.005;
            plan.flashWearDuration = 20 * tickMs;
            runScenario(ctx, "composed-bad-day", params, 0.3, &plan,
                        out);
        });
    }

    sweep.run();

    std::printf(
        "\nReading the lines: crash-baseline's "
        "minWindowAvailability dips for the whole downtime window "
        "while the replicated, hedged variants hold every window at "
        "or above 99%%. Under overload, shedding converts tail "
        "collapse into a bounded p999 plus a nonzero shed count. "
        "The composed bad day leans on every mechanism at once -- "
        "hints queue while rack 0 is dark and replay on restart, "
        "hedges rescue reads from dead primaries, and the digest "
        "pins the whole fault timeline.\n");
    return 0;
}
