/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 *
 * Every bench owns a Session, which gives the whole suite a uniform
 * observability interface:
 *
 *   bench --stats-json=FILE   dump the stats registry as flat JSON
 *   bench --trace-out=FILE    dump request-lifecycle spans as JSONL
 *   bench --trace-chrome=FILE dump spans as Chrome trace-event JSON
 *                             (loadable in Perfetto / chrome://tracing)
 *   bench --timeseries-out=FILE  windowed time-series JSONL (one
 *                             object per sample window, for benches
 *                             that attach a stats::Sampler)
 *   bench --sample-interval=US   sample window width in simulated
 *                             microseconds (default 1000)
 *   bench --smoke             tiny CI-sized configuration
 *   bench --jobs=N            run sweep points on N worker threads
 *                             (0 = all hardware threads); output is
 *                             byte-identical to --jobs=1
 *   bench --help              list the uniform flags and exit
 *
 * "-" as FILE writes to stdout. The flags are consumed (removed from
 * argv) so benches built on other frameworks (google-benchmark) can
 * forward the rest. Without flags a Session changes nothing: stdout
 * stays byte-identical to a bench that never had one.
 *
 * Sweep-style benches shard their points through bench::ParallelSweep
 * (parallel_sweep.hh), which honours --jobs and merges per-point
 * stdout text and stats fragments in submission order.
 */

#ifndef MERCURY_BENCH_BENCH_UTIL_HH
#define MERCURY_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/sampler.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/thread_annotations.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace mercury::bench
{

/** The request-size sweep of the paper (64 B to 1 MB, doubling). */
inline std::vector<std::uint32_t>
requestSizeSweep()
{
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t size = 64; size <= 1048576; size *= 2)
        sizes.push_back(size);
    return sizes;
}

/** Three sizes spanning the sweep, for --smoke runs. */
inline std::vector<std::uint32_t>
smokeSizeSweep()
{
    return {64, 4096, 65536};
}

/** "64", "1K", "256K", "1M" labels as the paper's axes use. */
inline std::string
sizeLabel(std::uint32_t bytes)
{
    if (bytes >= 1048576 && bytes % 1048576 == 0)
        return std::to_string(bytes / 1048576) + "M";
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "K";
    return std::to_string(bytes);
}

inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** The rule's dashes as a string, for points that buffer their text
 * through PointContext::printf instead of writing stdout directly. */
inline std::string
ruleString(int width = 100)
{
    return std::string(static_cast<std::size_t>(width), '-');
}

inline void
rule(int width = 100)
{
    std::fputs((ruleString(width) + "\n").c_str(), stdout);
}

/**
 * Per-bench observability session: owns the stats registry and the
 * (optional) tracer, parses the shared command-line flags, and writes
 * the requested outputs when finished.
 *
 * The constructor consumes --stats-json[=PATH], --trace-out[=PATH]
 * and --smoke from argc/argv; everything else is left in place.
 */
class Session
{
  public:
    /** The uniform flag table: the single source for parsing and for
     * the generated --help block. */
    struct FlagSpec
    {
        const char *flag;
        const char *arg;  ///< nullptr for boolean flags
        const char *help;
    };

    static const FlagSpec *
    flagTable(std::size_t &count)
    {
        static const FlagSpec specs[] = {
            {"--stats-json", "FILE",
             "dump the stats registry as flat JSON ('-' = stdout)"},
            {"--trace-out", "FILE",
             "dump request-lifecycle spans as JSONL"},
            {"--trace-chrome", "FILE",
             "dump spans as Chrome trace-event JSON (Perfetto)"},
            {"--timeseries-out", "FILE",
             "windowed time-series JSONL (sampler-attached benches)"},
            {"--sample-interval", "MICROS",
             "sample window width in simulated microseconds "
             "(default 1000)"},
            {"--smoke", nullptr, "tiny CI-sized configuration"},
            {"--jobs", "N",
             "sweep worker threads (0 = all hardware threads); "
             "output byte-identical to --jobs=1"},
            {"--shards", "N",
             "PDES shards per cluster simulation (0 = all hardware "
             "threads); output byte-identical to --shards=1"},
            {"--help", nullptr, "show the uniform bench flags and exit"},
        };
        count = sizeof(specs) / sizeof(specs[0]);
        return specs;
    }

    /** One aligned help line for a flag spec. */
    static std::string
    helpLine(const FlagSpec &spec)
    {
        std::string head = "  ";
        head += spec.flag;
        if (spec.arg) {
            head += '=';
            head += spec.arg;
        }
        if (head.size() < 28)
            head.resize(28, ' ');
        else
            head += ' ';
        return head + spec.help + '\n';
    }

    /** The generated --help block, one line per uniform flag. */
    static std::string
    helpText(const std::string &name)
    {
        std::string out = "usage: " + name + " [flags]\n\n"
                          "uniform bench flags:\n";
        std::size_t count = 0;
        const FlagSpec *specs = flagTable(count);
        for (std::size_t i = 0; i < count; ++i)
            out += helpLine(specs[i]);
        return out;
    }

    /**
     * @param extra_flags flags the bench parses itself from the
     *        leftover argv (e.g. selfbench's --out=PATH). Declaring
     *        them here whitelists them past the unknown-flag check
     *        and adds them to --help.
     */
    Session(int &argc, char **argv, std::string name,
            std::vector<FlagSpec> extra_flags = {})
        : registry_(std::move(name)),
          extraFlags_(std::move(extra_flags))
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            std::string value;
            if (match(arg, "--stats-json", i, argc, argv, value)) {
                statsPath_ = value;
            } else if (match(arg, "--trace-out", i, argc, argv,
                             value)) {
                tracePath_ = value;
            } else if (match(arg, "--trace-chrome", i, argc, argv,
                             value)) {
                chromePath_ = value;
            } else if (match(arg, "--timeseries-out", i, argc, argv,
                             value)) {
                timeseriesPath_ = value;
            } else if (match(arg, "--sample-interval", i, argc, argv,
                             value)) {
                sampleIntervalUs_ = parseSampleInterval(value);
            } else if (arg == "--smoke") {
                smoke_ = true;
            } else if (match(arg, "--jobs", i, argc, argv, value)) {
                jobs_ = parseJobs(value);
            } else if (match(arg, "--shards", i, argc, argv,
                             value)) {
                shards_ = parseJobs(value);
            } else if (arg == "--help") {
                std::fputs(helpText(registry_.name()).c_str(),
                           stdout);
                for (const FlagSpec &spec : extraFlags_)
                    std::fputs(helpLine(spec).c_str(), stdout);
                std::exit(0);
            } else if (arg.rfind("--", 0) == 0 &&
                       !isExtraFlag(arg) &&
                       arg.rfind("--benchmark_", 0) != 0) {
                // google-benchmark binaries construct a Session
                // before ::benchmark::Initialize; its flags pass
                // through untouched.
                rejectUnknownFlag(arg);
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        argv[argc] = nullptr;

        if (!tracePath_.empty() || !chromePath_.empty()) {
            if (MERCURY_TRACING) {
                tracer_ = std::make_unique<trace::Tracer>();
            } else {
                std::fprintf(stderr,
                             "%s: built with MERCURY_TRACING=OFF; "
                             "--trace-out/--trace-chrome ignored\n",
                             registry_.name().c_str());
            }
        }
    }

    ~Session() { finish(); }

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    stats::Registry &registry() { return registry_; }

    /** Pass as ServerModelParams::statsParent (et al.). */
    stats::StatGroup *statsParent() { return &registry_; }

    /** Pass as ServerModelParams::tracer; null unless --trace-out. */
    trace::Tracer *tracer() { return tracer_.get(); }

    bool smoke() const { return smoke_; }

    /**
     * Worker threads for ParallelSweep. Tracing forces 1 (the ring
     * buffer is single-writer; span order must stay byte-stable).
     */
    unsigned
    jobs() const
    {
        return tracer_ ? 1u : jobs_;
    }

    /**
     * PDES shards for ClusterSim (ClusterSimParams::shards).
     * Tracing forces 1 for the same single-writer reason as jobs();
     * the sharded engine also falls back to the serial walk on its
     * own whenever a zero-lookahead client coupling is configured.
     */
    unsigned
    shards() const
    {
        return tracer_ ? 1u : shards_;
    }

    /** Size sweep honouring --smoke. */
    std::vector<std::uint32_t>
    sizes() const
    {
        return smoke_ ? smokeSizeSweep() : requestSizeSweep();
    }

    /**
     * Fold the registry's *current* contents into the eventual
     * --stats-json dump. Benches whose models are transient call
     * this while they are still alive (their stat groups unregister
     * on destruction); once any capture happened, the final dump is
     * exactly the concatenated captures. Without captures the dump
     * is whatever is still registered when finish() runs. No-op
     * unless --stats-json was requested.
     */
    void
    capture() EXCLUDES(emitMutex_)
    {
        if (statsPath_.empty())
            return;
        sim::ScopedLock lock(emitMutex_);
        if (captured_.capacity() < 4096)
            captured_.reserve(4096);
        registry_.formatJson(captured_, "", capturedFirst_);
        haveCapture_ = true;
    }

    /** True when --stats-json was requested (ParallelSweep points
     * skip fragment formatting otherwise). */
    bool wantStats() const { return !statsPath_.empty(); }

    /** True when --timeseries-out was requested (benches attach a
     * stats::Sampler only then; without it sampling is fully off and
     * all other outputs stay byte-identical). */
    bool wantTimeseries() const { return !timeseriesPath_.empty(); }

    /** Sample window width as simulated ticks (--sample-interval,
     * default 1000 simulated microseconds). */
    Tick sampleInterval() const { return sampleIntervalUs_ * tickUs; }

    /**
     * Fold a sampler's accumulated JSONL into the eventual
     * --timeseries-out file. ParallelSweep publishes per-point
     * series through here in submission order, so the file is
     * byte-identical across --jobs values. No-op without
     * --timeseries-out or for an empty series.
     */
    void
    appendTimeseries(const std::string &jsonl) EXCLUDES(emitMutex_)
    {
        if (timeseriesPath_.empty() || jsonl.empty())
            return;
        sim::ScopedLock lock(emitMutex_);
        timeseries_ += jsonl;
    }

    /**
     * Fold a pre-formatted JSON fragment (comma-separated
     * "key":value pairs, no braces) into the eventual --stats-json
     * dump. ParallelSweep emits per-point fragments through here in
     * submission order, producing the same bytes capture() would
     * have produced from live models. No-op without --stats-json or
     * for an empty fragment.
     */
    void
    appendStatsFragment(const std::string &fragment)
        EXCLUDES(emitMutex_)
    {
        if (statsPath_.empty() || fragment.empty())
            return;
        sim::ScopedLock lock(emitMutex_);
        if (!capturedFirst_)
            captured_ += ',';
        capturedFirst_ = false;
        captured_ += fragment;
        haveCapture_ = true;
    }

    /**
     * Write the requested outputs. Called automatically from the
     * destructor; calling earlier pins the capture point. Idempotent.
     */
    void
    finish() EXCLUDES(emitMutex_)
    {
        if (finished_)
            return;
        finished_ = true;
        sim::ScopedLock lock(emitMutex_);
        if (!statsPath_.empty())
            writeTo(statsPath_, [this](std::ostream &os)
                                    NO_THREAD_SAFETY_ANALYSIS {
                if (haveCapture_)
                    os << "{" << captured_ << "}\n";
                else
                    registry_.writeJson(os);
            });
        if (tracer_ && !tracePath_.empty())
            writeTo(tracePath_, [this](std::ostream &os) {
                tracer_->writeJsonl(os);
            });
        if (tracer_ && !chromePath_.empty())
            writeTo(chromePath_, [this](std::ostream &os) {
                tracer_->writeChromeJson(os);
            });
        // The timeseries file is written even when no sampler fed it
        // (an empty file is an honest "this bench sampled nothing"),
        // so determinism harnesses can diff it unconditionally.
        // (The lambdas run synchronously under the lock taken above;
        // the analysis cannot see through the writeTo indirection.)
        if (!timeseriesPath_.empty())
            writeTo(timeseriesPath_, [this](std::ostream &os)
                                         NO_THREAD_SAFETY_ANALYSIS {
                os << timeseries_;
            });
    }

  private:
    /** Simulated microseconds per window; 0/garbage clamps to 1. */
    static std::uint64_t
    parseSampleInterval(const std::string &value)
    {
        const long long parsed =
            std::strtoll(value.c_str(), nullptr, 10);
        return parsed > 0 ? static_cast<std::uint64_t>(parsed) : 1;
    }

    /** "--jobs 0" means one worker per hardware thread. */
    static unsigned
    parseJobs(const std::string &value)
    {
        const long parsed = std::strtol(value.c_str(), nullptr, 10);
        if (parsed <= 0)
            return std::max(1u, std::thread::hardware_concurrency());
        return static_cast<unsigned>(parsed);
    }

    /** The "--flag" part of "--flag=value" (or the whole token). */
    static std::string
    flagName(const std::string &arg)
    {
        const std::size_t eq = arg.find('=');
        return eq == std::string::npos ? arg : arg.substr(0, eq);
    }

    /** True when @p arg names a bench-declared extra flag; such
     * tokens pass the unknown-flag check and stay in argv for the
     * bench's own parser. */
    bool
    isExtraFlag(const std::string &arg) const
    {
        const std::string name = flagName(arg);
        for (const FlagSpec &spec : extraFlags_) {
            if (name == spec.flag)
                return true;
        }
        return false;
    }

    /** Classic Levenshtein distance, for the did-you-mean hint. */
    static std::size_t
    editDistance(const std::string &a, const std::string &b)
    {
        std::vector<std::size_t> row(b.size() + 1);
        for (std::size_t j = 0; j <= b.size(); ++j)
            row[j] = j;
        for (std::size_t i = 1; i <= a.size(); ++i) {
            std::size_t diag = row[0];
            row[0] = i;
            for (std::size_t j = 1; j <= b.size(); ++j) {
                const std::size_t subst =
                    diag + (a[i - 1] == b[j - 1] ? 0 : 1);
                diag = row[j];
                row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                                   subst});
            }
        }
        return row[b.size()];
    }

    /** Misspelled flags fail fast (exit 2) with the closest known
     * flag as a hint, instead of being silently ignored. */
    [[noreturn]] void
    rejectUnknownFlag(const std::string &arg) const
    {
        const std::string name = flagName(arg);
        std::string closest;
        std::size_t best = name.size();  // hint only if clearly close
        std::size_t count = 0;
        const FlagSpec *specs = flagTable(count);
        auto consider = [&](const char *flag) {
            const std::size_t d = editDistance(name, flag);
            if (d < best) {
                best = d;
                closest = flag;
            }
        };
        for (std::size_t i = 0; i < count; ++i)
            consider(specs[i].flag);
        for (const FlagSpec &spec : extraFlags_)
            consider(spec.flag);
        std::fprintf(stderr, "%s: unknown flag '%s'",
                     registry_.name().c_str(), name.c_str());
        if (!closest.empty() && best <= 3)
            std::fprintf(stderr, " (did you mean '%s'?)",
                         closest.c_str());
        std::fprintf(stderr, "; see --help\n");
        std::exit(2);
    }

    /** Accepts --flag=VALUE and --flag VALUE; advances @p i for the
     * two-token form. */
    static bool
    match(const std::string &arg, const char *flag, int &i, int argc,
          char **argv, std::string &value)
    {
        const std::string prefix = std::string(flag) + "=";
        if (arg.rfind(prefix, 0) == 0) {
            value = arg.substr(prefix.size());
            return true;
        }
        if (arg == flag && i + 1 < argc) {
            value = argv[++i];
            return true;
        }
        return false;
    }

    template <typename Fn>
    void
    writeTo(const std::string &path, Fn &&fn)
    {
        if (path == "-") {
            fn(std::cout);
            std::cout.flush();
        } else {
            std::ofstream os(path);
            if (!os) {
                std::fprintf(stderr, "cannot open %s for writing\n",
                             path.c_str());
                return;
            }
            fn(os);
        }
    }

    stats::Registry registry_;
    std::vector<FlagSpec> extraFlags_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::string statsPath_;
    std::string tracePath_;
    std::string chromePath_;
    std::string timeseriesPath_;
    /** Serializes the capture/append/finish emission state. Today
     * ParallelSweep publishes in submission order from one thread;
     * the capability makes that discipline machine-checked so the
     * PDES merge workers cannot silently start appending unlocked. */
    mutable sim::Mutex emitMutex_;
    std::string captured_ GUARDED_BY(emitMutex_);
    std::string timeseries_ GUARDED_BY(emitMutex_);
    std::uint64_t sampleIntervalUs_ = 1000;
    bool capturedFirst_ GUARDED_BY(emitMutex_) = true;
    bool haveCapture_ GUARDED_BY(emitMutex_) = false;
    bool smoke_ = false;
    bool finished_ = false;
    unsigned jobs_ = 1;
    unsigned shards_ = 1;
};

/**
 * One printf-style JSON object per line, preserving exact numeric
 * formats (a digest consumer diffs these bytes, so "%.4f" must stay
 * "%.4f"). Usage:
 *
 *   JsonLine line;
 *   line.number("loss", "%.4f", loss).uint("retries", r)
 *       .hex("digest", d).print();
 */
class JsonLine
{
  public:
    /** Fixed-format floating-point field, e.g. fmt = "%.4f". */
    JsonLine &
    number(const char *key, const char *fmt, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), fmt, value);
        return raw(key, buf);
    }

    JsonLine &
    uint(const char *key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        return raw(key, buf);
    }

    /** Quoted 0x%016llx string, the digest convention. */
    JsonLine &
    hex(const char *key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                      static_cast<unsigned long long>(value));
        return raw(key, buf);
    }

    JsonLine &
    boolean(const char *key, bool value)
    {
        return raw(key, value ? "true" : "false");
    }

    /** Quoted string; caller guarantees no characters needing
     * escapes (keys and enum-ish values in practice). */
    JsonLine &
    str(const char *key, const std::string &value)
    {
        return raw(key, "\"" + value + "\"");
    }

    void
    print(std::FILE *out = stdout)
    {
        std::fputs(text().c_str(), out);
    }

    /** The finished line (with closing brace and newline), for
     * callers routing output through PointContext::printf. */
    std::string text() const { return body_ + "}\n"; }

  private:
    JsonLine &
    raw(const char *key, const std::string &text)
    {
        body_ += first_ ? "\"" : ",\"";
        first_ = false;
        body_ += key;
        body_ += "\":";
        body_ += text;
        return *this;
    }

    std::string body_ = "{";
    bool first_ = true;
};

} // namespace mercury::bench

#endif // MERCURY_BENCH_BENCH_UTIL_HH
