/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 */

#ifndef MERCURY_BENCH_BENCH_UTIL_HH
#define MERCURY_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mercury::bench
{

/** The request-size sweep of the paper (64 B to 1 MB, doubling). */
inline std::vector<std::uint32_t>
requestSizeSweep()
{
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t size = 64; size <= 1048576; size *= 2)
        sizes.push_back(size);
    return sizes;
}

/** "64", "1K", "256K", "1M" labels as the paper's axes use. */
inline std::string
sizeLabel(std::uint32_t bytes)
{
    if (bytes >= 1048576 && bytes % 1048576 == 0)
        return std::to_string(bytes / 1048576) + "M";
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "K";
    return std::to_string(bytes);
}

inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void
rule(int width = 100)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace mercury::bench

#endif // MERCURY_BENCH_BENCH_UTIL_HH
