/**
 * @file
 * Extension: cluster tail latency vs node granularity and workload
 * skew (Sec. 3.8).
 *
 * The paper argues more physical nodes shrink each node's arc of
 * the DHT keyspace and so reduce resource contention. This holds for
 * moderately skewed workloads -- but it has a sharp limit the
 * open-loop simulation exposes: a single hot KEY cannot be sharded,
 * and a thin node has proportionally less capacity to absorb it.
 * Under extreme skew, finer granularity makes the hot node saturate
 * earlier (the classic memcached hot-key problem that production
 * systems solve with client-side caching or key replication).
 */

#include <cstdio>

#include "bench_util.hh"
#include "cluster/cluster_sim.hh"

namespace
{

using namespace mercury;
using namespace mercury::cluster;

ClusterSimResult
run(unsigned nodes, double theta, double utilization)
{
    ClusterSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.withL2 = false;
    params.node.storeMemLimit = 48 * miB;
    params.nodes = nodes;
    params.zipfTheta = theta;
    params.requests = 2500;

    ClusterSim sim(params);
    return sim.run(utilization * sim.aggregateCapacity());
}

void
row(unsigned nodes, double theta, double utilization)
{
    const ClusterSimResult r = run(nodes, theta, utilization);
    std::printf("%-6u %6.2f %7.0f%% %10.1f %10.1f %9.0f%% %9.2f%%\n",
                nodes, theta, utilization * 100, r.avgLatencyUs,
                r.p99LatencyUs, r.subMsFraction * 100,
                r.hottestNodeShare * 100);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "cluster_tail");
    bench::banner("Cluster tail latency: node granularity x "
                  "workload skew (open-loop Zipf GETs)");

    std::printf("%-6s %6s %8s %10s %10s %10s %10s\n", "Nodes",
                "theta", "load", "avg us", "p99 us", "<1ms",
                "hot share");
    bench::rule(68);

    std::printf("-- moderate skew: finer granularity smooths the "
                "ring (Sec. 3.8) --\n");
    for (unsigned nodes : {4u, 16u, 48u})
        row(nodes, 0.70, 0.6);

    std::printf("-- extreme skew: one hot key defeats sharding; "
                "thin nodes saturate first --\n");
    for (unsigned nodes : {4u, 16u, 48u})
        row(nodes, 0.99, 0.6);

    std::printf("\nWith theta=0.7 the hot node's share tracks its "
                "arc and tails stay flat as nodes multiply. With "
                "theta=0.99 the top key alone is ~10%% of traffic: "
                "it lands on ONE node whose capacity shrinks with "
                "granularity, so many-thin-node clusters queue on "
                "it long before fat-node clusters do. Density needs "
                "hot-key replication to cash in -- a limit of the "
                "Sec. 3.8 argument worth knowing.\n");
    return 0;
}
