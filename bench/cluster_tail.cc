/**
 * @file
 * Extension: cluster tail latency vs node granularity and workload
 * skew (Sec. 3.8).
 *
 * The paper argues more physical nodes shrink each node's arc of
 * the DHT keyspace and so reduce resource contention. This holds for
 * moderately skewed workloads -- but it has a sharp limit the
 * open-loop simulation exposes: a single hot KEY cannot be sharded,
 * and a thin node has proportionally less capacity to absorb it.
 * Under extreme skew, finer granularity makes the hot node saturate
 * earlier (the classic memcached hot-key problem that production
 * systems solve with client-side caching or key replication).
 *
 * Each (nodes, theta) cell is an independent ParallelSweep point;
 * `--jobs N` output stays byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster_sim.hh"
#include "parallel_sweep.hh"
#include "sim/sampler.hh"

namespace
{

using namespace mercury;
using namespace mercury::cluster;

void
cell(bench::PointContext &ctx, unsigned nodes, double theta,
     double utilization)
{
    ClusterSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.withL2 = false;
    params.node.storeMemLimit = 48 * miB;
    params.nodes = nodes;
    params.zipfTheta = theta;
    params.requests = 2500;
    params.shards = ctx.shards();
    params.tracer = ctx.tracer();

    // Windowed per-cell time series under --timeseries-out, labelled
    // by the cell's coordinates.
    std::optional<stats::Sampler> sampler;
    if (ctx.wantTimeseries()) {
        char label[48];
        std::snprintf(label, sizeof(label), "nodes=%u,theta=%.2f",
                      nodes, theta);
        sampler.emplace(ctx.sampleInterval(), label);
        params.sampler = &*sampler;
    }

    ClusterSim sim(params);
    const ClusterSimResult r =
        sim.run(utilization * sim.aggregateCapacity());
    if (sampler)
        ctx.timeseries(sampler->jsonl());
    ctx.printf("%-6u %6.2f %7.0f%% %10.1f %10.1f %9.0f%% %9.2f%%\n",
               nodes, theta, utilization * 100, r.avgLatencyUs,
               r.p99LatencyUs, r.subMsFraction * 100,
               r.hottestNodeShare * 100);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "cluster_tail");
    bench::banner("Cluster tail latency: node granularity x "
                  "workload skew (open-loop Zipf GETs)");

    std::printf("%-6s %6s %8s %10s %10s %10s %10s\n", "Nodes",
                "theta", "load", "avg us", "p99 us", "<1ms",
                "hot share");
    bench::rule(68);

    const struct
    {
        const char *header;
        double theta;
    } sections[] = {
        {"-- moderate skew: finer granularity smooths the ring "
         "(Sec. 3.8) --\n",
         0.70},
        {"-- extreme skew: one hot key defeats sharding; thin nodes "
         "saturate first --\n",
         0.99},
    };

    bench::ParallelSweep sweep(session);
    for (const auto &section : sections) {
        const std::vector<unsigned> node_counts{4, 16, 48};
        for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
            const unsigned nodes = node_counts[ni];
            const double theta = section.theta;
            const char *header = ni == 0 ? section.header : nullptr;
            sweep.point(
                [header, nodes, theta](bench::PointContext &ctx) {
                    if (header)
                        ctx.printf("%s", header);
                    cell(ctx, nodes, theta, 0.6);
                });
        }
    }
    sweep.run();

    std::printf("\nWith theta=0.7 the hot node's share tracks its "
                "arc and tails stay flat as nodes multiply. With "
                "theta=0.99 the top key alone is ~10%% of traffic: "
                "it lands on ONE node whose capacity shrinks with "
                "granularity, so many-thin-node clusters queue on "
                "it long before fat-node clusters do. Density needs "
                "hot-key replication to cash in -- a limit of the "
                "Sec. 3.8 argument worth knowing.\n");
    return 0;
}
