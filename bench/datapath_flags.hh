/**
 * @file
 * Shared --datapath=kernel|bypass / --nic-cache-mb=MB flag parsing
 * for the design-space benches (fig7, table3, datapath_sweep).
 *
 * Both flags default off, so a bench that declares them emits
 * byte-identical output to one that never had them until the user
 * opts in; banner() below makes a non-default choice visible in the
 * output so re-runs are self-describing.
 */

#ifndef MERCURY_BENCH_DATAPATH_FLAGS_HH
#define MERCURY_BENCH_DATAPATH_FLAGS_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"

#include "net/datapath.hh"

namespace mercury::bench
{

/** Parsed datapath choice for a design-space bench. */
struct DatapathFlags
{
    net::DatapathParams datapath{};
    /** On-NIC GET-cache SRAM per stack (MB), charged to the
     * physical model; entries are derived by the perf oracle. */
    double nicCacheMB = 0.0;

    bool
    nonDefault() const
    {
        return datapath.bypass() || nicCacheMB > 0.0;
    }

    /** One line describing a non-default choice; "" when default. */
    std::string
    banner() const
    {
        if (!nonDefault())
            return "";
        std::string out = "[datapath: ";
        out += datapath.bypass() ? "bypass" : "kernel";
        if (datapath.bypass()) {
            out += " rx/tx batch " +
                   std::to_string(datapath.rxBatch);
        }
        if (nicCacheMB > 0.0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), ", NIC cache %.2f MB",
                          nicCacheMB);
            out += buf;
        }
        out += "]\n\n";
        return out;
    }
};

/** The FlagSpecs to declare on the Session (whitelists the flags
 * and adds them to --help). */
inline std::vector<Session::FlagSpec>
datapathFlagSpecs()
{
    return {
        {"--datapath", "KIND",
         "modeled datapath: kernel (default) or bypass "
         "(batched poll-mode driver, rx/tx batch 32)"},
        {"--nic-cache-mb", "MB",
         "on-NIC GET-cache SRAM per stack in MB (default 0 = "
         "no cache; charged area and power)"},
    };
}

/** Consume the two flags from the Session's leftover argv. */
inline DatapathFlags
parseDatapathFlags(int &argc, char **argv)
{
    DatapathFlags flags;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--datapath=", 0) == 0) {
            const std::string kind = arg.substr(11);
            if (kind == "bypass") {
                flags.datapath.kind = net::DatapathKind::Bypass;
                flags.datapath.rxBatch = 32;
                flags.datapath.txBatch = 32;
            } else if (kind != "kernel") {
                std::fprintf(stderr,
                             "--datapath wants kernel|bypass, got "
                             "'%s'\n",
                             kind.c_str());
                std::exit(2);
            }
        } else if (arg.rfind("--nic-cache-mb=", 0) == 0) {
            flags.nicCacheMB = std::strtod(arg.c_str() + 15, nullptr);
            if (flags.nicCacheMB < 0.0)
                flags.nicCacheMB = 0.0;
        } else {
            argv[out++] = argv[i];
            continue;
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return flags;
}

} // namespace mercury::bench

#endif // MERCURY_BENCH_DATAPATH_FLAGS_HH
