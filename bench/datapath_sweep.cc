/**
 * @file
 * Kernel-bypass datapath sweep. Fig. 4 charges 87-97 % of a small
 * GET to the Linux network stack; this bench quantifies how much of
 * that a modeled kernel-bypass datapath buys back, in three steps:
 *
 *   A. 64 B GET path shootout -- TCP vs UDP vs bypass (batch 1) vs
 *      bypass (batch 32) vs bypass + on-NIC GET cache -- with the
 *      per-request breakdown split into kernel / wire / NIC-cache
 *      shares, on the Fig. 4 A15 @1GHz Mercury node.
 *
 *   B. RX/TX batch-size sweep: amortizing descriptor-ring and
 *      doorbell costs over the batch is where a poll-mode driver's
 *      per-packet cost goes sub-microsecond.
 *
 *   C. The design-space consequence: Table-3-style A7 Mercury and
 *      Iridium frontiers re-solved with the bypass datapath and a
 *      0.5 MB NIC cache charged to the logic die (area + power).
 *
 * Every section is a ParallelSweep; `--jobs N` output stays
 * byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"
#include "parallel_sweep.hh"
#include "server/server_model.hh"
#include "sim/random.hh"

namespace
{

using namespace mercury;
using namespace mercury::config;
using namespace mercury::physical;
using namespace mercury::server;

/** One datapath configuration of the shootout. */
struct PathChoice
{
    const char *label;
    bool udp;
    net::DatapathParams datapath;
};

/** Outcome of one closed-loop row. */
struct RowResult
{
    double tps = 0.0;
    double rttUs = 0.0;
    RttBreakdown avg;
    double hitRate = -1.0; ///< < 0: no NIC cache configured
};

/**
 * Closed-loop 64 B GET run against a fixed keyset: one warm pass
 * (fills the CPU caches and, when enabled, the NIC cache), then
 * @p requests uniform-random GETs. Unlike measureGets' 12-sample
 * window this drives enough traffic for a NIC cache to reach its
 * steady-state hit rate.
 */
RowResult
runRow(const PathChoice &choice, unsigned requests,
       bench::PointContext &ctx, const std::string &name)
{
    ServerModelParams p;
    p.core = cpu::cortexA15Params(1.0);
    p.withL2 = true;
    p.memory = MemoryKind::StackedDram;
    p.dramArrayLatency = 10 * tickNs;
    p.storeMemLimit = 224 * miB;
    p.udpGets = choice.udp;
    p.datapath = choice.datapath;
    p.name = name;
    p.statsParent = ctx.statsParent();
    ServerModel node(p);

    const unsigned keys = 1024;
    node.populate(keys, 64);
    for (unsigned k = 0; k < keys; ++k)
        node.get("v64:" + std::to_string(k));

    Rng rng(42);
    RowResult row;
    Tick wire = 0, netstack = 0, hash = 0, memcached = 0, nic = 0;
    // Hit rate over the measured window only; the warm pass's
    // compulsory misses are not steady state.
    std::uint64_t warm_hits = 0, warm_misses = 0;
    if (const net::NicGetCache *cache = node.nicCache()) {
        warm_hits = cache->hits();
        warm_misses = cache->misses();
    }
    const Tick begin = node.now();
    for (unsigned i = 0; i < requests; ++i) {
        const std::string key =
            "v64:" + std::to_string(rng.nextInt(keys));
        const RequestTiming t = node.get(key);
        wire += t.breakdown.wire;
        netstack += t.breakdown.netstack;
        hash += t.breakdown.hash;
        memcached += t.breakdown.memcached;
        nic += t.breakdown.nicCache;
    }
    const Tick span = node.now() - begin;

    row.tps = static_cast<double>(requests) / ticksToSeconds(span);
    row.rttUs = ticksToUs(span) / requests;
    row.avg = {wire / requests, netstack / requests, hash / requests,
               memcached / requests, nic / requests};
    if (const net::NicGetCache *cache = node.nicCache()) {
        const double hits =
            static_cast<double>(cache->hits() - warm_hits);
        const double lookups =
            hits + static_cast<double>(cache->misses() -
                                       warm_misses);
        row.hitRate = lookups > 0.0 ? hits / lookups : 0.0;
    }
    // Fold this model's stats into the point's fragment before it
    // unregisters (the model is transient; see Session::capture()).
    ctx.capture();
    return row;
}

void
printRow(mercury::bench::PointContext &ctx, const char *label,
         const RowResult &row)
{
    ctx.printf("%-22s %9.0f %8.2f %8.1f%% %7.1f%% %8.1f%% %8.1f%%",
               label, row.tps, row.rttUs,
               row.avg.netstackFraction() * 100,
               row.avg.wireFraction() * 100,
               row.avg.nicCacheFraction() * 100,
               row.avg.memcachedFraction() * 100);
    ctx.printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "datapath_sweep");
    const unsigned requests = session.smoke() ? 400 : 4000;

    // ---- Section A: path shootout --------------------------------
    const PathChoice choices[] = {
        {"kernel TCP", false, {}},
        {"kernel UDP", true, {}},
        {"bypass batch=1", false,
         {net::DatapathKind::Bypass, 1, 1, false, 0}},
        {"bypass batch=32", false,
         {net::DatapathKind::Bypass, 32, 32, false, 0}},
        {"bypass b=32 +niccache", false,
         {net::DatapathKind::Bypass, 32, 32, false, 4096}},
    };

    bench::banner("Datapath shootout: 64 B GETs, A15 @1GHz Mercury "
                  "(Fig. 4 node)");
    std::vector<RowResult> rows(std::size(choices));
    bench::ParallelSweep sweep(session);
    for (std::size_t i = 0; i < std::size(choices); ++i) {
        sweep.point([&, i](bench::PointContext &ctx) {
            if (i == 0) {
                ctx.printf("%-22s %9s %8s %9s %8s %9s %9s\n", "Path",
                           "TPS", "RTT us", "Kernel", "Wire",
                           "NICcache", "Memcached");
                ctx.printf("%s\n", bench::ruleString(78).c_str());
            }
            rows[i] = runRow(choices[i], requests, ctx,
                             std::string("dp_") + std::to_string(i));
            printRow(ctx, choices[i].label, rows[i]);
        });
    }
    sweep.run();
    std::printf("\nbypass gain over kernel TCP: %.2fx; NIC-cache "
                "hit rate at steady state: %.0f%%\n",
                rows[3].tps / rows[0].tps, rows[4].hitRate * 100);

    // ---- Section B: batch-size sweep -----------------------------
    bench::banner("RX/TX batch-size sweep (bypass, 64 B GETs)");
    const std::vector<unsigned> batches =
        session.smoke() ? std::vector<unsigned>{1, 8, 32}
                        : std::vector<unsigned>{1, 2, 4, 8, 16, 32,
                                                64};
    std::vector<RowResult> brows(batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
        sweep.point([&, i](bench::PointContext &ctx) {
            if (i == 0) {
                ctx.printf("%-10s %12s %12s %12s\n", "Batch", "TPS",
                           "RTT us", "Kernel share");
                ctx.printf("%s\n", bench::ruleString(50).c_str());
            }
            PathChoice choice{"batch", false,
                              {net::DatapathKind::Bypass, batches[i],
                               batches[i], false, 0}};
            brows[i] =
                runRow(choice, requests, ctx,
                       "dp_batch" + std::to_string(batches[i]));
            ctx.printf("%-10u %12.0f %12.2f %11.1f%%\n", batches[i],
                       brows[i].tps, brows[i].rttUs,
                       brows[i].avg.netstackFraction() * 100);
        });
    }
    sweep.run();

    // ---- Section C: design-space consequence ---------------------
    bench::banner("Re-solved 1.5U frontier: A7 stacks, kernel vs "
                  "bypass + 0.5 MB NIC cache");
    struct Frontier
    {
        const char *family;
        StackMemory memory;
        const char *path;
        net::DatapathParams datapath;
        double nicCacheMB;
    };
    const net::DatapathParams bypass{net::DatapathKind::Bypass, 32,
                                     32, false, 0};
    const Frontier frontiers[] = {
        {"Mercury", StackMemory::Dram3D, "kernel", {}, 0.0},
        {"Mercury", StackMemory::Dram3D, "bypass+cache", bypass, 0.5},
        {"Iridium", StackMemory::Flash3D, "kernel", {}, 0.0},
        {"Iridium", StackMemory::Flash3D, "bypass+cache", bypass,
         0.5},
    };
    for (std::size_t i = 0; i < std::size(frontiers); ++i) {
        sweep.point([&, i](bench::PointContext &ctx) {
            const Frontier &f = frontiers[i];
            if (i == 0) {
                ctx.printf("%-8s %-13s %-8s %12s %10s %10s %10s\n",
                           "Family", "Path", "Config", "TPS@64B (M)",
                           "Power (W)", "KTPS/W", "GB");
                ctx.printf("%s\n", bench::ruleString(78).c_str());
            }
            DesignExplorer explorer;
            StackConfig stack;
            stack.core = cpu::cortexA7Params();
            stack.memory = f.memory;
            stack.withL2 = f.memory == StackMemory::Flash3D;
            stack.nicCacheMB = f.nicCacheMB;
            OracleOptions oracle;
            oracle.datapath = f.datapath;
            const PerCorePerf perf = measurePerCorePerf(stack,
                                                        oracle);
            for (unsigned n : {4u, 16u, 32u}) {
                stack.coresPerStack = n;
                const ServerDesign d = explorer.solve(stack, perf);
                ctx.printf("%-8s %-13s %s-%-6u %12.2f %10.0f %10.2f "
                           "%10.0f\n",
                           f.family, f.path, f.family[0] == 'M'
                                                 ? "M" : "I",
                           n, d.tps64 / 1e6, d.powerAt64BW,
                           d.tpsPerWatt() / 1e3, d.densityGB);
            }
        });
    }
    sweep.run();
    return 0;
}
