/**
 * @file
 * Robustness extension: degradation curves under injected faults.
 *
 * Sweeps packet-loss rate x node-crash rate over the cluster
 * simulation and grown-bad-block rates over the FTL, emitting one
 * JSON line per point. Every number is produced by the deterministic
 * fault framework (src/sim/fault.hh): re-running this binary with
 * the same build reproduces the output byte for byte, and the
 * "digest" field is the fault-timeline hash a reader can diff first.
 *
 * The paper measures Mercury/Iridium clusters in steady state; this
 * harness asks what the dense-cluster argument costs in bad weather:
 * more, smaller nodes mean more frequent (if smaller) failures, so
 * client-visible availability and tail latency under faults are part
 * of the density trade.
 *
 * Each sweep point owns its cluster (or FTL) and fault-injector
 * stream, so points shard freely across `--jobs N` workers; JSON
 * lines and the sweep-wide stats accumulate in submission order
 * during the ordered emission phase, keeping output byte-identical
 * to the serial run.
 *
 * Usage: fault_sweep [--smoke]   (--smoke runs a tiny CI-sized sweep)
 */

#include <cstddef>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster_sim.hh"
#include "mem/flash.hh"
#include "parallel_sweep.hh"
#include "sim/random.hh"
#include "sim/sampler.hh"

namespace
{

using namespace mercury;
using namespace mercury::cluster;

/** Sweep-wide aggregates, visible through --stats-json. The per-node
 * simulators are transient (one cluster per sweep point), so the
 * registry carries the sweep totals rather than per-node trees. */
struct SweepStats
{
    stats::StatGroup cluster;
    stats::Counter points, requests, ok, timeouts, retries, failed,
        shed, crashes;
    /** The accounting contract as a registry formula: 0 iff every
     * measured request landed in exactly one outcome class. */
    stats::Formula unaccounted;
    stats::StatGroup flash;
    stats::Counter flashPoints, retired, programFailures;

    explicit SweepStats(stats::StatGroup *parent)
        : cluster("cluster", parent),
          points(&cluster, "points", "sweep points simulated"),
          requests(&cluster, "requests", "measured requests"),
          ok(&cluster, "ok", "requests answered"),
          timeouts(&cluster, "timeouts",
                   "requests with every attempt timed out"),
          retries(&cluster, "retries", "request retries issued"),
          failed(&cluster, "failed",
                 "requests that gave up (retry budget)"),
          shed(&cluster, "shed",
               "requests refused by admission control"),
          crashes(&cluster, "crashes", "node crashes injected"),
          unaccounted(
              &cluster, "unaccounted",
              "requests - (ok + timeouts + failed + shed); 0 by "
              "contract",
              [this] {
                  return static_cast<double>(requests.value()) -
                         static_cast<double>(
                             ok.value() + timeouts.value() +
                             failed.value() + shed.value());
              }),
          flash("flash", parent),
          flashPoints(&flash, "points", "FTL sweep points"),
          retired(&flash, "retired", "blocks retired across points"),
          programFailures(&flash, "programFailures",
                          "program failures across points")
    {
    }
};

ClusterSimParams
baseParams(bool smoke)
{
    ClusterSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.withL2 = false;
    params.node.storeMemLimit = 48 * miB;
    params.nodes = 8;
    params.numKeys = 2000;
    params.zipfTheta = 0.9;
    params.requests = smoke ? 300 : 1500;
    params.warmup = smoke ? 50 : 150;

    params.faults.enabled = true;
    params.faults.requestTimeout = 1 * tickMs;
    params.faults.nodeDowntime = 5 * tickMs;
    params.faults.maxRetries = 2;
    params.faults.backoffBase = 200 * tickUs;
    params.faults.backoffJitter = 0.2;
    params.faults.seed = 0xfa17;
    return params;
}

void
clusterPoint(bench::PointContext &ctx,
             const ClusterSimParams &params, double offered_tps,
             ClusterSimResult &out)
{
    ClusterSimParams run_params = params;
    run_params.tracer = ctx.tracer();

    // Per-point recovery-curve sampler under --timeseries-out: every
    // line carries the point's fault coordinates as its label, so the
    // merged JSONL is self-describing. Point samplers are private to
    // the point and published in submission order, keeping the file
    // byte-identical across --jobs values.
    std::optional<stats::Sampler> sampler;
    if (ctx.wantTimeseries()) {
        char label[64];
        std::snprintf(label, sizeof(label),
                      "loss=%.4f,crash=%.0f",
                      params.faults.packetLossProbability,
                      params.faults.nodeCrashesPerSecond);
        sampler.emplace(ctx.sampleInterval(), label);
        run_params.sampler = &*sampler;
    }

    ClusterSim sim(run_params);
    const ClusterSimResult r = sim.run(offered_tps);
    if (sampler)
        ctx.timeseries(sampler->jsonl());
    bench::JsonLine line;
    line.str("section", "cluster")
        .number("loss", "%.4f", params.faults.packetLossProbability)
        .number("crashPerSec", "%.0f",
                params.faults.nodeCrashesPerSecond)
        .number("availability", "%.6f", r.availability)
        .number("avgUs", "%.1f", r.avgLatencyUs)
        .number("p99Us", "%.1f", r.p99LatencyUs)
        .number("p999Us", "%.1f", r.p999LatencyUs)
        .number("hitRate", "%.4f", r.hitRate)
        .number("postRestartHitRate", "%.4f", r.postRestartHitRate)
        .uint("ok", r.ok)
        .uint("timeouts", r.timeouts)
        .uint("attemptTimeouts", r.attemptTimeouts)
        .uint("retries", r.retries)
        .uint("failed", r.failedRequests)
        .uint("shed", r.shed)
        .uint("crashes", r.crashes)
        .uint("restarts", r.restarts)
        .uint("netDrops", r.netDrops)
        .uint("netRetransmits", r.netRetransmits)
        .hex("digest", r.faultTimelineDigest);
    ctx.printf("%s", line.text().c_str());
    out = r;
}

/** The slice of FTL state the ordered stats accumulation needs
 * after the point's Ftl object is gone. */
struct FlashOutcome
{
    std::uint64_t retired = 0;
    std::uint64_t programFailures = 0;
};

void
flashPoint(bench::PointContext &ctx, double erase_fail,
           double program_fail, unsigned writes, FlashOutcome &out)
{
    // One small channel: 128 blocks of 32 pages, 10% spare.
    mem::Ftl ftl(4096, 32, 0.10, 4, 64);
    fault::FaultInjector injector(0xfa17);
    ftl.setFaultInjection(&injector, program_fail, erase_fail,
                          "ftl");

    Rng rng(7);
    Tick now = 0;
    for (unsigned i = 0; i < writes; ++i) {
        ftl.write(rng.nextInt(ftl.logicalPages()), now);
        now += 200 * tickUs;
    }

    bench::JsonLine line;
    line.str("section", "flash")
        .number("eraseFail", "%.4f", erase_fail)
        .number("programFail", "%.4f", program_fail)
        .uint("retired", ftl.retiredBlocks())
        .uint("spareRemaining", ftl.spareBlocksRemaining())
        .number("capacityLoss", "%.4f", ftl.capacityLossFraction())
        .number("writeAmp", "%.3f", ftl.writeAmplification())
        .uint("programFailures", ftl.programFailures())
        .boolean("consistent", ftl.checkConsistency())
        .hex("digest", injector.timelineDigest());
    ctx.printf("%s", line.text().c_str());

    out.retired = ftl.retiredBlocks();
    out.programFailures = ftl.programFailures();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "fault_sweep");
    const bool smoke = session.smoke();
    SweepStats stats(session.statsParent());

    bench::banner("Fault sweep: packet loss x node crashes "
                  "(cluster) and grown bad blocks (FTL)");

    const std::vector<double> losses =
        smoke ? std::vector<double>{0.0, 0.01}
              : std::vector<double>{0.0, 0.001, 0.01, 0.05};
    const std::vector<double> crash_rates =
        smoke ? std::vector<double>{0.0, 400.0}
              : std::vector<double>{0.0, 100.0, 400.0};

    // One capacity probe for the whole sweep so every point runs at
    // the same offered load.
    ClusterSimParams base = baseParams(smoke);
    base.shards = session.shards();
    double offered = 0.0;
    {
        ClusterSim probe(base);
        offered = 0.6 * probe.aggregateCapacity();
    }

    // The cluster points run first; their JSON lines and stats
    // accumulate in loss-major order no matter how many workers ran
    // them.
    bench::ParallelSweep sweep(session);
    std::vector<ClusterSimResult> results(losses.size() *
                                          crash_rates.size());
    std::size_t index = 0;
    for (const double loss : losses) {
        for (const double crashes : crash_rates) {
            ClusterSimResult &slot = results[index++];
            sweep.point(
                [&, loss, crashes](bench::PointContext &ctx) {
                    ClusterSimParams params = base;
                    params.faults.packetLossProbability = loss;
                    params.faults.nodeCrashesPerSecond = crashes;
                    clusterPoint(ctx, params, offered, slot);
                },
                [&stats, &slot] {
                    ++stats.points;
                    stats.requests += slot.requests;
                    stats.ok += slot.ok;
                    stats.timeouts += slot.timeouts;
                    stats.retries += slot.retries;
                    stats.failed += slot.failedRequests;
                    stats.shed += slot.shed;
                    stats.crashes += slot.crashes;
                });
        }
    }
    sweep.run();

    std::printf("\n");
    const std::vector<double> erase_fails =
        smoke ? std::vector<double>{0.0, 0.01}
              : std::vector<double>{0.0, 0.002, 0.01, 0.05};
    const unsigned writes = smoke ? 20000 : 100000;
    std::vector<FlashOutcome> outcomes(erase_fails.size());
    for (std::size_t i = 0; i < erase_fails.size(); ++i) {
        const double erase_fail = erase_fails[i];
        FlashOutcome &slot = outcomes[i];
        sweep.point(
            [&, erase_fail](bench::PointContext &ctx) {
                flashPoint(ctx, erase_fail, erase_fail / 5.0,
                           writes, slot);
            },
            [&stats, &slot] {
                ++stats.flashPoints;
                stats.retired += slot.retired;
                stats.programFailures += slot.programFailures;
            });
    }
    sweep.run();

    std::printf(
        "\nReading the curves: availability and hit rate fall and "
        "p99/p999 rise monotonically with either fault rate; "
        "netRetransmits tracks loss while timeouts/restarts track "
        "crashes. In the FTL section retired blocks climb with the "
        "erase-failure rate until spareRemaining hits the headroom "
        "guard, with consistency audits green throughout.\n");
    return 0;
}
