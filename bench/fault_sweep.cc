/**
 * @file
 * Robustness extension: degradation curves under injected faults.
 *
 * Sweeps packet-loss rate x node-crash rate over the cluster
 * simulation and grown-bad-block rates over the FTL, emitting one
 * JSON line per point. Every number is produced by the deterministic
 * fault framework (src/sim/fault.hh): re-running this binary with
 * the same build reproduces the output byte for byte, and the
 * "digest" field is the fault-timeline hash a reader can diff first.
 *
 * The paper measures Mercury/Iridium clusters in steady state; this
 * harness asks what the dense-cluster argument costs in bad weather:
 * more, smaller nodes mean more frequent (if smaller) failures, so
 * client-visible availability and tail latency under faults are part
 * of the density trade.
 *
 * Usage: fault_sweep [--smoke]   (--smoke runs a tiny CI-sized sweep)
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster_sim.hh"
#include "mem/flash.hh"
#include "sim/random.hh"

namespace
{

using namespace mercury;
using namespace mercury::cluster;

ClusterSimParams
baseParams(bool smoke)
{
    ClusterSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.withL2 = false;
    params.node.storeMemLimit = 48 * miB;
    params.nodes = 8;
    params.numKeys = 2000;
    params.zipfTheta = 0.9;
    params.requests = smoke ? 300 : 1500;
    params.warmup = smoke ? 50 : 150;

    params.faults.enabled = true;
    params.faults.requestTimeout = 1 * tickMs;
    params.faults.nodeDowntime = 5 * tickMs;
    params.faults.maxRetries = 2;
    params.faults.backoffBase = 200 * tickUs;
    params.faults.backoffJitter = 0.2;
    params.faults.seed = 0xfa17;
    return params;
}

void
clusterPoint(const ClusterSimParams &params, double offered_tps)
{
    ClusterSim sim(params);
    const ClusterSimResult r = sim.run(offered_tps);
    std::printf(
        "{\"section\":\"cluster\",\"loss\":%.4f,"
        "\"crashPerSec\":%.0f,\"availability\":%.6f,"
        "\"avgUs\":%.1f,\"p99Us\":%.1f,\"p999Us\":%.1f,"
        "\"hitRate\":%.4f,\"postRestartHitRate\":%.4f,"
        "\"timeouts\":%llu,\"retries\":%llu,\"failed\":%llu,"
        "\"crashes\":%llu,\"restarts\":%llu,\"netDrops\":%llu,"
        "\"netRetransmits\":%llu,\"digest\":\"0x%016llx\"}\n",
        params.faults.packetLossProbability,
        params.faults.nodeCrashesPerSecond, r.availability,
        r.avgLatencyUs, r.p99LatencyUs, r.p999LatencyUs, r.hitRate,
        r.postRestartHitRate,
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.failedRequests),
        static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.restarts),
        static_cast<unsigned long long>(r.netDrops),
        static_cast<unsigned long long>(r.netRetransmits),
        static_cast<unsigned long long>(r.faultTimelineDigest));
}

void
flashPoint(double erase_fail, double program_fail, unsigned writes)
{
    // One small channel: 128 blocks of 32 pages, 10% spare.
    mem::Ftl ftl(4096, 32, 0.10, 4, 64);
    fault::FaultInjector injector(0xfa17);
    ftl.setFaultInjection(&injector, program_fail, erase_fail,
                          "ftl");

    Rng rng(7);
    Tick now = 0;
    for (unsigned i = 0; i < writes; ++i) {
        ftl.write(rng.nextInt(ftl.logicalPages()), now);
        now += 200 * tickUs;
    }

    std::printf(
        "{\"section\":\"flash\",\"eraseFail\":%.4f,"
        "\"programFail\":%.4f,\"retired\":%llu,"
        "\"spareRemaining\":%llu,\"capacityLoss\":%.4f,"
        "\"writeAmp\":%.3f,\"programFailures\":%llu,"
        "\"consistent\":%s,\"digest\":\"0x%016llx\"}\n",
        erase_fail, program_fail,
        static_cast<unsigned long long>(ftl.retiredBlocks()),
        static_cast<unsigned long long>(ftl.spareBlocksRemaining()),
        ftl.capacityLossFraction(), ftl.writeAmplification(),
        static_cast<unsigned long long>(ftl.programFailures()),
        ftl.checkConsistency() ? "true" : "false",
        static_cast<unsigned long long>(injector.timelineDigest()));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    bench::banner("Fault sweep: packet loss x node crashes "
                  "(cluster) and grown bad blocks (FTL)");

    const std::vector<double> losses =
        smoke ? std::vector<double>{0.0, 0.01}
              : std::vector<double>{0.0, 0.001, 0.01, 0.05};
    const std::vector<double> crash_rates =
        smoke ? std::vector<double>{0.0, 400.0}
              : std::vector<double>{0.0, 100.0, 400.0};

    // One capacity probe for the whole sweep so every point runs at
    // the same offered load.
    const ClusterSimParams base = baseParams(smoke);
    double offered = 0.0;
    {
        ClusterSim probe(base);
        offered = 0.6 * probe.aggregateCapacity();
    }

    for (const double loss : losses) {
        for (const double crashes : crash_rates) {
            ClusterSimParams params = base;
            params.faults.packetLossProbability = loss;
            params.faults.nodeCrashesPerSecond = crashes;
            clusterPoint(params, offered);
        }
    }

    std::printf("\n");
    const std::vector<double> erase_fails =
        smoke ? std::vector<double>{0.0, 0.01}
              : std::vector<double>{0.0, 0.002, 0.01, 0.05};
    const unsigned writes = smoke ? 20000 : 100000;
    for (const double erase_fail : erase_fails)
        flashPoint(erase_fail, erase_fail / 5.0, writes);

    std::printf(
        "\nReading the curves: availability and hit rate fall and "
        "p99/p999 rise monotonically with either fault rate; "
        "netRetransmits tracks loss while timeouts/restarts track "
        "crashes. In the FTL section retired blocks climb with the "
        "erase-failure rate until spareRemaining hits the headroom "
        "guard, with consistency audits green throughout.\n");
    return 0;
}
