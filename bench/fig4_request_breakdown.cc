/**
 * @file
 * Regenerates paper Figure 4: components of GET and PUT request
 * time (hash computation / memcached metadata / network stack &
 * data transfer) across request sizes 64 B - 1 MB, on an A15 @1 GHz
 * with a 2 MB L2 and 10 ns DRAM.
 *
 * The breakdown is a query over the node's stats registry: measure*()
 * resets the per-stage "window" histograms at the warmup boundary, so
 * afterwards each histogram holds exactly the sampled requests and
 * its mean is the figure's per-stage average.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "server/server_model.hh"
#include "sim/contract.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

/** Average ticks spent in one stage over the measurement window. */
Tick
windowAverage(const ServerModel &server, const char *stage)
{
    const auto *stat =
        server.stats().find(std::string("window.") + stage);
    const auto *hist =
        dynamic_cast<const stats::LatencyHistogram *>(stat);
    MERCURY_ASSERT(hist != nullptr && hist->count() > 0,
                   "missing window histogram for stage ", stage);
    return static_cast<Tick>(hist->totalSum() / hist->count());
}

RttBreakdown
windowBreakdown(const ServerModel &server)
{
    RttBreakdown b;
    b.wire = windowAverage(server, "wireTicks");
    b.netstack = windowAverage(server, "netstackTicks");
    b.hash = windowAverage(server, "hashTicks");
    b.memcached = windowAverage(server, "memcachedTicks");
    b.nicCache = windowAverage(server, "nicCacheTicks");
    return b;
}

void
sweep(mercury::bench::Session &session, bool puts)
{
    ServerModelParams params;
    params.core = cpu::cortexA15Params(1.0);
    params.withL2 = true;
    params.memory = MemoryKind::StackedDram;
    params.dramArrayLatency = 10 * tickNs;
    params.storeMemLimit = 224 * miB;
    params.name = puts ? "fig4b" : "fig4a";
    params.statsParent = session.statsParent();
    params.tracer = session.tracer();
    ServerModel server(params);

    // "Kernel" is CPU time in the network stack; "Wire" is
    // serialization + propagation. The paper's Fig. 4 "network
    // stack" bar is their sum (networkFraction()).
    std::printf("%-8s %12s %12s %12s %12s\n", "Size",
                "Memcached", "Kernel", "Wire", "Hash");
    bench::rule(62);
    for (std::uint32_t size : session.sizes()) {
        if (puts)
            server.measurePuts(size);
        else
            server.measureGets(size);
        const RttBreakdown b = windowBreakdown(server);
        std::printf("%-8s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
                    bench::sizeLabel(size).c_str(),
                    b.memcachedFraction() * 100,
                    b.netstackFraction() * 100,
                    b.wireFraction() * 100,
                    b.hashFraction() * 100);
    }
    std::printf("\n");
    session.capture();  // the model (and its stat tree) dies here
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "fig4");

    mercury::bench::banner(
        "Figure 4a: components of GET execution time "
        "(A15 @1GHz, 2MB L2, 10ns DRAM)");
    sweep(session, false);

    mercury::bench::banner(
        "Figure 4b: components of PUT execution time");
    sweep(session, true);
    return 0;
}
