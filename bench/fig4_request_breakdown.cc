/**
 * @file
 * Regenerates paper Figure 4: components of GET and PUT request
 * time (hash computation / memcached metadata / network stack &
 * data transfer) across request sizes 64 B - 1 MB, on an A15 @1 GHz
 * with a 2 MB L2 and 10 ns DRAM.
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
sweep(bool puts)
{
    ServerModelParams params;
    params.core = cpu::cortexA15Params(1.0);
    params.withL2 = true;
    params.memory = MemoryKind::StackedDram;
    params.dramArrayLatency = 10 * tickNs;
    params.storeMemLimit = 224 * miB;
    ServerModel server(params);

    std::printf("%-8s %12s %12s %12s\n", "Size",
                "Memcached", "NetStack", "Hash");
    bench::rule(48);
    for (std::uint32_t size : bench::requestSizeSweep()) {
        const Measurement m = puts ? server.measurePuts(size)
                                   : server.measureGets(size);
        std::printf("%-8s %11.1f%% %11.1f%% %11.1f%%\n",
                    bench::sizeLabel(size).c_str(),
                    m.avgBreakdown.memcachedFraction() * 100,
                    m.avgBreakdown.netstackFraction() * 100,
                    m.avgBreakdown.hashFraction() * 100);
    }
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 4a: components of GET execution time "
                  "(A15 @1GHz, 2MB L2, 10ns DRAM)");
    sweep(false);

    bench::banner("Figure 4b: components of PUT execution time");
    sweep(true);
    return 0;
}
