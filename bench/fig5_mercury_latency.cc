/**
 * @file
 * Regenerates paper Figure 5: transactions per second for a
 * Mercury-1 stack across CPU configurations (A15 / A7, with and
 * without a 2 MB L2) and DRAM latencies (10/30/50/100 ns), for GET
 * and PUT requests from 64 B to 1 MB.
 *
 * Each (panel, latency) pair is an independent sweep point run
 * through bench::ParallelSweep, so `--jobs N` shards the sixteen
 * models across workers while keeping stdout and --stats-json
 * byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "parallel_sweep.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

struct Cell
{
    double getTps = 0;
    double putTps = 0;
};

struct PanelSpec
{
    const char *tag;
    const char *title;
    cpu::CoreParams core;
    bool withL2;
};

void
printPanel(const PanelSpec &spec, const std::vector<Tick> &latencies,
           const std::vector<std::uint32_t> &sizes,
           const std::vector<std::vector<Cell>> &cells)
{
    bench::banner(spec.title);

    std::printf("%-8s", "Size");
    for (Tick latency : latencies) {
        std::printf("  %5lluns-GET %5lluns-PUT",
                    static_cast<unsigned long long>(
                        latency / tickNs),
                    static_cast<unsigned long long>(
                        latency / tickNs));
    }
    std::printf("   (TPS)\n");
    bench::rule(100);

    for (std::size_t si = 0; si < sizes.size(); ++si) {
        std::printf("%-8s", bench::sizeLabel(sizes[si]).c_str());
        for (std::size_t li = 0; li < latencies.size(); ++li) {
            const Cell &cell = cells[li][si];
            std::printf("  %9.0f %9.0f", cell.getTps, cell.putTps);
        }
        std::printf("\n");
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "fig5");

    const std::vector<Tick> latencies =
        session.smoke()
            ? std::vector<Tick>{10 * tickNs, 100 * tickNs}
            : std::vector<Tick>{10 * tickNs, 30 * tickNs,
                                50 * tickNs, 100 * tickNs};
    const std::vector<std::uint32_t> sizes = session.sizes();

    const std::vector<PanelSpec> panels = {
        {"fig5a", "Figure 5a: Mercury-1, A15 @1GHz with a 2MB L2",
         cpu::cortexA15Params(1.0), true},
        {"fig5b", "Figure 5b: Mercury-1, A15 @1GHz with no L2",
         cpu::cortexA15Params(1.0), false},
        {"fig5c", "Figure 5c: Mercury-1, A7 with a 2MB L2",
         cpu::cortexA7Params(), true},
        {"fig5d", "Figure 5d: Mercury-1, A7 with no L2",
         cpu::cortexA7Params(), false},
    };

    // cells[panel][latency][size], filled by the sweep points.
    std::vector<std::vector<std::vector<Cell>>> cells(
        panels.size(),
        std::vector<std::vector<Cell>>(
            latencies.size(), std::vector<Cell>(sizes.size())));

    bench::ParallelSweep sweep(session);
    for (std::size_t pi = 0; pi < panels.size(); ++pi) {
        for (std::size_t li = 0; li < latencies.size(); ++li) {
            // The panel's table prints once its last point is
            // published, keeping panels in figure order.
            std::function<void()> after;
            if (li + 1 == latencies.size()) {
                after = [&, pi] {
                    printPanel(panels[pi], latencies, sizes,
                               cells[pi]);
                };
            }
            sweep.point(
                [&, pi, li](bench::PointContext &ctx) {
                    const PanelSpec &spec = panels[pi];
                    ServerModelParams params;
                    params.core = spec.core;
                    params.withL2 = spec.withL2;
                    params.memory = MemoryKind::StackedDram;
                    params.dramArrayLatency = latencies[li];
                    params.storeMemLimit = 224 * miB;
                    params.name =
                        std::string(spec.tag) + "." +
                        std::to_string(latencies[li] / tickNs) +
                        "ns";
                    params.statsParent = ctx.statsParent();
                    params.tracer = ctx.tracer();
                    ServerModel model(params);

                    // One model per latency; request sizes share
                    // the model's populated working sets.
                    for (std::size_t si = 0; si < sizes.size();
                         ++si) {
                        cells[pi][li][si].getTps =
                            model.measureGets(sizes[si]).avgTps;
                        cells[pi][li][si].putTps =
                            model.measurePuts(sizes[si]).avgTps;
                    }
                    ctx.capture();  // the point's model dies here
                },
                std::move(after));
        }
    }
    sweep.run();
    return 0;
}
