/**
 * @file
 * Regenerates paper Figure 5: transactions per second for a
 * Mercury-1 stack across CPU configurations (A15 / A7, with and
 * without a 2 MB L2) and DRAM latencies (10/30/50/100 ns), for GET
 * and PUT requests from 64 B to 1 MB.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
panel(bench::Session &session, const char *tag, const char *title,
      const cpu::CoreParams &core, bool with_l2)
{
    bench::banner(title);
    const std::vector<Tick> latencies =
        session.smoke()
            ? std::vector<Tick>{10 * tickNs, 100 * tickNs}
            : std::vector<Tick>{10 * tickNs, 30 * tickNs,
                                50 * tickNs, 100 * tickNs};

    // One model per latency; request sizes share each model's
    // populated working sets.
    std::vector<std::unique_ptr<ServerModel>> models;
    for (Tick latency : latencies) {
        ServerModelParams params;
        params.core = core;
        params.withL2 = with_l2;
        params.memory = MemoryKind::StackedDram;
        params.dramArrayLatency = latency;
        params.storeMemLimit = 224 * miB;
        params.name = std::string(tag) + "." +
                      std::to_string(latency / tickNs) + "ns";
        params.statsParent = session.statsParent();
        params.tracer = session.tracer();
        models.push_back(std::make_unique<ServerModel>(params));
    }

    std::printf("%-8s", "Size");
    for (Tick latency : latencies) {
        std::printf("  %5lluns-GET %5lluns-PUT",
                    static_cast<unsigned long long>(
                        latency / tickNs),
                    static_cast<unsigned long long>(
                        latency / tickNs));
    }
    std::printf("   (TPS)\n");
    bench::rule(100);

    for (std::uint32_t size : session.sizes()) {
        std::printf("%-8s", bench::sizeLabel(size).c_str());
        for (auto &model : models) {
            const double get_tps = model->measureGets(size).avgTps;
            const double put_tps = model->measurePuts(size).avgTps;
            std::printf("  %9.0f %9.0f", get_tps, put_tps);
        }
        std::printf("\n");
    }
    session.capture();  // the panel's models die here
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "fig5");
    panel(session, "fig5a",
          "Figure 5a: Mercury-1, A15 @1GHz with a 2MB L2",
          cpu::cortexA15Params(1.0), true);
    panel(session, "fig5b",
          "Figure 5b: Mercury-1, A15 @1GHz with no L2",
          cpu::cortexA15Params(1.0), false);
    panel(session, "fig5c", "Figure 5c: Mercury-1, A7 with a 2MB L2",
          cpu::cortexA7Params(), true);
    panel(session, "fig5d", "Figure 5d: Mercury-1, A7 with no L2",
          cpu::cortexA7Params(), false);
    return 0;
}
