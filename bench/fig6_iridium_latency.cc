/**
 * @file
 * Regenerates paper Figure 6: transactions per second for an
 * Iridium-1 stack across CPU configurations and flash read
 * latencies (10/20 us; writes fixed at 200 us), for GET and PUT
 * requests from 64 B to 1 MB.
 *
 * Each (panel, latency) pair is an independent ParallelSweep point;
 * `--jobs N` output stays byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "parallel_sweep.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

struct Cell
{
    double getTps = 0;
    double putTps = 0;
};

struct PanelSpec
{
    const char *tag;
    const char *title;
    cpu::CoreParams core;
    bool withL2;
};

void
printPanel(const PanelSpec &spec,
           const std::vector<std::uint32_t> &sizes,
           const std::vector<std::vector<Cell>> &cells)
{
    bench::banner(spec.title);

    std::printf("%-8s  %9s %9s  %9s %9s   (TPS)\n", "Size",
                "10us-GET", "10us-PUT", "20us-GET", "20us-PUT");
    bench::rule(60);

    for (std::size_t si = 0; si < sizes.size(); ++si) {
        std::printf("%-8s", bench::sizeLabel(sizes[si]).c_str());
        for (std::size_t li = 0; li < cells.size(); ++li) {
            const Cell &cell = cells[li][si];
            std::printf("  %9.0f %9.0f", cell.getTps, cell.putTps);
        }
        std::printf("\n");
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "fig6");

    const std::vector<Tick> latencies{10 * tickUs, 20 * tickUs};
    const std::vector<std::uint32_t> sizes = session.sizes();

    const std::vector<PanelSpec> panels = {
        {"fig6a", "Figure 6a: Iridium-1, A15 @1GHz with a 2MB L2",
         cpu::cortexA15Params(1.0), true},
        {"fig6b", "Figure 6b: Iridium-1, A15 @1GHz with no L2",
         cpu::cortexA15Params(1.0), false},
        {"fig6c", "Figure 6c: Iridium-1, A7 with a 2MB L2",
         cpu::cortexA7Params(), true},
        {"fig6d", "Figure 6d: Iridium-1, A7 with no L2",
         cpu::cortexA7Params(), false},
    };

    // cells[panel][latency][size], filled by the sweep points.
    std::vector<std::vector<std::vector<Cell>>> cells(
        panels.size(),
        std::vector<std::vector<Cell>>(
            latencies.size(), std::vector<Cell>(sizes.size())));

    bench::ParallelSweep sweep(session);
    for (std::size_t pi = 0; pi < panels.size(); ++pi) {
        for (std::size_t li = 0; li < latencies.size(); ++li) {
            std::function<void()> after;
            if (li + 1 == latencies.size()) {
                after = [&, pi] {
                    printPanel(panels[pi], sizes, cells[pi]);
                };
            }
            sweep.point(
                [&, pi, li](bench::PointContext &ctx) {
                    const PanelSpec &spec = panels[pi];
                    ServerModelParams params;
                    params.core = spec.core;
                    params.withL2 = spec.withL2;
                    params.memory = MemoryKind::Flash;
                    params.flashReadLatency = latencies[li];
                    params.storeMemLimit = 224 * miB;
                    params.name =
                        std::string(spec.tag) + "." +
                        std::to_string(latencies[li] / tickUs) +
                        "us";
                    params.statsParent = ctx.statsParent();
                    params.tracer = ctx.tracer();
                    ServerModel model(params);

                    for (std::size_t si = 0; si < sizes.size();
                         ++si) {
                        cells[pi][li][si].getTps =
                            model.measureGets(sizes[si]).avgTps;
                        cells[pi][li][si].putTps =
                            model.measurePuts(sizes[si]).avgTps;
                    }
                    ctx.capture();  // the point's model dies here
                },
                std::move(after));
        }
    }
    sweep.run();
    return 0;
}
