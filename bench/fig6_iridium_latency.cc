/**
 * @file
 * Regenerates paper Figure 6: transactions per second for an
 * Iridium-1 stack across CPU configurations and flash read
 * latencies (10/20 us; writes fixed at 200 us), for GET and PUT
 * requests from 64 B to 1 MB.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
panel(bench::Session &session, const char *tag, const char *title,
      const cpu::CoreParams &core, bool with_l2)
{
    bench::banner(title);
    const std::vector<Tick> latencies{10 * tickUs, 20 * tickUs};

    std::vector<std::unique_ptr<ServerModel>> models;
    for (Tick latency : latencies) {
        ServerModelParams params;
        params.core = core;
        params.withL2 = with_l2;
        params.memory = MemoryKind::Flash;
        params.flashReadLatency = latency;
        params.storeMemLimit = 224 * miB;
        params.name = std::string(tag) + "." +
                      std::to_string(latency / tickUs) + "us";
        params.statsParent = session.statsParent();
        params.tracer = session.tracer();
        models.push_back(std::make_unique<ServerModel>(params));
    }

    std::printf("%-8s  %9s %9s  %9s %9s   (TPS)\n", "Size",
                "10us-GET", "10us-PUT", "20us-GET", "20us-PUT");
    bench::rule(60);

    for (std::uint32_t size : session.sizes()) {
        std::printf("%-8s", bench::sizeLabel(size).c_str());
        for (auto &model : models) {
            const double get_tps = model->measureGets(size).avgTps;
            const double put_tps = model->measurePuts(size).avgTps;
            std::printf("  %9.0f %9.0f", get_tps, put_tps);
        }
        std::printf("\n");
    }
    session.capture();  // the panel's models die here
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "fig6");
    panel(session, "fig6a",
          "Figure 6a: Iridium-1, A15 @1GHz with a 2MB L2",
          cpu::cortexA15Params(1.0), true);
    panel(session, "fig6b",
          "Figure 6b: Iridium-1, A15 @1GHz with no L2",
          cpu::cortexA15Params(1.0), false);
    panel(session, "fig6c", "Figure 6c: Iridium-1, A7 with a 2MB L2",
          cpu::cortexA7Params(), true);
    panel(session, "fig6d", "Figure 6d: Iridium-1, A7 with no L2",
          cpu::cortexA7Params(), false);
    return 0;
}
