/**
 * @file
 * Regenerates paper Figure 7: density vs throughput for Mercury-n
 * and Iridium-n stacks servicing 64 B GET requests, across
 * A15 @1.5GHz / A15 @1GHz / A7 cores and n = 1..32 cores per stack.
 *
 * Each (panel, core) pair is an independent ParallelSweep point;
 * `--jobs N` output stays byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>

#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"
#include "datapath_flags.hh"
#include "parallel_sweep.hh"

namespace
{

using namespace mercury;
using namespace mercury::config;
using namespace mercury::physical;

struct CoreChoice
{
    const char *label;
    cpu::CoreParams core;
};

struct PanelSpec
{
    const char *title;
    StackMemory memory;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "fig7_density_throughput",
                           bench::datapathFlagSpecs());
    const bench::DatapathFlags dp =
        bench::parseDatapathFlags(argc, argv);
    // Default flags leave the output byte-identical to a bench that
    // never had them; a re-run with --datapath/--nic-cache-mb says
    // so up front.
    if (dp.nonDefault())
        std::printf("%s", dp.banner().c_str());

    const CoreChoice choices[] = {
        {"A15 @1.5GHz", cpu::cortexA15Params(1.5)},
        {"A15 @1GHz", cpu::cortexA15Params(1.0)},
        {"A7", cpu::cortexA7Params()},
    };
    const PanelSpec panels[] = {
        {"Figure 7a: Mercury density vs TPS (64 B GETs)",
         StackMemory::Dram3D},
        {"Figure 7b: Iridium density vs TPS (64 B GETs)",
         StackMemory::Flash3D},
    };

    bench::ParallelSweep sweep(session);
    for (std::size_t pi = 0; pi < std::size(panels); ++pi) {
        for (std::size_t ci = 0; ci < std::size(choices); ++ci) {
            sweep.point([&, pi, ci](bench::PointContext &ctx) {
                const PanelSpec &panel = panels[pi];
                if (ci == 0) {
                    ctx.printf("\n=== %s ===\n\n", panel.title);
                    ctx.printf("%-12s %-12s %14s %14s\n", "Core",
                               "Config", "Density (GB)",
                               "TPS@64B (M)");
                    ctx.printf("%s\n",
                               bench::ruleString(56).c_str());
                }
                DesignExplorer explorer;
                const char *family =
                    panel.memory == StackMemory::Dram3D ? "Mercury"
                                                        : "Iridium";
                StackConfig stack;
                stack.core = choices[ci].core;
                stack.memory = panel.memory;
                stack.withL2 = panel.memory == StackMemory::Flash3D;
                stack.nicCacheMB = dp.nicCacheMB;
                OracleOptions oracle;
                oracle.datapath = dp.datapath;
                const PerCorePerf perf = measurePerCorePerf(stack,
                                                            oracle);
                for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
                    stack.coresPerStack = n;
                    const ServerDesign d = explorer.solve(stack,
                                                          perf);
                    ctx.printf("%-12s %s-%-8u %14.0f %14.2f\n",
                               choices[ci].label, family, n,
                               d.densityGB, d.tps64 / 1e6);
                }
            });
        }
    }
    sweep.run();
    return 0;
}
