/**
 * @file
 * Regenerates paper Figure 7: density vs throughput for Mercury-n
 * and Iridium-n stacks servicing 64 B GET requests, across
 * A15 @1.5GHz / A15 @1GHz / A7 cores and n = 1..32 cores per stack.
 */

#include <cstdio>

#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"

namespace
{

using namespace mercury;
using namespace mercury::config;
using namespace mercury::physical;

void
panel(const char *title, StackMemory memory)
{
    bench::banner(title);
    DesignExplorer explorer;

    const struct
    {
        const char *label;
        cpu::CoreParams core;
    } choices[] = {
        {"A15 @1.5GHz", cpu::cortexA15Params(1.5)},
        {"A15 @1GHz", cpu::cortexA15Params(1.0)},
        {"A7", cpu::cortexA7Params()},
    };

    std::printf("%-12s %-12s %14s %14s\n", "Core", "Config",
                "Density (GB)", "TPS@64B (M)");
    bench::rule(56);
    const char *family =
        memory == StackMemory::Dram3D ? "Mercury" : "Iridium";
    for (const auto &choice : choices) {
        StackConfig stack;
        stack.core = choice.core;
        stack.memory = memory;
        stack.withL2 = memory == StackMemory::Flash3D;
        const PerCorePerf perf = measurePerCorePerf(stack);
        for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
            stack.coresPerStack = n;
            const ServerDesign d = explorer.solve(stack, perf);
            std::printf("%-12s %s-%-8u %14.0f %14.2f\n",
                        choice.label, family, n, d.densityGB,
                        d.tps64 / 1e6);
        }
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "fig7_density_throughput");
    panel("Figure 7a: Mercury density vs TPS (64 B GETs)",
          StackMemory::Dram3D);
    panel("Figure 7b: Iridium density vs TPS (64 B GETs)",
          StackMemory::Flash3D);
    return 0;
}
