/**
 * @file
 * Regenerates paper Figure 8: power vs throughput for Mercury-n and
 * Iridium-n stacks servicing 64 B GET requests.
 */

#include <cstdio>

#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"

namespace
{

using namespace mercury;
using namespace mercury::config;
using namespace mercury::physical;

void
panel(const char *title, StackMemory memory)
{
    bench::banner(title);
    DesignExplorer explorer;

    const struct
    {
        const char *label;
        cpu::CoreParams core;
    } choices[] = {
        {"A15 @1.5GHz", cpu::cortexA15Params(1.5)},
        {"A15 @1GHz", cpu::cortexA15Params(1.0)},
        {"A7", cpu::cortexA7Params()},
    };

    std::printf("%-12s %-12s %12s %14s %12s\n", "Core", "Config",
                "Power (W)", "TPS@64B (M)", "KTPS/W");
    bench::rule(68);
    const char *family =
        memory == StackMemory::Dram3D ? "Mercury" : "Iridium";
    for (const auto &choice : choices) {
        StackConfig stack;
        stack.core = choice.core;
        stack.memory = memory;
        stack.withL2 = memory == StackMemory::Flash3D;
        const PerCorePerf perf = measurePerCorePerf(stack);
        for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
            stack.coresPerStack = n;
            const ServerDesign d = explorer.solve(stack, perf);
            std::printf("%-12s %s-%-8u %12.0f %14.2f %12.2f\n",
                        choice.label, family, n, d.powerAt64BW,
                        d.tps64 / 1e6, d.tpsPerWatt() / 1e3);
        }
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "fig8_power_throughput");
    panel("Figure 8a: Mercury power vs TPS (64 B GETs)",
          StackMemory::Dram3D);
    panel("Figure 8b: Iridium power vs TPS (64 B GETs)",
          StackMemory::Flash3D);
    return 0;
}
