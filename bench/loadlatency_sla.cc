/**
 * @file
 * Extension: latency vs offered load. The paper argues Mercury and
 * Iridium meet SLA "for the bulk of requests" from unloaded RTTs;
 * this bench produces the full latency-vs-utilization curve per
 * design, showing how much of the nominal throughput is usable
 * under a 1 ms (and 500 us) tail target.
 */

#include <cstdio>
#include <optional>

#include "bench_util.hh"
#include "server/load_sim.hh"
#include "sim/sampler.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
curve(bench::Session &session, const char *title, const char *slug,
      MemoryKind memory, std::uint32_t size,
      double get_fraction = 0.95)
{
    bench::banner(title);

    LoadSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.memory = memory;
    params.node.withL2 = memory == MemoryKind::Flash;
    params.valueBytes = size;
    params.getFraction = get_fraction;
    LoadSimulation sim(params);

    std::printf("capacity (closed loop): %.0f TPS\n\n",
                sim.capacity());
    std::printf("%-6s %10s %9s %9s %9s %9s %7s\n", "load",
                "offered", "avg us", "p50 us", "p95 us", "p99 us",
                "<1ms");
    bench::rule(66);
    for (const double u : {0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
        // Fresh per-point sampler under --timeseries-out: each load
        // point is its own labelled series.
        std::optional<stats::Sampler> sampler;
        if (session.wantTimeseries()) {
            char label[64];
            std::snprintf(label, sizeof(label), "%s,load=%.2f",
                          slug, u);
            sampler.emplace(session.sampleInterval(), label);
            sim.setSampler(&*sampler);
        }
        const LoadPoint p = sim.run(u * sim.capacity());
        if (sampler) {
            session.appendTimeseries(sampler->jsonl());
            sim.setSampler(nullptr);
        }
        std::printf("%5.0f%% %10.0f %9.1f %9.1f %9.1f %9.1f %6.0f%%\n",
                    100 * p.offeredTps / sim.capacity(),
                    p.offeredTps, p.avgLatencyUs, p.p50Us, p.p95Us,
                    p.p99Us, p.subMsFraction * 100);
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "loadlatency_sla");
    curve(session,
          "Mercury A7, 64 B, 95% GETs under open-loop Poisson load",
          "mercury-64", MemoryKind::StackedDram, 64);
    curve(session,
          "Iridium A7, 64 B, 95% GETs under open-loop Poisson load",
          "iridium-64", MemoryKind::Flash, 64);
    curve(session, "Iridium A7, 4 KB read-only (photo-tier objects)",
          "iridium-4k-ro", MemoryKind::Flash, 4096, 1.0);
    curve(session,
          "Iridium A7, 4 KB with 5% PUTs (flash write "
          "interference)",
          "iridium-4k-put", MemoryKind::Flash, 4096, 0.95);

    std::printf("Mercury holds sub-millisecond tails to ~90%% "
                "utilization; Iridium's flash tail crosses 1 ms "
                "earlier, which is why the paper pairs it with "
                "moderate-rate workloads. Note the write-"
                "interference curve: a 5%% PUT mix poisons flash "
                "GET tails through program/writeback traffic long "
                "before the nominal capacity -- an effect invisible "
                "to closed-loop RTT measurements.\n");
    return 0;
}
