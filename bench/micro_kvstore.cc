/**
 * @file
 * google-benchmark microbenchmarks for the key-value store
 * substrate: hashing, slab allocation, table probes, store
 * operations and protocol parsing.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include <string>
#include <vector>

#include "kvstore/hash.hh"
#include "kvstore/protocol.hh"
#include "kvstore/store.hh"
#include "sim/random.hh"

namespace
{

using namespace mercury;
using namespace mercury::kvstore;

void
BM_HashKey(benchmark::State &state)
{
    const std::string key(static_cast<std::size_t>(state.range(0)),
                          'k');
    for (auto _ : state)
        benchmark::DoNotOptimize(hashKey(key));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_HashKey)->Arg(8)->Arg(32)->Arg(128);

void
BM_SlabAllocateFree(benchmark::State &state)
{
    SlabParams params;
    params.memLimit = 64 * miB;
    SlabAllocator slabs(params);
    const auto cls = static_cast<unsigned>(
        slabs.classFor(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
        void *chunk = slabs.allocate(cls);
        benchmark::DoNotOptimize(chunk);
        slabs.free(cls, chunk);
    }
}
BENCHMARK(BM_SlabAllocateFree)->Arg(128)->Arg(4096)->Arg(65536);

StoreParams
benchStoreParams(EvictionPolicyKind eviction, LockingMode locking)
{
    StoreParams p;
    p.memLimit = 256 * miB;
    p.eviction = eviction;
    p.locking = locking;
    return p;
}

void
BM_StoreGetHit(benchmark::State &state)
{
    Store store(benchStoreParams(EvictionPolicyKind::StrictLru,
                                 LockingMode::Global));
    const std::string value(static_cast<std::size_t>(state.range(0)),
                            'v');
    for (int i = 0; i < 10000; ++i)
        store.set("key" + std::to_string(i), value);

    Rng rng(1);
    for (auto _ : state) {
        const std::string key =
            "key" + std::to_string(rng.nextInt(10000));
        benchmark::DoNotOptimize(store.get(key));
    }
}
BENCHMARK(BM_StoreGetHit)->Arg(64)->Arg(1024)->Arg(65536);

void
BM_StoreGetBagsVsStrict(benchmark::State &state)
{
    const bool bags = state.range(0) == 1;
    Store store(benchStoreParams(bags ? EvictionPolicyKind::Bags
                                      : EvictionPolicyKind::StrictLru,
                                 bags ? LockingMode::Striped
                                      : LockingMode::Global));
    for (int i = 0; i < 10000; ++i)
        store.set("key" + std::to_string(i), "value");
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            store.get("key" + std::to_string(rng.nextInt(10000))));
    }
}
BENCHMARK(BM_StoreGetBagsVsStrict)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("bags");

void
BM_StoreSet(benchmark::State &state)
{
    Store store(benchStoreParams(EvictionPolicyKind::StrictLru,
                                 LockingMode::Global));
    const std::string value(1024, 'v');
    Rng rng(3);
    for (auto _ : state) {
        const std::string key =
            "key" + std::to_string(rng.nextInt(20000));
        benchmark::DoNotOptimize(store.set(key, value));
    }
}
BENCHMARK(BM_StoreSet);

void
BM_StoreSetWithEviction(benchmark::State &state)
{
    StoreParams params = benchStoreParams(
        EvictionPolicyKind::StrictLru, LockingMode::Global);
    params.memLimit = 8 * miB;
    Store store(params);
    const std::string value(4096, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            store.set("key" + std::to_string(i++), value));
    }
}
BENCHMARK(BM_StoreSetWithEviction);

void
BM_ProtocolRoundTrip(benchmark::State &state)
{
    Store store(benchStoreParams(EvictionPolicyKind::StrictLru,
                                 LockingMode::Global));
    ServerSession session(store);
    session.consume("set bench 0 0 5\r\nhello\r\n");
    for (auto _ : state)
        benchmark::DoNotOptimize(session.consume("get bench\r\n"));
}
BENCHMARK(BM_ProtocolRoundTrip);

} // anonymous namespace

// Same shape as BENCHMARK_MAIN(), with the shared bench flags
// (--stats-json/--trace-out/--smoke) consumed first so
// google-benchmark never sees them.
int
main(int argc, char **argv)
{
    mercury::bench::Session obs(argc, argv, "micro_kvstore");
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}
