/**
 * @file
 * google-benchmark microbenchmarks for the simulation substrate:
 * event queue throughput, cache probes, DRAM/flash timing walks and
 * the end-to-end single-request path.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

#include <memory>

#include "cpu/core.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/flash.hh"
#include "server/server_model.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace mercury;

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    EventQueue queue;
    EventFunctionWrapper event([] {}, "bench");
    for (auto _ : state) {
        queue.schedule(&event, queue.curTick() + 10);
        queue.serviceOne();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleService);

/** Burst: schedule a window of events at mixed device latencies,
 * then drain it -- the pattern a busy stack model produces. */
void
BM_EventQueueBurst(benchmark::State &state)
{
    EventQueue queue;
    constexpr unsigned window = 64;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (unsigned i = 0; i < window; ++i)
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [] {}, "burst"));
    constexpr Tick latencies[4] = {10, 20, 50, 100};
    for (auto _ : state) {
        for (unsigned i = 0; i < window; ++i)
            queue.schedule(events[i].get(),
                           queue.curTick() + latencies[i % 4]);
        queue.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * window);
}
BENCHMARK(BM_EventQueueBurst);

/** Arena-managed one-shot events: makeEvent + schedule + drain,
 * with the queue recycling slots after service. */
void
BM_EventQueueArenaOneShot(benchmark::State &state)
{
    EventQueue queue;
    constexpr unsigned window = 64;
    constexpr Tick latencies[4] = {10, 20, 50, 100};
    struct NoopEvent : Event
    {
        void process() override {}
    };
    for (auto _ : state) {
        for (unsigned i = 0; i < window; ++i)
            queue.schedule(queue.makeEvent<NoopEvent>(),
                           queue.curTick() + latencies[i % 4]);
        queue.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * window);
}
BENCHMARK(BM_EventQueueArenaOneShot);

/** Timeout-style reschedule: a queued deadline pushed further out
 * repeatedly, then finally serviced. */
void
BM_EventQueueReschedule(benchmark::State &state)
{
    EventQueue queue;
    EventFunctionWrapper deadline([] {}, "deadline");
    EventFunctionWrapper tick([] {}, "tick");
    for (auto _ : state) {
        queue.schedule(&tick, queue.curTick() + 10);
        queue.reschedule(&deadline, queue.curTick() + 1000);
        queue.reschedule(&deadline, queue.curTick() + 2000);
        queue.serviceOne();  // tick
        queue.deschedule(&deadline);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueReschedule);

void
BM_CacheHit(benchmark::State &state)
{
    mem::DramModel dram(mem::stackedDramParams());
    mem::HierarchyParams hp;
    hp.hasL2 = true;
    mem::CacheHierarchy caches(hp, &dram);
    caches.access(mem::CpuAccessKind::Load, 0x1000, 0);
    Tick now = tickUs;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            caches.access(mem::CpuAccessKind::Load, 0x1000, now));
        now += 10;
    }
}
BENCHMARK(BM_CacheHit);

void
BM_DramAccess(benchmark::State &state)
{
    mem::DramModel dram(mem::stackedDramParams());
    Tick now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        now = dram.access(mem::AccessType::Read, addr, 64, now);
        addr += 4096;
    }
}
BENCHMARK(BM_DramAccess);

void
BM_FlashRead(benchmark::State &state)
{
    mem::FlashParams params;
    params.capacity = 256 * miB;
    params.numChannels = 4;
    mem::FlashController flash(params);
    // Map some pages first.
    Tick now = 0;
    for (Addr addr = 0; addr < 1 * miB; addr += 4096)
        now = flash.access(mem::AccessType::Write, addr, 64, now);
    now = flash.drainWrites(now);

    Addr addr = 0;
    for (auto _ : state) {
        now = flash.access(mem::AccessType::Read, addr, 64, now);
        addr = (addr + 4096) % (1 * miB);
    }
}
BENCHMARK(BM_FlashRead);

void
BM_CoreTraceExecution(benchmark::State &state)
{
    mem::DramModel dram(mem::stackedDramParams());
    mem::CacheHierarchy caches(
        cpu::defaultHierarchy(cpu::CoreType::CortexA7, false), &dram);
    cpu::CoreModel core(cpu::cortexA7Params(), &caches);

    cpu::OpTrace trace;
    cpu::TraceBuilder(trace).codePass(0, 12 * kiB, 9000);

    Tick now = 0;
    for (auto _ : state) {
        const cpu::RunResult r = core.run(trace, now);
        now = r.end;
        benchmark::DoNotOptimize(r.end);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CoreTraceExecution);

void
BM_EndToEndGet(benchmark::State &state)
{
    server::ServerModelParams params;
    params.core = cpu::cortexA7Params();
    params.withL2 = true;
    params.storeMemLimit = 64 * miB;
    server::ServerModel server(params);
    server.populate(1000, 64);

    std::uint64_t i = 0;
    for (auto _ : state) {
        const auto timing =
            server.get("v64:" + std::to_string(i++ % 1000));
        benchmark::DoNotOptimize(timing.rtt);
    }
}
BENCHMARK(BM_EndToEndGet);

} // anonymous namespace

// Same shape as BENCHMARK_MAIN(), with the shared bench flags
// (--stats-json/--trace-out/--smoke) consumed first so
// google-benchmark never sees them.
int
main(int argc, char **argv)
{
    mercury::bench::Session obs(argc, argv, "micro_sim");
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}
