/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * A design-space sweep is a list of independent *points* (one server
 * config, one fault rate, one cluster layout, ...). ParallelSweep
 * executes the points across `--jobs N` worker threads and then
 * emits every point's outputs -- stdout text, stats-JSON fragment,
 * ordered merge callback -- strictly in submission order on the
 * calling thread. Because each point owns all of its simulation
 * state (its own models, EventQueue, FaultInjector stream, and stats
 * Registry) and the merge order is the submission order rather than
 * the completion order, `--jobs 8` output is byte-identical to
 * `--jobs 1`; the tests/determinism suite locks that down per bench.
 *
 * Usage:
 *
 *   bench::ParallelSweep sweep(session);
 *   for (const auto &cfg : configs)
 *       sweep.point([&, cfg](bench::PointContext &ctx) {
 *           Model model(paramsFor(cfg, ctx.statsParent()));
 *           results[cfg.index] = model.measure();
 *           ctx.printf("%s done\n", cfg.name);  // ordered text
 *           ctx.capture();   // fold stats while the model is alive
 *       });
 *   sweep.run();
 *
 * Points must not touch stdout/stderr, the session registry, or any
 * state shared with another point from inside the work function;
 * ctx.printf and per-slot result vectors are the supported channels.
 * The optional `after` callback runs on the calling thread during
 * the ordered emission phase and may use std::printf freely.
 */

#ifndef MERCURY_BENCH_PARALLEL_SWEEP_HH
#define MERCURY_BENCH_PARALLEL_SWEEP_HH

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"

#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/thread_annotations.hh"
#include "sim/thread_pool.hh"
#include "sim/trace.hh"

namespace mercury::bench
{

/**
 * One sweep point's private output channels. Handed to the point's
 * work function; everything accumulated here is published in
 * submission order after the point finishes.
 */
class PointContext
{
  public:
    /**
     * Parent for this point's statistics tree: a per-point Registry
     * named like the session's, so stat paths come out identical to
     * a model registered directly on the session. Created on first
     * use.
     */
    stats::StatGroup *
    statsParent()
    {
        if (!registry_)
            registry_.emplace(registryName_);
        return &*registry_;
    }

    /**
     * The session tracer in serial mode, nullptr under --jobs > 1.
     * (Session already clamps jobs to 1 when --trace-out is active,
     * so traced runs never lose spans.)
     */
    trace::Tracer *tracer() const { return tracer_; }

    bool smoke() const { return smoke_; }

    /** The session's --shards (ClusterSimParams::shards): PDES
     * shards for any cluster simulation this point runs. */
    unsigned shards() const { return shards_; }

    /** True when the session wants --timeseries-out; points attach
     * per-point samplers only then. */
    bool wantTimeseries() const { return wantTimeseries_; }

    /** The session's --sample-interval, as simulated ticks. */
    Tick sampleInterval() const { return sampleInterval_; }

    /**
     * Publish a finished sampler's JSONL as this point's time-series
     * segment. Segments from all points are appended to the session
     * in submission order, so the --timeseries-out bytes are
     * identical across --jobs values.
     */
    void
    timeseries(const std::string &jsonl) EXCLUDES(mutex_)
    {
        sim::ScopedLock lock(mutex_);
        timeseries_ += jsonl;
    }

    /** Append printf-formatted text to the point's ordered stdout
     * segment. */
    void
    printf(const char *fmt, ...) EXCLUDES(mutex_)
    {
        char stack[512];
        std::va_list args;
        va_start(args, fmt);
        const int needed =
            std::vsnprintf(stack, sizeof(stack), fmt, args);
        va_end(args);
        if (needed < 0)
            return;
        if (static_cast<std::size_t>(needed) < sizeof(stack)) {
            sim::ScopedLock lock(mutex_);
            text_.append(stack, static_cast<std::size_t>(needed));
            return;
        }
        std::vector<char> heap(static_cast<std::size_t>(needed) + 1);
        va_start(args, fmt);
        std::vsnprintf(heap.data(), heap.size(), fmt, args);
        va_end(args);
        sim::ScopedLock lock(mutex_);
        text_.append(heap.data(), static_cast<std::size_t>(needed));
    }

    /**
     * Fold the point registry's *current* contents into the point's
     * stats fragment -- call while transient models are still alive,
     * mirroring Session::capture(). No-op unless the session asked
     * for --stats-json.
     */
    void
    capture() EXCLUDES(mutex_)
    {
        sim::ScopedLock lock(mutex_);
        captureLocked();
    }

  private:
    friend class ParallelSweep;

    PointContext(std::string registry_name, bool want_stats,
                 bool smoke, trace::Tracer *tracer,
                 bool want_timeseries, Tick sample_interval,
                 unsigned shards)
        : registryName_(std::move(registry_name)),
          wantStats_(want_stats), smoke_(smoke), tracer_(tracer),
          wantTimeseries_(want_timeseries),
          sampleInterval_(sample_interval), shards_(shards)
    {}

    void
    captureLocked() REQUIRES(mutex_)
    {
        if (!wantStats_ || !registry_)
            return;
        registry_->formatJson(fragment_, "", fragmentFirst_);
        captured_ = true;
    }

    /**
     * Emit the point's accumulated outputs on the calling thread --
     * the submission-order merge step that makes --jobs N
     * byte-identical to serial. ParallelSweep calls this after
     * pool.wait(), so the worker that filled the buffers is done.
     */
    void
    publish(Session &session) EXCLUDES(mutex_)
    {
        sim::ScopedLock lock(mutex_);
        if (!text_.empty())
            std::fwrite(text_.data(), 1, text_.size(), stdout);
        if (!captured_ && registry_)
            captureLocked();  // stats objects that outlived work()
        session.appendStatsFragment(fragment_);
        session.appendTimeseries(timeseries_);
    }

    std::string registryName_;
    bool wantStats_;
    bool smoke_;
    trace::Tracer *tracer_;
    bool wantTimeseries_ = false;
    Tick sampleInterval_ = 0;
    unsigned shards_ = 1;
    /** Worker-confined until pool.wait(), then emitter-confined; the
     * handoff happens-before via the pool's idle barrier, which the
     * analysis cannot express -- hence deliberately unguarded. */
    std::optional<stats::Registry> registry_;
    /** The per-point merge state: filled by the owning worker,
     * drained by publish() on the calling thread. GUARDED_BY makes
     * any future cross-point sharing a compile error under Clang. */
    mutable sim::Mutex mutex_;
    std::string text_ GUARDED_BY(mutex_);
    std::string fragment_ GUARDED_BY(mutex_);
    std::string timeseries_ GUARDED_BY(mutex_);
    bool fragmentFirst_ GUARDED_BY(mutex_) = true;
    bool captured_ GUARDED_BY(mutex_) = false;
};

class ParallelSweep
{
  public:
    explicit ParallelSweep(Session &session)
        : session_(session)
    {}

    /**
     * Enqueue a sweep point. @p work runs on a worker thread (or
     * inline under --jobs 1); the optional @p after runs on the
     * calling thread during the ordered emission phase, right after
     * the point's text and stats are published.
     */
    void
    point(std::function<void(PointContext &)> work,
          std::function<void()> after = {})
    {
        points_.push_back(Point{std::move(work), std::move(after),
                                nullptr});
    }

    /** Execute all queued points under session.jobs() workers, then
     * publish every point's outputs in submission order. Reusable:
     * the point list is cleared afterwards. */
    void
    run()
    {
        const unsigned jobs = std::min<unsigned>(
            std::max(1u, session_.jobs()),
            static_cast<unsigned>(
                std::max<std::size_t>(1, points_.size())));

        for (Point &p : points_) {
            p.context.reset(new PointContext(
                session_.registry().name(), session_.wantStats(),
                session_.smoke(),
                jobs == 1 ? session_.tracer() : nullptr,
                session_.wantTimeseries(),
                session_.sampleInterval(), session_.shards()));
        }

        if (jobs == 1) {
            // Same code path as the parallel branch, minus threads:
            // per-point registries and ordered emission keep the
            // bytes identical by construction.
            for (Point &p : points_)
                execute(p);
        } else {
            sim::ThreadPool pool(jobs);
            std::atomic<std::size_t> next{0};
            for (unsigned w = 0; w < jobs; ++w) {
                pool.submit([this, &next] {
                    for (;;) {
                        const std::size_t i =
                            next.fetch_add(1,
                                           std::memory_order_relaxed);
                        if (i >= points_.size())
                            return;
                        execute(points_[i]);
                    }
                });
            }
            pool.wait();
        }

        for (Point &p : points_) {
            p.context->publish(session_);
            if (p.after)
                p.after();
        }
        points_.clear();
    }

  private:
    struct Point
    {
        std::function<void(PointContext &)> work;
        std::function<void()> after;
        std::unique_ptr<PointContext> context;
    };

    static void
    execute(Point &point)
    {
        point.work(*point.context);
    }

    Session &session_;
    std::vector<Point> points_;
};

} // namespace mercury::bench

#endif // MERCURY_BENCH_PARALLEL_SWEEP_HH
