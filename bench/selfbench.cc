/**
 * @file
 * Host-performance self-benchmark: how fast does the simulator
 * itself run on this machine?
 *
 * Three sections, each timed with std::chrono::steady_clock and
 * reported both as a human-readable table and as a JSON file
 * (default BENCH_selfbench.json, override with --out=PATH):
 *
 *  - event queue: schedule/service throughput of the intrusive
 *    two-level EventQueue against the std::set ModelEventQueue
 *    reference (the pre-optimization implementation), plus the
 *    arena-managed one-shot churn rate;
 *  - kv store: end-to-end GET/SET ops/sec through the single-node
 *    server timing model;
 *  - sweep: wall-clock for a fig5-style batch of independent server
 *    measurements run serially and through sim::ThreadPool, i.e.
 *    what `--jobs N` buys on this host. (On a single-hardware-thread
 *    container the parallel time roughly equals the serial time;
 *    the JSON records the measured ratio honestly either way.)
 *
 * Numbers are host-dependent by design -- nothing here is golden.
 * CI only checks that the binary runs and emits well-formed JSON
 * (scripts/check.sh perf-smoke stage); scripts/bench.sh runs the
 * full version.
 *
 * Usage: selfbench [--smoke] [--jobs=N] [--out=PATH]
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "server/server_model.hh"
#include "sim/event_queue.hh"
#include "sim/model_event_queue.hh"
#include "sim/thread_pool.hh"

namespace
{

using namespace mercury;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

std::uint64_t
lcgNext(std::uint64_t &lcg)
{
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
}

/**
 * "Clocked" deltas: one of four fixed device latencies, the way
 * cache/DRAM/flash/NIC models schedule completions. Few distinct
 * (tick, priority) keys are live at once, so bins stay short.
 */
std::uint64_t
clockedDelta(std::uint64_t &lcg)
{
    static constexpr std::uint64_t latencies[4] = {10, 20, 50, 100};
    return latencies[lcgNext(lcg) & 3];
}

/** "Scattered" deltas (1..256 ticks): every event lands in its own
 * bin -- the intrusive queue's worst case. */
std::uint64_t
scatteredDelta(std::uint64_t &lcg)
{
    return (lcgNext(lcg) & 0xff) + 1;
}

struct NoopEvent : Event
{
    void process() override {}
    std::string description() const override { return "noop"; }
};

/**
 * Ladder workload: @p inflight no-op events stay queued; every
 * service immediately reschedules the serviced event a
 * pseudo-random (but deterministic) distance ahead. Exercises the
 * mixed near-head/at-tail insertion pattern real device models
 * produce. Works on both queue types by duck typing.
 */
template <typename Queue>
double
queueEventsPerSec(std::uint64_t total, unsigned inflight,
                  std::uint64_t (*next_delta)(std::uint64_t &))
{
    Queue queue;
    std::vector<NoopEvent> events(inflight);
    std::uint64_t lcg = 0x5eed;
    for (unsigned i = 0; i < inflight; ++i)
        queue.schedule(&events[i], queue.curTick() + next_delta(lcg));

    const auto start = Clock::now();
    for (std::uint64_t serviced = 0; serviced < total; ++serviced) {
        Event *event = queue.serviceOne();
        queue.schedule(event, queue.curTick() + next_delta(lcg));
    }
    const double elapsed = secondsSince(start);

    // Drain so the static events are unqueued at destruction.
    while (queue.serviceOne() != nullptr) {
    }
    return static_cast<double>(total) / elapsed;
}

/** Arena-managed one-shot churn: makeEvent + schedule + drain. */
double
arenaEventsPerSec(std::uint64_t total, unsigned batch)
{
    EventQueue queue;
    std::uint64_t lcg = 0x5eed;
    std::uint64_t created = 0;
    const auto start = Clock::now();
    while (created < total) {
        for (unsigned i = 0; i < batch; ++i)
            queue.schedule(queue.makeEvent<NoopEvent>(),
                           queue.curTick() + clockedDelta(lcg));
        created += batch;
        queue.run();
    }
    return static_cast<double>(total) / secondsSince(start);
}

double
storeOpsPerSec(std::uint64_t total)
{
    server::ServerModelParams params;
    params.core = cpu::cortexA7Params();
    params.withL2 = true;
    params.storeMemLimit = 64 * miB;
    server::ServerModel server(params);
    server.populate(1000, 64);

    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < total; ++i) {
        const std::string key = "v64:" + std::to_string(i % 1000);
        if (i % 4 == 3)
            server.put(key, 64);
        else
            server.get(key);
    }
    return static_cast<double>(total) / secondsSince(start);
}

/** One fig5-style measurement task: build a small server model and
 * measure a GET size point. Self-contained, like a sweep point. */
void
sweepTask(unsigned samples)
{
    server::ServerModelParams params;
    params.core = cpu::cortexA15Params(1.0);
    params.withL2 = true;
    params.memory = server::MemoryKind::StackedDram;
    params.storeMemLimit = 32 * miB;
    server::ServerModel model(params);
    model.measureGets(4096, samples);
}

double
sweepSerialSeconds(unsigned points, unsigned samples)
{
    const auto start = Clock::now();
    for (unsigned i = 0; i < points; ++i)
        sweepTask(samples);
    return secondsSince(start);
}

double
sweepParallelSeconds(unsigned points, unsigned samples,
                     unsigned jobs)
{
    sim::ThreadPool pool(jobs);
    const auto start = Clock::now();
    for (unsigned i = 0; i < points; ++i)
        pool.submit([samples] { sweepTask(samples); });
    pool.wait();
    return secondsSince(start);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "selfbench");
    const bool smoke = session.smoke();

    std::string out = "BENCH_selfbench.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out = arg.substr(6);
    }

    // --jobs defaults to 1 in Session; for the sweep section the
    // interesting default is "all hardware threads".
    const unsigned jobs =
        session.jobs() > 1
            ? session.jobs()
            : std::max(1u, std::thread::hardware_concurrency());

    const std::uint64_t queueTotal = smoke ? 200'000 : 4'000'000;
    const std::uint64_t arenaTotal = smoke ? 100'000 : 2'000'000;
    const std::uint64_t storeTotal = smoke ? 20'000 : 200'000;
    const unsigned sweepPoints = smoke ? 4 : 16;
    const unsigned sweepSamples = smoke ? 2 : 8;

    bench::banner("Simulator self-benchmark (host performance)");

    const double intrusive =
        queueEventsPerSec<EventQueue>(queueTotal, 64, clockedDelta);
    const double reference = queueEventsPerSec<ModelEventQueue>(
        queueTotal, 64, clockedDelta);
    const double queueSpeedup = intrusive / reference;
    const double intrusiveScattered = queueEventsPerSec<EventQueue>(
        queueTotal, 64, scatteredDelta);
    const double referenceScattered =
        queueEventsPerSec<ModelEventQueue>(queueTotal, 64,
                                           scatteredDelta);
    const double scatteredSpeedup =
        intrusiveScattered / referenceScattered;
    const double arena = arenaEventsPerSec(arenaTotal, 64);
    std::printf("%-34s %14.0f events/s\n",
                "queue clocked (intrusive)", intrusive);
    std::printf("%-34s %14.0f events/s\n",
                "queue clocked (std::set ref)", reference);
    std::printf("%-34s %14.2fx\n", "queue clocked speedup",
                queueSpeedup);
    std::printf("%-34s %14.0f events/s\n",
                "queue scattered (intrusive)", intrusiveScattered);
    std::printf("%-34s %14.0f events/s\n",
                "queue scattered (std::set ref)",
                referenceScattered);
    std::printf("%-34s %14.2fx\n", "queue scattered speedup",
                scatteredSpeedup);
    std::printf("%-34s %14.0f events/s\n",
                "arena one-shot events", arena);

    const double storeOps = storeOpsPerSec(storeTotal);
    std::printf("%-34s %14.0f ops/s\n", "kv store GET/SET",
                storeOps);

    const double serialS =
        sweepSerialSeconds(sweepPoints, sweepSamples);
    const double parallelS =
        sweepParallelSeconds(sweepPoints, sweepSamples, jobs);
    const double sweepSpeedup = serialS / parallelS;
    std::printf("%-34s %14.1f ms\n", "sweep serial",
                serialS * 1e3);
    char label[64];
    std::snprintf(label, sizeof(label), "sweep --jobs %u", jobs);
    std::printf("%-34s %14.1f ms\n", label, parallelS * 1e3);
    std::printf("%-34s %14.2fx  (%u hardware threads)\n",
                "sweep speedup", sweepSpeedup,
                std::thread::hardware_concurrency());

    std::FILE *fp = std::fopen(out.c_str(), "w");
    if (!fp) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out.c_str());
        return 1;
    }
    std::fprintf(
        fp,
        "{\"smoke\":%s,"
        "\"queue\":{\"intrusive_events_per_sec\":%.0f,"
        "\"reference_events_per_sec\":%.0f,"
        "\"speedup\":%.3f,"
        "\"scattered_intrusive_events_per_sec\":%.0f,"
        "\"scattered_reference_events_per_sec\":%.0f,"
        "\"scattered_speedup\":%.3f,"
        "\"arena_events_per_sec\":%.0f},"
        "\"store\":{\"ops_per_sec\":%.0f},"
        "\"sweep\":{\"points\":%u,\"jobs\":%u,"
        "\"hardware_threads\":%u,"
        "\"serial_ms\":%.2f,\"parallel_ms\":%.2f,"
        "\"speedup\":%.3f}}\n",
        smoke ? "true" : "false", intrusive, reference,
        queueSpeedup, intrusiveScattered, referenceScattered,
        scatteredSpeedup, arena, storeOps, sweepPoints, jobs,
        std::thread::hardware_concurrency(), serialS * 1e3,
        parallelS * 1e3, sweepSpeedup);
    std::fclose(fp);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
