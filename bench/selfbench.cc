/**
 * @file
 * Host-performance self-benchmark: how fast does the simulator
 * itself run on this machine?
 *
 * Three sections, each timed with std::chrono::steady_clock and
 * reported both as a human-readable table and as a JSON file
 * (default BENCH_selfbench.json, override with --out=PATH):
 *
 *  - event queue: schedule/service throughput of the intrusive
 *    two-level EventQueue against the std::set ModelEventQueue
 *    reference (the pre-optimization implementation), plus the
 *    arena-managed one-shot churn rate;
 *  - kv store: end-to-end GET/SET ops/sec through the single-node
 *    server timing model;
 *  - datapath: host-side simulation rate of the request walk under
 *    the kernel path and the batched bypass fast path (how much the
 *    batching bookkeeping costs the simulator itself);
 *  - sweep: wall-clock for a fig5-style batch of independent server
 *    measurements run serially and through sim::ThreadPool, i.e.
 *    what `--jobs N` buys on this host. (On a single-hardware-thread
 *    container the parallel time roughly equals the serial time;
 *    the JSON records the measured ratio honestly either way.)
 *
 * Numbers are host-dependent by design -- nothing here is golden.
 * CI only checks that the binary runs and emits well-formed JSON
 * (scripts/check.sh perf-smoke stage); scripts/bench.sh runs the
 * full version.
 *
 * Usage: selfbench [--smoke] [--jobs=N] [--out=PATH]
 *                  [--profile-out=PATH]
 *
 * --profile-out dumps the host-side event-queue profiler's per-type
 * cost map (requires configuring with -DMERCURY_PROFILE_EVENTS=ON;
 * default builds write a stub recording that profiling is off).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster_sim.hh"
#include "net/datapath.hh"
#include "server/server_model.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/model_event_queue.hh"
#include "sim/thread_pool.hh"

namespace
{

using namespace mercury;

using Clock = std::chrono::steady_clock;

/** Append "key":<value> with a caller-chosen numeric format. Keys go
 * through the canonical writer (telemetry-json lint); the value
 * format stays explicit because these are human-scaled host rates,
 * not golden-pinned stats. */
void
field(std::ostream &os, bool &first, const char *key,
      const char *fmt, double value)
{
    json::writeKey(os, first, key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), fmt, value);
    os << buf;
}

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

std::uint64_t
lcgNext(std::uint64_t &lcg)
{
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
}

/**
 * "Clocked" deltas: one of four fixed device latencies, the way
 * cache/DRAM/flash/NIC models schedule completions. Few distinct
 * (tick, priority) keys are live at once, so bins stay short.
 */
std::uint64_t
clockedDelta(std::uint64_t &lcg)
{
    static constexpr std::uint64_t latencies[4] = {10, 20, 50, 100};
    return latencies[lcgNext(lcg) & 3];
}

/** "Scattered" deltas (1..256 ticks): every event lands in its own
 * bin -- the intrusive queue's worst case. */
std::uint64_t
scatteredDelta(std::uint64_t &lcg)
{
    return (lcgNext(lcg) & 0xff) + 1;
}

struct NoopEvent : Event
{
    void process() override {}
    std::string description() const override { return "noop"; }
};

/**
 * Ladder workload: @p inflight no-op events stay queued; every
 * service immediately reschedules the serviced event a
 * pseudo-random (but deterministic) distance ahead. Exercises the
 * mixed near-head/at-tail insertion pattern real device models
 * produce. Works on both queue types by duck typing.
 */
template <typename Queue>
double
queueEventsPerSec(std::uint64_t total, unsigned inflight,
                  std::uint64_t (*next_delta)(std::uint64_t &))
{
    Queue queue;
    std::vector<NoopEvent> events(inflight);
    std::uint64_t lcg = 0x5eed;
    for (unsigned i = 0; i < inflight; ++i)
        queue.schedule(&events[i], queue.curTick() + next_delta(lcg));

    const auto start = Clock::now();
    for (std::uint64_t serviced = 0; serviced < total; ++serviced) {
        Event *event = queue.serviceOne();
        queue.schedule(event, queue.curTick() + next_delta(lcg));
    }
    const double elapsed = secondsSince(start);

    // Drain so the static events are unqueued at destruction.
    while (queue.serviceOne() != nullptr) {
    }
    return static_cast<double>(total) / elapsed;
}

/** Arena-managed one-shot churn: makeEvent + schedule + drain. */
double
arenaEventsPerSec(std::uint64_t total, unsigned batch)
{
    EventQueue queue;
    std::uint64_t lcg = 0x5eed;
    std::uint64_t created = 0;
    const auto start = Clock::now();
    while (created < total) {
        for (unsigned i = 0; i < batch; ++i)
            queue.schedule(queue.makeEvent<NoopEvent>(),
                           queue.curTick() + clockedDelta(lcg));
        created += batch;
        queue.run();
    }
    return static_cast<double>(total) / secondsSince(start);
}

/**
 * --profile-out: drive a mixed-type event workload through one queue
 * and dump the host-side profiler's per-type cost map. In default
 * builds (MERCURY_PROFILE_EVENTS=OFF) the file records that
 * profiling was compiled out, so consumers can always parse it.
 */
void
writeProfile(const std::string &path, [[maybe_unused]] bool smoke)
{
    std::FILE *fp = std::fopen(path.c_str(), "w");
    if (!fp) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return;
    }
#if MERCURY_EVENT_PROFILE
    EventQueue queue;
    // Three event types with distinct host costs, scheduled the way
    // device models do (few distinct latencies live at once).
    std::uint64_t sink = 0;
    EventFunctionWrapper nic([&] { sink += 1; }, "nic completion");
    EventFunctionWrapper dram(
        [&] {
            for (int i = 0; i < 32; ++i)
                sink += static_cast<std::uint64_t>(i) * sink + 1;
        },
        "dram completion");
    EventFunctionWrapper flash(
        [&] {
            for (int i = 0; i < 256; ++i)
                sink += static_cast<std::uint64_t>(i) * sink + 1;
        },
        "flash completion");
    EventFunctionWrapper *events[3] = {&nic, &dram, &flash};
    constexpr Tick latencies[3] = {10, 50, 400};
    const std::uint64_t total = smoke ? 30'000 : 300'000;
    std::uint64_t lcg = 0x5eed;
    for (std::uint64_t serviced = 0; serviced < total;) {
        for (unsigned i = 0; i < 3; ++i) {
            if (!events[i]->scheduled())
                queue.schedule(events[i],
                               queue.curTick() +
                                   latencies[lcgNext(lcg) % 3]);
        }
        queue.serviceOne();
        ++serviced;
    }
    while (queue.serviceOne() != nullptr) {
    }
    std::ostringstream os;
    queue.profiler().writeJson(os);
    std::fputs(os.str().c_str(), fp);
    if (sink == 0)
        std::fprintf(stderr, "profile workload elided\n");
#else
    std::ostringstream os;
    bool first = true;
    os << '{';
    json::writeKey(os, first, "enabled");
    os << "false";
    json::writeField(os, first, "reason",
                     std::string_view(
                         "configure with -DMERCURY_PROFILE_EVENTS"
                         "=ON"));
    os << "}\n";
    std::fputs(os.str().c_str(), fp);
    std::fprintf(stderr,
                 "selfbench: built without MERCURY_PROFILE_EVENTS; "
                 "%s records profiling as disabled\n",
                 path.c_str());
#endif
    std::fclose(fp);
}

double
storeOpsPerSec(std::uint64_t total)
{
    server::ServerModelParams params;
    params.core = cpu::cortexA7Params();
    params.withL2 = true;
    params.storeMemLimit = 64 * miB;
    server::ServerModel server(params);
    server.populate(1000, 64);

    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < total; ++i) {
        const std::string key = "v64:" + std::to_string(i % 1000);
        if (i % 4 == 3)
            server.put(key, 64);
        else
            server.get(key);
    }
    return static_cast<double>(total) / secondsSince(start);
}

/**
 * Datapath hot-loop probe: host-side simulation rate of the
 * request walk under each datapath. The bypass path models *more*
 * mechanism (batch accounting, NIC-cache lookups) yet simulates
 * fewer kernel phases per request; this probe keeps the host cost
 * of that trade visible so a regression in the batched fast path
 * shows up in BENCH_selfbench.json, not just in simulated TPS.
 */
double
datapathReqsPerSec(std::uint64_t total,
                   const net::DatapathParams &datapath)
{
    server::ServerModelParams params;
    params.core = cpu::cortexA7Params();
    params.withL2 = true;
    params.storeMemLimit = 64 * miB;
    params.datapath = datapath;
    server::ServerModel server(params);
    server.populate(1000, 64);

    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < total; ++i)
        server.get("v64:" + std::to_string(i % 1000));
    return static_cast<double>(total) / secondsSince(start);
}

/** One fig5-style measurement task: build a small server model and
 * measure a GET size point. Self-contained, like a sweep point. */
void
sweepTask(unsigned samples)
{
    server::ServerModelParams params;
    params.core = cpu::cortexA15Params(1.0);
    params.withL2 = true;
    params.memory = server::MemoryKind::StackedDram;
    params.storeMemLimit = 32 * miB;
    server::ServerModel model(params);
    model.measureGets(4096, samples);
}

double
sweepSerialSeconds(unsigned points, unsigned samples)
{
    const auto start = Clock::now();
    for (unsigned i = 0; i < points; ++i)
        sweepTask(samples);
    return secondsSince(start);
}

double
sweepParallelSeconds(unsigned points, unsigned samples,
                     unsigned jobs)
{
    sim::ThreadPool pool(jobs);
    const auto start = Clock::now();
    for (unsigned i = 0; i < points; ++i)
        pool.submit([samples] { sweepTask(samples); });
    pool.wait();
    return secondsSince(start);
}

/**
 * PDES section: one cluster simulation (the paper-scale 96-stack
 * topology in full mode) run serial and then sharded across the
 * host's threads, wall-clocked, with the byte-identity contract
 * re-checked on the way (the two results must match exactly -- the
 * speedup is only honest if the sharded run did the same work).
 * On a single-core host the speedup hovers at or below 1.0x: the
 * engine adds barrier overhead and there is nothing to overlap.
 * The JSON says so rather than hiding it.
 */
cluster::ClusterSimParams
pdesParams(bool smoke)
{
    cluster::ClusterSimParams params;
    params.node.core = cpu::cortexA7Params();
    params.node.withL2 = false;
    params.node.storeMemLimit = smoke ? 16 * miB : 32 * miB;
    params.nodes = smoke ? 16 : 96;
    params.numKeys = smoke ? 600 : 4000;
    params.zipfTheta = 0.9;
    params.requests = smoke ? 400 : 4000;
    params.warmup = smoke ? 50 : 200;
    return params;
}

double
pdesClusterSeconds(const cluster::ClusterSimParams &params,
                   cluster::ClusterSimResult &out)
{
    cluster::ClusterSim sim(params);
    const double offered = 0.5 * sim.aggregateCapacity();
    const auto start = Clock::now();
    out = sim.run(offered);
    return secondsSince(start);
}

bool
pdesResultsIdentical(const cluster::ClusterSimResult &a,
                     const cluster::ClusterSimResult &b)
{
    return a.ok == b.ok && a.requests == b.requests &&
           a.timeouts == b.timeouts &&
           a.avgLatencyUs == b.avgLatencyUs &&
           a.p99LatencyUs == b.p99LatencyUs &&
           a.hitRate == b.hitRate &&
           a.hottestNodeShare == b.hottestNodeShare &&
           a.faultTimelineDigest == b.faultTimelineDigest;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(
        argc, argv, "selfbench",
        {{"--out", "PATH",
          "results JSON path (default BENCH_selfbench.json)"},
         {"--profile-out", "PATH",
          "event-queue profiler JSON path"}});
    const bool smoke = session.smoke();

    std::string out = "BENCH_selfbench.json";
    std::string profile_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out = arg.substr(6);
        else if (arg.rfind("--profile-out=", 0) == 0)
            profile_out = arg.substr(14);
    }
    if (!profile_out.empty())
        writeProfile(profile_out, smoke);

    // --jobs defaults to 1 in Session; for the sweep section the
    // interesting default is "all hardware threads".
    const unsigned jobs =
        session.jobs() > 1
            ? session.jobs()
            : std::max(1u, std::thread::hardware_concurrency());

    const std::uint64_t queueTotal = smoke ? 200'000 : 4'000'000;
    const std::uint64_t arenaTotal = smoke ? 100'000 : 2'000'000;
    const std::uint64_t storeTotal = smoke ? 20'000 : 200'000;
    const unsigned sweepPoints = smoke ? 4 : 16;
    const unsigned sweepSamples = smoke ? 2 : 8;

    bench::banner("Simulator self-benchmark (host performance)");

    const double intrusive =
        queueEventsPerSec<EventQueue>(queueTotal, 64, clockedDelta);
    const double reference = queueEventsPerSec<ModelEventQueue>(
        queueTotal, 64, clockedDelta);
    const double queueSpeedup = intrusive / reference;
    const double intrusiveScattered = queueEventsPerSec<EventQueue>(
        queueTotal, 64, scatteredDelta);
    const double referenceScattered =
        queueEventsPerSec<ModelEventQueue>(queueTotal, 64,
                                           scatteredDelta);
    const double scatteredSpeedup =
        intrusiveScattered / referenceScattered;
    const double arena = arenaEventsPerSec(arenaTotal, 64);
    std::printf("%-34s %14.0f events/s\n",
                "queue clocked (intrusive)", intrusive);
    std::printf("%-34s %14.0f events/s\n",
                "queue clocked (std::set ref)", reference);
    std::printf("%-34s %14.2fx\n", "queue clocked speedup",
                queueSpeedup);
    std::printf("%-34s %14.0f events/s\n",
                "queue scattered (intrusive)", intrusiveScattered);
    std::printf("%-34s %14.0f events/s\n",
                "queue scattered (std::set ref)",
                referenceScattered);
    std::printf("%-34s %14.2fx\n", "queue scattered speedup",
                scatteredSpeedup);
    std::printf("%-34s %14.0f events/s\n",
                "arena one-shot events", arena);

    const double storeOps = storeOpsPerSec(storeTotal);
    std::printf("%-34s %14.0f ops/s\n", "kv store GET/SET",
                storeOps);

    net::DatapathParams kernel_dp;
    net::DatapathParams bypass_dp;
    bypass_dp.kind = net::DatapathKind::Bypass;
    net::DatapathParams batched_dp = bypass_dp;
    batched_dp.rxBatch = 32;
    batched_dp.txBatch = 32;
    const double kernelReqs =
        datapathReqsPerSec(storeTotal, kernel_dp);
    const double bypassReqs =
        datapathReqsPerSec(storeTotal, bypass_dp);
    const double batchedReqs =
        datapathReqsPerSec(storeTotal, batched_dp);
    const double batchingSpeedup = batchedReqs / bypassReqs;
    std::printf("%-34s %14.0f reqs/s\n", "datapath kernel GETs",
                kernelReqs);
    std::printf("%-34s %14.0f reqs/s\n", "datapath bypass batch=1",
                bypassReqs);
    std::printf("%-34s %14.0f reqs/s\n", "datapath bypass batch=32",
                batchedReqs);
    std::printf("%-34s %14.2fx  (host-side cost of batching)\n",
                "datapath batching ratio", batchingSpeedup);

    const double serialS =
        sweepSerialSeconds(sweepPoints, sweepSamples);
    const double parallelS =
        sweepParallelSeconds(sweepPoints, sweepSamples, jobs);
    const double sweepSpeedup = serialS / parallelS;
    std::printf("%-34s %14.1f ms\n", "sweep serial",
                serialS * 1e3);
    char label[64];
    std::snprintf(label, sizeof(label), "sweep --jobs %u", jobs);
    std::printf("%-34s %14.1f ms\n", label, parallelS * 1e3);
    std::printf("%-34s %14.2fx  (%u hardware threads)\n",
                "sweep speedup", sweepSpeedup,
                std::thread::hardware_concurrency());

    const cluster::ClusterSimParams pdes_params = pdesParams(smoke);
    // At least two shards even on a single-core host: the probe
    // must exercise the PDES engine (and its identity contract),
    // while the measured speedup stays honest about the hardware.
    const unsigned pdesShards =
        std::min<unsigned>(std::max(2u, jobs), pdes_params.nodes);
    cluster::ClusterSimParams sharded_params = pdes_params;
    sharded_params.shards = pdesShards;
    cluster::ClusterSimResult pdesSerial, pdesSharded;
    const double pdesSerialS =
        pdesClusterSeconds(pdes_params, pdesSerial);
    const double pdesShardedS =
        pdesClusterSeconds(sharded_params, pdesSharded);
    const double pdesSpeedup = pdesSerialS / pdesShardedS;
    const bool pdesIdentical =
        pdesResultsIdentical(pdesSerial, pdesSharded);
    std::printf("%-34s %14.1f ms\n", "cluster serial",
                pdesSerialS * 1e3);
    std::snprintf(label, sizeof(label), "cluster --shards %u",
                  pdesShards);
    std::printf("%-34s %14.1f ms\n", label, pdesShardedS * 1e3);
    std::printf("%-34s %14.2fx  (%u nodes, results %s)\n",
                "pdes speedup", pdesSpeedup, pdes_params.nodes,
                pdesIdentical ? "identical" : "DIVERGED");
    if (!pdesIdentical) {
        std::fprintf(stderr,
                     "selfbench: sharded cluster run diverged from "
                     "serial -- PDES byte-identity broken\n");
        return 1;
    }

    std::FILE *fp = std::fopen(out.c_str(), "w");
    if (!fp) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out.c_str());
        return 1;
    }
    std::ostringstream os;
    bool first = true;
    os << '{';
    json::writeKey(os, first, "smoke");
    os << (smoke ? "true" : "false");
    json::writeKey(os, first, "queue");
    {
        bool qf = true;
        os << '{';
        field(os, qf, "intrusive_events_per_sec", "%.0f",
              intrusive);
        field(os, qf, "reference_events_per_sec", "%.0f",
              reference);
        field(os, qf, "speedup", "%.3f", queueSpeedup);
        field(os, qf, "scattered_intrusive_events_per_sec", "%.0f",
              intrusiveScattered);
        field(os, qf, "scattered_reference_events_per_sec", "%.0f",
              referenceScattered);
        field(os, qf, "scattered_speedup", "%.3f",
              scatteredSpeedup);
        field(os, qf, "arena_events_per_sec", "%.0f", arena);
        os << '}';
    }
    json::writeKey(os, first, "store");
    {
        bool sf = true;
        os << '{';
        field(os, sf, "ops_per_sec", "%.0f", storeOps);
        os << '}';
    }
    json::writeKey(os, first, "datapath");
    {
        bool df = true;
        os << '{';
        field(os, df, "kernel_reqs_per_sec", "%.0f", kernelReqs);
        field(os, df, "bypass_reqs_per_sec", "%.0f", bypassReqs);
        field(os, df, "batched_reqs_per_sec", "%.0f", batchedReqs);
        field(os, df, "batching_speedup", "%.3f", batchingSpeedup);
        os << '}';
    }
    json::writeKey(os, first, "sweep");
    {
        bool wf = true;
        os << '{';
        json::writeField(os, wf, "points",
                         std::uint64_t{sweepPoints});
        json::writeField(os, wf, "jobs", std::uint64_t{jobs});
        json::writeField(
            os, wf, "hardware_threads",
            std::uint64_t{std::thread::hardware_concurrency()});
        field(os, wf, "serial_ms", "%.2f", serialS * 1e3);
        field(os, wf, "parallel_ms", "%.2f", parallelS * 1e3);
        field(os, wf, "speedup", "%.3f", sweepSpeedup);
        os << '}';
    }
    json::writeKey(os, first, "pdes");
    {
        bool pf = true;
        os << '{';
        json::writeField(os, pf, "nodes",
                         std::uint64_t{pdes_params.nodes});
        json::writeField(os, pf, "shards",
                         std::uint64_t{pdesShards});
        field(os, pf, "serial_ms", "%.2f", pdesSerialS * 1e3);
        field(os, pf, "sharded_ms", "%.2f", pdesShardedS * 1e3);
        field(os, pf, "speedup", "%.3f", pdesSpeedup);
        json::writeField(os, pf, "identical",
                         std::uint64_t{pdesIdentical ? 1u : 0u});
        os << '}';
    }
    os << "}\n";
    std::fputs(os.str().c_str(), fp);
    std::fclose(fp);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
