/**
 * @file
 * Regenerates paper Table 1: power and area for the components of a
 * 3D stack.
 */

#include <cstdio>

#include "bench_util.hh"
#include "physical/components.hh"

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "table1_components");
    using namespace mercury;
    using namespace mercury::physical;

    bench::banner("Table 1: Power and area for the components of a "
                  "3D stack");

    const ComponentCatalog &c = defaultCatalog();
    std::printf("%-26s %14s %12s\n", "Component", "Power (mW)",
                "Area (mm^2)");
    bench::rule(54);
    std::printf("%-26s %14.0f %12.2f\n", "A7@1GHz",
                c.a7PowerW * 1000, c.a7AreaMm2);
    std::printf("%-26s %14.0f %12.2f\n", "A15@1GHz",
                c.a15PowerW1GHz * 1000, c.a15AreaMm2);
    std::printf("%-26s %14.0f %12.2f\n", "A15@1.5GHz",
                c.a15PowerW15GHz * 1000, c.a15AreaMm2);
    std::printf("%-26s %10.0f/GBs %12.2f\n", "3D DRAM (4GB)",
                c.dramPowerPerGBs * 1000, c.dramAreaMm2);
    std::printf("%-26s %10.0f/GBs %12.2f\n", "3D NAND Flash (19.8GB)",
                c.flashPowerPerGBs * 1000, c.flashAreaMm2);
    std::printf("%-26s %14.0f %12.2f\n", "3D Stack NIC (MAC)",
                c.nicMacPowerW * 1000, c.nicMacAreaMm2);
    std::printf("%-26s %14.0f %12.2f\n", "Physical NIC (PHY)",
                c.nicPhyPowerW * 1000, c.nicPhyAreaMm2);
    return 0;
}
