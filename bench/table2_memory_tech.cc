/**
 * @file
 * Regenerates paper Table 2: comparison of 3D-stacked DRAM to DIMM
 * packages, cross-checked against the DRAM timing models where a
 * model exists.
 */

#include <cstdio>

#include "bench_util.hh"
#include "mem/dram.hh"
#include "physical/components.hh"

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "table2_memory_tech");
    using namespace mercury;
    using namespace mercury::physical;

    bench::banner("Table 2: Comparison of 3D-stacked DRAM to DIMM "
                  "packages");

    std::printf("%-30s %12s %12s %8s\n", "DRAM", "BW (GB/s)",
                "Capacity", "Stacked");
    bench::rule(66);
    for (const MemoryTechRow &row : memoryTechCatalog()) {
        std::printf("%-30s %12.1f %9.1fGB %8s\n", row.name.c_str(),
                    row.bandwidthGBs, row.capacityGB,
                    row.stacked ? "yes" : "no");
    }

    // Cross-check: the timing models must deliver the catalog's peak
    // bandwidth figures.
    bench::banner("Model cross-check (device peak bandwidth)");
    const struct
    {
        const char *name;
        mem::DramParams params;
    } models[] = {
        {"DDR3-1333", mem::ddr3Params()},
        {"DDR4-2667", mem::ddr4Params()},
        {"LPDDR3", mem::lpddr3Params()},
        {"HMC I", mem::hmc1Params()},
        {"Wide I/O", mem::wideIoParams()},
        {"Tezzaron Octopus", mem::octopusParams()},
        {"Future Tezzaron (Mercury)", mem::stackedDramParams()},
    };
    std::printf("%-30s %12s %12s\n", "Model", "Peak GB/s", "Capacity");
    bench::rule(56);
    for (const auto &entry : models) {
        mem::DramModel dram(entry.params);
        std::printf("%-30s %12.1f %9.1fGB\n", entry.name,
                    dram.peakBandwidth() / 1e9,
                    static_cast<double>(dram.capacityBytes()) / 1e9);
    }
    return 0;
}
