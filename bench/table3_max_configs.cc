/**
 * @file
 * Regenerates paper Table 3: power and area for maximum 1.5U
 * configurations -- {A15@1.5GHz, A15@1GHz, A7} x {1..32 cores/stack}
 * x {Mercury, Iridium}, reporting board area, wall power at the
 * peak-bandwidth operating point, density, and max bandwidth.
 *
 * Per-core throughput/bandwidth inputs are measured live with the
 * single-core server timing model (Sec. 5.2-5.3 methodology), then
 * scaled under the chassis constraints.
 *
 * Each (core, memory) block is an independent ParallelSweep point;
 * `--jobs N` output stays byte-identical to the serial run.
 */

#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"
#include "datapath_flags.hh"
#include "parallel_sweep.hh"

namespace
{

using namespace mercury;
using namespace mercury::config;
using namespace mercury::physical;

struct CoreChoice
{
    const char *label;
    cpu::CoreParams core;
};

void
block(bench::PointContext &ctx, const CoreChoice &choice,
      StackMemory memory, const bench::DatapathFlags &dp)
{
    DesignExplorer explorer;
    const std::vector<unsigned> core_counts{1, 2, 4, 8, 16, 32};

    StackConfig stack;
    stack.core = choice.core;
    stack.memory = memory;
    // Mercury foregoes the L2 (Sec. 4.1.3); Iridium requires it
    // (Sec. 4.2.1).
    stack.withL2 = memory == StackMemory::Flash3D;
    stack.nicCacheMB = dp.nicCacheMB;

    OracleOptions oracle;
    oracle.datapath = dp.datapath;
    const PerCorePerf perf = measurePerCorePerf(stack, oracle);

    ctx.printf("%s, %s\n", choice.label,
               memory == StackMemory::Dram3D ? "Mercury (3D DRAM)"
                                             : "Iridium (3D Flash)");
    ctx.printf("  %-18s", "Cores per stack");
    for (unsigned n : core_counts)
        ctx.printf(" %9u", n);
    ctx.printf("\n");
    ctx.printf("%s\n", bench::ruleString(80).c_str());

    ctx.printf("  %-18s", "Stacks");
    std::vector<ServerDesign> designs;
    for (unsigned n : core_counts) {
        stack.coresPerStack = n;
        designs.push_back(explorer.solve(stack, perf));
        ctx.printf(" %9u", designs.back().stacks);
    }
    ctx.printf("\n  %-18s", "Area (cm^2)");
    for (const auto &d : designs)
        ctx.printf(" %9.0f", d.areaCm2);
    ctx.printf("\n  %-18s", "Power (W)");
    for (const auto &d : designs)
        ctx.printf(" %9.0f", d.powerAtMaxBwW);
    ctx.printf("\n  %-18s", "Density (GB)");
    for (const auto &d : designs)
        ctx.printf(" %9.0f", d.densityGB);
    ctx.printf("\n  %-18s", "Max BW (GB/s)");
    for (const auto &d : designs)
        ctx.printf(" %9.1f", d.maxBwGBs);
    ctx.printf("\n\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Session session(argc, argv, "table3_max_configs",
                           bench::datapathFlagSpecs());
    const bench::DatapathFlags dp =
        bench::parseDatapathFlags(argc, argv);
    bench::banner("Table 3: Power and area comparison for 1.5U "
                  "maximum configurations");
    if (dp.nonDefault())
        std::printf("%s", dp.banner().c_str());

    const std::vector<CoreChoice> choices = {
        {"A15 @1.5GHz", cpu::cortexA15Params(1.5)},
        {"A15 @1GHz", cpu::cortexA15Params(1.0)},
        {"A7 @1GHz", cpu::cortexA7Params()},
    };
    const std::vector<StackMemory> memories = {StackMemory::Dram3D,
                                               StackMemory::Flash3D};

    bench::ParallelSweep sweep(session);
    for (StackMemory memory : memories) {
        for (const CoreChoice &choice : choices) {
            sweep.point([&choice, memory,
                         &dp](bench::PointContext &ctx) {
                block(ctx, choice, memory, dp);
            });
        }
    }
    sweep.run();
    return 0;
}
