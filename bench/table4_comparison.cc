/**
 * @file
 * Regenerates paper Table 4: A7-based Mercury and Iridium (n = 8,
 * 16, 32 cores per stack) against Memcached 1.4 / 1.6 / Bags on a
 * state-of-the-art server and the TSSP accelerator, all at 64 B GET
 * requests.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/baseline.hh"
#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"

namespace
{

using namespace mercury;
using namespace mercury::baseline;
using namespace mercury::config;
using namespace mercury::physical;

struct Row
{
    std::string name;
    unsigned stacks;
    unsigned cores;
    double memoryGB;
    double powerW;
    double mtps;
    double ktpsPerWatt;
    double ktpsPerGB;
    double bwGBs;
};

Row
fromDesign(const std::string &name, const ServerDesign &design)
{
    return {name,
            design.stacks,
            design.cores,
            design.densityGB,
            design.powerAt64BW,
            design.tps64 / 1e6,
            design.tpsPerWatt() / 1e3,
            design.tpsPerGB() / 1e3,
            design.bw64GBs};
}

Row
fromBaseline(const BaselineServer &server)
{
    return {server.name,
            1,
            server.cores,
            server.memoryGB,
            server.powerW,
            server.tps / 1e6,
            server.tpsPerWatt() / 1e3,
            server.tpsPerGB() / 1e3,
            server.bwGBs};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "table4_comparison");
    bench::banner("Table 4: A7-based Mercury and Iridium vs prior "
                  "art (64 B GET requests)");

    DesignExplorer explorer;
    std::vector<Row> rows;

    for (StackMemory memory :
         {StackMemory::Dram3D, StackMemory::Flash3D}) {
        StackConfig stack;
        stack.core = cpu::cortexA7Params();
        stack.memory = memory;
        stack.withL2 = memory == StackMemory::Flash3D;
        const PerCorePerf perf = measurePerCorePerf(stack);
        const char *family =
            memory == StackMemory::Dram3D ? "Mercury" : "Iridium";
        for (unsigned n : {8u, 16u, 32u}) {
            stack.coresPerStack = n;
            rows.push_back(fromDesign(
                std::string(family) + "-" + std::to_string(n),
                explorer.solve(stack, perf)));
        }
    }

    rows.push_back(fromBaseline(
        memcachedBaseline(MemcachedVersion::V14)));
    rows.push_back(fromBaseline(
        memcachedBaseline(MemcachedVersion::V16)));
    rows.push_back(fromBaseline(
        memcachedBaseline(MemcachedVersion::Bags)));
    rows.push_back(fromBaseline(tsspReference()));

    std::printf("%-16s %7s %7s %10s %9s %14s %12s %12s %10s\n",
                "Configuration", "Stacks", "Cores", "Memory(GB)",
                "Power(W)", "TPS(millions)", "KTPS/Watt", "KTPS/GB",
                "BW(GB/s)");
    bench::rule(104);
    for (const Row &row : rows) {
        std::printf("%-16s %7u %7u %10.0f %9.0f %14.2f %12.2f "
                    "%12.2f %10.2f\n",
                    row.name.c_str(), row.stacks, row.cores,
                    row.memoryGB, row.powerW, row.mtps,
                    row.ktpsPerWatt, row.ktpsPerGB, row.bwGBs);
    }

    // The abstract's headline ratios, relative to the Bags baseline.
    const Row &mercury32 = rows[2];
    const Row &iridium32 = rows[5];
    const Row bags = fromBaseline(
        memcachedBaseline(MemcachedVersion::Bags));

    bench::banner("Headline ratios vs optimized Memcached (Bags)");
    std::printf("Mercury-32: density %.1fx  TPS %.1fx  TPS/W %.1fx  "
                "TPS/GB %.1fx\n",
                mercury32.memoryGB / bags.memoryGB,
                mercury32.mtps / bags.mtps,
                mercury32.ktpsPerWatt / bags.ktpsPerWatt,
                mercury32.ktpsPerGB / bags.ktpsPerGB);
    std::printf("Iridium-32: density %.1fx  TPS %.1fx  TPS/W %.1fx  "
                "TPS/GB %.2fx (lower)\n",
                iridium32.memoryGB / bags.memoryGB,
                iridium32.mtps / bags.mtps,
                iridium32.ktpsPerWatt / bags.ktpsPerWatt,
                bags.ktpsPerGB / iridium32.ktpsPerGB);
    std::printf("(Paper: Mercury 2.9x / 10x / 4.9x / 3.5x; "
                "Iridium 14x / 5.2x / 2.4x / 2.8x-lower)\n");
    return 0;
}
