/**
 * @file
 * Reproduces the paper's cooling analysis (Sec. 6.5): a Mercury-32
 * box's TDP is spread across ~96 stacks, putting each package
 * within passive-cooling limits, unlike a conventional server that
 * concentrates the same power in a few sockets.
 */

#include <cstdio>

#include "bench_util.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"
#include "physical/thermal.hh"

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "thermal_check");
    using namespace mercury;
    using namespace mercury::config;
    using namespace mercury::physical;

    bench::banner("Sec. 6.5: cooling feasibility");

    DesignExplorer explorer;
    std::printf("%-14s %7s %10s %12s %10s %8s\n", "Design", "Stacks",
                "W/stack", "junction C", "passive?", "airflow?");
    bench::rule(68);

    for (StackMemory memory :
         {StackMemory::Dram3D, StackMemory::Flash3D}) {
        StackConfig stack;
        stack.core = cpu::cortexA7Params();
        stack.coresPerStack = 32;
        stack.memory = memory;
        stack.withL2 = memory == StackMemory::Flash3D;
        const ServerDesign d =
            explorer.solve(stack, measurePerCorePerf(stack));

        const double components = (d.powerAt64BW - 160.0) * 0.8;
        const ThermalReport r =
            checkThermal(d.stacks, components, d.powerAt64BW);
        std::printf("%-14s %7u %10.2f %12.1f %10s %8s\n",
                    memory == StackMemory::Dram3D ? "Mercury-32"
                                                  : "Iridium-32",
                    d.stacks, r.perStackW, r.junctionC,
                    r.passiveOk ? "yes" : "NO",
                    r.airflowOk ? "yes" : "NO");
    }

    // The conventional contrast: one 2-socket Xeon box.
    const ThermalReport xeon = checkThermal(2, 190.0, 285.0);
    std::printf("%-14s %7u %10.2f %12.1f %10s %8s\n", "2S Xeon",
                2u, xeon.perStackW, xeon.junctionC,
                xeon.passiveOk ? "yes" : "NO (heatsinks)",
                xeon.airflowOk ? "yes" : "NO");

    std::printf("\nSpreading the box's power over ~100 small "
                "packages keeps every junction under the 85 C DRAM "
                "retention ceiling with plain chassis airflow "
                "(Sec. 6.5).\n");
    return 0;
}
