/**
 * @file
 * Validation: the paper's linear-scaling assumption (Sec. 5.3).
 *
 * The paper measures one core and multiplies. Here n cores share a
 * real stack -- DRAM ports / flash channels and the single 10GbE
 * port -- and we report how close the aggregate comes to n x
 * single-core. At 64 B the assumption holds almost exactly; at
 * large request sizes the stack's one NIC port becomes the wall the
 * paper's memory-side bandwidth numbers never see.
 */

#include <cstdio>

#include "bench_util.hh"
#include "server/stack_sim.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
sweep(const char *title, MemoryKind memory, std::uint32_t size)
{
    std::printf("%s, %s requests\n",
                memory == MemoryKind::StackedDram ? "Mercury"
                                                  : "Iridium",
                bench::sizeLabel(size).c_str());
    std::printf("  %-6s %14s %14s %12s %10s\n", "Cores",
                "aggregate TPS", "linear pred.", "efficiency",
                "NIC util");
    bench::rule(64);
    for (unsigned cores : {1u, 2u, 4u, 8u, 16u}) {
        StackSimParams params;
        params.node.core = cpu::cortexA7Params();
        params.node.memory = memory;
        params.node.withL2 = memory == MemoryKind::Flash;
        params.cores = cores;
        params.valueBytes = size;
        StackSimulation sim(params);
        const StackSimResult r = sim.run();
        std::printf("  %-6u %14.0f %14.0f %11.2f%% %9.2f%%\n", cores,
                    r.aggregateTps, r.linearPredictionTps,
                    r.scalingEfficiency * 100,
                    r.nicUtilization * 100);
    }
    std::printf("\n%s", title);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    mercury::bench::Session session(argc, argv, "validate_linear_scaling");
    bench::banner("Validation: linear scaling of per-core TPS to "
                  "the stack level (Sec. 5.3)");

    sweep("", MemoryKind::StackedDram, 64);
    sweep("", MemoryKind::StackedDram, 65536);
    sweep("", MemoryKind::Flash, 64);

    std::printf("At 64 B the paper's linear scaling holds within a "
                "few percent: separate Memcached instances share "
                "only ports,\nand two cores per port are free "
                "(Sec. 4.1.2). At 64 KB the single 10GbE port "
                "saturates -- the memory-side\n\"Max BW\" numbers "
                "in Table 3 are not deliverable through one NIC.\n");
    return 0;
}
