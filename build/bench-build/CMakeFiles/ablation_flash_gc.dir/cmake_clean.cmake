file(REMOVE_RECURSE
  "../bench/ablation_flash_gc"
  "../bench/ablation_flash_gc.pdb"
  "CMakeFiles/ablation_flash_gc.dir/ablation_flash_gc.cc.o"
  "CMakeFiles/ablation_flash_gc.dir/ablation_flash_gc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flash_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
