# Empty dependencies file for ablation_flash_gc.
# This may be replaced when dependencies are built.
