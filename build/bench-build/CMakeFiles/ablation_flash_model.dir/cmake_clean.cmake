file(REMOVE_RECURSE
  "../bench/ablation_flash_model"
  "../bench/ablation_flash_model.pdb"
  "CMakeFiles/ablation_flash_model.dir/ablation_flash_model.cc.o"
  "CMakeFiles/ablation_flash_model.dir/ablation_flash_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flash_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
