# Empty dependencies file for ablation_flash_model.
# This may be replaced when dependencies are built.
