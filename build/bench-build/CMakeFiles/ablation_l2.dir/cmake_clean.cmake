file(REMOVE_RECURSE
  "../bench/ablation_l2"
  "../bench/ablation_l2.pdb"
  "CMakeFiles/ablation_l2.dir/ablation_l2.cc.o"
  "CMakeFiles/ablation_l2.dir/ablation_l2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
