file(REMOVE_RECURSE
  "../bench/ablation_locking"
  "../bench/ablation_locking.pdb"
  "CMakeFiles/ablation_locking.dir/ablation_locking.cc.o"
  "CMakeFiles/ablation_locking.dir/ablation_locking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
