file(REMOVE_RECURSE
  "../bench/ablation_mlp"
  "../bench/ablation_mlp.pdb"
  "CMakeFiles/ablation_mlp.dir/ablation_mlp.cc.o"
  "CMakeFiles/ablation_mlp.dir/ablation_mlp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
