file(REMOVE_RECURSE
  "../bench/ablation_page_policy"
  "../bench/ablation_page_policy.pdb"
  "CMakeFiles/ablation_page_policy.dir/ablation_page_policy.cc.o"
  "CMakeFiles/ablation_page_policy.dir/ablation_page_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
