file(REMOVE_RECURSE
  "../bench/ablation_port_sharing"
  "../bench/ablation_port_sharing.pdb"
  "CMakeFiles/ablation_port_sharing.dir/ablation_port_sharing.cc.o"
  "CMakeFiles/ablation_port_sharing.dir/ablation_port_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_port_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
