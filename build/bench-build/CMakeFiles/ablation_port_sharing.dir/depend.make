# Empty dependencies file for ablation_port_sharing.
# This may be replaced when dependencies are built.
