file(REMOVE_RECURSE
  "../bench/ablation_udp"
  "../bench/ablation_udp.pdb"
  "CMakeFiles/ablation_udp.dir/ablation_udp.cc.o"
  "CMakeFiles/ablation_udp.dir/ablation_udp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
