# Empty dependencies file for ablation_udp.
# This may be replaced when dependencies are built.
