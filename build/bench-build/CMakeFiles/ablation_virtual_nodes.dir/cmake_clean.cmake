file(REMOVE_RECURSE
  "../bench/ablation_virtual_nodes"
  "../bench/ablation_virtual_nodes.pdb"
  "CMakeFiles/ablation_virtual_nodes.dir/ablation_virtual_nodes.cc.o"
  "CMakeFiles/ablation_virtual_nodes.dir/ablation_virtual_nodes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_virtual_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
