# Empty dependencies file for ablation_virtual_nodes.
# This may be replaced when dependencies are built.
