file(REMOVE_RECURSE
  "../bench/cluster_tail"
  "../bench/cluster_tail.pdb"
  "CMakeFiles/cluster_tail.dir/cluster_tail.cc.o"
  "CMakeFiles/cluster_tail.dir/cluster_tail.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
