# Empty dependencies file for cluster_tail.
# This may be replaced when dependencies are built.
