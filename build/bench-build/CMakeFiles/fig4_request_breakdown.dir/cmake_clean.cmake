file(REMOVE_RECURSE
  "../bench/fig4_request_breakdown"
  "../bench/fig4_request_breakdown.pdb"
  "CMakeFiles/fig4_request_breakdown.dir/fig4_request_breakdown.cc.o"
  "CMakeFiles/fig4_request_breakdown.dir/fig4_request_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_request_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
