file(REMOVE_RECURSE
  "../bench/fig5_mercury_latency"
  "../bench/fig5_mercury_latency.pdb"
  "CMakeFiles/fig5_mercury_latency.dir/fig5_mercury_latency.cc.o"
  "CMakeFiles/fig5_mercury_latency.dir/fig5_mercury_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mercury_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
