# Empty dependencies file for fig5_mercury_latency.
# This may be replaced when dependencies are built.
