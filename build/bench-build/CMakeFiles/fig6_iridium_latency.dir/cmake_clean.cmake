file(REMOVE_RECURSE
  "../bench/fig6_iridium_latency"
  "../bench/fig6_iridium_latency.pdb"
  "CMakeFiles/fig6_iridium_latency.dir/fig6_iridium_latency.cc.o"
  "CMakeFiles/fig6_iridium_latency.dir/fig6_iridium_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_iridium_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
