file(REMOVE_RECURSE
  "../bench/fig8_power_throughput"
  "../bench/fig8_power_throughput.pdb"
  "CMakeFiles/fig8_power_throughput.dir/fig8_power_throughput.cc.o"
  "CMakeFiles/fig8_power_throughput.dir/fig8_power_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_power_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
