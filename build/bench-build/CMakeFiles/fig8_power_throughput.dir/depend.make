# Empty dependencies file for fig8_power_throughput.
# This may be replaced when dependencies are built.
