file(REMOVE_RECURSE
  "../bench/loadlatency_sla"
  "../bench/loadlatency_sla.pdb"
  "CMakeFiles/loadlatency_sla.dir/loadlatency_sla.cc.o"
  "CMakeFiles/loadlatency_sla.dir/loadlatency_sla.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadlatency_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
