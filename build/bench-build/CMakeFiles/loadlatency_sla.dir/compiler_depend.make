# Empty compiler generated dependencies file for loadlatency_sla.
# This may be replaced when dependencies are built.
