file(REMOVE_RECURSE
  "../bench/micro_kvstore"
  "../bench/micro_kvstore.pdb"
  "CMakeFiles/micro_kvstore.dir/micro_kvstore.cc.o"
  "CMakeFiles/micro_kvstore.dir/micro_kvstore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
