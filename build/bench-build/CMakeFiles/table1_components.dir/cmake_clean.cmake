file(REMOVE_RECURSE
  "../bench/table1_components"
  "../bench/table1_components.pdb"
  "CMakeFiles/table1_components.dir/table1_components.cc.o"
  "CMakeFiles/table1_components.dir/table1_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
