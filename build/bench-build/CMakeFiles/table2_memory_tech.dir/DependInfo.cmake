
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_memory_tech.cc" "bench-build/CMakeFiles/table2_memory_tech.dir/table2_memory_tech.cc.o" "gcc" "bench-build/CMakeFiles/table2_memory_tech.dir/table2_memory_tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physical/CMakeFiles/mercury_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mercury_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mercury_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
