file(REMOVE_RECURSE
  "../bench/table2_memory_tech"
  "../bench/table2_memory_tech.pdb"
  "CMakeFiles/table2_memory_tech.dir/table2_memory_tech.cc.o"
  "CMakeFiles/table2_memory_tech.dir/table2_memory_tech.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_memory_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
