file(REMOVE_RECURSE
  "../bench/table3_max_configs"
  "../bench/table3_max_configs.pdb"
  "CMakeFiles/table3_max_configs.dir/table3_max_configs.cc.o"
  "CMakeFiles/table3_max_configs.dir/table3_max_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_max_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
