# Empty dependencies file for table3_max_configs.
# This may be replaced when dependencies are built.
