file(REMOVE_RECURSE
  "../bench/thermal_check"
  "../bench/thermal_check.pdb"
  "CMakeFiles/thermal_check.dir/thermal_check.cc.o"
  "CMakeFiles/thermal_check.dir/thermal_check.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
