# Empty dependencies file for thermal_check.
# This may be replaced when dependencies are built.
