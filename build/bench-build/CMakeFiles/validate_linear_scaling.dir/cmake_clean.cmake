file(REMOVE_RECURSE
  "../bench/validate_linear_scaling"
  "../bench/validate_linear_scaling.pdb"
  "CMakeFiles/validate_linear_scaling.dir/validate_linear_scaling.cc.o"
  "CMakeFiles/validate_linear_scaling.dir/validate_linear_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_linear_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
