# Empty dependencies file for validate_linear_scaling.
# This may be replaced when dependencies are built.
