file(REMOVE_RECURSE
  "CMakeFiles/cluster_loadbalance.dir/cluster_loadbalance.cpp.o"
  "CMakeFiles/cluster_loadbalance.dir/cluster_loadbalance.cpp.o.d"
  "cluster_loadbalance"
  "cluster_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
