# Empty dependencies file for cluster_loadbalance.
# This may be replaced when dependencies are built.
