file(REMOVE_RECURSE
  "CMakeFiles/latency_sla_explorer.dir/latency_sla_explorer.cpp.o"
  "CMakeFiles/latency_sla_explorer.dir/latency_sla_explorer.cpp.o.d"
  "latency_sla_explorer"
  "latency_sla_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_sla_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
