# Empty dependencies file for latency_sla_explorer.
# This may be replaced when dependencies are built.
