file(REMOVE_RECURSE
  "CMakeFiles/photo_cache.dir/photo_cache.cpp.o"
  "CMakeFiles/photo_cache.dir/photo_cache.cpp.o.d"
  "photo_cache"
  "photo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
