# Empty dependencies file for photo_cache.
# This may be replaced when dependencies are built.
