file(REMOVE_RECURSE
  "CMakeFiles/mercury_baseline.dir/baseline.cc.o"
  "CMakeFiles/mercury_baseline.dir/baseline.cc.o.d"
  "libmercury_baseline.a"
  "libmercury_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
