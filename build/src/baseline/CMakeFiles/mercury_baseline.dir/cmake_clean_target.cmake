file(REMOVE_RECURSE
  "libmercury_baseline.a"
)
