# Empty compiler generated dependencies file for mercury_baseline.
# This may be replaced when dependencies are built.
