file(REMOVE_RECURSE
  "CMakeFiles/mercury_cluster.dir/cluster_sim.cc.o"
  "CMakeFiles/mercury_cluster.dir/cluster_sim.cc.o.d"
  "CMakeFiles/mercury_cluster.dir/distributed_cache.cc.o"
  "CMakeFiles/mercury_cluster.dir/distributed_cache.cc.o.d"
  "CMakeFiles/mercury_cluster.dir/ring.cc.o"
  "CMakeFiles/mercury_cluster.dir/ring.cc.o.d"
  "libmercury_cluster.a"
  "libmercury_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
