file(REMOVE_RECURSE
  "libmercury_cluster.a"
)
