file(REMOVE_RECURSE
  "CMakeFiles/mercury_config.dir/explorer.cc.o"
  "CMakeFiles/mercury_config.dir/explorer.cc.o.d"
  "CMakeFiles/mercury_config.dir/perf_oracle.cc.o"
  "CMakeFiles/mercury_config.dir/perf_oracle.cc.o.d"
  "libmercury_config.a"
  "libmercury_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
