file(REMOVE_RECURSE
  "libmercury_config.a"
)
