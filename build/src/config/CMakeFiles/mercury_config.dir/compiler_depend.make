# Empty compiler generated dependencies file for mercury_config.
# This may be replaced when dependencies are built.
