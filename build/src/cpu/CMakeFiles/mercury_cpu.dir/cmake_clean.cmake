file(REMOVE_RECURSE
  "CMakeFiles/mercury_cpu.dir/core.cc.o"
  "CMakeFiles/mercury_cpu.dir/core.cc.o.d"
  "libmercury_cpu.a"
  "libmercury_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
