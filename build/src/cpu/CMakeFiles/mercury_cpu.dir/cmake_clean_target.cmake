file(REMOVE_RECURSE
  "libmercury_cpu.a"
)
