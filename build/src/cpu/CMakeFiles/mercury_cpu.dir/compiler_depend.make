# Empty compiler generated dependencies file for mercury_cpu.
# This may be replaced when dependencies are built.
