
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/binary_protocol.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/binary_protocol.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/binary_protocol.cc.o.d"
  "/root/repo/src/kvstore/eviction.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/eviction.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/eviction.cc.o.d"
  "/root/repo/src/kvstore/hash.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/hash.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/hash.cc.o.d"
  "/root/repo/src/kvstore/hash_table.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/hash_table.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/hash_table.cc.o.d"
  "/root/repo/src/kvstore/protocol.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/protocol.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/protocol.cc.o.d"
  "/root/repo/src/kvstore/slab.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/slab.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/slab.cc.o.d"
  "/root/repo/src/kvstore/store.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/store.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/store.cc.o.d"
  "/root/repo/src/kvstore/udp_frame.cc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/udp_frame.cc.o" "gcc" "src/kvstore/CMakeFiles/mercury_kvstore.dir/udp_frame.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
