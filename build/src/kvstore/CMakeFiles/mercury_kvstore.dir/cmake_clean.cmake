file(REMOVE_RECURSE
  "CMakeFiles/mercury_kvstore.dir/binary_protocol.cc.o"
  "CMakeFiles/mercury_kvstore.dir/binary_protocol.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/eviction.cc.o"
  "CMakeFiles/mercury_kvstore.dir/eviction.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/hash.cc.o"
  "CMakeFiles/mercury_kvstore.dir/hash.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/hash_table.cc.o"
  "CMakeFiles/mercury_kvstore.dir/hash_table.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/protocol.cc.o"
  "CMakeFiles/mercury_kvstore.dir/protocol.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/slab.cc.o"
  "CMakeFiles/mercury_kvstore.dir/slab.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/store.cc.o"
  "CMakeFiles/mercury_kvstore.dir/store.cc.o.d"
  "CMakeFiles/mercury_kvstore.dir/udp_frame.cc.o"
  "CMakeFiles/mercury_kvstore.dir/udp_frame.cc.o.d"
  "libmercury_kvstore.a"
  "libmercury_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
