file(REMOVE_RECURSE
  "libmercury_kvstore.a"
)
