# Empty compiler generated dependencies file for mercury_kvstore.
# This may be replaced when dependencies are built.
