file(REMOVE_RECURSE
  "CMakeFiles/mercury_mem.dir/cache.cc.o"
  "CMakeFiles/mercury_mem.dir/cache.cc.o.d"
  "CMakeFiles/mercury_mem.dir/dram.cc.o"
  "CMakeFiles/mercury_mem.dir/dram.cc.o.d"
  "CMakeFiles/mercury_mem.dir/flash.cc.o"
  "CMakeFiles/mercury_mem.dir/flash.cc.o.d"
  "CMakeFiles/mercury_mem.dir/region_router.cc.o"
  "CMakeFiles/mercury_mem.dir/region_router.cc.o.d"
  "CMakeFiles/mercury_mem.dir/simple_mem.cc.o"
  "CMakeFiles/mercury_mem.dir/simple_mem.cc.o.d"
  "libmercury_mem.a"
  "libmercury_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
