file(REMOVE_RECURSE
  "libmercury_mem.a"
)
