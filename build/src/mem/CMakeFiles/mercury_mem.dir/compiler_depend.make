# Empty compiler generated dependencies file for mercury_mem.
# This may be replaced when dependencies are built.
