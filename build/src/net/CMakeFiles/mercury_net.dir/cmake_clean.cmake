file(REMOVE_RECURSE
  "CMakeFiles/mercury_net.dir/network.cc.o"
  "CMakeFiles/mercury_net.dir/network.cc.o.d"
  "libmercury_net.a"
  "libmercury_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
