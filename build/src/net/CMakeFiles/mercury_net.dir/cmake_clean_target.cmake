file(REMOVE_RECURSE
  "libmercury_net.a"
)
