# Empty dependencies file for mercury_net.
# This may be replaced when dependencies are built.
