
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physical/chassis.cc" "src/physical/CMakeFiles/mercury_physical.dir/chassis.cc.o" "gcc" "src/physical/CMakeFiles/mercury_physical.dir/chassis.cc.o.d"
  "/root/repo/src/physical/components.cc" "src/physical/CMakeFiles/mercury_physical.dir/components.cc.o" "gcc" "src/physical/CMakeFiles/mercury_physical.dir/components.cc.o.d"
  "/root/repo/src/physical/thermal.cc" "src/physical/CMakeFiles/mercury_physical.dir/thermal.cc.o" "gcc" "src/physical/CMakeFiles/mercury_physical.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/mercury_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mercury_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
