file(REMOVE_RECURSE
  "CMakeFiles/mercury_physical.dir/chassis.cc.o"
  "CMakeFiles/mercury_physical.dir/chassis.cc.o.d"
  "CMakeFiles/mercury_physical.dir/components.cc.o"
  "CMakeFiles/mercury_physical.dir/components.cc.o.d"
  "CMakeFiles/mercury_physical.dir/thermal.cc.o"
  "CMakeFiles/mercury_physical.dir/thermal.cc.o.d"
  "libmercury_physical.a"
  "libmercury_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
