file(REMOVE_RECURSE
  "libmercury_physical.a"
)
