# Empty compiler generated dependencies file for mercury_physical.
# This may be replaced when dependencies are built.
