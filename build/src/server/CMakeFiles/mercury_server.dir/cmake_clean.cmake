file(REMOVE_RECURSE
  "CMakeFiles/mercury_server.dir/address_map.cc.o"
  "CMakeFiles/mercury_server.dir/address_map.cc.o.d"
  "CMakeFiles/mercury_server.dir/load_sim.cc.o"
  "CMakeFiles/mercury_server.dir/load_sim.cc.o.d"
  "CMakeFiles/mercury_server.dir/server_model.cc.o"
  "CMakeFiles/mercury_server.dir/server_model.cc.o.d"
  "CMakeFiles/mercury_server.dir/stack_sim.cc.o"
  "CMakeFiles/mercury_server.dir/stack_sim.cc.o.d"
  "libmercury_server.a"
  "libmercury_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
