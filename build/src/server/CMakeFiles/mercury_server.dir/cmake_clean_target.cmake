file(REMOVE_RECURSE
  "libmercury_server.a"
)
