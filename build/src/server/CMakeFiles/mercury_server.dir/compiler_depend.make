# Empty compiler generated dependencies file for mercury_server.
# This may be replaced when dependencies are built.
