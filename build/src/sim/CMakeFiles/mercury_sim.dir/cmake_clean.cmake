file(REMOVE_RECURSE
  "CMakeFiles/mercury_sim.dir/event_queue.cc.o"
  "CMakeFiles/mercury_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/mercury_sim.dir/logging.cc.o"
  "CMakeFiles/mercury_sim.dir/logging.cc.o.d"
  "CMakeFiles/mercury_sim.dir/random.cc.o"
  "CMakeFiles/mercury_sim.dir/random.cc.o.d"
  "CMakeFiles/mercury_sim.dir/stats.cc.o"
  "CMakeFiles/mercury_sim.dir/stats.cc.o.d"
  "libmercury_sim.a"
  "libmercury_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
