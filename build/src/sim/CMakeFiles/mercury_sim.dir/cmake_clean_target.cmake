file(REMOVE_RECURSE
  "libmercury_sim.a"
)
