# Empty compiler generated dependencies file for mercury_sim.
# This may be replaced when dependencies are built.
