file(REMOVE_RECURSE
  "CMakeFiles/mercury_workload.dir/trace.cc.o"
  "CMakeFiles/mercury_workload.dir/trace.cc.o.d"
  "CMakeFiles/mercury_workload.dir/workload.cc.o"
  "CMakeFiles/mercury_workload.dir/workload.cc.o.d"
  "libmercury_workload.a"
  "libmercury_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
