file(REMOVE_RECURSE
  "libmercury_workload.a"
)
