# Empty dependencies file for mercury_workload.
# This may be replaced when dependencies are built.
