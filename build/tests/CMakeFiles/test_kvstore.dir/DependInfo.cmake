
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kvstore/binary_protocol_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/binary_protocol_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/binary_protocol_test.cc.o.d"
  "/root/repo/tests/kvstore/eviction_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/eviction_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/eviction_test.cc.o.d"
  "/root/repo/tests/kvstore/hash_table_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/hash_table_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/hash_table_test.cc.o.d"
  "/root/repo/tests/kvstore/protocol_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/protocol_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/protocol_test.cc.o.d"
  "/root/repo/tests/kvstore/slab_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/slab_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/slab_test.cc.o.d"
  "/root/repo/tests/kvstore/store_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/store_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/store_test.cc.o.d"
  "/root/repo/tests/kvstore/udp_frame_test.cc" "tests/CMakeFiles/test_kvstore.dir/kvstore/udp_frame_test.cc.o" "gcc" "tests/CMakeFiles/test_kvstore.dir/kvstore/udp_frame_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvstore/CMakeFiles/mercury_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
