file(REMOVE_RECURSE
  "CMakeFiles/test_kvstore.dir/kvstore/binary_protocol_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/binary_protocol_test.cc.o.d"
  "CMakeFiles/test_kvstore.dir/kvstore/eviction_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/eviction_test.cc.o.d"
  "CMakeFiles/test_kvstore.dir/kvstore/hash_table_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/hash_table_test.cc.o.d"
  "CMakeFiles/test_kvstore.dir/kvstore/protocol_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/protocol_test.cc.o.d"
  "CMakeFiles/test_kvstore.dir/kvstore/slab_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/slab_test.cc.o.d"
  "CMakeFiles/test_kvstore.dir/kvstore/store_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/store_test.cc.o.d"
  "CMakeFiles/test_kvstore.dir/kvstore/udp_frame_test.cc.o"
  "CMakeFiles/test_kvstore.dir/kvstore/udp_frame_test.cc.o.d"
  "test_kvstore"
  "test_kvstore.pdb"
  "test_kvstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
