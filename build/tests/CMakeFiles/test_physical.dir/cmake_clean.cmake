file(REMOVE_RECURSE
  "CMakeFiles/test_physical.dir/physical/chassis_test.cc.o"
  "CMakeFiles/test_physical.dir/physical/chassis_test.cc.o.d"
  "CMakeFiles/test_physical.dir/physical/thermal_test.cc.o"
  "CMakeFiles/test_physical.dir/physical/thermal_test.cc.o.d"
  "test_physical"
  "test_physical.pdb"
  "test_physical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
