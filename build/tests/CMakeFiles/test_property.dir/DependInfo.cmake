
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/property_test.cc" "tests/CMakeFiles/test_property.dir/property/property_test.cc.o" "gcc" "tests/CMakeFiles/test_property.dir/property/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvstore/CMakeFiles/mercury_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mercury_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/mercury_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mercury_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mercury_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mercury_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mercury_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
