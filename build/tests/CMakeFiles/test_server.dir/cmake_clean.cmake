file(REMOVE_RECURSE
  "CMakeFiles/test_server.dir/server/load_sim_test.cc.o"
  "CMakeFiles/test_server.dir/server/load_sim_test.cc.o.d"
  "CMakeFiles/test_server.dir/server/server_model_test.cc.o"
  "CMakeFiles/test_server.dir/server/server_model_test.cc.o.d"
  "CMakeFiles/test_server.dir/server/stack_sim_test.cc.o"
  "CMakeFiles/test_server.dir/server/stack_sim_test.cc.o.d"
  "test_server"
  "test_server.pdb"
  "test_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
