/**
 * @file
 * Capacity planner: given a caching tier's dataset size and target
 * throughput, compare fleets of Mercury, Iridium and conventional
 * Xeon memcached servers on rack space and power -- the data-center
 * arithmetic that motivates the paper (Sec. 1-2).
 *
 * Scenario: a web property needs to cache 30 TB with a peak load of
 * 150 million GET/s (Facebook-2008 was already 28 TB, Sec. 2.3).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/baseline.hh"
#include "config/explorer.hh"
#include "config/perf_oracle.hh"

namespace
{

using namespace mercury;
using namespace mercury::config;

struct Fleet
{
    const char *name;
    double serverGB;
    double serverTps;
    double serverPowerW;
    double serverUnits;  // rack units per server
};

void
plan(const Fleet &fleet, double dataset_gb, double target_tps)
{
    const double by_capacity = dataset_gb / fleet.serverGB;
    const double by_tps = target_tps / fleet.serverTps;
    const int servers = static_cast<int>(
        std::ceil(std::max(by_capacity, by_tps)));
    const double racks = servers * fleet.serverUnits / 42.0;
    const double power_kw = servers * fleet.serverPowerW / 1000.0;
    const char *binding = by_capacity > by_tps ? "capacity" : "tps";

    std::printf("%-22s %8d %8.1f %9.0f   bound by %s\n", fleet.name,
                servers, racks, power_kw, binding);
}

} // anonymous namespace

int
main()
{
    const double dataset_gb = 30000.0;
    const double target_tps = 150e6;

    std::printf("Cache tier: %.0f TB dataset, %.0f MTPS peak\n\n",
                dataset_gb / 1000, target_tps / 1e6);
    std::printf("%-22s %8s %8s %9s\n", "Design", "Servers", "Racks",
                "kW");
    for (int i = 0; i < 60; ++i)
        std::putchar('-');
    std::putchar('\n');

    DesignExplorer explorer;

    // Mercury-32 and Iridium-32 designs, solved from simulation.
    physical::StackConfig mercury;
    mercury.core = cpu::cortexA7Params();
    mercury.coresPerStack = 32;
    mercury.withL2 = false;
    const ServerDesign mercury_design =
        explorer.solve(mercury, measurePerCorePerf(mercury));

    physical::StackConfig iridium = mercury;
    iridium.memory = physical::StackMemory::Flash3D;
    iridium.withL2 = true;
    const ServerDesign iridium_design =
        explorer.solve(iridium, measurePerCorePerf(iridium));

    const baseline::BaselineServer bags =
        baseline::memcachedBaseline(
            baseline::MemcachedVersion::Bags);

    plan({"Xeon + Bags (1.5U)", bags.memoryGB, bags.tps,
          bags.powerW, 1.5},
         dataset_gb, target_tps);
    plan({"Mercury-32 (1.5U)", mercury_design.densityGB,
          mercury_design.tps64, mercury_design.powerAt64BW, 1.5},
         dataset_gb, target_tps);
    plan({"Iridium-32 (1.5U)", iridium_design.densityGB,
          iridium_design.tps64, iridium_design.powerAt64BW, 1.5},
         dataset_gb, target_tps);

    std::printf("\nMercury wins when the tier is "
                "throughput-bound; Iridium when it is "
                "capacity-bound (the McDipper regime).\n");
    return 0;
}
