/**
 * @file
 * Distributed cache demo: a box full of Mercury stacks is a
 * 96-node memcached cluster behind consistent hashing (Sec. 3.8).
 * This example runs the *functional* distributed cache: keys spread
 * over nodes, a node dies, the cluster keeps serving with only its
 * arc lost.
 */

#include <algorithm>
#include <cstdio>

#include "cluster/distributed_cache.hh"
#include "workload/workload.hh"

int
main()
{
    using namespace mercury;
    using namespace mercury::cluster;

    // One Mercury box: 96 stacks = 96 independent cache nodes.
    kvstore::StoreParams node_params;
    node_params.memLimit = 8 * miB;  // scaled down for the demo
    DistributedCache cache(96, node_params, 64);

    // Fill with an ETC-like workload.
    workload::WorkloadParams wl;
    wl.numKeys = 20000;
    wl.popularity = workload::Popularity::Zipf;
    wl.valueSize = workload::ValueSizeDist::fixed(256);
    workload::WorkloadGenerator gen(wl);

    for (int i = 0; i < 20000; ++i) {
        const auto key = workload::WorkloadGenerator::keyFor(
            static_cast<std::uint64_t>(i));
        cache.set(key, std::string(256, 'v'));
    }

    auto counts = cache.itemCounts();
    std::size_t min_items = counts.front().second;
    std::size_t max_items = counts.front().second;
    for (const auto &[name, count] : counts) {
        min_items = std::min(min_items, count);
        max_items = std::max(max_items, count);
    }
    std::printf("96-node cluster holding 20k keys: %zu..%zu items "
                "per node (ring imbalance %.2f)\n",
                min_items, max_items,
                cache.ring().sampleLoad(50000).imbalance);

    // Serve a Zipf-distributed read workload and count hits.
    auto hit_rate = [&cache, &gen](int requests) {
        int hits = 0;
        for (int i = 0; i < requests; ++i) {
            const auto request = gen.next();
            if (cache
                    .get(workload::WorkloadGenerator::keyFor(
                        request.keyId))
                    .hit) {
                ++hits;
            }
        }
        return 100.0 * hits / requests;
    };

    std::printf("hit rate before failure: %.1f%%\n", hit_rate(20000));

    // Kill a node: memcached-style, its data is simply gone.
    cache.removeNode("node17");
    std::printf("node17 removed; cluster now %zu nodes\n",
                cache.numNodes());
    std::printf("hit rate right after failure: %.1f%% "
                "(only node17's arc misses)\n",
                hit_rate(20000));

    // The misses refill the cache as the database layer backfills.
    for (int i = 0; i < 20000; ++i) {
        const auto key = workload::WorkloadGenerator::keyFor(
            static_cast<std::uint64_t>(i));
        if (!cache.get(key).hit)
            cache.set(key, std::string(256, 'v'));
    }
    std::printf("hit rate after backfill: %.1f%%\n", hit_rate(20000));

    std::printf("\nWith 96 physical nodes per box, each node owns "
                "~1%% of the keyspace, so one stack failing costs "
                "~1%% hit rate -- the density-as-resilience argument "
                "for Mercury-style scale-out.\n");
    return 0;
}
