/**
 * @file
 * SLA explorer: sweep the memory technologies and latencies the
 * paper considers and report which configurations keep which
 * fraction of requests under common SLA thresholds. This is the
 * "density cannot come at the expense of the SLA" analysis of
 * Sec. 4.1/6.2 as a tool.
 */

#include <cstdio>
#include <memory>

#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
row(const char *name, ServerModel &node, std::uint32_t size)
{
    const Measurement m = node.measureGets(size, 24, 6);
    std::printf("  %-26s %9.0f %9.1f %9.1f %8.0f%% %8.0f%%\n", name,
                m.avgTps, m.avgRttUs, m.p99RttUs,
                m.subMsFraction * 100,
                (m.avgRttUs <= 250.0 ? 100.0 : 0.0));
}

std::unique_ptr<ServerModel>
mercury_node(const cpu::CoreParams &core, Tick dram_latency)
{
    ServerModelParams p;
    p.core = core;
    p.withL2 = false;
    p.dramArrayLatency = dram_latency;
    p.storeMemLimit = 96 * miB;
    return std::make_unique<ServerModel>(p);
}

std::unique_ptr<ServerModel>
iridium_node(const cpu::CoreParams &core, Tick flash_read)
{
    ServerModelParams p;
    p.core = core;
    p.withL2 = true;
    p.memory = MemoryKind::Flash;
    p.flashReadLatency = flash_read;
    p.storeMemLimit = 96 * miB;
    return std::make_unique<ServerModel>(p);
}

} // anonymous namespace

int
main()
{
    for (std::uint32_t size : {64u, 16384u}) {
        std::printf("\nRequest size %u B:\n", size);
        std::printf("  %-26s %9s %9s %9s %9s %9s\n", "Config", "TPS",
                    "avg us", "p99 us", "<1ms", "<250us");
        for (int i = 0; i < 78; ++i)
            std::putchar('-');
        std::putchar('\n');

        auto a7_fast = mercury_node(cpu::cortexA7Params(),
                                    10 * tickNs);
        row("Mercury A7, 10ns DRAM", *a7_fast, size);
        auto a7_slow = mercury_node(cpu::cortexA7Params(),
                                    100 * tickNs);
        row("Mercury A7, 100ns DRAM", *a7_slow, size);
        auto a15 = mercury_node(cpu::cortexA15Params(1.0),
                                10 * tickNs);
        row("Mercury A15, 10ns DRAM", *a15, size);
        auto ir10 = iridium_node(cpu::cortexA7Params(), 10 * tickUs);
        row("Iridium A7, 10us flash", *ir10, size);
        auto ir20 = iridium_node(cpu::cortexA7Params(), 20 * tickUs);
        row("Iridium A7, 20us flash", *ir20, size);
    }

    std::printf("\nEvery Mercury point is comfortably "
                "sub-millisecond; Iridium trades two orders of "
                "magnitude of latency headroom for 5x density and "
                "still clears a 1 ms SLA for the bulk of requests "
                "(Sec. 6.2).\n");
    return 0;
}
