/**
 * @file
 * Photo cache: the McDipper scenario (Sec. 3.5, 4.2). Facebook
 * serves photos from a flash-backed memcached-compatible cache:
 * large values, huge footprint, moderate request rates, but the
 * same latency targets. This example sizes one Iridium box against
 * one Mercury box for a 64 KiB-object photo tier and checks the
 * paper's claim that flash still meets the SLA for the bulk of
 * requests.
 */

#include <cstdio>

#include "server/server_model.hh"

namespace
{

using namespace mercury;
using namespace mercury::server;

void
evaluate(const char *name, MemoryKind memory, std::uint32_t obj_bytes)
{
    ServerModelParams params;
    params.core = cpu::cortexA7Params();
    params.memory = memory;
    params.withL2 = memory == MemoryKind::Flash;
    params.storeMemLimit = 192 * miB;
    ServerModel node(params);

    const Measurement get = node.measureGets(obj_bytes, 16, 4);
    const Measurement put = node.measurePuts(obj_bytes, 8, 2);

    std::printf("%-10s GET: %6.0f TPS  avg %7.0f us  p99 %7.0f us  "
                "sub-ms %3.0f%%   PUT: %5.0f TPS\n",
                name, get.avgTps, get.avgRttUs, get.p99RttUs,
                get.subMsFraction * 100, put.avgTps);
}

} // anonymous namespace

int
main()
{
    const std::uint32_t photo = 64 * 1024;  // thumbnail-size object

    std::printf("Photo cache node comparison (64 KiB objects, "
                "single A7 core view):\n\n");
    evaluate("Mercury", MemoryKind::StackedDram, photo);
    evaluate("Iridium", MemoryKind::Flash, photo);

    std::printf("\nPer 1.5U box: Mercury holds 384 GB (~6.3M "
                "photos); Iridium holds 1.9 TB (~31M photos).\n");
    std::printf("A photo tier at ~1K req/s per node fits Iridium's "
                "throughput with 5x the density --\n");
    std::printf("exactly the \"moderate-to-low request rate, very "
                "large footprint\" regime McDipper targets.\n");

    // Sensitivity: slower (cheaper, TLC-like) flash.
    std::printf("\nWith 20 us flash reads (denser/cheaper NAND):\n");
    ServerModelParams slow;
    slow.core = cpu::cortexA7Params();
    slow.memory = MemoryKind::Flash;
    slow.flashReadLatency = 20 * tickUs;
    slow.storeMemLimit = 192 * miB;
    ServerModel node(slow);
    const Measurement m = node.measureGets(photo, 16, 4);
    std::printf("Iridium    GET: %6.0f TPS  avg %7.0f us  sub-ms "
                "%3.0f%%\n",
                m.avgTps, m.avgRttUs, m.subMsFraction * 100);
    return 0;
}
