/**
 * @file
 * Quickstart: the functional memcached-compatible store and the
 * single-node server timing model in a dozen lines each.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "kvstore/protocol.hh"
#include "kvstore/store.hh"
#include "server/server_model.hh"

int
main()
{
    using namespace mercury;

    // ------------------------------------------------------------
    // 1. A real key-value store: memcached semantics, slab
    //    allocator, LRU eviction, TTLs.
    // ------------------------------------------------------------
    kvstore::StoreParams store_params;
    store_params.memLimit = 64 * miB;
    kvstore::Store store(store_params);

    store.set("user:42", "{\"name\":\"ada\"}");
    store.set("session:9", "token-xyz", 0, /* ttl seconds */ 300);

    const kvstore::GetResult hit = store.get("user:42");
    std::printf("GET user:42 -> %s (cas %llu)\n", hit.value.c_str(),
                static_cast<unsigned long long>(hit.cas));

    std::uint64_t counter = 0;
    store.set("visits", "100");
    store.incr("visits", 5, counter);
    std::printf("INCR visits -> %llu\n",
                static_cast<unsigned long long>(counter));

    // The wire protocol works too (text protocol, fragmentable).
    kvstore::ServerSession session(store);
    std::printf("protocol: %s",
                session.consume("get visits\r\n").c_str());

    // ------------------------------------------------------------
    // 2. A Mercury node: one Cortex-A7 on a 3D stack with 4 GB of
    //    DRAM and an integrated 10GbE NIC. Measure what a 64 B GET
    //    costs end to end.
    // ------------------------------------------------------------
    server::ServerModelParams node;
    node.core = cpu::cortexA7Params();
    node.withL2 = false;  // Mercury foregoes the L2 (Sec. 4.1.3)
    node.memory = server::MemoryKind::StackedDram;
    server::ServerModel mercury_node(node);

    const server::Measurement m = mercury_node.measureGets(64);
    std::printf("\nMercury A7 node, 64 B GETs:\n");
    std::printf("  %.0f transactions/s (round trip %.1f us)\n",
                m.avgTps, m.avgRttUs);
    std::printf("  time split: %.0f%% network stack, %.0f%% "
                "memcached, %.0f%% hash\n",
                m.avgBreakdown.netstackFraction() * 100,
                m.avgBreakdown.memcachedFraction() * 100,
                m.avgBreakdown.hashFraction() * 100);

    // ------------------------------------------------------------
    // 3. The same node with the DRAM swapped for 19.8 GB of 3D
    //    NAND: Iridium. Denser, slower, still sub-millisecond.
    // ------------------------------------------------------------
    node.memory = server::MemoryKind::Flash;
    node.withL2 = true;  // Iridium requires the L2 (Sec. 4.2.1)
    server::ServerModel iridium_node(node);

    const server::Measurement i = iridium_node.measureGets(64);
    std::printf("\nIridium A7 node, 64 B GETs:\n");
    std::printf("  %.0f transactions/s, %.0f%% of requests under "
                "1 ms\n",
                i.avgTps, i.subMsFraction * 100);
    return 0;
}
