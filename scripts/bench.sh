#!/usr/bin/env bash
# Host-performance benchmark runner.
#
# Builds the release preset and runs the simulator self-benchmark,
# leaving BENCH_selfbench.json in the repo root:
#
#   - event-queue events/sec, intrusive vs std::set reference
#     (clocked and scattered scheduling patterns) and the arena
#     one-shot churn rate;
#   - kv-store GET/SET ops/sec through the server timing model;
#   - datapath request walk reqs/sec: kernel path vs the batched
#     bypass fast path (host-side cost of the batching bookkeeping);
#   - fig5-style sweep wall-clock, serial vs --jobs N;
#   - a 96-node cluster run, serial vs the sharded PDES engine
#     (--shards), with a byte-identity check on the results --
#     the probe fails if sharded output diverges from serial.
#
# Numbers are host-dependent; nothing here is golden, but the
# per-second rates are compared against the committed
# BENCH_selfbench.json via tools/perfguard.py (advisory here, a
# hard gate in scripts/check.sh). Pass --smoke for the CI-sized run
# (scripts/check.sh uses that for its perf-smoke stage).
#
# Usage: scripts/bench.sh [--smoke] [--jobs=N] [--out=PATH]

set -eu -o pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target selfbench micro_sim

./build/release/bench/selfbench "$@"

# Compare the fresh rates against the committed baseline (the
# HEAD version, since the default --out just overwrote the file in
# the worktree). Advisory here -- hosts differ; scripts/check.sh
# runs the same guard as a hard failure against its own smoke run.
out=BENCH_selfbench.json
for arg in "$@"; do
    case "$arg" in
        --out=*) out="${arg#--out=}" ;;
    esac
done
if git show HEAD:BENCH_selfbench.json \
        > /tmp/mercury-selfbench-baseline.json 2>/dev/null; then
    python3 tools/perfguard.py \
        /tmp/mercury-selfbench-baseline.json "$out" \
        || echo "bench.sh: perfguard reported a regression (advisory)"
else
    echo "bench.sh: no committed baseline; skipping perfguard"
fi

# The google-benchmark micro suite prints per-operation costs for
# the same substrate; useful next to the selfbench aggregate rates.
./build/release/bench/micro_sim --benchmark_filter='EventQueue'
