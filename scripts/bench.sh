#!/usr/bin/env bash
# Host-performance benchmark runner.
#
# Builds the release preset and runs the simulator self-benchmark,
# leaving BENCH_selfbench.json in the repo root:
#
#   - event-queue events/sec, intrusive vs std::set reference
#     (clocked and scattered scheduling patterns) and the arena
#     one-shot churn rate;
#   - kv-store GET/SET ops/sec through the server timing model;
#   - fig5-style sweep wall-clock, serial vs --jobs N;
#   - a 96-node cluster run, serial vs the sharded PDES engine
#     (--shards), with a byte-identity check on the results --
#     the probe fails if sharded output diverges from serial.
#
# Numbers are host-dependent; nothing here is golden. Pass --smoke
# for the CI-sized run (scripts/check.sh uses that for its
# perf-smoke stage).
#
# Usage: scripts/bench.sh [--smoke] [--jobs=N] [--out=PATH]

set -eu -o pipefail

cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target selfbench micro_sim

./build/release/bench/selfbench "$@"

# The google-benchmark micro suite prints per-operation costs for
# the same substrate; useful next to the selfbench aggregate rates.
./build/release/bench/micro_sim --benchmark_filter='EventQueue'
