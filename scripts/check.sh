#!/usr/bin/env bash
# Correctness gate for the Mercury simulator.
#
# Runs, in order:
#   1. the asan-ubsan preset: configure, build (-Werror), full ctest
#      under AddressSanitizer + UBSan with expensive invariant checks
#      (MERCURY_EXTRA_CHECKS) compiled in;
#   2. the conservative-PDES label (`ctest -L pdes`) under release:
#      the ShardedSim lockstep twin fuzzer, cluster byte-identity
#      across shard counts, and the --shards x --jobs binary-output
#      matrix;
#   3. the tsan preset: golden + parallel-sweep determinism + pdes
#      suites and the thread-pool unit tests under ThreadSanitizer
#      (the `--jobs` and `--shards` machinery must be race-free, not
#      just byte-stable);
#   4. the timeseries label (windowed-JSONL golden, --timeseries-out
#      jobs-invariance, Chrome-trace exporter) under both the release
#      and asan-ubsan builds;
#   5. smoke reproducibility of the fault_sweep and bad_day benches
#      (two runs byte-identical) and the fault/resilience label
#      (`ctest -L fault`): replication, hedging, shedding and the
#      bad-day recovery-curve golden under asan-ubsan;
#   6. a perf smoke: the release selfbench --smoke must run and emit
#      well-formed JSON, and its per-second rates must stay within
#      tolerance of the committed BENCH_selfbench.json
#      (tools/perfguard.py; wall-clock fields stay advisory);
#   7. the static-analysis label (`ctest -L lint`): the mercury_lint
#      fixture goldens for both engines, the repo-clean check, the
#      suppression budget, and the clang thread-safety negative
#      compile (clang-only checks report as skipped without clang);
#   8. a clang -Wthread-safety -Werror build of the whole tree via
#      the clang-tsa preset (skipped when clang++ is not installed);
#   9. clang-tidy over src/ against the asan-ubsan compile database
#      (a hard failure when installed; skipped with a warning when
#      not -- the CI image may not ship it);
#  10. the project-specific lint rules in tools/lint/mercury_lint.py
#      over src/ and bench/ (AST engine against the asan-ubsan
#      compile database when libclang is importable, the regex
#      fallback otherwise), plus the waiver-budget ratchet.
#
# The golden observability suite (`ctest -L golden`) runs inside both
# the asan-ubsan ctest pass and an explicit release-preset stage, so a
# stats drift fails this gate under either compiler mode. The line
# coverage gate lives in scripts/coverage.sh.
#
# Fails on the first stage that reports a problem. Usage:
#   scripts/check.sh [--skip-build]

set -u -o pipefail

cd "$(dirname "$0")/.."

skip_build=0
for arg in "$@"; do
    case "$arg" in
      --skip-build) skip_build=1 ;;
      *) echo "usage: scripts/check.sh [--skip-build]" >&2; exit 2 ;;
    esac
done

failures=0

note() { printf '\n== %s ==\n' "$*"; }

if [ "$skip_build" -eq 0 ]; then
    note "asan-ubsan build + tests"
    if ! cmake --preset asan-ubsan; then
        echo "check.sh: asan-ubsan configure failed" >&2
        exit 1
    fi
    if ! cmake --build --preset asan-ubsan -j "$(nproc)"; then
        echo "check.sh: asan-ubsan build failed (warnings are errors)" >&2
        exit 1
    fi
    if ! ctest --preset asan-ubsan; then
        echo "check.sh: tests failed under asan-ubsan" >&2
        exit 1
    fi

    # The golden observability dumps must be byte-stable across
    # presets: run just the golden label again under release. (The
    # asan-ubsan ctest above already covered the sanitized build.)
    note "golden stats dumps under the release preset"
    if ! cmake --preset release; then
        echo "check.sh: release configure failed" >&2
        exit 1
    fi
    if ! cmake --build --preset release -j "$(nproc)" --target \
            fig4_request_breakdown fig5_mercury_latency \
            fig6_iridium_latency datapath_sweep fault_sweep \
            cluster_tail bad_day test_pdes; then
        echo "check.sh: release bench build failed" >&2
        exit 1
    fi
    if ! ctest --test-dir build/release -L golden --output-on-failure; then
        echo "check.sh: golden suite failed under release" >&2
        exit 1
    fi

    # Conservative-PDES determinism gate: the ShardedSim lockstep
    # twin fuzzer, cluster byte-identity across shard counts, and
    # the --shards x --jobs binary-output matrix.
    note "pdes suite (ctest -L pdes, release)"
    if ! ctest --test-dir build/release -L pdes --output-on-failure
    then
        echo "check.sh: pdes suite failed under release" >&2
        exit 1
    fi

    # Time-resolved telemetry: the windowed-JSONL golden, the
    # --jobs invariance of --timeseries-out, and the Chrome-trace
    # exporter, under both the release and sanitized builds (the
    # sampler must be deterministic in either).
    note "timeseries suite (release + asan-ubsan)"
    if ! ctest --test-dir build/release -L timeseries \
            --output-on-failure; then
        echo "check.sh: timeseries suite failed under release" >&2
        exit 1
    fi
    if ! ctest --test-dir build/asan-ubsan -L timeseries \
            --output-on-failure; then
        echo "check.sh: timeseries suite failed under asan-ubsan" >&2
        exit 1
    fi

    note "fault_sweep smoke (runs + is deterministic)"
    sweep=build/asan-ubsan/bench/fault_sweep
    if ! "$sweep" --smoke > /tmp/mercury-fault-sweep-1.txt || \
       ! "$sweep" --smoke > /tmp/mercury-fault-sweep-2.txt; then
        echo "check.sh: fault_sweep --smoke failed" >&2
        exit 1
    fi
    if ! diff /tmp/mercury-fault-sweep-1.txt \
              /tmp/mercury-fault-sweep-2.txt; then
        echo "check.sh: fault_sweep output not reproducible" >&2
        exit 1
    fi
    echo "fault_sweep: two runs byte-identical"

    note "bad_day smoke (runs + is deterministic)"
    bad_day=build/asan-ubsan/bench/bad_day
    if ! "$bad_day" --smoke > /tmp/mercury-bad-day-1.txt || \
       ! "$bad_day" --smoke > /tmp/mercury-bad-day-2.txt; then
        echo "check.sh: bad_day --smoke failed" >&2
        exit 1
    fi
    if ! diff /tmp/mercury-bad-day-1.txt /tmp/mercury-bad-day-2.txt
    then
        echo "check.sh: bad_day output not reproducible" >&2
        exit 1
    fi
    echo "bad_day: two runs byte-identical"

    # The fault/resilience label: injector, crash/restart and
    # replication semantics, hedging, shedding, backoff properties,
    # plus the bad-day golden and determinism runs.
    note "fault suite (ctest -L fault)"
    if ! ctest --test-dir build/asan-ubsan -L fault \
            --output-on-failure; then
        echo "check.sh: fault suite failed under asan-ubsan" >&2
        exit 1
    fi

    note "tsan: determinism + golden + pdes suites + thread-pool tests"
    if ! cmake --preset tsan; then
        echo "check.sh: tsan configure failed" >&2
        exit 1
    fi
    if ! cmake --build --preset tsan -j "$(nproc)"; then
        echo "check.sh: tsan build failed (warnings are errors)" >&2
        exit 1
    fi
    if ! ctest --test-dir build/tsan -L "golden|determinism|pdes" \
            --output-on-failure; then
        echo "check.sh: golden/determinism/pdes failed under tsan" >&2
        exit 1
    fi
    if ! ./build/tsan/tests/test_sim \
            --gtest_filter='ThreadPool.*'; then
        echo "check.sh: thread-pool tests failed under tsan" >&2
        exit 1
    fi

    note "perf smoke (release selfbench)"
    if ! cmake --build --preset release -j "$(nproc)" \
            --target selfbench; then
        echo "check.sh: selfbench build failed" >&2
        exit 1
    fi
    selfbench_json=/tmp/mercury-selfbench-smoke.json
    if ! ./build/release/bench/selfbench --smoke \
            --out="$selfbench_json" > /tmp/mercury-selfbench.log; then
        echo "check.sh: selfbench --smoke failed" >&2
        exit 1
    fi
    if ! python3 - "$selfbench_json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
for section, keys in {
    "queue": ["intrusive_events_per_sec", "reference_events_per_sec",
              "speedup", "arena_events_per_sec"],
    "store": ["ops_per_sec"],
    "datapath": ["kernel_reqs_per_sec", "bypass_reqs_per_sec",
                 "batched_reqs_per_sec", "batching_speedup"],
    "sweep": ["serial_ms", "parallel_ms", "speedup", "jobs"],
    "pdes": ["nodes", "shards", "serial_ms", "sharded_ms",
             "speedup", "identical"],
}.items():
    for key in keys:
        value = report[section][key]
        assert value > 0, f"{section}.{key} = {value}"
print("selfbench JSON well-formed:",
      f"queue speedup {report['queue']['speedup']:.2f}x,",
      f"sweep speedup {report['sweep']['speedup']:.2f}x",
      f"at --jobs {report['sweep']['jobs']},",
      f"pdes speedup {report['pdes']['speedup']:.2f}x",
      f"at --shards {report['pdes']['shards']} (identical)")
PYEOF
    then
        echo "check.sh: selfbench JSON malformed" >&2
        exit 1
    fi
    # Rate regression guard: the smoke run's per-second rates must
    # stay within tolerance of the committed full-run baseline
    # (perfguard doubles its 25% slack across the smoke/full gap).
    # Guard a second run -- the first doubles as cache warmup; a
    # cold run right after the build can sit 2-3x below steady
    # state on this host and would flake the gate.
    if ! ./build/release/bench/selfbench --smoke \
            --out="$selfbench_json" >> /tmp/mercury-selfbench.log
    then
        echo "check.sh: selfbench --smoke rerun failed" >&2
        exit 1
    fi
    if ! python3 tools/perfguard.py BENCH_selfbench.json \
            "$selfbench_json"; then
        echo "check.sh: selfbench rates regressed vs committed" \
             "BENCH_selfbench.json (tools/perfguard.py)" >&2
        exit 1
    fi
else
    note "asan-ubsan build + tests (skipped)"
fi

note "static-analysis suite (ctest -L lint)"
if [ -d build/release ]; then
    if ! ctest --test-dir build/release -L lint --output-on-failure; then
        echo "check.sh: lint suite failed" >&2
        exit 1
    fi
else
    echo "build/release missing; running the fixture harness directly"
    if ! python3 tests/lint/run_lint_fixtures.py regex; then
        echo "check.sh: lint fixture goldens failed" >&2
        exit 1
    fi
fi

note "clang thread-safety build (-Wthread-safety -Werror)"
if command -v clang++ >/dev/null 2>&1; then
    if ! cmake --preset clang-tsa; then
        echo "check.sh: clang-tsa configure failed" >&2
        exit 1
    fi
    if ! cmake --build --preset clang-tsa -j "$(nproc)"; then
        echo "check.sh: clang-tsa build failed (thread-safety" \
             "analysis findings are errors)" >&2
        exit 1
    fi
    echo "clang-tsa: whole tree clean under -Wthread-safety -Werror"
else
    echo "clang++ not installed; skipping (preset is clang-tsa)"
fi

note "clang-tidy"
if command -v run-clang-tidy >/dev/null 2>&1; then
    # The asan-ubsan preset exports compile_commands.json. Findings
    # are a hard failure: the config's WarningsAsErrors covers the
    # bugprone-, performance-, and concurrency- families.
    if ! run-clang-tidy -quiet -p build/asan-ubsan \
            "$(pwd)/src/.*" > /tmp/mercury-clang-tidy.log 2>&1; then
        echo "check.sh: clang-tidy reported findings:" >&2
        grep -E "(warning|error):" /tmp/mercury-clang-tidy.log >&2 || \
            tail -50 /tmp/mercury-clang-tidy.log >&2
        exit 1
    fi
    echo "clang-tidy: clean"
elif command -v clang-tidy >/dev/null 2>&1; then
    tidy_rc=0
    while IFS= read -r src; do
        clang-tidy -p build/asan-ubsan --quiet "$src" || tidy_rc=1
    done < <(find src -name '*.cc')
    if [ "$tidy_rc" -ne 0 ]; then
        echo "check.sh: clang-tidy reported findings" >&2
        exit 1
    fi
    echo "clang-tidy: clean"
else
    echo "clang-tidy not installed; skipping (config is .clang-tidy)"
fi

note "mercury lint"
# The AST engine picks up per-file flags from the asan-ubsan compile
# database; without libclang the driver falls back to the regex
# engine and ignores -p.
if ! python3 tools/lint/mercury_lint.py -p build/asan-ubsan \
        src bench; then
    failures=$((failures + 1))
fi
if ! python3 tools/lint/mercury_lint.py --budget; then
    failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
    echo
    echo "check.sh: FAILED ($failures stage(s) reported findings)" >&2
    exit 1
fi
echo
echo "check.sh: all stages clean"
