#!/usr/bin/env bash
# Correctness gate for the Mercury simulator.
#
# Runs, in order:
#   1. the asan-ubsan preset: configure, build (-Werror), full ctest
#      under AddressSanitizer + UBSan with expensive invariant checks
#      (MERCURY_EXTRA_CHECKS) compiled in;
#   2. clang-tidy over src/ (skipped with a warning when clang-tidy is
#      not installed -- the CI image may not ship it);
#   3. the project-specific lint rules in tools/lint/mercury_lint.py.
#
# The golden observability suite (`ctest -L golden`) runs inside both
# the asan-ubsan ctest pass and an explicit release-preset stage, so a
# stats drift fails this gate under either compiler mode. The line
# coverage gate lives in scripts/coverage.sh.
#
# Fails on the first stage that reports a problem. Usage:
#   scripts/check.sh [--skip-build]

set -u -o pipefail

cd "$(dirname "$0")/.."

skip_build=0
for arg in "$@"; do
    case "$arg" in
      --skip-build) skip_build=1 ;;
      *) echo "usage: scripts/check.sh [--skip-build]" >&2; exit 2 ;;
    esac
done

failures=0

note() { printf '\n== %s ==\n' "$*"; }

if [ "$skip_build" -eq 0 ]; then
    note "asan-ubsan build + tests"
    if ! cmake --preset asan-ubsan; then
        echo "check.sh: asan-ubsan configure failed" >&2
        exit 1
    fi
    if ! cmake --build --preset asan-ubsan -j "$(nproc)"; then
        echo "check.sh: asan-ubsan build failed (warnings are errors)" >&2
        exit 1
    fi
    if ! ctest --preset asan-ubsan; then
        echo "check.sh: tests failed under asan-ubsan" >&2
        exit 1
    fi

    # The golden observability dumps must be byte-stable across
    # presets: run just the golden label again under release. (The
    # asan-ubsan ctest above already covered the sanitized build.)
    note "golden stats dumps under the release preset"
    if ! cmake --preset release; then
        echo "check.sh: release configure failed" >&2
        exit 1
    fi
    if ! cmake --build --preset release -j "$(nproc)" --target \
            fig4_request_breakdown fig5_mercury_latency \
            fig6_iridium_latency; then
        echo "check.sh: release bench build failed" >&2
        exit 1
    fi
    if ! ctest --test-dir build/release -L golden --output-on-failure; then
        echo "check.sh: golden suite failed under release" >&2
        exit 1
    fi

    note "fault_sweep smoke (runs + is deterministic)"
    sweep=build/asan-ubsan/bench/fault_sweep
    if ! "$sweep" --smoke > /tmp/mercury-fault-sweep-1.txt || \
       ! "$sweep" --smoke > /tmp/mercury-fault-sweep-2.txt; then
        echo "check.sh: fault_sweep --smoke failed" >&2
        exit 1
    fi
    if ! diff /tmp/mercury-fault-sweep-1.txt \
              /tmp/mercury-fault-sweep-2.txt; then
        echo "check.sh: fault_sweep output not reproducible" >&2
        exit 1
    fi
    echo "fault_sweep: two runs byte-identical"
else
    note "asan-ubsan build + tests (skipped)"
fi

note "clang-tidy"
if command -v run-clang-tidy >/dev/null 2>&1; then
    # The asan-ubsan preset exports compile_commands.json.
    if ! run-clang-tidy -quiet -p build/asan-ubsan \
            "$(pwd)/src/.*" > /tmp/mercury-clang-tidy.log 2>&1; then
        echo "check.sh: clang-tidy reported findings:" >&2
        grep -E "(warning|error):" /tmp/mercury-clang-tidy.log >&2 || \
            tail -50 /tmp/mercury-clang-tidy.log >&2
        failures=$((failures + 1))
    else
        echo "clang-tidy: clean"
    fi
elif command -v clang-tidy >/dev/null 2>&1; then
    tidy_rc=0
    while IFS= read -r src; do
        clang-tidy -p build/asan-ubsan --quiet "$src" || tidy_rc=1
    done < <(find src -name '*.cc')
    if [ "$tidy_rc" -ne 0 ]; then
        echo "check.sh: clang-tidy reported findings" >&2
        failures=$((failures + 1))
    else
        echo "clang-tidy: clean"
    fi
else
    echo "clang-tidy not installed; skipping (config is .clang-tidy)"
fi

note "mercury lint"
if ! python3 tools/lint/mercury_lint.py src; then
    failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
    echo
    echo "check.sh: FAILED ($failures stage(s) reported findings)" >&2
    exit 1
fi
echo
echo "check.sh: all stages clean"
