#!/usr/bin/env bash
# Line-coverage gate for the observability and kv-store layers.
#
# Builds the `coverage` preset (gcov instrumentation), runs the full
# test suite, then enforces a minimum line-coverage threshold over
# src/sim and src/kvstore -- the layers the golden and property suites
# claim to lock down. Uses gcovr when installed; otherwise falls back
# to aggregating raw `gcov` summaries so the gate still runs on images
# without gcovr.
#
# Usage: scripts/coverage.sh [--min PCT] [--skip-build]

set -u -o pipefail

cd "$(dirname "$0")/.."

min_pct=75
skip_build=0
while [ "$#" -gt 0 ]; do
    case "$1" in
      --min) min_pct="$2"; shift 2 ;;
      --skip-build) skip_build=1; shift ;;
      *) echo "usage: scripts/coverage.sh [--min PCT] [--skip-build]" >&2
         exit 2 ;;
    esac
done

build_dir=build/coverage

if [ "$skip_build" -eq 0 ]; then
    cmake --preset coverage || exit 1
    cmake --build --preset coverage -j "$(nproc)" || exit 1
    # Stale counters from earlier runs would inflate the numbers.
    find "$build_dir" -name '*.gcda' -delete
    ctest --preset coverage || exit 1
fi

if command -v gcovr >/dev/null 2>&1; then
    echo "== gcovr (fail under ${min_pct}% line coverage) =="
    gcovr --root . \
          --filter 'src/sim/.*' --filter 'src/kvstore/.*' \
          --fail-under-line "$min_pct" \
          --print-summary \
          "$build_dir"
    exit $?
fi

echo "gcovr not installed; falling back to raw gcov aggregation"
python3 - "$build_dir" "$min_pct" <<'EOF'
import glob, os, re, subprocess, sys

build_dir, min_pct = sys.argv[1], float(sys.argv[2])
root = os.getcwd()

# Coverage counters for the objects of the gated layers only.
gcda = []
for layer in ("src/sim", "src/kvstore"):
    gcda += glob.glob(f"{build_dir}/{layer}/**/*.gcda", recursive=True)
if not gcda:
    sys.exit(f"coverage.sh: no .gcda files under {build_dir}; "
             "did the coverage build run?")

covered = {}   # source path -> (executed_lines, total_lines)
for path in gcda:
    out = subprocess.run(
        ["gcov", "-n", "-o", os.path.dirname(path), path],
        capture_output=True, text=True).stdout
    for m in re.finditer(
            r"File '([^']+)'\nLines executed:([0-9.]+)% of (\d+)", out):
        src, pct, total = m.group(1), float(m.group(2)), int(m.group(3))
        src = os.path.relpath(os.path.join(root, src), root)
        if not (src.startswith("src/sim/") or
                src.startswith("src/kvstore/")):
            continue
        executed = round(pct * total / 100.0)
        # The same source shows up once per including object; keep the
        # best-covered view (counters are per-object, not merged).
        prev = covered.get(src)
        if prev is None or executed > prev[0]:
            covered[src] = (executed, total)

total = sum(t for _, t in covered.values())
executed = sum(e for e, _ in covered.values())
pct = 100.0 * executed / total if total else 0.0
for src in sorted(covered):
    e, t = covered[src]
    print(f"  {src}: {100.0 * e / t if t else 0.0:5.1f}% ({e}/{t})")
print(f"line coverage over src/sim + src/kvstore: {pct:.1f}% "
      f"({executed}/{total})")
if pct < min_pct:
    sys.exit(f"coverage.sh: FAILED -- {pct:.1f}% < {min_pct:.0f}%")
print("coverage.sh: OK")
EOF
