#!/usr/bin/env bash
# Regenerate the golden observability dumps under tests/golden/.
#
# Run this after an *intentional* behaviour or stats-schema change,
# eyeball the diff (tools/statdiff.py shows it key by key), and
# commit the new goldens together with the change that moved them.
#
# Usage: scripts/update_goldens.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build=${1:-build}

if [ ! -d "$build" ]; then
    echo "build directory '$build' not found; configure first:" >&2
    echo "  cmake --preset release && cmake --build --preset release" >&2
    exit 1
fi

cmake --build "$build" -j "$(nproc)" --target \
    fig4_request_breakdown fig5_mercury_latency fig6_iridium_latency \
    datapath_sweep fault_sweep bad_day

declare -A benches=(
    [fig4_smoke]=fig4_request_breakdown
    [fig5_smoke]=fig5_mercury_latency
    [fig6_smoke]=fig6_iridium_latency
    [datapath_smoke]=datapath_sweep
)

for golden in "${!benches[@]}"; do
    bin=$build/bench/${benches[$golden]}
    out=tests/golden/$golden.json
    if [ -f "$out" ]; then
        cp "$out" "$out.orig"
    fi
    "$bin" --smoke --stats-json="$out" > /dev/null
    echo "$(python3 tools/statdiff.py --digest "$out")  $out"
    if [ -f "$out.orig" ]; then
        python3 tools/statdiff.py -q "$out.orig" "$out" || true
        rm -f "$out.orig"
    fi
done

# Windowed-telemetry golden: the fault_sweep recovery curve's JSONL
# (tests/golden/run_timeseries_golden.sh pins these bytes).
ts_out=tests/golden/fault_recovery_smoke.jsonl
if [ -f "$ts_out" ]; then
    cp "$ts_out" "$ts_out.orig"
fi
"$build/bench/fault_sweep" --smoke --sample-interval=5000 \
    --timeseries-out="$ts_out" > /dev/null
echo "$(python3 tools/statdiff.py --digest "$ts_out")  $ts_out"
if [ -f "$ts_out.orig" ]; then
    python3 tools/tsplot.py diff -q "$ts_out.orig" "$ts_out" || true
    rm -f "$ts_out.orig"
fi

# The bad-day availability/latency recovery curves (per scenario).
bd_out=tests/golden/bad_day_smoke.jsonl
if [ -f "$bd_out" ]; then
    cp "$bd_out" "$bd_out.orig"
fi
"$build/bench/bad_day" --smoke --sample-interval=5000 \
    --timeseries-out="$bd_out" > /dev/null
echo "$(python3 tools/statdiff.py --digest "$bd_out")  $bd_out"
if [ -f "$bd_out.orig" ]; then
    python3 tools/tsplot.py diff -q "$bd_out.orig" "$bd_out" || true
    rm -f "$bd_out.orig"
fi

echo "goldens updated; review and commit tests/golden/*.json(l)"
