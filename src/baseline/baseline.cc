#include "baseline/baseline.hh"

#include "sim/logging.hh"

namespace mercury::baseline
{

namespace
{

/** Published Table 4 rows: deployment size and throughput. */
struct PublishedRow
{
    const char *name;
    unsigned cores;
    double memoryGB;
    double mtps;
};

PublishedRow
publishedFor(MemcachedVersion version)
{
    switch (version) {
      case MemcachedVersion::V14:
        return {"Memcached 1.4", 6, 12.0, 0.41};
      case MemcachedVersion::V16:
        return {"Memcached 1.6", 4, 128.0, 0.52};
      case MemcachedVersion::Bags:
        return {"Memcached Bags", 16, 128.0, 3.15};
    }
    mercury_panic("unknown memcached version");
}

} // anonymous namespace

ScalingParams
scalingFor(MemcachedVersion version)
{
    // Sigma reflects the locking design: 1.4 serializes on the
    // global cache lock for every operation (strict LRU reorders on
    // GETs); 1.6 stripes the hash locks but keeps an LRU lock; Bags
    // removes list updates from the GET path entirely.
    double sigma, kappa;
    switch (version) {
      case MemcachedVersion::V14:
        sigma = 0.25;
        kappa = 0.003;
        break;
      case MemcachedVersion::V16:
        sigma = 0.10;
        kappa = 0.002;
        break;
      case MemcachedVersion::Bags:
        sigma = 0.015;
        kappa = 0.0002;
        break;
      default:
        mercury_panic("unknown memcached version");
    }

    // Derive the single-thread ceiling so the published deployment
    // reproduces exactly under the USL curve.
    const PublishedRow row = publishedFor(version);
    const double n = row.cores;
    const double denom = 1.0 + sigma * (n - 1.0) +
                         kappa * n * (n - 1.0);
    const double per_core = row.mtps * 1e6 * denom / n;
    return {sigma, kappa, per_core};
}

double
scaledTps(const ScalingParams &params, unsigned threads)
{
    mercury_assert(threads >= 1, "need at least one thread");
    const double n = threads;
    const double denom = 1.0 + params.sigma * (n - 1.0) +
                         params.kappa * n * (n - 1.0);
    return params.perCoreTps * n / denom;
}

double
xeonServerPowerW(unsigned cores, double memory_gb)
{
    // Fit to the paper's three baseline rows (143/159/285 W):
    // platform base, per-active-core, and per-GB DIMM draw.
    return 76.2 + 10.5 * cores + 0.319 * memory_gb;
}

BaselineServer
memcachedBaseline(MemcachedVersion version, unsigned cores,
                  double memory_gb)
{
    const PublishedRow row = publishedFor(version);
    BaselineServer server;
    server.name = row.name;
    server.cores = cores;
    server.memoryGB = memory_gb;
    server.powerW = xeonServerPowerW(cores, memory_gb);
    server.tps = scaledTps(scalingFor(version), cores);
    server.bwGBs = server.tps * 64.0 / 1e9;
    return server;
}

BaselineServer
memcachedBaseline(MemcachedVersion version)
{
    const PublishedRow row = publishedFor(version);
    return memcachedBaseline(version, row.cores, row.memoryGB);
}

BaselineServer
tsspReference()
{
    BaselineServer server;
    server.name = "TSSP";
    server.cores = 1;
    server.memoryGB = 8.0;
    server.powerW = 16.0;
    server.tps = 0.28e6;
    server.bwGBs = 0.04;
    return server;
}

} // namespace mercury::baseline
