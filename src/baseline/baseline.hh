/**
 * @file
 * Baseline servers for the Table 4 comparison: a state-of-the-art
 * 1.5U Xeon-class box running Memcached 1.4, stock 1.6, or the Bags
 * build (Wiggins & Langston), plus the TSSP accelerator row.
 *
 * Per-core ceilings for the three software versions come from the
 * published numbers (0.41 MTPS on 6 cores, 0.52 MTPS on 4, 3.15
 * MTPS on 16), exactly as the paper cites them; our Xeon-class
 * simulation provides an independent sanity cross-check. Thread
 * scaling uses a Universal-Scalability-Law contention model whose
 * sigma reflects each version's locking design (global cache lock vs
 * striped locks + Bags), matching the qualitative analysis in
 * Sec. 3.6. Server wall power follows a base + per-core + per-GB fit
 * that reproduces the paper's three baseline rows exactly.
 */

#ifndef MERCURY_BASELINE_BASELINE_HH
#define MERCURY_BASELINE_BASELINE_HH

#include <string>

namespace mercury::baseline
{

enum class MemcachedVersion { V14, V16, Bags };

/** USL-style thread-scaling parameters. */
struct ScalingParams
{
    /** Serialization (lock contention) coefficient. */
    double sigma;
    /** Coherence (cross-thread data movement) coefficient. */
    double kappa;
    /** Single-thread 64 B GET ceiling for this software version. */
    double perCoreTps;
};

/** Scaling parameters per memcached version. */
ScalingParams scalingFor(MemcachedVersion version);

/** Universal Scalability Law: X(n). */
double scaledTps(const ScalingParams &params, unsigned threads);

/** Wall power of the baseline Xeon server: base + cores + DRAM.
 * Fitted to the paper's three baseline rows. */
double xeonServerPowerW(unsigned cores, double memory_gb);

/** One comparison row (Table 4 format). */
struct BaselineServer
{
    std::string name;
    unsigned cores = 0;
    double memoryGB = 0.0;
    double powerW = 0.0;
    double tps = 0.0;
    double bwGBs = 0.0;

    double tpsPerWatt() const { return tps / powerW; }
    double tpsPerGB() const { return tps / memoryGB; }
};

/** The published deployment for each version (cores and DRAM as the
 * paper lists them). */
BaselineServer memcachedBaseline(MemcachedVersion version);

/** Memcached on an arbitrary core/memory configuration (used by the
 * scaling ablation). */
BaselineServer memcachedBaseline(MemcachedVersion version,
                                 unsigned cores, double memory_gb);

/** The TSSP accelerator row (Lim et al., literature constants). */
BaselineServer tsspReference();

} // namespace mercury::baseline

#endif // MERCURY_BASELINE_BASELINE_HH
