/**
 * @file
 * Client retry backoff policy, shared by the cluster simulation and
 * its property tests.
 */

#ifndef MERCURY_CLUSTER_BACKOFF_HH
#define MERCURY_CLUSTER_BACKOFF_HH

#include "sim/fault.hh"
#include "sim/types.hh"

namespace mercury::cluster
{

/**
 * Jittered exponential client backoff: base * 2^attempt scaled by a
 * uniform factor in [1-jitter, 1+jitter] drawn from the injector's
 * RNG stream, so concurrent clients decorrelate instead of
 * retry-storming in lockstep. Deterministic: identical injector
 * state and arguments produce identical waits, hence identical
 * retry timelines for identical seeds.
 */
inline Tick
jitteredBackoff(Tick base, unsigned attempt, double jitter,
                fault::FaultInjector &injector)
{
    const Tick nominal = base << attempt;
    // Scaling a Tick by a unitless jitter factor, not converting
    // seconds.
    // lint: allow(tick-cast)
    return static_cast<Tick>(static_cast<double>(nominal) *
                             injector.jitter(jitter));
}

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_BACKOFF_HH
