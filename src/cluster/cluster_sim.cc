#include "cluster/cluster_sim.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::cluster
{

ClusterSim::ClusterSim(const ClusterSimParams &params)
    : params_(params), ring_(params.virtualNodes)
{
    mercury_assert(params_.nodes >= 1, "cluster needs nodes");
    nodes_.reserve(params_.nodes);
    for (unsigned i = 0; i < params_.nodes; ++i) {
        const std::string name = "node" + std::to_string(i);
        nodeNames_.push_back(name);
        ring_.addNode(name);

        server::ServerModelParams node_params = params_.node;
        node_params.name = name;
        node_params.seed = params_.seed + i + 1;
        nodes_.push_back(
            std::make_unique<server::ServerModel>(node_params));
    }
}

std::string
ClusterSim::keyFor(std::uint64_t key_id) const
{
    return workload::WorkloadGenerator::keyFor(key_id);
}

std::size_t
ClusterSim::nodeIndexFor(std::string_view key) const
{
    const std::string &owner = ring_.nodeFor(key);
    for (std::size_t i = 0; i < nodeNames_.size(); ++i) {
        if (nodeNames_[i] == owner)
            return i;
    }
    mercury_panic("ring returned unknown node ", owner);
}

void
ClusterSim::populate()
{
    if (populated_)
        return;
    for (std::uint64_t id = 0; id < params_.numKeys; ++id) {
        const std::string key = keyFor(id);
        nodes_[nodeIndexFor(key)]->put(key, params_.valueBytes);
    }
    populated_ = true;
}

double
ClusterSim::aggregateCapacity()
{
    if (capacity_ == 0.0) {
        server::ServerModelParams probe = params_.node;
        probe.name = "capacityProbe";
        server::ServerModel node(probe);
        capacity_ =
            node.measureGets(params_.valueBytes, 16, 4).avgTps *
            static_cast<double>(params_.nodes);
    }
    return capacity_;
}

ClusterSimResult
ClusterSim::run(double offered_tps)
{
    mercury_assert(offered_tps > 0.0, "offered load must be positive");
    populate();

    workload::WorkloadParams wl;
    wl.numKeys = params_.numKeys;
    wl.popularity = params_.popularity;
    wl.zipfTheta = params_.zipfTheta;
    wl.valueSize =
        workload::ValueSizeDist::fixed(params_.valueBytes);
    wl.getFraction = params_.getFraction;
    wl.seed = params_.seed;
    workload::WorkloadGenerator gen(wl);
    workload::PoissonArrivals arrivals(offered_tps,
                                       params_.seed + 99);

    // Start every node at a common time origin.
    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    for (const auto &node : nodes_)
        node->advanceTo(origin);

    std::vector<Tick> latencies;
    latencies.reserve(params_.requests);
    std::vector<std::vector<Tick>> per_node(nodes_.size());
    std::vector<std::size_t> counts(nodes_.size(), 0);

    Tick arrival = origin;
    for (unsigned i = 0; i < params_.warmup + params_.requests;
         ++i) {
        arrival = arrivals.next(arrival);
        const workload::Request request = gen.next();
        const std::string key = keyFor(request.keyId);
        const std::size_t index = nodeIndexFor(key);
        server::ServerModel &node = *nodes_[index];

        node.advanceTo(arrival);
        if (request.op == workload::Request::Op::Get)
            node.get(key);
        else
            node.put(key, params_.valueBytes);

        if (i < params_.warmup)
            continue;
        const Tick latency = node.now() - arrival;
        latencies.push_back(latency);
        per_node[index].push_back(latency);
        ++counts[index];
    }

    ClusterSimResult result;
    result.offeredTps = offered_tps;

    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    std::size_t sub_ms = 0;
    for (const Tick latency : latencies) {
        sum += ticksToUs(latency);
        if (latency < tickMs)
            ++sub_ms;
    }
    result.avgLatencyUs =
        sum / static_cast<double>(latencies.size());
    result.p99LatencyUs = ticksToUs(latencies[static_cast<
        std::size_t>(0.99 * (latencies.size() - 1))]);
    result.subMsFraction = static_cast<double>(sub_ms) /
                           static_cast<double>(latencies.size());

    // Hot-node statistics.
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
        if (counts[i] > counts[hottest])
            hottest = i;
    }
    result.hottestNodeShare =
        static_cast<double>(counts[hottest]) /
        static_cast<double>(params_.requests);

    auto p99_of = [](std::vector<Tick> &v) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        return ticksToUs(
            v[static_cast<std::size_t>(0.99 * (v.size() - 1))]);
    };
    const double hot_p99 = p99_of(per_node[hottest]);
    std::vector<double> node_p99s;
    for (auto &v : per_node) {
        if (!v.empty())
            node_p99s.push_back(p99_of(v));
    }
    std::sort(node_p99s.begin(), node_p99s.end());
    const double median_p99 = node_p99s[node_p99s.size() / 2];
    result.hotNodeTailAmplification =
        median_p99 > 0.0 ? hot_p99 / median_p99 : 0.0;
    return result;
}

} // namespace mercury::cluster
