#include "cluster/cluster_sim.hh"

#include <algorithm>
#include <deque>

#include "cluster/backoff.hh"
#include "net/shard_channel.hh"
#include "sim/contract.hh"
#include "sim/logging.hh"
#include "sim/sharded_sim.hh"

namespace mercury::cluster
{

ClusterSim::ClusterSim(const ClusterSimParams &params)
    : params_(params), ring_(params.virtualNodes),
      injector_(params.faults.seed)
{
    mercury_assert(params_.nodes >= 1, "cluster needs nodes");
    nodes_.reserve(params_.nodes);
    for (unsigned i = 0; i < params_.nodes; ++i) {
        const std::string name = "node" + std::to_string(i);
        nodeNames_.push_back(name);
        // Stripe nodes across racks (failure domains) when asked.
        ring_.addNode(name,
                      params_.racks >= 2 ? i % params_.racks : 0);

        server::ServerModelParams node_params = params_.node;
        node_params.name = name;
        node_params.seed = params_.seed + i + 1;
        node_params.tracer = params_.tracer;
        if (params_.faults.enabled) {
            node_params.net.lossProbability =
                params_.faults.packetLossProbability;
        }
        nodes_.push_back(
            std::make_unique<server::ServerModel>(node_params));
        if (params_.faults.enabled) {
            // Each node draws loss/flash faults from its own fork:
            // its stream is a function of (master seed, node name)
            // and its own op sequence only, never of how ops on
            // *other* nodes interleave -- which is what allows the
            // PDES path to run nodes on different shards and still
            // match the serial walk draw for draw.
            nodeInjectors_.push_back(
                std::make_unique<fault::FaultInjector>(
                    injector_.forkSeed(name)));
            nodes_.back()->setFaultInjector(
                nodeInjectors_.back().get());
        }
    }
}

bool
ClusterSim::requiresSerialWalk() const
{
    if (params_.tracer)
        return true;
    if (!params_.faults.enabled)
        return false;
    const ClusterResilienceParams &res = params_.resilience;
    return res.admissionControl ||
           (res.hedgedReads && effectiveReplication() >= 2);
}

std::uint64_t
ClusterSim::faultDigest() const
{
    std::uint64_t digest = injector_.timelineDigest();
    for (const auto &forked : nodeInjectors_)
        digest = forked->timelineDigest(digest);
    return digest;
}

std::string
ClusterSim::keyFor(std::uint64_t key_id) const
{
    return workload::WorkloadGenerator::keyFor(key_id);
}

std::size_t
ClusterSim::indexOfName(const std::string &name) const
{
    for (std::size_t i = 0; i < nodeNames_.size(); ++i) {
        if (nodeNames_[i] == name)
            return i;
    }
    mercury_panic("ring returned unknown node ", name);
}

std::size_t
ClusterSim::nodeIndexFor(std::string_view key) const
{
    return indexOfName(ring_.nodeFor(key));
}

unsigned
ClusterSim::effectiveReplication() const
{
    return std::min(
        std::max(1u, params_.resilience.replicationFactor),
        static_cast<unsigned>(nodes_.size()));
}

std::vector<std::string>
ClusterSim::replicaOrder(std::string_view key,
                         std::size_t count) const
{
    if (params_.resilience.rackAwareReplicas && params_.racks >= 2)
        return ring_.replicasFor(key, count, true);
    return ring_.nodesFor(key, count);
}

void
ClusterSim::populate()
{
    if (populated_)
        return;
    const unsigned replication = effectiveReplication();
    for (std::uint64_t id = 0; id < params_.numKeys; ++id) {
        const std::string key = keyFor(id);
        if (replication == 1) {
            nodes_[nodeIndexFor(key)]->put(key, params_.valueBytes);
        } else {
            for (const std::string &name :
                 replicaOrder(key, replication)) {
                nodes_[indexOfName(name)]->put(key,
                                               params_.valueBytes);
            }
        }
    }
    populated_ = true;
}

Tick
ClusterSim::timeOrigin()
{
    populate();
    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    return origin;
}

double
ClusterSim::aggregateCapacity()
{
    if (capacity_ == 0.0) {
        server::ServerModelParams probe = params_.node;
        probe.name = "capacityProbe";
        server::ServerModel node(probe);
        capacity_ =
            node.measureGets(params_.valueBytes, 16, 4).avgTps *
            static_cast<double>(params_.nodes);
    }
    return capacity_;
}

ClusterSimResult
ClusterSim::run(double offered_tps)
{
    mercury_assert(offered_tps > 0.0, "offered load must be positive");
    if (params_.shards > 1 && !requiresSerialWalk())
        return runSharded(offered_tps);
    return runSerial(offered_tps);
}

ClusterSimResult
ClusterSim::runSerial(double offered_tps)
{
    populate();

    workload::WorkloadParams wl;
    wl.numKeys = params_.numKeys;
    wl.popularity = params_.popularity;
    wl.zipfTheta = params_.zipfTheta;
    wl.valueSize =
        workload::ValueSizeDist::fixed(params_.valueBytes);
    wl.getFraction = params_.getFraction;
    wl.seed = params_.seed;
    workload::WorkloadGenerator gen(wl);
    workload::PoissonArrivals arrivals(offered_tps,
                                       params_.seed + 99);

    // Start every node at a common time origin.
    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    for (const auto &node : nodes_)
        node->advanceTo(origin);

    // Recovery-curve channels. Registered (and begun) only when a
    // sampler was attached; everything below that feeds them is
    // guarded, so an unsampled run takes the identical path.
    stats::Sampler *const sampler = params_.sampler;
    trace::Tracer *const tracer = params_.tracer;
    std::size_t ch_requests = 0, ch_ok = 0, ch_failed = 0;
    std::size_t ch_timeouts = 0, ch_shed = 0;
    std::size_t ch_attempt_timeouts = 0, ch_retries = 0;
    std::size_t ch_hedges = 0;
    std::size_t ch_crashes = 0, ch_restarts = 0;
    std::size_t ch_gets = 0, ch_hits = 0, ch_lat = 0;
    if (sampler) {
        ch_requests = sampler->addCounter("requests");
        ch_ok = sampler->addCounter("ok");
        ch_failed = sampler->addCounter("failed");
        ch_timeouts = sampler->addCounter("timeouts");
        ch_shed = sampler->addCounter("shed");
        ch_attempt_timeouts = sampler->addCounter("attempt_timeouts");
        ch_retries = sampler->addCounter("retries");
        ch_hedges = sampler->addCounter("hedges");
        ch_crashes = sampler->addCounter("crashes");
        ch_restarts = sampler->addCounter("restarts");
        ch_gets = sampler->addCounter("gets");
        ch_hits = sampler->addCounter("hits");
        sampler->addRatio("availability", ch_ok, ch_requests, 1.0);
        sampler->addRatio("hit_rate", ch_hits, ch_gets, 1.0);
        ch_lat = sampler->addLatency("lat_us");
        sampler->begin(origin);
    }

    std::vector<Tick> latencies;
    latencies.reserve(params_.requests);
    std::vector<std::vector<Tick>> per_node(nodes_.size());
    std::vector<std::size_t> counts(nodes_.size(), 0);

    ClusterSimResult result;
    result.offeredTps = offered_tps;

    // Fault-mode state. Nothing here is touched (and the injector
    // never draws) when faults are disabled, keeping such runs
    // bit-identical to a pre-fault build.
    const ClusterFaultParams &fp = params_.faults;
    const ClusterResilienceParams &res = params_.resilience;
    const unsigned replication = effectiveReplication();
    const bool hedging =
        fp.enabled && res.hedgedReads && replication >= 2;
    std::vector<bool> up(nodes_.size(), true);
    std::vector<Tick> restart_at(nodes_.size(), 0);
    /** GETs left in each node's post-restart recovery window. */
    std::vector<unsigned> recovering(nodes_.size(), 0);
    constexpr unsigned recovery_window = 200;
    const Tick crash_mean =
        fp.nodeCrashesPerSecond > 0.0
            ? secondsToTicks(1.0 / fp.nodeCrashesPerSecond)
            : 0;
    Tick next_crash = maxTick;
    if (fp.enabled && crash_mean > 0)
        next_crash = origin + injector_.nextInterval(crash_mean);

    std::uint64_t gets = 0, hits = 0;
    std::uint64_t recovery_gets = 0, recovery_hits = 0;

    // Hinted handoff: writes aimed at a down replica wait here (in
    // write order) and are replayed when the node restarts.
    std::vector<std::vector<std::uint64_t>> hints(nodes_.size());

    // Per-node outstanding-request accounting: completion times of
    // requests in flight on each node, pruned as time passes.
    std::vector<std::deque<Tick>> inflight(nodes_.size());
    auto note_inflight = [&](std::size_t n, Tick begin, Tick end) {
        std::deque<Tick> &q = inflight[n];
        while (!q.empty() && q.front() <= begin)
            q.pop_front();
        q.push_back(end);
        result.maxOutstanding = std::max<std::uint64_t>(
            result.maxOutstanding, q.size());
    };

    // Observed attempt service times drive the hedge delay: hedge
    // when the primary is slower than the configured quantile of
    // what the cluster has been delivering.
    stats::StatGroup hedge_stats("hedge");
    stats::LatencyHistogram attempt_service(
        &hedge_stats, "attempt_us", "attempt service time");
    auto hedge_delay = [&]() -> Tick {
        if (attempt_service.count() < res.hedgeWarmup)
            return res.hedgeFloor;
        const Tick quantile =
            static_cast<Tick>(
                attempt_service.percentile(res.hedgeQuantile)) *
            tickUs;
        return std::max(quantile, res.hedgeFloor);
    };

    // Retry budget: retries so far may not exceed the configured
    // fraction of requests issued so far (warmup included -- the
    // budget is a client-lifetime property, not a measurement one).
    const bool budgeted = fp.enabled && res.retryBudgetFraction > 0.0;
    std::uint64_t issued = 0;
    std::uint64_t retries_spent = 0;
    auto retry_allowed = [&]() {
        if (!budgeted)
            return true;
        return static_cast<double>(retries_spent) <
               res.retryBudgetFraction * static_cast<double>(issued);
    };

    // Worst-window availability over the full run.
    const Tick avail_window = params_.availabilityWindow;
    Tick win_end = avail_window > 0 ? origin + avail_window : maxTick;
    std::uint64_t win_requests = 0, win_ok = 0;
    auto close_window = [&]() {
        if (win_requests > 0) {
            result.minWindowAvailability = std::min(
                result.minWindowAvailability,
                static_cast<double>(win_ok) /
                    static_cast<double>(win_requests));
        }
        win_requests = 0;
        win_ok = 0;
    };

    auto crash = [&](std::size_t victim, Tick at) {
        up[victim] = false;
        restart_at[victim] = at + fp.nodeDowntime;
        injector_.record(at, fault::FaultKind::NodeCrash,
                         nodeNames_[victim]);
        ++result.crashes;
        if (sampler)
            sampler->count(ch_crashes);
    };
    auto restart = [&](std::size_t index, Tick at) {
        up[index] = true;
        // The process lost its in-memory store: it comes back cold
        // and clients re-fill it on misses.
        nodes_[index]->store().flushAll();
        // Replay the hinted writes it missed while down, in arrival
        // order, so it comes back warm for everything written during
        // the outage.
        for (const std::uint64_t key_id : hints[index]) {
            nodes_[index]->put(keyFor(key_id), params_.valueBytes);
            ++result.hintsReplayed;
        }
        hints[index].clear();
        recovering[index] = recovery_window;
        injector_.record(at, fault::FaultKind::NodeRestart,
                         nodeNames_[index]);
        ++result.restarts;
        if (sampler)
            sampler->count(ch_restarts);
    };

    Tick arrival = origin;
    for (unsigned i = 0; i < params_.warmup + params_.requests;
         ++i) {
        arrival = arrivals.next(arrival);
        const workload::Request request = gen.next();
        const std::string key = keyFor(request.keyId);
        const bool measured = i >= params_.warmup;

        // The sampler sees every request, warmup included: recovery
        // curves want the full trajectory, not just the measured
        // tail. Windows close strictly on arrival ticks, so the
        // emitted series is a pure function of the simulated
        // timeline.
        if (sampler) {
            sampler->advanceTo(arrival);
            sampler->count(ch_requests);
        }
        // Availability windows close strictly on arrival ticks, so
        // minWindowAvailability is a pure function of the simulated
        // timeline too.
        while (avail_window > 0 && arrival >= win_end) {
            close_window();
            win_end += avail_window;
        }
        ++win_requests;
        const std::uint32_t client_req =
            tracer ? tracer->beginRequest() : 0;

        if (!fp.enabled) {
            const std::size_t index = nodeIndexFor(key);
            server::ServerModel &node = *nodes_[index];

            node.advanceTo(arrival);
            {
                // Node-side spans carry the serving node's identity
                // and the client envelope as causal parent.
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                if (request.op == workload::Request::Op::Get) {
                    const server::RequestTiming timing =
                        node.get(key);
                    if (measured) {
                        ++gets;
                        hits += timing.hit ? 1 : 0;
                    }
                    if (sampler) {
                        sampler->count(ch_gets);
                        if (timing.hit)
                            sampler->count(ch_hits);
                    }
                } else {
                    node.put(key, params_.valueBytes);
                }
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, arrival,
                                   node.now(), 0);
            }
            if (tracer) {
                trace::ScopedTraceContext span_ctx(
                    tracer, trace::clientNode);
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Client, arrival,
                                   node.now(), 1);
            }

            const Tick latency = node.now() - arrival;
            ++win_ok;
            if (sampler) {
                sampler->count(ch_ok);
                sampler->recordLatency(
                    ch_lat, static_cast<std::uint64_t>(
                                latency / tickUs));
            }
            if (!measured)
                continue;
            ++result.ok;
            latencies.push_back(latency);
            per_node[index].push_back(latency);
            ++counts[index];
            continue;
        }

        // --- Fault mode -----------------------------------------

        // Nodes whose downtime elapsed come back (cold) first.
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (!up[n] && restart_at[n] <= arrival)
                restart(n, restart_at[n]);
        }
        // Explicitly scheduled fault plans. A plan due before the
        // run's time origin fires at the first arrival (plans are
        // expressed in simulated time, which populate() has already
        // advanced).
        while (auto due = injector_.popDue(arrival)) {
            const Tick at = std::max(due->at, arrival);
            switch (due->kind) {
            case fault::FaultKind::NodeCrash: {
                const std::size_t target = indexOfName(due->target);
                if (up[target])
                    crash(target, at);
                break;
            }
            case fault::FaultKind::NodeRestart: {
                const std::size_t target = indexOfName(due->target);
                if (!up[target])
                    restart(target, at);
                break;
            }
            case fault::FaultKind::NetDegrade:
            case fault::FaultKind::NetRestore: {
                // A degradation burst retunes wire loss; the restore
                // event snaps it back to the configured baseline.
                const double loss =
                    due->kind == fault::FaultKind::NetDegrade
                        ? fault::ppbToProbability(due->detail)
                        : fp.packetLossProbability;
                injector_.record(at, due->kind, due->target,
                                 due->detail);
                if (due->target == fault::allNodes) {
                    for (const auto &node : nodes_)
                        node->setPacketLoss(loss);
                } else {
                    nodes_[indexOfName(due->target)]->setPacketLoss(
                        loss);
                }
                break;
            }
            case fault::FaultKind::FlashWear: {
                // Elevated program-fail probability while a wear
                // burst is active; detail 0 marks its end.
                const double wear =
                    fault::ppbToProbability(due->detail);
                injector_.record(at, due->kind, due->target,
                                 due->detail);
                if (due->target == fault::allNodes) {
                    for (const auto &node : nodes_)
                        node->setFlashWear(wear);
                } else {
                    nodes_[indexOfName(due->target)]->setFlashWear(
                        wear);
                }
                break;
            }
            default:
                // Probabilistic kinds are never scheduled; a plan
                // carrying one is a bug in the plan builder.
                mercury_panic("unschedulable fault kind in plan: ",
                              fault::kindName(due->kind));
            }
        }
        // Poisson crashes; the last live node is never taken down.
        while (next_crash <= arrival) {
            std::vector<std::size_t> alive;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                if (up[n])
                    alive.push_back(n);
            }
            if (alive.size() > 1)
                crash(alive[injector_.pick(alive.size())],
                      next_crash);
            next_crash += injector_.nextInterval(crash_mean);
        }

        // Client request path. The client fans out over the key's
        // replica set (plain ring successors when unreplicated):
        // writes go to every up replica, GETs may be hedged, and a
        // dead-node attempt pays a timeout plus a jittered
        // exponential backoff before the next try, as real memcached
        // clients do.
        const bool is_get = request.op == workload::Request::Op::Get;
        const std::size_t fan = std::max<std::size_t>(
            replication,
            static_cast<std::size_t>(fp.maxRetries) + 1);
        const std::vector<std::string> order_names =
            replicaOrder(key, fan);
        std::vector<std::size_t> order;
        order.reserve(order_names.size());
        for (const std::string &name : order_names)
            order.push_back(indexOfName(name));
        ++issued;

        enum class Outcome { Pending, Ok, Shed, Failed, TimedOut };
        Outcome outcome = Outcome::Pending;
        Tick penalty = 0;
        Tick answered_at = arrival;

        // Admission check: a node that cannot start serving within
        // the queue-delay SLO refuses fast instead of queueing.
        auto shed_check = [&](std::size_t index, Tick begin,
                              unsigned attempt_no) {
            if (!res.admissionControl)
                return false;
            const Tick node_free = nodes_[index]->now();
            const Tick queue_delay =
                node_free > begin ? node_free - begin : 0;
            if (queue_delay <= res.sloQueueDelay)
                return false;
            answered_at = begin + res.shedResponseTime;
            outcome = Outcome::Shed;
            if (measured)
                ++result.shed;
            if (sampler)
                sampler->count(ch_shed);
            {
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, begin,
                                   answered_at, attempt_no);
            }
            return true;
        };

        struct AttemptOutcome
        {
            Tick end = 0;
            bool hit = false;
        };
        // One traced GET attempt against an up node.
        auto do_get = [&](std::size_t index, Tick begin,
                          unsigned attempt_no) {
            server::ServerModel &node = *nodes_[index];
            node.advanceTo(begin);
            bool hit = false;
            {
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                hit = node.get(key).hit;
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, begin,
                                   node.now(), attempt_no);
            }
            note_inflight(index, begin, node.now());
            return AttemptOutcome{node.now(), hit};
        };
        // Hit accounting for the GET attempt that actually answered
        // the client. A cancelled hedge loser is never accounted:
        // its result is discarded.
        auto account_get = [&](std::size_t index, bool hit) {
            if (measured) {
                ++gets;
                hits += hit ? 1 : 0;
            }
            if (sampler) {
                sampler->count(ch_gets);
                if (hit)
                    sampler->count(ch_hits);
            }
            if (recovering[index] > 0) {
                --recovering[index];
                ++recovery_gets;
                recovery_hits += hit ? 1 : 0;
            }
            // Read-through: a missed key is re-filled after the
            // client got its answer, off the critical path. With
            // replicas this doubles as read repair of a diverged
            // copy.
            if (!hit) {
                nodes_[index]->put(key, params_.valueBytes);
                if (replication >= 2)
                    ++result.readRepairs;
            }
        };
        auto finish_served = [&](std::size_t index, Tick end) {
            outcome = Outcome::Ok;
            answered_at = end;
            const Tick latency = end - arrival;
            ++win_ok;
            if (sampler) {
                sampler->count(ch_ok);
                sampler->recordLatency(
                    ch_lat, static_cast<std::uint64_t>(
                                latency / tickUs));
            }
            if (measured) {
                ++result.ok;
                latencies.push_back(latency);
                per_node[index].push_back(latency);
                ++counts[index];
            }
        };

        // Hedged GET: race the primary against one backup replica;
        // the first answer wins and the loser is cancelled.
        if (outcome == Outcome::Pending && hedging && is_get) {
            const std::size_t primary = order[0];
            std::size_t secondary = 0;
            bool have_secondary = false;
            for (std::size_t r = 1; r < replication; ++r) {
                if (up[order[r]]) {
                    secondary = order[r];
                    have_secondary = true;
                    break;
                }
            }
            if (up[primary]) {
                if (!shed_check(primary, arrival, 0)) {
                    const AttemptOutcome first =
                        do_get(primary, arrival, 0);
                    const Tick delay = hedge_delay();
                    if (have_secondary &&
                        first.end > arrival + delay) {
                        // Primary is past the hedge quantile: fire
                        // the backup.
                        const AttemptOutcome second =
                            do_get(secondary, arrival + delay, 1);
                        if (measured)
                            ++result.hedges;
                        if (sampler)
                            sampler->count(ch_hedges);
                        const bool backup_won =
                            second.end < first.end;
                        if (measured && backup_won)
                            ++result.hedgeWins;
                        const std::size_t winner =
                            backup_won ? secondary : primary;
                        const AttemptOutcome &won =
                            backup_won ? second : first;
                        const Tick won_begin =
                            backup_won ? arrival + delay : arrival;
                        attempt_service.record(
                            (won.end - won_begin) / tickUs);
                        account_get(winner, won.hit);
                        finish_served(winner, won.end);
                    } else {
                        attempt_service.record(
                            (first.end - arrival) / tickUs);
                        account_get(primary, first.hit);
                        finish_served(primary, first.end);
                    }
                }
            } else if (have_secondary) {
                // Dead primary: the hedge rescues the GET at the
                // hedge delay instead of waiting out the full
                // request timeout.
                const Tick delay = hedge_delay();
                if (measured) {
                    ++result.attemptTimeouts;
                    ++result.hedges;
                    ++result.hedgeWins;
                }
                if (sampler) {
                    sampler->count(ch_attempt_timeouts);
                    sampler->count(ch_hedges);
                }
                {
                    trace::ScopedTraceContext span_ctx(
                        tracer,
                        static_cast<std::uint16_t>(primary),
                        client_req);
                    MERCURY_TRACE_SPAN(tracer, client_req,
                                       trace::Stage::Attempt,
                                       arrival, arrival + delay, 0);
                }
                if (!shed_check(secondary, arrival + delay, 1)) {
                    const AttemptOutcome second =
                        do_get(secondary, arrival + delay, 1);
                    attempt_service.record(
                        (second.end - (arrival + delay)) / tickUs);
                    account_get(secondary, second.hit);
                    finish_served(secondary, second.end);
                }
            }
            // Whole replica set down: fall through to the generic
            // walk (which will time out over the replicas).
        }

        // Replicated write round: write every up replica at arrival,
        // hint the down ones for replay at their restart.
        if (outcome == Outcome::Pending && !is_get &&
            replication >= 2) {
            std::size_t first_up = replication;
            for (std::size_t r = 0; r < replication; ++r) {
                if (up[order[r]]) {
                    first_up = r;
                    break;
                }
            }
            if (first_up < replication &&
                !shed_check(order[first_up], arrival,
                            static_cast<unsigned>(first_up))) {
                Tick end = arrival;
                unsigned attempt_no = 0;
                for (std::size_t r = 0; r < replication; ++r) {
                    const std::size_t index = order[r];
                    if (!up[index]) {
                        hints[index].push_back(request.keyId);
                        ++result.hintsQueued;
                        continue;
                    }
                    server::ServerModel &node = *nodes_[index];
                    node.advanceTo(arrival);
                    {
                        trace::ScopedTraceContext span_ctx(
                            tracer,
                            static_cast<std::uint16_t>(index),
                            client_req);
                        node.put(key, params_.valueBytes);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Attempt,
                                           arrival, node.now(),
                                           attempt_no++);
                    }
                    note_inflight(index, arrival, node.now());
                    end = std::max(end, node.now());
                }
                // The round completes when the slowest replica
                // acked (write-all).
                finish_served(order[first_up], end);
            }
        }

        if (outcome == Outcome::Pending) {
            // Generic failover walk: successive attempts over the
            // order, a timeout per dead node and a jittered backoff
            // before each retry. A replicated write never walks past
            // its replica set -- data must not land on a
            // non-replica.
            const std::size_t walk_span =
                (!is_get && replication >= 2)
                    ? replication
                    : order.size();
            for (unsigned attempt = 0; attempt <= fp.maxRetries;
                 ++attempt) {
                const std::size_t index =
                    order[attempt % walk_span];
                const Tick attempt_begin = arrival + penalty;
                if (!up[index]) {
                    penalty += fp.requestTimeout;
                    if (measured)
                        ++result.attemptTimeouts;
                    if (sampler)
                        sampler->count(ch_attempt_timeouts);
                    {
                        // A timed-out attempt still names the node
                        // the client was waiting on.
                        trace::ScopedTraceContext span_ctx(
                            tracer,
                            static_cast<std::uint16_t>(index),
                            client_req);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Attempt,
                                           attempt_begin,
                                           arrival + penalty,
                                           attempt);
                    }
                    if (attempt < fp.maxRetries) {
                        if (!retry_allowed()) {
                            // Budget spent: give up now instead of
                            // feeding a retry storm.
                            outcome = Outcome::Failed;
                            answered_at = arrival + penalty;
                            if (measured)
                                ++result.failedRequests;
                            if (sampler)
                                sampler->count(ch_failed);
                            break;
                        }
                        ++retries_spent;
                        const Tick backoff_begin = arrival + penalty;
                        penalty += jitteredBackoff(
                            fp.backoffBase, attempt,
                            fp.backoffJitter, injector_);
                        if (measured)
                            ++result.retries;
                        if (sampler)
                            sampler->count(ch_retries);
                        {
                            trace::ScopedTraceContext span_ctx(
                                tracer, trace::clientNode,
                                client_req);
                            MERCURY_TRACE_SPAN(
                                tracer, client_req,
                                trace::Stage::Backoff,
                                backoff_begin, arrival + penalty,
                                attempt);
                        }
                    }
                    continue;
                }

                if (shed_check(index, attempt_begin, attempt))
                    break;

                if (is_get) {
                    const AttemptOutcome got =
                        do_get(index, attempt_begin, attempt);
                    if (hedging) {
                        attempt_service.record(
                            (got.end - attempt_begin) / tickUs);
                    }
                    account_get(index, got.hit);
                    finish_served(index, got.end);
                } else {
                    server::ServerModel &node = *nodes_[index];
                    node.advanceTo(attempt_begin);
                    {
                        trace::ScopedTraceContext span_ctx(
                            tracer,
                            static_cast<std::uint16_t>(index),
                            client_req);
                        node.put(key, params_.valueBytes);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Attempt,
                                           attempt_begin,
                                           node.now(), attempt);
                    }
                    note_inflight(index, attempt_begin,
                                  node.now());
                    finish_served(index, node.now());
                }
                break;
            }
        }

        if (outcome == Outcome::Pending) {
            // Exhausted every attempt against dead nodes.
            outcome = Outcome::TimedOut;
            answered_at = arrival + penalty;
            if (measured)
                ++result.timeouts;
            if (sampler)
                sampler->count(ch_timeouts);
        }
        if (tracer) {
            trace::ScopedTraceContext span_ctx(tracer,
                                               trace::clientNode);
            MERCURY_TRACE_SPAN(tracer, client_req,
                               trace::Stage::Client, arrival,
                               answered_at,
                               outcome == Outcome::Ok ? 1 : 0);
        }
    }

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        double sum = 0.0;
        std::size_t sub_ms = 0;
        for (const Tick latency : latencies) {
            sum += ticksToUs(latency);
            if (latency < tickMs)
                ++sub_ms;
        }
        result.avgLatencyUs =
            sum / static_cast<double>(latencies.size());
        result.p99LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.99 * (latencies.size() - 1))]);
        result.p999LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.999 * (latencies.size() - 1))]);
        result.subMsFraction = static_cast<double>(sub_ms) /
                               static_cast<double>(latencies.size());
    }

    // Hot-node statistics.
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
        if (counts[i] > counts[hottest])
            hottest = i;
    }
    result.hottestNodeShare =
        static_cast<double>(counts[hottest]) /
        static_cast<double>(params_.requests);

    auto p99_of = [](std::vector<Tick> &v) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        return ticksToUs(
            v[static_cast<std::size_t>(0.99 * (v.size() - 1))]);
    };
    const double hot_p99 = p99_of(per_node[hottest]);
    std::vector<double> node_p99s;
    for (auto &v : per_node) {
        if (!v.empty())
            node_p99s.push_back(p99_of(v));
    }
    if (!node_p99s.empty()) {
        std::sort(node_p99s.begin(), node_p99s.end());
        const double median_p99 = node_p99s[node_p99s.size() / 2];
        result.hotNodeTailAmplification =
            median_p99 > 0.0 ? hot_p99 / median_p99 : 0.0;
    }

    if (avail_window > 0)
        close_window();
    result.requests = params_.requests;
    result.availability = static_cast<double>(result.ok) /
                          static_cast<double>(result.requests);
    // The accounting contract: every measured request lands in
    // exactly one outcome class. Always on -- a violation here means
    // a new result class was added without wiring its accounting.
    MERCURY_ASSERT(result.accountedRequests() == result.requests,
                   "request outcomes must partition requests");
    if (gets > 0)
        result.hitRate = static_cast<double>(hits) /
                         static_cast<double>(gets);
    if (recovery_gets > 0)
        result.postRestartHitRate =
            static_cast<double>(recovery_hits) /
            static_cast<double>(recovery_gets);
    for (const auto &node : nodes_) {
        result.netDrops += node->netDrops();
        result.netRetransmits += node->netRetransmits();
    }
    result.faultTimelineDigest = faultDigest();
    if (sampler)
        sampler->finish(arrival);
    return result;
}

ClusterSimResult
ClusterSim::runSharded(double offered_tps)
{
    populate();

    // --- Setup: identical to runSerial up to the request loop -------

    workload::WorkloadParams wl;
    wl.numKeys = params_.numKeys;
    wl.popularity = params_.popularity;
    wl.zipfTheta = params_.zipfTheta;
    wl.valueSize =
        workload::ValueSizeDist::fixed(params_.valueBytes);
    wl.getFraction = params_.getFraction;
    wl.seed = params_.seed;
    workload::WorkloadGenerator gen(wl);
    workload::PoissonArrivals arrivals(offered_tps,
                                       params_.seed + 99);

    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    for (const auto &node : nodes_)
        node->advanceTo(origin);

    stats::Sampler *const sampler = params_.sampler;
    std::size_t ch_requests = 0, ch_ok = 0, ch_failed = 0;
    std::size_t ch_timeouts = 0, ch_shed = 0;
    std::size_t ch_attempt_timeouts = 0, ch_retries = 0;
    std::size_t ch_hedges = 0;
    std::size_t ch_crashes = 0, ch_restarts = 0;
    std::size_t ch_gets = 0, ch_hits = 0, ch_lat = 0;
    if (sampler) {
        ch_requests = sampler->addCounter("requests");
        ch_ok = sampler->addCounter("ok");
        ch_failed = sampler->addCounter("failed");
        ch_timeouts = sampler->addCounter("timeouts");
        ch_shed = sampler->addCounter("shed");
        ch_attempt_timeouts = sampler->addCounter("attempt_timeouts");
        ch_retries = sampler->addCounter("retries");
        ch_hedges = sampler->addCounter("hedges");
        ch_crashes = sampler->addCounter("crashes");
        ch_restarts = sampler->addCounter("restarts");
        ch_gets = sampler->addCounter("gets");
        ch_hits = sampler->addCounter("hits");
        sampler->addRatio("availability", ch_ok, ch_requests, 1.0);
        sampler->addRatio("hit_rate", ch_hits, ch_gets, 1.0);
        ch_lat = sampler->addLatency("lat_us");
        sampler->begin(origin);
    }
    // The shed/hedge channels are registered for schema parity but
    // can never fire here: admission control and hedging force the
    // serial walk.
    (void)ch_shed;
    (void)ch_hedges;

    ClusterSimResult result;
    result.offeredTps = offered_tps;

    // --- PDES engine over the node partition -------------------------

    const unsigned shard_count = std::min(
        params_.shards, static_cast<unsigned>(nodes_.size()));
    sim::ShardedSim ssim(shard_count);
    for (std::size_t n = 0; n < nodes_.size(); ++n)
        ssim.addNode(static_cast<unsigned>(n) % shard_count);
    // The cluster fabric is uniform 10GbE: the lookahead is the
    // one-way latency floor of the configured path parameters.
    net::registerUniformFabric(
        ssim, net::minOneWayLatency(params_.node.net));

    // --- Driver pass --------------------------------------------------
    //
    // Replays the client walk in arrival order drawing only from the
    // master streams (workload, arrivals, master injector). Every
    // node-model op is posted to the owning node's shard at the
    // step's arrival tick -- arrivals are nondecreasing and posts to
    // one node keep their order at equal ticks, so each node
    // services its ops in exactly the serial walk's per-node order.
    // Which node serves, and every non-Ok outcome, depends only on
    // driver state (up/down, retry budget); node-dependent numbers
    // (attempt end times, hits) land in slots for the replay pass.

    /** Filled in by node tasks during ssim.run(). */
    struct TaskSlot
    {
        Tick end = 0;
        bool hit = false;
    };
    std::deque<TaskSlot> slots;

    enum class StepKind : std::uint8_t
    {
        Serve,
        WriteRound,
        Failed,
        TimedOut
    };
    struct WriteLeg
    {
        std::uint32_t node;
        std::uint32_t slot;
    };
    struct ShardStep
    {
        Tick arrival = 0;
        Tick serveBegin = 0;
        bool measured = false;
        bool isGet = false;
        StepKind kind = StepKind::Serve;
        std::uint32_t serveNode = 0;
        std::uint32_t serveSlot = 0;
        std::uint32_t crashCount = 0;
        std::uint32_t deadAttempts = 0;
        std::uint32_t retryCount = 0;
        std::vector<std::uint32_t> restartNodes;
        std::vector<WriteLeg> writeLegs;
    };
    std::vector<ShardStep> steps;
    steps.reserve(params_.warmup + params_.requests);

    const ClusterFaultParams &fp = params_.faults;
    const ClusterResilienceParams &res = params_.resilience;
    const unsigned replication = effectiveReplication();
    std::vector<bool> up(nodes_.size(), true);
    std::vector<Tick> restart_at(nodes_.size(), 0);
    const Tick crash_mean =
        fp.nodeCrashesPerSecond > 0.0
            ? secondsToTicks(1.0 / fp.nodeCrashesPerSecond)
            : 0;
    Tick next_crash = maxTick;
    if (fp.enabled && crash_mean > 0)
        next_crash = origin + injector_.nextInterval(crash_mean);

    std::vector<std::vector<std::uint64_t>> hints(nodes_.size());

    const bool budgeted = fp.enabled && res.retryBudgetFraction > 0.0;
    std::uint64_t issued = 0;
    std::uint64_t retries_spent = 0;
    auto retry_allowed = [&]() {
        if (!budgeted)
            return true;
        return static_cast<double>(retries_spent) <
               res.retryBudgetFraction * static_cast<double>(issued);
    };

    const std::uint32_t value_bytes = params_.valueBytes;

    auto post_get = [&](std::size_t index, Tick post_at, Tick begin,
                        const std::string &key, bool refill) {
        slots.emplace_back();
        TaskSlot *slot = &slots.back();
        server::ServerModel *node = nodes_[index].get();
        ssim.post(static_cast<sim::NodeId>(index), post_at,
                  [node, slot, key, begin, refill, value_bytes] {
                      node->advanceTo(begin);
                      const bool hit = node->get(key).hit;
                      slot->end = node->now();
                      slot->hit = hit;
                      // Read-through refill: node-local, immediately
                      // after the miss, exactly where the serial
                      // walk's account_get() put it in this node's
                      // op order.
                      if (refill && !hit)
                          node->put(key, value_bytes);
                  });
        return static_cast<std::uint32_t>(slots.size() - 1);
    };
    auto post_put = [&](std::size_t index, Tick post_at, Tick begin,
                        const std::string &key) {
        slots.emplace_back();
        TaskSlot *slot = &slots.back();
        server::ServerModel *node = nodes_[index].get();
        ssim.post(static_cast<sim::NodeId>(index), post_at,
                  [node, slot, key, begin, value_bytes] {
                      node->advanceTo(begin);
                      node->put(key, value_bytes);
                      slot->end = node->now();
                  });
        return static_cast<std::uint32_t>(slots.size() - 1);
    };

    auto driver_crash = [&](std::size_t victim, Tick at,
                            ShardStep &step) {
        up[victim] = false;
        restart_at[victim] = at + fp.nodeDowntime;
        injector_.record(at, fault::FaultKind::NodeCrash,
                         nodeNames_[victim]);
        ++result.crashes;
        ++step.crashCount;
    };
    auto driver_restart = [&](std::size_t index, Tick at,
                              Tick post_at, ShardStep &step) {
        up[index] = true;
        std::vector<std::uint64_t> replay = std::move(hints[index]);
        hints[index].clear();
        result.hintsReplayed += replay.size();
        server::ServerModel *node = nodes_[index].get();
        ssim.post(static_cast<sim::NodeId>(index), post_at,
                  [this, node, replay = std::move(replay),
                   value_bytes] {
                      // Cold restart, then hinted-handoff replay in
                      // write order (node-local ops).
                      node->store().flushAll();
                      for (const std::uint64_t key_id : replay)
                          node->put(keyFor(key_id), value_bytes);
                  });
        injector_.record(at, fault::FaultKind::NodeRestart,
                         nodeNames_[index]);
        ++result.restarts;
        step.restartNodes.push_back(static_cast<std::uint32_t>(index));
    };

    Tick arrival = origin;
    for (unsigned i = 0; i < params_.warmup + params_.requests;
         ++i) {
        arrival = arrivals.next(arrival);
        const workload::Request request = gen.next();
        const std::string key = keyFor(request.keyId);

        steps.emplace_back();
        ShardStep &step = steps.back();
        step.arrival = arrival;
        step.measured = i >= params_.warmup;
        step.isGet = request.op == workload::Request::Op::Get;

        if (!fp.enabled) {
            const std::size_t index = nodeIndexFor(key);
            step.kind = StepKind::Serve;
            step.serveNode = static_cast<std::uint32_t>(index);
            step.serveBegin = arrival;
            step.serveSlot =
                step.isGet
                    ? post_get(index, arrival, arrival, key, false)
                    : post_put(index, arrival, arrival, key);
            continue;
        }

        // --- Fault mode: crash/restart/plan bookkeeping ------------

        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (!up[n] && restart_at[n] <= arrival)
                driver_restart(n, restart_at[n], arrival, step);
        }
        while (auto due = injector_.popDue(arrival)) {
            const Tick at = std::max(due->at, arrival);
            switch (due->kind) {
            case fault::FaultKind::NodeCrash: {
                const std::size_t target = indexOfName(due->target);
                if (up[target])
                    driver_crash(target, at, step);
                break;
            }
            case fault::FaultKind::NodeRestart: {
                const std::size_t target = indexOfName(due->target);
                if (!up[target])
                    driver_restart(target, at, arrival, step);
                break;
            }
            case fault::FaultKind::NetDegrade:
            case fault::FaultKind::NetRestore: {
                const double loss =
                    due->kind == fault::FaultKind::NetDegrade
                        ? fault::ppbToProbability(due->detail)
                        : fp.packetLossProbability;
                injector_.record(at, due->kind, due->target,
                                 due->detail);
                if (due->target == fault::allNodes) {
                    for (std::size_t n = 0; n < nodes_.size(); ++n) {
                        server::ServerModel *node = nodes_[n].get();
                        ssim.post(static_cast<sim::NodeId>(n),
                                  arrival, [node, loss] {
                                      node->setPacketLoss(loss);
                                  });
                    }
                } else {
                    const std::size_t n = indexOfName(due->target);
                    server::ServerModel *node = nodes_[n].get();
                    ssim.post(static_cast<sim::NodeId>(n), arrival,
                              [node, loss] {
                                  node->setPacketLoss(loss);
                              });
                }
                break;
            }
            case fault::FaultKind::FlashWear: {
                const double wear =
                    fault::ppbToProbability(due->detail);
                injector_.record(at, due->kind, due->target,
                                 due->detail);
                if (due->target == fault::allNodes) {
                    for (std::size_t n = 0; n < nodes_.size(); ++n) {
                        server::ServerModel *node = nodes_[n].get();
                        ssim.post(static_cast<sim::NodeId>(n),
                                  arrival, [node, wear] {
                                      node->setFlashWear(wear);
                                  });
                    }
                } else {
                    const std::size_t n = indexOfName(due->target);
                    server::ServerModel *node = nodes_[n].get();
                    ssim.post(static_cast<sim::NodeId>(n), arrival,
                              [node, wear] {
                                  node->setFlashWear(wear);
                              });
                }
                break;
            }
            default:
                mercury_panic("unschedulable fault kind in plan: ",
                              fault::kindName(due->kind));
            }
        }
        while (next_crash <= arrival) {
            std::vector<std::size_t> alive;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                if (up[n])
                    alive.push_back(n);
            }
            if (alive.size() > 1)
                driver_crash(alive[injector_.pick(alive.size())],
                             next_crash, step);
            next_crash += injector_.nextInterval(crash_mean);
        }

        // --- Fault mode: the client walk ---------------------------

        const std::size_t fan = std::max<std::size_t>(
            replication,
            static_cast<std::size_t>(fp.maxRetries) + 1);
        const std::vector<std::string> order_names =
            replicaOrder(key, fan);
        std::vector<std::size_t> order;
        order.reserve(order_names.size());
        for (const std::string &name : order_names)
            order.push_back(indexOfName(name));
        ++issued;

        bool resolved = false;

        // Replicated write round: write-all over the up replicas.
        if (!step.isGet && replication >= 2) {
            std::size_t first_up = replication;
            for (std::size_t r = 0; r < replication; ++r) {
                if (up[order[r]]) {
                    first_up = r;
                    break;
                }
            }
            if (first_up < replication) {
                for (std::size_t r = 0; r < replication; ++r) {
                    const std::size_t index = order[r];
                    if (!up[index]) {
                        hints[index].push_back(request.keyId);
                        ++result.hintsQueued;
                        continue;
                    }
                    step.writeLegs.push_back(WriteLeg{
                        static_cast<std::uint32_t>(index),
                        post_put(index, arrival, arrival, key)});
                }
                step.kind = StepKind::WriteRound;
                step.serveNode =
                    static_cast<std::uint32_t>(order[first_up]);
                step.serveBegin = arrival;
                resolved = true;
            }
        }

        // Generic failover walk.
        if (!resolved) {
            const std::size_t walk_span =
                (!step.isGet && replication >= 2)
                    ? replication
                    : order.size();
            Tick penalty = 0;
            for (unsigned attempt = 0; attempt <= fp.maxRetries;
                 ++attempt) {
                const std::size_t index =
                    order[attempt % walk_span];
                const Tick attempt_begin = arrival + penalty;
                if (!up[index]) {
                    penalty += fp.requestTimeout;
                    if (step.measured)
                        ++result.attemptTimeouts;
                    ++step.deadAttempts;
                    if (attempt < fp.maxRetries) {
                        if (!retry_allowed()) {
                            step.kind = StepKind::Failed;
                            if (step.measured)
                                ++result.failedRequests;
                            resolved = true;
                            break;
                        }
                        ++retries_spent;
                        penalty += jitteredBackoff(
                            fp.backoffBase, attempt,
                            fp.backoffJitter, injector_);
                        if (step.measured)
                            ++result.retries;
                        ++step.retryCount;
                    }
                    continue;
                }

                step.kind = StepKind::Serve;
                step.serveNode = static_cast<std::uint32_t>(index);
                step.serveBegin = attempt_begin;
                step.serveSlot =
                    step.isGet ? post_get(index, arrival,
                                          attempt_begin, key, true)
                               : post_put(index, arrival,
                                          attempt_begin, key);
                resolved = true;
                break;
            }
            if (!resolved) {
                step.kind = StepKind::TimedOut;
                if (step.measured)
                    ++result.timeouts;
            }
        }
    }

    // --- Dispatch: run the node work on the shards -------------------

    ssim.run();

    // --- Replay pass: serial accounting over the recorded steps ------
    //
    // The sampler emits per-window aggregates and every op of a step
    // shares the step's arrival window, so feeding a step's counts
    // together (after advanceTo(arrival)) reproduces the serial
    // walk's emission byte for byte.

    std::vector<Tick> latencies;
    latencies.reserve(params_.requests);
    std::vector<std::vector<Tick>> per_node(nodes_.size());
    std::vector<std::size_t> counts(nodes_.size(), 0);

    std::vector<unsigned> recovering(nodes_.size(), 0);
    constexpr unsigned recovery_window = 200;
    std::uint64_t gets = 0, hits = 0;
    std::uint64_t recovery_gets = 0, recovery_hits = 0;

    std::vector<std::deque<Tick>> inflight(nodes_.size());
    auto note_inflight = [&](std::size_t n, Tick begin, Tick end) {
        std::deque<Tick> &q = inflight[n];
        while (!q.empty() && q.front() <= begin)
            q.pop_front();
        q.push_back(end);
        result.maxOutstanding = std::max<std::uint64_t>(
            result.maxOutstanding, q.size());
    };

    const Tick avail_window = params_.availabilityWindow;
    Tick win_end = avail_window > 0 ? origin + avail_window : maxTick;
    std::uint64_t win_requests = 0, win_ok = 0;
    auto close_window = [&]() {
        if (win_requests > 0) {
            result.minWindowAvailability = std::min(
                result.minWindowAvailability,
                static_cast<double>(win_ok) /
                    static_cast<double>(win_requests));
        }
        win_requests = 0;
        win_ok = 0;
    };

    auto finish_served = [&](const ShardStep &step, std::size_t node,
                             Tick end) {
        const Tick latency = end - step.arrival;
        ++win_ok;
        if (sampler) {
            sampler->count(ch_ok);
            sampler->recordLatency(
                ch_lat,
                static_cast<std::uint64_t>(latency / tickUs));
        }
        if (step.measured) {
            ++result.ok;
            latencies.push_back(latency);
            per_node[node].push_back(latency);
            ++counts[node];
        }
    };
    auto account_get = [&](const ShardStep &step, std::size_t node,
                           bool hit) {
        if (step.measured) {
            ++gets;
            hits += hit ? 1 : 0;
        }
        if (sampler) {
            sampler->count(ch_gets);
            if (hit)
                sampler->count(ch_hits);
        }
        if (fp.enabled) {
            if (recovering[node] > 0) {
                --recovering[node];
                ++recovery_gets;
                recovery_hits += hit ? 1 : 0;
            }
            if (!hit && replication >= 2)
                ++result.readRepairs;
        }
    };

    for (const ShardStep &step : steps) {
        if (sampler) {
            sampler->advanceTo(step.arrival);
            sampler->count(ch_requests);
        }
        while (avail_window > 0 && step.arrival >= win_end) {
            close_window();
            win_end += avail_window;
        }
        ++win_requests;

        if (sampler) {
            for (std::uint32_t c = 0; c < step.crashCount; ++c)
                sampler->count(ch_crashes);
        }
        for (const std::uint32_t node : step.restartNodes) {
            recovering[node] = recovery_window;
            if (sampler)
                sampler->count(ch_restarts);
        }
        if (sampler) {
            for (std::uint32_t c = 0; c < step.deadAttempts; ++c)
                sampler->count(ch_attempt_timeouts);
            for (std::uint32_t c = 0; c < step.retryCount; ++c)
                sampler->count(ch_retries);
        }

        switch (step.kind) {
        case StepKind::Serve: {
            const TaskSlot &slot = slots[step.serveSlot];
            if (step.isGet)
                account_get(step, step.serveNode, slot.hit);
            if (fp.enabled)
                note_inflight(step.serveNode, step.serveBegin,
                              slot.end);
            finish_served(step, step.serveNode, slot.end);
            break;
        }
        case StepKind::WriteRound: {
            Tick end = step.arrival;
            for (const WriteLeg &leg : step.writeLegs) {
                const Tick leg_end = slots[leg.slot].end;
                note_inflight(leg.node, step.arrival, leg_end);
                end = std::max(end, leg_end);
            }
            finish_served(step, step.serveNode, end);
            break;
        }
        case StepKind::Failed:
            if (sampler)
                sampler->count(ch_failed);
            break;
        case StepKind::TimedOut:
            if (sampler)
                sampler->count(ch_timeouts);
            break;
        }
    }

    // --- Tail: identical aggregation to runSerial --------------------

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        double sum = 0.0;
        std::size_t sub_ms = 0;
        for (const Tick latency : latencies) {
            sum += ticksToUs(latency);
            if (latency < tickMs)
                ++sub_ms;
        }
        result.avgLatencyUs =
            sum / static_cast<double>(latencies.size());
        result.p99LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.99 * (latencies.size() - 1))]);
        result.p999LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.999 * (latencies.size() - 1))]);
        result.subMsFraction = static_cast<double>(sub_ms) /
                               static_cast<double>(latencies.size());
    }

    std::size_t hottest = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
        if (counts[i] > counts[hottest])
            hottest = i;
    }
    result.hottestNodeShare =
        static_cast<double>(counts[hottest]) /
        static_cast<double>(params_.requests);

    auto p99_of = [](std::vector<Tick> &v) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        return ticksToUs(
            v[static_cast<std::size_t>(0.99 * (v.size() - 1))]);
    };
    const double hot_p99 = p99_of(per_node[hottest]);
    std::vector<double> node_p99s;
    for (auto &v : per_node) {
        if (!v.empty())
            node_p99s.push_back(p99_of(v));
    }
    if (!node_p99s.empty()) {
        std::sort(node_p99s.begin(), node_p99s.end());
        const double median_p99 = node_p99s[node_p99s.size() / 2];
        result.hotNodeTailAmplification =
            median_p99 > 0.0 ? hot_p99 / median_p99 : 0.0;
    }

    if (avail_window > 0)
        close_window();
    result.requests = params_.requests;
    result.availability = static_cast<double>(result.ok) /
                          static_cast<double>(result.requests);
    MERCURY_ASSERT(result.accountedRequests() == result.requests,
                   "request outcomes must partition requests");
    if (gets > 0)
        result.hitRate = static_cast<double>(hits) /
                         static_cast<double>(gets);
    if (recovery_gets > 0)
        result.postRestartHitRate =
            static_cast<double>(recovery_hits) /
            static_cast<double>(recovery_gets);
    for (const auto &node : nodes_) {
        result.netDrops += node->netDrops();
        result.netRetransmits += node->netRetransmits();
    }
    result.faultTimelineDigest = faultDigest();
    if (sampler)
        sampler->finish(arrival);
    return result;
}

} // namespace mercury::cluster
