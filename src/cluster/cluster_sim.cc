#include "cluster/cluster_sim.hh"

#include <algorithm>
#include <deque>

#include "cluster/backoff.hh"
#include "sim/contract.hh"
#include "sim/logging.hh"

namespace mercury::cluster
{

ClusterSim::ClusterSim(const ClusterSimParams &params)
    : params_(params), ring_(params.virtualNodes),
      injector_(params.faults.seed)
{
    mercury_assert(params_.nodes >= 1, "cluster needs nodes");
    nodes_.reserve(params_.nodes);
    for (unsigned i = 0; i < params_.nodes; ++i) {
        const std::string name = "node" + std::to_string(i);
        nodeNames_.push_back(name);
        // Stripe nodes across racks (failure domains) when asked.
        ring_.addNode(name,
                      params_.racks >= 2 ? i % params_.racks : 0);

        server::ServerModelParams node_params = params_.node;
        node_params.name = name;
        node_params.seed = params_.seed + i + 1;
        node_params.tracer = params_.tracer;
        if (params_.faults.enabled) {
            node_params.net.lossProbability =
                params_.faults.packetLossProbability;
        }
        nodes_.push_back(
            std::make_unique<server::ServerModel>(node_params));
        if (params_.faults.enabled)
            nodes_.back()->setFaultInjector(&injector_);
    }
}

std::string
ClusterSim::keyFor(std::uint64_t key_id) const
{
    return workload::WorkloadGenerator::keyFor(key_id);
}

std::size_t
ClusterSim::indexOfName(const std::string &name) const
{
    for (std::size_t i = 0; i < nodeNames_.size(); ++i) {
        if (nodeNames_[i] == name)
            return i;
    }
    mercury_panic("ring returned unknown node ", name);
}

std::size_t
ClusterSim::nodeIndexFor(std::string_view key) const
{
    return indexOfName(ring_.nodeFor(key));
}

unsigned
ClusterSim::effectiveReplication() const
{
    return std::min(
        std::max(1u, params_.resilience.replicationFactor),
        static_cast<unsigned>(nodes_.size()));
}

std::vector<std::string>
ClusterSim::replicaOrder(std::string_view key,
                         std::size_t count) const
{
    if (params_.resilience.rackAwareReplicas && params_.racks >= 2)
        return ring_.replicasFor(key, count, true);
    return ring_.nodesFor(key, count);
}

void
ClusterSim::populate()
{
    if (populated_)
        return;
    const unsigned replication = effectiveReplication();
    for (std::uint64_t id = 0; id < params_.numKeys; ++id) {
        const std::string key = keyFor(id);
        if (replication == 1) {
            nodes_[nodeIndexFor(key)]->put(key, params_.valueBytes);
        } else {
            for (const std::string &name :
                 replicaOrder(key, replication)) {
                nodes_[indexOfName(name)]->put(key,
                                               params_.valueBytes);
            }
        }
    }
    populated_ = true;
}

Tick
ClusterSim::timeOrigin()
{
    populate();
    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    return origin;
}

double
ClusterSim::aggregateCapacity()
{
    if (capacity_ == 0.0) {
        server::ServerModelParams probe = params_.node;
        probe.name = "capacityProbe";
        server::ServerModel node(probe);
        capacity_ =
            node.measureGets(params_.valueBytes, 16, 4).avgTps *
            static_cast<double>(params_.nodes);
    }
    return capacity_;
}

ClusterSimResult
ClusterSim::run(double offered_tps)
{
    mercury_assert(offered_tps > 0.0, "offered load must be positive");
    populate();

    workload::WorkloadParams wl;
    wl.numKeys = params_.numKeys;
    wl.popularity = params_.popularity;
    wl.zipfTheta = params_.zipfTheta;
    wl.valueSize =
        workload::ValueSizeDist::fixed(params_.valueBytes);
    wl.getFraction = params_.getFraction;
    wl.seed = params_.seed;
    workload::WorkloadGenerator gen(wl);
    workload::PoissonArrivals arrivals(offered_tps,
                                       params_.seed + 99);

    // Start every node at a common time origin.
    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    for (const auto &node : nodes_)
        node->advanceTo(origin);

    // Recovery-curve channels. Registered (and begun) only when a
    // sampler was attached; everything below that feeds them is
    // guarded, so an unsampled run takes the identical path.
    stats::Sampler *const sampler = params_.sampler;
    trace::Tracer *const tracer = params_.tracer;
    std::size_t ch_requests = 0, ch_ok = 0, ch_failed = 0;
    std::size_t ch_timeouts = 0, ch_shed = 0;
    std::size_t ch_attempt_timeouts = 0, ch_retries = 0;
    std::size_t ch_hedges = 0;
    std::size_t ch_crashes = 0, ch_restarts = 0;
    std::size_t ch_gets = 0, ch_hits = 0, ch_lat = 0;
    if (sampler) {
        ch_requests = sampler->addCounter("requests");
        ch_ok = sampler->addCounter("ok");
        ch_failed = sampler->addCounter("failed");
        ch_timeouts = sampler->addCounter("timeouts");
        ch_shed = sampler->addCounter("shed");
        ch_attempt_timeouts = sampler->addCounter("attempt_timeouts");
        ch_retries = sampler->addCounter("retries");
        ch_hedges = sampler->addCounter("hedges");
        ch_crashes = sampler->addCounter("crashes");
        ch_restarts = sampler->addCounter("restarts");
        ch_gets = sampler->addCounter("gets");
        ch_hits = sampler->addCounter("hits");
        sampler->addRatio("availability", ch_ok, ch_requests, 1.0);
        sampler->addRatio("hit_rate", ch_hits, ch_gets, 1.0);
        ch_lat = sampler->addLatency("lat_us");
        sampler->begin(origin);
    }

    std::vector<Tick> latencies;
    latencies.reserve(params_.requests);
    std::vector<std::vector<Tick>> per_node(nodes_.size());
    std::vector<std::size_t> counts(nodes_.size(), 0);

    ClusterSimResult result;
    result.offeredTps = offered_tps;

    // Fault-mode state. Nothing here is touched (and the injector
    // never draws) when faults are disabled, keeping such runs
    // bit-identical to a pre-fault build.
    const ClusterFaultParams &fp = params_.faults;
    const ClusterResilienceParams &res = params_.resilience;
    const unsigned replication = effectiveReplication();
    const bool hedging =
        fp.enabled && res.hedgedReads && replication >= 2;
    std::vector<bool> up(nodes_.size(), true);
    std::vector<Tick> restart_at(nodes_.size(), 0);
    /** GETs left in each node's post-restart recovery window. */
    std::vector<unsigned> recovering(nodes_.size(), 0);
    constexpr unsigned recovery_window = 200;
    const Tick crash_mean =
        fp.nodeCrashesPerSecond > 0.0
            ? secondsToTicks(1.0 / fp.nodeCrashesPerSecond)
            : 0;
    Tick next_crash = maxTick;
    if (fp.enabled && crash_mean > 0)
        next_crash = origin + injector_.nextInterval(crash_mean);

    std::uint64_t gets = 0, hits = 0;
    std::uint64_t recovery_gets = 0, recovery_hits = 0;

    // Hinted handoff: writes aimed at a down replica wait here (in
    // write order) and are replayed when the node restarts.
    std::vector<std::vector<std::uint64_t>> hints(nodes_.size());

    // Per-node outstanding-request accounting: completion times of
    // requests in flight on each node, pruned as time passes.
    std::vector<std::deque<Tick>> inflight(nodes_.size());
    auto note_inflight = [&](std::size_t n, Tick begin, Tick end) {
        std::deque<Tick> &q = inflight[n];
        while (!q.empty() && q.front() <= begin)
            q.pop_front();
        q.push_back(end);
        result.maxOutstanding = std::max<std::uint64_t>(
            result.maxOutstanding, q.size());
    };

    // Observed attempt service times drive the hedge delay: hedge
    // when the primary is slower than the configured quantile of
    // what the cluster has been delivering.
    stats::StatGroup hedge_stats("hedge");
    stats::LatencyHistogram attempt_service(
        &hedge_stats, "attempt_us", "attempt service time");
    auto hedge_delay = [&]() -> Tick {
        if (attempt_service.count() < res.hedgeWarmup)
            return res.hedgeFloor;
        const Tick quantile =
            static_cast<Tick>(
                attempt_service.percentile(res.hedgeQuantile)) *
            tickUs;
        return std::max(quantile, res.hedgeFloor);
    };

    // Retry budget: retries so far may not exceed the configured
    // fraction of requests issued so far (warmup included -- the
    // budget is a client-lifetime property, not a measurement one).
    const bool budgeted = fp.enabled && res.retryBudgetFraction > 0.0;
    std::uint64_t issued = 0;
    std::uint64_t retries_spent = 0;
    auto retry_allowed = [&]() {
        if (!budgeted)
            return true;
        return static_cast<double>(retries_spent) <
               res.retryBudgetFraction * static_cast<double>(issued);
    };

    // Worst-window availability over the full run.
    const Tick avail_window = params_.availabilityWindow;
    Tick win_end = avail_window > 0 ? origin + avail_window : maxTick;
    std::uint64_t win_requests = 0, win_ok = 0;
    auto close_window = [&]() {
        if (win_requests > 0) {
            result.minWindowAvailability = std::min(
                result.minWindowAvailability,
                static_cast<double>(win_ok) /
                    static_cast<double>(win_requests));
        }
        win_requests = 0;
        win_ok = 0;
    };

    auto crash = [&](std::size_t victim, Tick at) {
        up[victim] = false;
        restart_at[victim] = at + fp.nodeDowntime;
        injector_.record(at, fault::FaultKind::NodeCrash,
                         nodeNames_[victim]);
        ++result.crashes;
        if (sampler)
            sampler->count(ch_crashes);
    };
    auto restart = [&](std::size_t index, Tick at) {
        up[index] = true;
        // The process lost its in-memory store: it comes back cold
        // and clients re-fill it on misses.
        nodes_[index]->store().flushAll();
        // Replay the hinted writes it missed while down, in arrival
        // order, so it comes back warm for everything written during
        // the outage.
        for (const std::uint64_t key_id : hints[index]) {
            nodes_[index]->put(keyFor(key_id), params_.valueBytes);
            ++result.hintsReplayed;
        }
        hints[index].clear();
        recovering[index] = recovery_window;
        injector_.record(at, fault::FaultKind::NodeRestart,
                         nodeNames_[index]);
        ++result.restarts;
        if (sampler)
            sampler->count(ch_restarts);
    };

    Tick arrival = origin;
    for (unsigned i = 0; i < params_.warmup + params_.requests;
         ++i) {
        arrival = arrivals.next(arrival);
        const workload::Request request = gen.next();
        const std::string key = keyFor(request.keyId);
        const bool measured = i >= params_.warmup;

        // The sampler sees every request, warmup included: recovery
        // curves want the full trajectory, not just the measured
        // tail. Windows close strictly on arrival ticks, so the
        // emitted series is a pure function of the simulated
        // timeline.
        if (sampler) {
            sampler->advanceTo(arrival);
            sampler->count(ch_requests);
        }
        // Availability windows close strictly on arrival ticks, so
        // minWindowAvailability is a pure function of the simulated
        // timeline too.
        while (avail_window > 0 && arrival >= win_end) {
            close_window();
            win_end += avail_window;
        }
        ++win_requests;
        const std::uint32_t client_req =
            tracer ? tracer->beginRequest() : 0;

        if (!fp.enabled) {
            const std::size_t index = nodeIndexFor(key);
            server::ServerModel &node = *nodes_[index];

            node.advanceTo(arrival);
            {
                // Node-side spans carry the serving node's identity
                // and the client envelope as causal parent.
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                if (request.op == workload::Request::Op::Get) {
                    const server::RequestTiming timing =
                        node.get(key);
                    if (measured) {
                        ++gets;
                        hits += timing.hit ? 1 : 0;
                    }
                    if (sampler) {
                        sampler->count(ch_gets);
                        if (timing.hit)
                            sampler->count(ch_hits);
                    }
                } else {
                    node.put(key, params_.valueBytes);
                }
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, arrival,
                                   node.now(), 0);
            }
            if (tracer) {
                trace::ScopedTraceContext span_ctx(
                    tracer, trace::clientNode);
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Client, arrival,
                                   node.now(), 1);
            }

            const Tick latency = node.now() - arrival;
            ++win_ok;
            if (sampler) {
                sampler->count(ch_ok);
                sampler->recordLatency(
                    ch_lat, static_cast<std::uint64_t>(
                                latency / tickUs));
            }
            if (!measured)
                continue;
            ++result.ok;
            latencies.push_back(latency);
            per_node[index].push_back(latency);
            ++counts[index];
            continue;
        }

        // --- Fault mode -----------------------------------------

        // Nodes whose downtime elapsed come back (cold) first.
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (!up[n] && restart_at[n] <= arrival)
                restart(n, restart_at[n]);
        }
        // Explicitly scheduled fault plans. A plan due before the
        // run's time origin fires at the first arrival (plans are
        // expressed in simulated time, which populate() has already
        // advanced).
        while (auto due = injector_.popDue(arrival)) {
            const Tick at = std::max(due->at, arrival);
            switch (due->kind) {
            case fault::FaultKind::NodeCrash: {
                const std::size_t target = indexOfName(due->target);
                if (up[target])
                    crash(target, at);
                break;
            }
            case fault::FaultKind::NodeRestart: {
                const std::size_t target = indexOfName(due->target);
                if (!up[target])
                    restart(target, at);
                break;
            }
            case fault::FaultKind::NetDegrade:
            case fault::FaultKind::NetRestore: {
                // A degradation burst retunes wire loss; the restore
                // event snaps it back to the configured baseline.
                const double loss =
                    due->kind == fault::FaultKind::NetDegrade
                        ? fault::ppbToProbability(due->detail)
                        : fp.packetLossProbability;
                injector_.record(at, due->kind, due->target,
                                 due->detail);
                if (due->target == fault::allNodes) {
                    for (const auto &node : nodes_)
                        node->setPacketLoss(loss);
                } else {
                    nodes_[indexOfName(due->target)]->setPacketLoss(
                        loss);
                }
                break;
            }
            case fault::FaultKind::FlashWear: {
                // Elevated program-fail probability while a wear
                // burst is active; detail 0 marks its end.
                const double wear =
                    fault::ppbToProbability(due->detail);
                injector_.record(at, due->kind, due->target,
                                 due->detail);
                if (due->target == fault::allNodes) {
                    for (const auto &node : nodes_)
                        node->setFlashWear(wear);
                } else {
                    nodes_[indexOfName(due->target)]->setFlashWear(
                        wear);
                }
                break;
            }
            default:
                // Probabilistic kinds are never scheduled; a plan
                // carrying one is a bug in the plan builder.
                mercury_panic("unschedulable fault kind in plan: ",
                              fault::kindName(due->kind));
            }
        }
        // Poisson crashes; the last live node is never taken down.
        while (next_crash <= arrival) {
            std::vector<std::size_t> alive;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                if (up[n])
                    alive.push_back(n);
            }
            if (alive.size() > 1)
                crash(alive[injector_.pick(alive.size())],
                      next_crash);
            next_crash += injector_.nextInterval(crash_mean);
        }

        // Client request path. The client fans out over the key's
        // replica set (plain ring successors when unreplicated):
        // writes go to every up replica, GETs may be hedged, and a
        // dead-node attempt pays a timeout plus a jittered
        // exponential backoff before the next try, as real memcached
        // clients do.
        const bool is_get = request.op == workload::Request::Op::Get;
        const std::size_t fan = std::max<std::size_t>(
            replication,
            static_cast<std::size_t>(fp.maxRetries) + 1);
        const std::vector<std::string> order_names =
            replicaOrder(key, fan);
        std::vector<std::size_t> order;
        order.reserve(order_names.size());
        for (const std::string &name : order_names)
            order.push_back(indexOfName(name));
        ++issued;

        enum class Outcome { Pending, Ok, Shed, Failed, TimedOut };
        Outcome outcome = Outcome::Pending;
        Tick penalty = 0;
        Tick answered_at = arrival;

        // Admission check: a node that cannot start serving within
        // the queue-delay SLO refuses fast instead of queueing.
        auto shed_check = [&](std::size_t index, Tick begin,
                              unsigned attempt_no) {
            if (!res.admissionControl)
                return false;
            const Tick node_free = nodes_[index]->now();
            const Tick queue_delay =
                node_free > begin ? node_free - begin : 0;
            if (queue_delay <= res.sloQueueDelay)
                return false;
            answered_at = begin + res.shedResponseTime;
            outcome = Outcome::Shed;
            if (measured)
                ++result.shed;
            if (sampler)
                sampler->count(ch_shed);
            {
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, begin,
                                   answered_at, attempt_no);
            }
            return true;
        };

        struct AttemptOutcome
        {
            Tick end = 0;
            bool hit = false;
        };
        // One traced GET attempt against an up node.
        auto do_get = [&](std::size_t index, Tick begin,
                          unsigned attempt_no) {
            server::ServerModel &node = *nodes_[index];
            node.advanceTo(begin);
            bool hit = false;
            {
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                hit = node.get(key).hit;
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, begin,
                                   node.now(), attempt_no);
            }
            note_inflight(index, begin, node.now());
            return AttemptOutcome{node.now(), hit};
        };
        // Hit accounting for the GET attempt that actually answered
        // the client. A cancelled hedge loser is never accounted:
        // its result is discarded.
        auto account_get = [&](std::size_t index, bool hit) {
            if (measured) {
                ++gets;
                hits += hit ? 1 : 0;
            }
            if (sampler) {
                sampler->count(ch_gets);
                if (hit)
                    sampler->count(ch_hits);
            }
            if (recovering[index] > 0) {
                --recovering[index];
                ++recovery_gets;
                recovery_hits += hit ? 1 : 0;
            }
            // Read-through: a missed key is re-filled after the
            // client got its answer, off the critical path. With
            // replicas this doubles as read repair of a diverged
            // copy.
            if (!hit) {
                nodes_[index]->put(key, params_.valueBytes);
                if (replication >= 2)
                    ++result.readRepairs;
            }
        };
        auto finish_served = [&](std::size_t index, Tick end) {
            outcome = Outcome::Ok;
            answered_at = end;
            const Tick latency = end - arrival;
            ++win_ok;
            if (sampler) {
                sampler->count(ch_ok);
                sampler->recordLatency(
                    ch_lat, static_cast<std::uint64_t>(
                                latency / tickUs));
            }
            if (measured) {
                ++result.ok;
                latencies.push_back(latency);
                per_node[index].push_back(latency);
                ++counts[index];
            }
        };

        // Hedged GET: race the primary against one backup replica;
        // the first answer wins and the loser is cancelled.
        if (outcome == Outcome::Pending && hedging && is_get) {
            const std::size_t primary = order[0];
            std::size_t secondary = 0;
            bool have_secondary = false;
            for (std::size_t r = 1; r < replication; ++r) {
                if (up[order[r]]) {
                    secondary = order[r];
                    have_secondary = true;
                    break;
                }
            }
            if (up[primary]) {
                if (!shed_check(primary, arrival, 0)) {
                    const AttemptOutcome first =
                        do_get(primary, arrival, 0);
                    const Tick delay = hedge_delay();
                    if (have_secondary &&
                        first.end > arrival + delay) {
                        // Primary is past the hedge quantile: fire
                        // the backup.
                        const AttemptOutcome second =
                            do_get(secondary, arrival + delay, 1);
                        if (measured)
                            ++result.hedges;
                        if (sampler)
                            sampler->count(ch_hedges);
                        const bool backup_won =
                            second.end < first.end;
                        if (measured && backup_won)
                            ++result.hedgeWins;
                        const std::size_t winner =
                            backup_won ? secondary : primary;
                        const AttemptOutcome &won =
                            backup_won ? second : first;
                        const Tick won_begin =
                            backup_won ? arrival + delay : arrival;
                        attempt_service.record(
                            (won.end - won_begin) / tickUs);
                        account_get(winner, won.hit);
                        finish_served(winner, won.end);
                    } else {
                        attempt_service.record(
                            (first.end - arrival) / tickUs);
                        account_get(primary, first.hit);
                        finish_served(primary, first.end);
                    }
                }
            } else if (have_secondary) {
                // Dead primary: the hedge rescues the GET at the
                // hedge delay instead of waiting out the full
                // request timeout.
                const Tick delay = hedge_delay();
                if (measured) {
                    ++result.attemptTimeouts;
                    ++result.hedges;
                    ++result.hedgeWins;
                }
                if (sampler) {
                    sampler->count(ch_attempt_timeouts);
                    sampler->count(ch_hedges);
                }
                {
                    trace::ScopedTraceContext span_ctx(
                        tracer,
                        static_cast<std::uint16_t>(primary),
                        client_req);
                    MERCURY_TRACE_SPAN(tracer, client_req,
                                       trace::Stage::Attempt,
                                       arrival, arrival + delay, 0);
                }
                if (!shed_check(secondary, arrival + delay, 1)) {
                    const AttemptOutcome second =
                        do_get(secondary, arrival + delay, 1);
                    attempt_service.record(
                        (second.end - (arrival + delay)) / tickUs);
                    account_get(secondary, second.hit);
                    finish_served(secondary, second.end);
                }
            }
            // Whole replica set down: fall through to the generic
            // walk (which will time out over the replicas).
        }

        // Replicated write round: write every up replica at arrival,
        // hint the down ones for replay at their restart.
        if (outcome == Outcome::Pending && !is_get &&
            replication >= 2) {
            std::size_t first_up = replication;
            for (std::size_t r = 0; r < replication; ++r) {
                if (up[order[r]]) {
                    first_up = r;
                    break;
                }
            }
            if (first_up < replication &&
                !shed_check(order[first_up], arrival,
                            static_cast<unsigned>(first_up))) {
                Tick end = arrival;
                unsigned attempt_no = 0;
                for (std::size_t r = 0; r < replication; ++r) {
                    const std::size_t index = order[r];
                    if (!up[index]) {
                        hints[index].push_back(request.keyId);
                        ++result.hintsQueued;
                        continue;
                    }
                    server::ServerModel &node = *nodes_[index];
                    node.advanceTo(arrival);
                    {
                        trace::ScopedTraceContext span_ctx(
                            tracer,
                            static_cast<std::uint16_t>(index),
                            client_req);
                        node.put(key, params_.valueBytes);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Attempt,
                                           arrival, node.now(),
                                           attempt_no++);
                    }
                    note_inflight(index, arrival, node.now());
                    end = std::max(end, node.now());
                }
                // The round completes when the slowest replica
                // acked (write-all).
                finish_served(order[first_up], end);
            }
        }

        if (outcome == Outcome::Pending) {
            // Generic failover walk: successive attempts over the
            // order, a timeout per dead node and a jittered backoff
            // before each retry. A replicated write never walks past
            // its replica set -- data must not land on a
            // non-replica.
            const std::size_t walk_span =
                (!is_get && replication >= 2)
                    ? replication
                    : order.size();
            for (unsigned attempt = 0; attempt <= fp.maxRetries;
                 ++attempt) {
                const std::size_t index =
                    order[attempt % walk_span];
                const Tick attempt_begin = arrival + penalty;
                if (!up[index]) {
                    penalty += fp.requestTimeout;
                    if (measured)
                        ++result.attemptTimeouts;
                    if (sampler)
                        sampler->count(ch_attempt_timeouts);
                    {
                        // A timed-out attempt still names the node
                        // the client was waiting on.
                        trace::ScopedTraceContext span_ctx(
                            tracer,
                            static_cast<std::uint16_t>(index),
                            client_req);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Attempt,
                                           attempt_begin,
                                           arrival + penalty,
                                           attempt);
                    }
                    if (attempt < fp.maxRetries) {
                        if (!retry_allowed()) {
                            // Budget spent: give up now instead of
                            // feeding a retry storm.
                            outcome = Outcome::Failed;
                            answered_at = arrival + penalty;
                            if (measured)
                                ++result.failedRequests;
                            if (sampler)
                                sampler->count(ch_failed);
                            break;
                        }
                        ++retries_spent;
                        const Tick backoff_begin = arrival + penalty;
                        penalty += jitteredBackoff(
                            fp.backoffBase, attempt,
                            fp.backoffJitter, injector_);
                        if (measured)
                            ++result.retries;
                        if (sampler)
                            sampler->count(ch_retries);
                        {
                            trace::ScopedTraceContext span_ctx(
                                tracer, trace::clientNode,
                                client_req);
                            MERCURY_TRACE_SPAN(
                                tracer, client_req,
                                trace::Stage::Backoff,
                                backoff_begin, arrival + penalty,
                                attempt);
                        }
                    }
                    continue;
                }

                if (shed_check(index, attempt_begin, attempt))
                    break;

                if (is_get) {
                    const AttemptOutcome got =
                        do_get(index, attempt_begin, attempt);
                    if (hedging) {
                        attempt_service.record(
                            (got.end - attempt_begin) / tickUs);
                    }
                    account_get(index, got.hit);
                    finish_served(index, got.end);
                } else {
                    server::ServerModel &node = *nodes_[index];
                    node.advanceTo(attempt_begin);
                    {
                        trace::ScopedTraceContext span_ctx(
                            tracer,
                            static_cast<std::uint16_t>(index),
                            client_req);
                        node.put(key, params_.valueBytes);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Attempt,
                                           attempt_begin,
                                           node.now(), attempt);
                    }
                    note_inflight(index, attempt_begin,
                                  node.now());
                    finish_served(index, node.now());
                }
                break;
            }
        }

        if (outcome == Outcome::Pending) {
            // Exhausted every attempt against dead nodes.
            outcome = Outcome::TimedOut;
            answered_at = arrival + penalty;
            if (measured)
                ++result.timeouts;
            if (sampler)
                sampler->count(ch_timeouts);
        }
        if (tracer) {
            trace::ScopedTraceContext span_ctx(tracer,
                                               trace::clientNode);
            MERCURY_TRACE_SPAN(tracer, client_req,
                               trace::Stage::Client, arrival,
                               answered_at,
                               outcome == Outcome::Ok ? 1 : 0);
        }
    }

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        double sum = 0.0;
        std::size_t sub_ms = 0;
        for (const Tick latency : latencies) {
            sum += ticksToUs(latency);
            if (latency < tickMs)
                ++sub_ms;
        }
        result.avgLatencyUs =
            sum / static_cast<double>(latencies.size());
        result.p99LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.99 * (latencies.size() - 1))]);
        result.p999LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.999 * (latencies.size() - 1))]);
        result.subMsFraction = static_cast<double>(sub_ms) /
                               static_cast<double>(latencies.size());
    }

    // Hot-node statistics.
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
        if (counts[i] > counts[hottest])
            hottest = i;
    }
    result.hottestNodeShare =
        static_cast<double>(counts[hottest]) /
        static_cast<double>(params_.requests);

    auto p99_of = [](std::vector<Tick> &v) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        return ticksToUs(
            v[static_cast<std::size_t>(0.99 * (v.size() - 1))]);
    };
    const double hot_p99 = p99_of(per_node[hottest]);
    std::vector<double> node_p99s;
    for (auto &v : per_node) {
        if (!v.empty())
            node_p99s.push_back(p99_of(v));
    }
    if (!node_p99s.empty()) {
        std::sort(node_p99s.begin(), node_p99s.end());
        const double median_p99 = node_p99s[node_p99s.size() / 2];
        result.hotNodeTailAmplification =
            median_p99 > 0.0 ? hot_p99 / median_p99 : 0.0;
    }

    if (avail_window > 0)
        close_window();
    result.requests = params_.requests;
    result.availability = static_cast<double>(result.ok) /
                          static_cast<double>(result.requests);
    // The accounting contract: every measured request lands in
    // exactly one outcome class. Always on -- a violation here means
    // a new result class was added without wiring its accounting.
    MERCURY_ASSERT(result.accountedRequests() == result.requests,
                   "request outcomes must partition requests");
    if (gets > 0)
        result.hitRate = static_cast<double>(hits) /
                         static_cast<double>(gets);
    if (recovery_gets > 0)
        result.postRestartHitRate =
            static_cast<double>(recovery_hits) /
            static_cast<double>(recovery_gets);
    for (const auto &node : nodes_) {
        result.netDrops += node->netDrops();
        result.netRetransmits += node->netRetransmits();
    }
    result.faultTimelineDigest = injector_.timelineDigest();
    if (sampler)
        sampler->finish(arrival);
    return result;
}

} // namespace mercury::cluster
