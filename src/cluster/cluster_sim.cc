#include "cluster/cluster_sim.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::cluster
{

ClusterSim::ClusterSim(const ClusterSimParams &params)
    : params_(params), ring_(params.virtualNodes),
      injector_(params.faults.seed)
{
    mercury_assert(params_.nodes >= 1, "cluster needs nodes");
    nodes_.reserve(params_.nodes);
    for (unsigned i = 0; i < params_.nodes; ++i) {
        const std::string name = "node" + std::to_string(i);
        nodeNames_.push_back(name);
        ring_.addNode(name);

        server::ServerModelParams node_params = params_.node;
        node_params.name = name;
        node_params.seed = params_.seed + i + 1;
        node_params.tracer = params_.tracer;
        if (params_.faults.enabled) {
            node_params.net.lossProbability =
                params_.faults.packetLossProbability;
        }
        nodes_.push_back(
            std::make_unique<server::ServerModel>(node_params));
        if (params_.faults.enabled)
            nodes_.back()->setFaultInjector(&injector_);
    }
}

std::string
ClusterSim::keyFor(std::uint64_t key_id) const
{
    return workload::WorkloadGenerator::keyFor(key_id);
}

std::size_t
ClusterSim::indexOfName(const std::string &name) const
{
    for (std::size_t i = 0; i < nodeNames_.size(); ++i) {
        if (nodeNames_[i] == name)
            return i;
    }
    mercury_panic("ring returned unknown node ", name);
}

std::size_t
ClusterSim::nodeIndexFor(std::string_view key) const
{
    return indexOfName(ring_.nodeFor(key));
}

void
ClusterSim::populate()
{
    if (populated_)
        return;
    for (std::uint64_t id = 0; id < params_.numKeys; ++id) {
        const std::string key = keyFor(id);
        nodes_[nodeIndexFor(key)]->put(key, params_.valueBytes);
    }
    populated_ = true;
}

double
ClusterSim::aggregateCapacity()
{
    if (capacity_ == 0.0) {
        server::ServerModelParams probe = params_.node;
        probe.name = "capacityProbe";
        server::ServerModel node(probe);
        capacity_ =
            node.measureGets(params_.valueBytes, 16, 4).avgTps *
            static_cast<double>(params_.nodes);
    }
    return capacity_;
}

ClusterSimResult
ClusterSim::run(double offered_tps)
{
    mercury_assert(offered_tps > 0.0, "offered load must be positive");
    populate();

    workload::WorkloadParams wl;
    wl.numKeys = params_.numKeys;
    wl.popularity = params_.popularity;
    wl.zipfTheta = params_.zipfTheta;
    wl.valueSize =
        workload::ValueSizeDist::fixed(params_.valueBytes);
    wl.getFraction = params_.getFraction;
    wl.seed = params_.seed;
    workload::WorkloadGenerator gen(wl);
    workload::PoissonArrivals arrivals(offered_tps,
                                       params_.seed + 99);

    // Start every node at a common time origin.
    Tick origin = 0;
    for (const auto &node : nodes_)
        origin = std::max(origin, node->now());
    for (const auto &node : nodes_)
        node->advanceTo(origin);

    // Recovery-curve channels. Registered (and begun) only when a
    // sampler was attached; everything below that feeds them is
    // guarded, so an unsampled run takes the identical path.
    stats::Sampler *const sampler = params_.sampler;
    trace::Tracer *const tracer = params_.tracer;
    std::size_t ch_requests = 0, ch_ok = 0, ch_failed = 0;
    std::size_t ch_timeouts = 0, ch_retries = 0;
    std::size_t ch_crashes = 0, ch_restarts = 0;
    std::size_t ch_gets = 0, ch_hits = 0, ch_lat = 0;
    if (sampler) {
        ch_requests = sampler->addCounter("requests");
        ch_ok = sampler->addCounter("ok");
        ch_failed = sampler->addCounter("failed");
        ch_timeouts = sampler->addCounter("timeouts");
        ch_retries = sampler->addCounter("retries");
        ch_crashes = sampler->addCounter("crashes");
        ch_restarts = sampler->addCounter("restarts");
        ch_gets = sampler->addCounter("gets");
        ch_hits = sampler->addCounter("hits");
        sampler->addRatio("availability", ch_ok, ch_requests, 1.0);
        sampler->addRatio("hit_rate", ch_hits, ch_gets, 1.0);
        ch_lat = sampler->addLatency("lat_us");
        sampler->begin(origin);
    }

    std::vector<Tick> latencies;
    latencies.reserve(params_.requests);
    std::vector<std::vector<Tick>> per_node(nodes_.size());
    std::vector<std::size_t> counts(nodes_.size(), 0);

    ClusterSimResult result;
    result.offeredTps = offered_tps;

    // Fault-mode state. Nothing here is touched (and the injector
    // never draws) when faults are disabled, keeping such runs
    // bit-identical to a pre-fault build.
    const ClusterFaultParams &fp = params_.faults;
    std::vector<bool> up(nodes_.size(), true);
    std::vector<Tick> restart_at(nodes_.size(), 0);
    /** GETs left in each node's post-restart recovery window. */
    std::vector<unsigned> recovering(nodes_.size(), 0);
    constexpr unsigned recovery_window = 200;
    const Tick crash_mean =
        fp.nodeCrashesPerSecond > 0.0
            ? secondsToTicks(1.0 / fp.nodeCrashesPerSecond)
            : 0;
    Tick next_crash = maxTick;
    if (fp.enabled && crash_mean > 0)
        next_crash = origin + injector_.nextInterval(crash_mean);

    std::uint64_t gets = 0, hits = 0;
    std::uint64_t recovery_gets = 0, recovery_hits = 0;

    auto crash = [&](std::size_t victim, Tick at) {
        up[victim] = false;
        restart_at[victim] = at + fp.nodeDowntime;
        injector_.record(at, fault::FaultKind::NodeCrash,
                         nodeNames_[victim]);
        ++result.crashes;
        if (sampler)
            sampler->count(ch_crashes);
    };
    auto restart = [&](std::size_t index, Tick at) {
        up[index] = true;
        // The process lost its in-memory store: it comes back cold
        // and clients re-fill it on misses.
        nodes_[index]->store().flushAll();
        recovering[index] = recovery_window;
        injector_.record(at, fault::FaultKind::NodeRestart,
                         nodeNames_[index]);
        ++result.restarts;
        if (sampler)
            sampler->count(ch_restarts);
    };

    Tick arrival = origin;
    for (unsigned i = 0; i < params_.warmup + params_.requests;
         ++i) {
        arrival = arrivals.next(arrival);
        const workload::Request request = gen.next();
        const std::string key = keyFor(request.keyId);
        const bool measured = i >= params_.warmup;

        // The sampler sees every request, warmup included: recovery
        // curves want the full trajectory, not just the measured
        // tail. Windows close strictly on arrival ticks, so the
        // emitted series is a pure function of the simulated
        // timeline.
        if (sampler) {
            sampler->advanceTo(arrival);
            sampler->count(ch_requests);
        }
        const std::uint32_t client_req =
            tracer ? tracer->beginRequest() : 0;

        if (!fp.enabled) {
            const std::size_t index = nodeIndexFor(key);
            server::ServerModel &node = *nodes_[index];

            node.advanceTo(arrival);
            {
                // Node-side spans carry the serving node's identity
                // and the client envelope as causal parent.
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                if (request.op == workload::Request::Op::Get) {
                    const server::RequestTiming timing =
                        node.get(key);
                    if (measured) {
                        ++gets;
                        hits += timing.hit ? 1 : 0;
                    }
                    if (sampler) {
                        sampler->count(ch_gets);
                        if (timing.hit)
                            sampler->count(ch_hits);
                    }
                } else {
                    node.put(key, params_.valueBytes);
                }
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt, arrival,
                                   node.now(), 0);
            }
            if (tracer) {
                trace::ScopedTraceContext span_ctx(
                    tracer, trace::clientNode);
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Client, arrival,
                                   node.now(), 1);
            }

            const Tick latency = node.now() - arrival;
            if (sampler) {
                sampler->count(ch_ok);
                sampler->recordLatency(
                    ch_lat, static_cast<std::uint64_t>(
                                latency / tickUs));
            }
            if (!measured)
                continue;
            latencies.push_back(latency);
            per_node[index].push_back(latency);
            ++counts[index];
            continue;
        }

        // --- Fault mode -----------------------------------------

        // Nodes whose downtime elapsed come back (cold) first.
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (!up[n] && restart_at[n] <= arrival)
                restart(n, restart_at[n]);
        }
        // Explicitly scheduled crash/restart plans. A plan due
        // before the run's time origin fires at the first arrival
        // (plans are expressed in simulated time, which populate()
        // has already advanced).
        while (auto due = injector_.popDue(arrival)) {
            const std::size_t target = indexOfName(due->target);
            const Tick at = std::max(due->at, arrival);
            if (due->kind == fault::FaultKind::NodeCrash &&
                up[target]) {
                crash(target, at);
            } else if (due->kind == fault::FaultKind::NodeRestart &&
                       !up[target]) {
                restart(target, at);
            }
        }
        // Poisson crashes; the last live node is never taken down.
        while (next_crash <= arrival) {
            std::vector<std::size_t> alive;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                if (up[n])
                    alive.push_back(n);
            }
            if (alive.size() > 1)
                crash(alive[injector_.pick(alive.size())],
                      next_crash);
            next_crash += injector_.nextInterval(crash_mean);
        }

        // Client request path: walk the ring successors, paying a
        // timeout for each dead server and a jittered exponential
        // backoff before the next attempt, as real memcached
        // clients do.
        const std::vector<std::string> order =
            ring_.nodesFor(key, fp.maxRetries + 1);
        Tick penalty = 0;
        bool served = false;
        Tick answered_at = arrival;
        for (unsigned attempt = 0; attempt <= fp.maxRetries;
             ++attempt) {
            const std::size_t index =
                indexOfName(order[attempt % order.size()]);
            const Tick attempt_begin = arrival + penalty;
            if (!up[index]) {
                penalty += fp.requestTimeout;
                if (measured)
                    ++result.timeouts;
                if (sampler)
                    sampler->count(ch_timeouts);
                {
                    // A timed-out attempt still names the node the
                    // client was waiting on.
                    trace::ScopedTraceContext span_ctx(
                        tracer, static_cast<std::uint16_t>(index),
                        client_req);
                    MERCURY_TRACE_SPAN(tracer, client_req,
                                       trace::Stage::Attempt,
                                       attempt_begin,
                                       arrival + penalty, attempt);
                }
                if (attempt < fp.maxRetries) {
                    const Tick backoff_begin = arrival + penalty;
                    const Tick backoff = fp.backoffBase << attempt;
                    // Scaling a Tick by a unitless jitter factor,
                    // not converting seconds.
                    // lint: allow(tick-cast)
                    penalty += static_cast<Tick>(
                        static_cast<double>(backoff) *
                        injector_.jitter(fp.backoffJitter));
                    if (measured)
                        ++result.retries;
                    if (sampler)
                        sampler->count(ch_retries);
                    {
                        trace::ScopedTraceContext span_ctx(
                            tracer, trace::clientNode, client_req);
                        MERCURY_TRACE_SPAN(tracer, client_req,
                                           trace::Stage::Backoff,
                                           backoff_begin,
                                           arrival + penalty,
                                           attempt);
                    }
                }
                continue;
            }

            server::ServerModel &node = *nodes_[index];
            node.advanceTo(arrival + penalty);
            bool refill = false;
            {
                trace::ScopedTraceContext span_ctx(
                    tracer, static_cast<std::uint16_t>(index),
                    client_req);
                if (request.op == workload::Request::Op::Get) {
                    const server::RequestTiming timing =
                        node.get(key);
                    if (measured) {
                        ++gets;
                        hits += timing.hit ? 1 : 0;
                    }
                    if (sampler) {
                        sampler->count(ch_gets);
                        if (timing.hit)
                            sampler->count(ch_hits);
                    }
                    if (recovering[index] > 0) {
                        --recovering[index];
                        ++recovery_gets;
                        recovery_hits += timing.hit ? 1 : 0;
                    }
                    refill = !timing.hit;
                } else {
                    node.put(key, params_.valueBytes);
                }
                MERCURY_TRACE_SPAN(tracer, client_req,
                                   trace::Stage::Attempt,
                                   attempt_begin, node.now(),
                                   attempt);
            }

            answered_at = node.now();
            const Tick latency = node.now() - arrival;
            if (sampler) {
                sampler->count(ch_ok);
                sampler->recordLatency(
                    ch_lat, static_cast<std::uint64_t>(
                                latency / tickUs));
            }
            if (measured) {
                latencies.push_back(latency);
                per_node[index].push_back(latency);
                ++counts[index];
            }
            // Read-through: a missed key is re-filled from the
            // backing store after the client got its answer, so
            // the refill is off the request's critical path.
            if (refill)
                node.put(key, params_.valueBytes);
            served = true;
            break;
        }
        if (!served) {
            if (measured)
                ++result.failedRequests;
            if (sampler)
                sampler->count(ch_failed);
            answered_at = arrival + penalty;
        }
        if (tracer) {
            trace::ScopedTraceContext span_ctx(tracer,
                                               trace::clientNode);
            MERCURY_TRACE_SPAN(tracer, client_req,
                               trace::Stage::Client, arrival,
                               answered_at, served ? 1 : 0);
        }
    }

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        double sum = 0.0;
        std::size_t sub_ms = 0;
        for (const Tick latency : latencies) {
            sum += ticksToUs(latency);
            if (latency < tickMs)
                ++sub_ms;
        }
        result.avgLatencyUs =
            sum / static_cast<double>(latencies.size());
        result.p99LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.99 * (latencies.size() - 1))]);
        result.p999LatencyUs = ticksToUs(latencies[static_cast<
            std::size_t>(0.999 * (latencies.size() - 1))]);
        result.subMsFraction = static_cast<double>(sub_ms) /
                               static_cast<double>(latencies.size());
    }

    // Hot-node statistics.
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
        if (counts[i] > counts[hottest])
            hottest = i;
    }
    result.hottestNodeShare =
        static_cast<double>(counts[hottest]) /
        static_cast<double>(params_.requests);

    auto p99_of = [](std::vector<Tick> &v) {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        return ticksToUs(
            v[static_cast<std::size_t>(0.99 * (v.size() - 1))]);
    };
    const double hot_p99 = p99_of(per_node[hottest]);
    std::vector<double> node_p99s;
    for (auto &v : per_node) {
        if (!v.empty())
            node_p99s.push_back(p99_of(v));
    }
    if (!node_p99s.empty()) {
        std::sort(node_p99s.begin(), node_p99s.end());
        const double median_p99 = node_p99s[node_p99s.size() / 2];
        result.hotNodeTailAmplification =
            median_p99 > 0.0 ? hot_p99 / median_p99 : 0.0;
    }

    result.availability =
        1.0 - static_cast<double>(result.failedRequests) /
                  static_cast<double>(params_.requests);
    if (gets > 0)
        result.hitRate = static_cast<double>(hits) /
                         static_cast<double>(gets);
    if (recovery_gets > 0)
        result.postRestartHitRate =
            static_cast<double>(recovery_hits) /
            static_cast<double>(recovery_gets);
    for (const auto &node : nodes_) {
        result.netDrops += node->netDrops();
        result.netRetransmits += node->netRetransmits();
    }
    result.faultTimelineDigest = injector_.timelineDigest();
    if (sampler)
        sampler->finish(arrival);
    return result;
}

} // namespace mercury::cluster
