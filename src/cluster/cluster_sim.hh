/**
 * @file
 * Cluster timing simulation: a consistent-hash ring of simulated
 * server nodes under an open-loop workload.
 *
 * Sec. 3.8 argues that many small physical nodes reduce DHT
 * resource contention. This simulation makes that quantitative:
 * requests with a configurable key-popularity skew are routed over
 * the ring onto per-node timing models, so hot-node queueing and
 * its effect on cluster tail latency emerge.
 */

#ifndef MERCURY_CLUSTER_CLUSTER_SIM_HH
#define MERCURY_CLUSTER_CLUSTER_SIM_HH

#include <memory>
#include <vector>

#include "cluster/ring.hh"
#include "server/server_model.hh"
#include "workload/workload.hh"

namespace mercury::cluster
{

/** Static configuration of a cluster experiment. */
struct ClusterSimParams
{
    /** Per-node configuration. */
    server::ServerModelParams node;
    unsigned nodes = 8;
    unsigned virtualNodes = 64;

    /** Key space and popularity. */
    std::uint64_t numKeys = 4000;
    workload::Popularity popularity = workload::Popularity::Zipf;
    double zipfTheta = 0.99;
    std::uint32_t valueBytes = 64;
    double getFraction = 0.95;

    /** Measured requests (after warmup). */
    unsigned requests = 3000;
    unsigned warmup = 300;
    std::uint64_t seed = 17;
};

/** Outcome of one cluster run. */
struct ClusterSimResult
{
    double offeredTps = 0.0;
    double avgLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double subMsFraction = 0.0;
    /** Share of requests landing on the busiest node. */
    double hottestNodeShare = 0.0;
    /** p99 of the busiest node vs the cluster median node. */
    double hotNodeTailAmplification = 0.0;
};

class ClusterSim
{
  public:
    explicit ClusterSim(const ClusterSimParams &params);

    /** Pre-load every key onto its owning node. */
    void populate();

    /** Run at an offered cluster-wide request rate. */
    ClusterSimResult run(double offered_tps);

    /** Sum of single-node closed-loop capacities (upper bound). */
    double aggregateCapacity();

    std::size_t nodes() const { return nodes_.size(); }

  private:
    std::string keyFor(std::uint64_t key_id) const;
    std::size_t nodeIndexFor(std::string_view key) const;

    ClusterSimParams params_;
    ConsistentHashRing ring_;
    std::vector<std::unique_ptr<server::ServerModel>> nodes_;
    std::vector<std::string> nodeNames_;
    bool populated_ = false;
    double capacity_ = 0.0;
};

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_CLUSTER_SIM_HH
