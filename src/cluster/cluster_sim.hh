/**
 * @file
 * Cluster timing simulation: a consistent-hash ring of simulated
 * server nodes under an open-loop workload.
 *
 * Sec. 3.8 argues that many small physical nodes reduce DHT
 * resource contention. This simulation makes that quantitative:
 * requests with a configurable key-popularity skew are routed over
 * the ring onto per-node timing models, so hot-node queueing and
 * its effect on cluster tail latency emerge.
 */

#ifndef MERCURY_CLUSTER_CLUSTER_SIM_HH
#define MERCURY_CLUSTER_CLUSTER_SIM_HH

#include <memory>
#include <vector>

#include "cluster/ring.hh"
#include "server/server_model.hh"
#include "sim/fault.hh"
#include "sim/sampler.hh"
#include "sim/trace.hh"
#include "workload/workload.hh"

namespace mercury::cluster
{

/**
 * Fault-mode configuration. Disabled by default; a disabled run
 * never touches the injector and is bit-identical to a pre-fault
 * build.
 */
struct ClusterFaultParams
{
    bool enabled = false;

    /** Per-segment wire loss probability on every node's paths. */
    double packetLossProbability = 0.0;

    /** Poisson rate of whole-node crashes, cluster-wide. */
    double nodeCrashesPerSecond = 0.0;

    /** Downtime before a crashed node restarts (cold cache). */
    Tick nodeDowntime = 20 * tickMs;

    /** Client-side wait before declaring an attempt dead. Real
     * memcached clients default to 1-3 s; latency-sensitive
     * deployments tune this to a few ms. */
    Tick requestTimeout = 2 * tickMs;

    /** Retries after the first attempt, each against the next node
     * in ring order (client failover). */
    unsigned maxRetries = 3;

    /** First retry backoff; doubles per attempt. */
    Tick backoffBase = 200 * tickUs;

    /** Backoff jitter: each wait is scaled by a uniform factor in
     * [1-j, 1+j] to decorrelate client retry storms. */
    double backoffJitter = 0.2;

    /** Seed of the fault RNG stream (independent of the workload). */
    std::uint64_t seed = 0xfa17;
};

/** Static configuration of a cluster experiment. */
struct ClusterSimParams
{
    /** Per-node configuration. */
    server::ServerModelParams node;
    unsigned nodes = 8;
    unsigned virtualNodes = 64;

    /** Key space and popularity. */
    std::uint64_t numKeys = 4000;
    workload::Popularity popularity = workload::Popularity::Zipf;
    double zipfTheta = 0.99;
    std::uint32_t valueBytes = 64;
    double getFraction = 0.95;

    /** Measured requests (after warmup). */
    unsigned requests = 3000;
    unsigned warmup = 300;
    std::uint64_t seed = 17;

    ClusterFaultParams faults{};

    /**
     * Optional windowed time-series sampler. When non-null, run()
     * registers its recovery-curve channels (requests, availability,
     * hit rate, windowed latency percentiles, fault counters) on it,
     * begins it at the run's time origin, and feeds it every request
     * -- warmup included, so the emitted trajectory covers the full
     * timeline. The sampler must be freshly constructed (channels
     * not yet frozen); ClusterSim finishes it before run() returns.
     * Null (the default) skips all of it: sampling is pure
     * observation and a sampled run computes the exact same result.
     */
    stats::Sampler *sampler = nullptr;

    /**
     * Optional request tracer for cross-node spans: a Client
     * envelope per request (node id trace::clientNode), an Attempt
     * span per client attempt (carrying the serving node's id and
     * the client request as causal parent), Backoff spans between
     * failed attempts, and the per-node ServerModel stage spans
     * recorded under the attempt's context. Null (the default)
     * records nothing.
     */
    trace::Tracer *tracer = nullptr;
};

/** Outcome of one cluster run. */
struct ClusterSimResult
{
    double offeredTps = 0.0;
    double avgLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double subMsFraction = 0.0;
    /** Share of requests landing on the busiest node. */
    double hottestNodeShare = 0.0;
    /** p99 of the busiest node vs the cluster median node. */
    double hotNodeTailAmplification = 0.0;

    // --- Fault-mode outcomes (defaults describe a clean run) --------

    double p999LatencyUs = 0.0;
    /** Requests answered within the retry budget. */
    double availability = 1.0;
    /** GET hit rate over the measured window. */
    double hitRate = 1.0;
    /** GET hit rate over the recovery window following each cold
     * restart; climbs back toward hitRate as clients re-fill. */
    double postRestartHitRate = 1.0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    /** Requests that exhausted every retry. */
    std::uint64_t failedRequests = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t netDrops = 0;
    std::uint64_t netRetransmits = 0;
    /** FaultInjector::timelineDigest() after the run. */
    std::uint64_t faultTimelineDigest = 0;
};

class ClusterSim
{
  public:
    explicit ClusterSim(const ClusterSimParams &params);

    /** Pre-load every key onto its owning node. */
    void populate();

    /** Run at an offered cluster-wide request rate. */
    ClusterSimResult run(double offered_tps);

    /** Sum of single-node closed-loop capacities (upper bound). */
    double aggregateCapacity();

    std::size_t nodes() const { return nodes_.size(); }

    /** The fault injector driving this sim (inspect the timeline,
     * or schedule explicit crash plans before run()). */
    fault::FaultInjector &injector() { return injector_; }
    const fault::FaultInjector &injector() const { return injector_; }

  private:
    std::string keyFor(std::uint64_t key_id) const;
    std::size_t nodeIndexFor(std::string_view key) const;
    std::size_t indexOfName(const std::string &name) const;

    ClusterSimParams params_;
    ConsistentHashRing ring_;
    std::vector<std::unique_ptr<server::ServerModel>> nodes_;
    std::vector<std::string> nodeNames_;
    fault::FaultInjector injector_;
    bool populated_ = false;
    double capacity_ = 0.0;
};

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_CLUSTER_SIM_HH
