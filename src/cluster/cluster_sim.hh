/**
 * @file
 * Cluster timing simulation: a consistent-hash ring of simulated
 * server nodes under an open-loop workload.
 *
 * Sec. 3.8 argues that many small physical nodes reduce DHT
 * resource contention. This simulation makes that quantitative:
 * requests with a configurable key-popularity skew are routed over
 * the ring onto per-node timing models, so hot-node queueing and
 * its effect on cluster tail latency emerge.
 */

#ifndef MERCURY_CLUSTER_CLUSTER_SIM_HH
#define MERCURY_CLUSTER_CLUSTER_SIM_HH

#include <memory>
#include <vector>

#include "cluster/ring.hh"
#include "server/server_model.hh"
#include "sim/fault.hh"
#include "sim/sampler.hh"
#include "sim/trace.hh"
#include "workload/workload.hh"

namespace mercury::cluster
{

/**
 * Fault-mode configuration. Disabled by default; a disabled run
 * never touches the injector and is bit-identical to a pre-fault
 * build.
 */
struct ClusterFaultParams
{
    bool enabled = false;

    /** Per-segment wire loss probability on every node's paths. */
    double packetLossProbability = 0.0;

    /** Poisson rate of whole-node crashes, cluster-wide. */
    double nodeCrashesPerSecond = 0.0;

    /** Downtime before a crashed node restarts (cold cache). */
    Tick nodeDowntime = 20 * tickMs;

    /** Client-side wait before declaring an attempt dead. Real
     * memcached clients default to 1-3 s; latency-sensitive
     * deployments tune this to a few ms. */
    Tick requestTimeout = 2 * tickMs;

    /** Retries after the first attempt, each against the next node
     * in ring order (client failover). */
    unsigned maxRetries = 3;

    /** First retry backoff; doubles per attempt. */
    Tick backoffBase = 200 * tickUs;

    /** Backoff jitter: each wait is scaled by a uniform factor in
     * [1-j, 1+j] to decorrelate client retry storms. */
    double backoffJitter = 0.2;

    /** Seed of the fault RNG stream (independent of the workload). */
    std::uint64_t seed = 0xfa17;
};

/**
 * Fault-tolerance and graceful-degradation knobs. All defaults are
 * "off": a default-constructed instance reproduces the unreplicated,
 * unhedged, shed-nothing client bit for bit.
 */
struct ClusterResilienceParams
{
    /**
     * Replicas per key: each key lives on the first R distinct nodes
     * of its ring order. Writes go to every up replica in parallel
     * (write-all); down replicas get a hinted write replayed when
     * they restart, so they come back warm instead of cold. Reads
     * are served by the primary replica (read-one) with read-through
     * refill on a miss. 1 = the classic unreplicated cluster.
     */
    unsigned replicationFactor = 1;

    /** Spread each key's replica set across distinct racks (needs
     * ClusterSimParams::racks >= 2) so one rack's correlated crash
     * cannot take out a whole replica set. */
    bool rackAwareReplicas = false;

    /**
     * Hedged reads: when the primary replica has not answered a GET
     * by the hedge delay, fire a second attempt at another up
     * replica; the first answer wins and the loser is cancelled
     * (its result is discarded and nothing is refilled from it).
     * Needs replicationFactor >= 2 -- only replicas hold the data a
     * hedge could serve. A hedged client also rescues a GET whose
     * primary is down without waiting the full request timeout: the
     * hedge fires at the hedge delay as usual.
     */
    bool hedgedReads = false;

    /** The hedge fires when the primary is slower than this
     * quantile of observed attempt service times. */
    double hedgeQuantile = 0.95;

    /** Floor on the hedge delay; also used verbatim until
     * hedgeWarmup attempt samples have been observed. */
    Tick hedgeFloor = 300 * tickUs;

    /** Attempt-latency samples needed before the quantile (rather
     * than hedgeFloor) drives the hedge delay. */
    unsigned hedgeWarmup = 32;

    /**
     * Retry budget: retries across the run may not exceed this
     * fraction of requests issued so far (Finagle-style). A request
     * that wants to retry once the budget is spent gives up instead
     * (counted as failed, not timed out), bounding retry storms.
     * 0 disables the budget (retries limited only by maxRetries).
     */
    double retryBudgetFraction = 0.0;

    /**
     * Per-node admission control: when a node's queue delay (time
     * between a request's arrival at the node and the node being
     * free to serve it) exceeds sloQueueDelay, the node sheds the
     * request with a fast "busy" refusal instead of queueing it.
     * Shed requests are a distinct outcome class -- the client gets
     * a prompt negative answer, not a timeout -- so overload
     * degrades throughput instead of collapsing the tail.
     */
    bool admissionControl = false;

    /** Queue-delay SLO threshold beyond which a node sheds. */
    Tick sloQueueDelay = 2 * tickMs;

    /** Time to deliver the "busy" refusal (network + a queue-front
     * check; the store is never touched). */
    Tick shedResponseTime = 20 * tickUs;
};

/** Static configuration of a cluster experiment. */
struct ClusterSimParams
{
    /** Per-node configuration. */
    server::ServerModelParams node;
    unsigned nodes = 8;
    unsigned virtualNodes = 64;

    /** Key space and popularity. */
    std::uint64_t numKeys = 4000;
    workload::Popularity popularity = workload::Popularity::Zipf;
    double zipfTheta = 0.99;
    std::uint32_t valueBytes = 64;
    double getFraction = 0.95;

    /** Measured requests (after warmup). */
    unsigned requests = 3000;
    unsigned warmup = 300;
    std::uint64_t seed = 17;

    /** Racks the nodes are striped across (node i sits in rack
     * i % racks); 0 or 1 means no rack structure. Scheduled fault
     * plans can then crash a whole rack, and rackAwareReplicas
     * spreads replica sets across racks. */
    unsigned racks = 0;

    /**
     * PDES shards the node models are partitioned across (node i
     * runs on shard i % shards). With > 1, per-node work executes
     * on a sim::ShardedSim whose lookahead is the fabric's one-way
     * latency floor, byte-identical to the serial walk -- the
     * determinism matrix (ctest -L pdes) diffs every shard count
     * against the serial goldens. Clamped to the node count.
     * Client couplings tighter than the network lookahead
     * (admission control, hedged reads, an attached tracer) force
     * the serial walk regardless: they read remote state
     * mid-request, which no conservative partition can satisfy.
     */
    unsigned shards = 1;

    ClusterFaultParams faults{};

    ClusterResilienceParams resilience{};

    /** Window for minWindowAvailability: when nonzero, run() tracks
     * per-window availability over the full run (warmup included)
     * and reports the worst window, the "did the bad day ever take
     * us below the SLO" number. 0 skips it. */
    Tick availabilityWindow = 0;

    /**
     * Optional windowed time-series sampler. When non-null, run()
     * registers its recovery-curve channels (requests, availability,
     * hit rate, windowed latency percentiles, fault counters) on it,
     * begins it at the run's time origin, and feeds it every request
     * -- warmup included, so the emitted trajectory covers the full
     * timeline. The sampler must be freshly constructed (channels
     * not yet frozen); ClusterSim finishes it before run() returns.
     * Null (the default) skips all of it: sampling is pure
     * observation and a sampled run computes the exact same result.
     */
    stats::Sampler *sampler = nullptr;

    /**
     * Optional request tracer for cross-node spans: a Client
     * envelope per request (node id trace::clientNode), an Attempt
     * span per client attempt (carrying the serving node's id and
     * the client request as causal parent), Backoff spans between
     * failed attempts, and the per-node ServerModel stage spans
     * recorded under the attempt's context. Null (the default)
     * records nothing.
     */
    trace::Tracer *tracer = nullptr;
};

/** Outcome of one cluster run. */
struct ClusterSimResult
{
    double offeredTps = 0.0;
    double avgLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double subMsFraction = 0.0;
    /** Share of requests landing on the busiest node. */
    double hottestNodeShare = 0.0;
    /** p99 of the busiest node vs the cluster median node. */
    double hotNodeTailAmplification = 0.0;

    // --- Fault-mode outcomes (defaults describe a clean run) --------

    double p999LatencyUs = 0.0;
    /** ok / requests: the fraction of measured requests answered. */
    double availability = 1.0;
    /** Worst per-window availability over the full run (warmup
     * included); 1.0 unless availabilityWindow was set. */
    double minWindowAvailability = 1.0;
    /** GET hit rate over the measured window. */
    double hitRate = 1.0;
    /** GET hit rate over the recovery window following each cold
     * restart; climbs back toward hitRate as clients re-fill. */
    double postRestartHitRate = 1.0;

    // --- Request outcome classes ------------------------------------
    //
    // Every measured request lands in exactly one class; the sum is
    // checked against `requests` by an always-on contract at the end
    // of run(). A new class must be added to accountedRequests() (the
    // result-class lint rule enforces this) and to the availability
    // math of every consumer.

    /** Measured requests issued (the denominator of the classes). */
    std::uint64_t requests = 0;
    /** Answered within the retry policy. */
    std::uint64_t ok = 0;  ///< [outcome]
    /** Gave up with every attempt timed out. */
    std::uint64_t timeouts = 0;  ///< [outcome]
    /** Gave up early: the retry budget was exhausted. */
    std::uint64_t failedRequests = 0;  ///< [outcome]
    /** Refused by per-node admission control (a fast "busy" answer,
     * deliberately distinct from a timeout). */
    std::uint64_t shed = 0;  ///< [outcome]

    /** Sum of the outcome classes; must equal requests. */
    std::uint64_t
    accountedRequests() const
    {
        return ok + timeouts + failedRequests + shed;
    }

    // --- Attempt-level diagnostics ----------------------------------

    /** Individual attempts that timed out against a dead node (a
     * request that eventually got served still counts its dead-end
     * attempts here). */
    std::uint64_t attemptTimeouts = 0;
    std::uint64_t retries = 0;
    /** Hedged second attempts fired / won the race. */
    std::uint64_t hedges = 0;
    std::uint64_t hedgeWins = 0;
    /** Writes queued for a down replica / replayed at its restart. */
    std::uint64_t hintsQueued = 0;
    std::uint64_t hintsReplayed = 0;
    /** Replica misses re-filled by the read-through path. */
    std::uint64_t readRepairs = 0;
    /** Peak simultaneously outstanding requests on any single node. */
    std::uint64_t maxOutstanding = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t netDrops = 0;
    std::uint64_t netRetransmits = 0;
    /** FaultInjector::timelineDigest() after the run. */
    std::uint64_t faultTimelineDigest = 0;
};

class ClusterSim
{
  public:
    explicit ClusterSim(const ClusterSimParams &params);

    /** Pre-load every key onto its owning node. */
    void populate();

    /** Run at an offered cluster-wide request rate. */
    ClusterSimResult run(double offered_tps);

    /**
     * The simulated tick run() will use as its time origin
     * (populates first). Fault plans meant to fire mid-run schedule
     * relative to this -- absolute ticks smaller than it all fire at
     * the first arrival.
     */
    Tick timeOrigin();

    /** Sum of single-node closed-loop capacities (upper bound). */
    double aggregateCapacity();

    std::size_t nodes() const { return nodes_.size(); }

    /** The fault injector driving this sim (inspect the timeline,
     * or schedule explicit crash plans before run()). */
    fault::FaultInjector &injector() { return injector_; }
    const fault::FaultInjector &injector() const { return injector_; }

  private:
    std::string keyFor(std::uint64_t key_id) const;
    std::size_t nodeIndexFor(std::string_view key) const;
    std::size_t indexOfName(const std::string &name) const;

    /** True when a client coupling (admission control, hedging, a
     * tracer) reads cross-node state faster than the network
     * lookahead, forcing the serial walk. */
    bool requiresSerialWalk() const;

    /** Serial reference walk (also the shards <= 1 path). */
    ClusterSimResult runSerial(double offered_tps);

    /** Conservative-PDES execution: a driver pass records every
     * client decision and posts per-node work onto a ShardedSim;
     * a serial replay pass re-derives the exact serial accounting
     * from the recorded steps. Byte-identical to runSerial(). */
    ClusterSimResult runSharded(double offered_tps);

    /** Master timeline digest chained through every per-node
     * injector fork, in node-index order. */
    std::uint64_t faultDigest() const;

    /** Replicas clamped to the cluster size (>= 1). */
    unsigned effectiveReplication() const;

    /** Failover/replica order for a key: plain ring successors, or
     * the rack-spread variant when configured. */
    std::vector<std::string> replicaOrder(std::string_view key,
                                          std::size_t count) const;

    ClusterSimParams params_;
    ConsistentHashRing ring_;
    std::vector<std::unique_ptr<server::ServerModel>> nodes_;
    std::vector<std::string> nodeNames_;
    fault::FaultInjector injector_;
    /** Per-node injector forks (fault mode only): each node's
     * loss/flash draws come from its own seeded stream, so a
     * node's fault history depends only on its own op sequence --
     * the property that lets nodes run on different PDES shards
     * without perturbing each other's draws. */
    std::vector<std::unique_ptr<fault::FaultInjector>> nodeInjectors_;
    bool populated_ = false;
    double capacity_ = 0.0;
};

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_CLUSTER_SIM_HH
