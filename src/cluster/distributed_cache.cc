#include "cluster/distributed_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::cluster
{

DistributedCache::DistributedCache(
    unsigned nodes, const kvstore::StoreParams &store_params,
    unsigned virtual_nodes)
    : storeParams_(store_params), ring_(virtual_nodes)
{
    mercury_assert(nodes >= 1, "cluster needs at least one node");
    for (unsigned i = 0; i < nodes; ++i)
        addNode();
}

std::string
DistributedCache::addNode()
{
    const std::string name = "node" + std::to_string(nextNodeId_++);
    kvstore::StoreParams params = storeParams_;
    params.name = name;
    nodes_.push_back(
        Node{name, std::make_unique<kvstore::Store>(params), true});
    ring_.addNode(name);
    return name;
}

bool
DistributedCache::removeNode(const std::string &name)
{
    auto it = std::find_if(nodes_.begin(), nodes_.end(),
                           [&](const Node &node) {
                               return node.name == name;
                           });
    if (it == nodes_.end())
        return false;

    // Sample the remap fraction while the node is still on the ring;
    // its items are lost outright (nothing re-replicates them).
    if (ring_.numNodes() > 1) {
        topology_.lastRemapFraction =
            ring_.remapFractionOnRemoval(name, 2000);
    } else {
        topology_.lastRemapFraction = 1.0;
    }
    topology_.lostItems += it->store->itemCount();
    ++topology_.removedNodes;

    ring_.removeNode(name);
    nodes_.erase(it);
    return true;
}

bool
DistributedCache::crashNode(const std::string &name)
{
    Node *node = find(name);
    if (!node || !node->up)
        return false;
    node->up = false;
    return true;
}

bool
DistributedCache::restartNode(const std::string &name)
{
    Node *node = find(name);
    if (!node || node->up)
        return false;
    // The process restarts with an empty in-memory store: rebuild it
    // so counters and slabs are cold too.
    kvstore::StoreParams params = storeParams_;
    params.name = name;
    node->store = std::make_unique<kvstore::Store>(params);
    node->up = true;
    return true;
}

bool
DistributedCache::isUp(const std::string &name) const
{
    for (const Node &node : nodes_) {
        if (node.name == name)
            return node.up;
    }
    return false;
}

DistributedCache::Node *
DistributedCache::find(const std::string &name)
{
    for (Node &node : nodes_) {
        if (node.name == name)
            return &node;
    }
    return nullptr;
}

DistributedCache::Node *
DistributedCache::nodeFor(std::string_view key)
{
    const std::string &owner = ring_.nodeFor(key);
    Node *node = find(owner);
    if (!node)
        mercury_panic("ring returned unknown node ", owner);
    if (!node->up) {
        ++topology_.downOps;
        return nullptr;
    }
    return node;
}

kvstore::Store &
DistributedCache::storeOf(const std::string &name)
{
    Node *node = find(name);
    if (!node)
        mercury_panic("unknown node ", name);
    return *node->store;
}

kvstore::GetResult
DistributedCache::get(std::string_view key)
{
    Node *node = nodeFor(key);
    if (!node)
        return kvstore::GetResult{};  // owner down: a miss
    return node->store->get(key);
}

kvstore::StoreStatus
DistributedCache::set(std::string_view key, std::string_view value,
                      std::uint32_t flags, std::uint32_t ttl)
{
    Node *node = nodeFor(key);
    if (!node)
        return kvstore::StoreStatus::NotStored;
    return node->store->set(key, value, flags, ttl);
}

kvstore::StoreStatus
DistributedCache::remove(std::string_view key)
{
    Node *node = nodeFor(key);
    if (!node)
        return kvstore::StoreStatus::NotFound;
    return node->store->remove(key);
}

std::vector<std::pair<std::string, std::size_t>>
DistributedCache::itemCounts() const
{
    std::vector<std::pair<std::string, std::size_t>> counts;
    counts.reserve(nodes_.size());
    for (const Node &node : nodes_)
        counts.emplace_back(node.name, node.store->itemCount());
    return counts;
}

std::uint64_t
DistributedCache::usedBytes() const
{
    std::uint64_t total = 0;
    for (const Node &node : nodes_)
        total += node.store->usedBytes();
    return total;
}

} // namespace mercury::cluster
