#include "cluster/distributed_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::cluster
{

DistributedCache::DistributedCache(
    unsigned nodes, const kvstore::StoreParams &store_params,
    unsigned virtual_nodes)
    : storeParams_(store_params), ring_(virtual_nodes)
{
    mercury_assert(nodes >= 1, "cluster needs at least one node");
    for (unsigned i = 0; i < nodes; ++i)
        addNode();
}

std::string
DistributedCache::addNode()
{
    const std::string name = "node" + std::to_string(nextNodeId_++);
    kvstore::StoreParams params = storeParams_;
    params.name = name;
    nodes_.emplace_back(name,
                        std::make_unique<kvstore::Store>(params));
    ring_.addNode(name);
    return name;
}

bool
DistributedCache::removeNode(const std::string &name)
{
    auto it = std::find_if(nodes_.begin(), nodes_.end(),
                           [&](const auto &entry) {
                               return entry.first == name;
                           });
    if (it == nodes_.end())
        return false;
    ring_.removeNode(name);
    nodes_.erase(it);
    return true;
}

kvstore::Store &
DistributedCache::storeFor(std::string_view key)
{
    const std::string &owner = ring_.nodeFor(key);
    for (auto &[name, store] : nodes_) {
        if (name == owner)
            return *store;
    }
    mercury_panic("ring returned unknown node ", owner);
}

kvstore::Store &
DistributedCache::storeOf(const std::string &name)
{
    for (auto &[node, store] : nodes_) {
        if (node == name)
            return *store;
    }
    mercury_panic("unknown node ", name);
}

kvstore::GetResult
DistributedCache::get(std::string_view key)
{
    return storeFor(key).get(key);
}

kvstore::StoreStatus
DistributedCache::set(std::string_view key, std::string_view value,
                      std::uint32_t flags, std::uint32_t ttl)
{
    return storeFor(key).set(key, value, flags, ttl);
}

kvstore::StoreStatus
DistributedCache::remove(std::string_view key)
{
    return storeFor(key).remove(key);
}

std::vector<std::pair<std::string, std::size_t>>
DistributedCache::itemCounts() const
{
    std::vector<std::pair<std::string, std::size_t>> counts;
    counts.reserve(nodes_.size());
    for (const auto &[name, store] : nodes_)
        counts.emplace_back(name, store->itemCount());
    return counts;
}

std::uint64_t
DistributedCache::usedBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[name, store] : nodes_)
        total += store->usedBytes();
    return total;
}

} // namespace mercury::cluster
