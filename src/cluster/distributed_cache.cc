#include "cluster/distributed_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::cluster
{

DistributedCache::DistributedCache(
    unsigned nodes, const kvstore::StoreParams &store_params,
    unsigned virtual_nodes, unsigned replication_factor)
    : storeParams_(store_params), ring_(virtual_nodes),
      replicationFactor_(replication_factor)
{
    mercury_assert(nodes >= 1, "cluster needs at least one node");
    mercury_assert(replication_factor >= 1 &&
                       replication_factor <= nodes,
                   "replication factor must be in [1, nodes]");
    for (unsigned i = 0; i < nodes; ++i)
        addNode();
}

std::string
DistributedCache::addNode()
{
    const std::string name = "node" + std::to_string(nextNodeId_++);
    kvstore::StoreParams params = storeParams_;
    params.name = name;
    nodes_.push_back(
        Node{name, std::make_unique<kvstore::Store>(params), true,
             {}});
    ring_.addNode(name);
    return name;
}

bool
DistributedCache::removeNode(const std::string &name)
{
    auto it = std::find_if(nodes_.begin(), nodes_.end(),
                           [&](const Node &node) {
                               return node.name == name;
                           });
    if (it == nodes_.end())
        return false;

    // Sample the remap fraction while the node is still on the ring;
    // its items are lost outright (nothing re-replicates them).
    if (ring_.numNodes() > 1) {
        topology_.lastRemapFraction =
            ring_.remapFractionOnRemoval(name, 2000);
    } else {
        topology_.lastRemapFraction = 1.0;
    }
    topology_.lostItems += it->store->itemCount();
    ++topology_.removedNodes;
    replication_.hintsDropped += it->hints.size();

    ring_.removeNode(name);
    nodes_.erase(it);
    return true;
}

bool
DistributedCache::crashNode(const std::string &name)
{
    Node *node = find(name);
    if (!node || !node->up)
        return false;
    node->up = false;
    return true;
}

bool
DistributedCache::restartNode(const std::string &name)
{
    Node *node = find(name);
    if (!node || node->up)
        return false;
    // The process restarts with an empty in-memory store: rebuild it
    // so counters and slabs are cold too.
    kvstore::StoreParams params = storeParams_;
    params.name = name;
    node->store = std::make_unique<kvstore::Store>(params);
    node->up = true;

    // Replay the writes it missed, in arrival order, so the replica
    // converges with its peers instead of coming back cold.
    for (const Hint &hint : node->hints) {
        if (hint.isRemove) {
            node->store->remove(hint.key);
        } else {
            node->store->set(hint.key, hint.value, hint.flags,
                             hint.ttl);
        }
        ++replication_.hintsReplayed;
    }
    node->hints.clear();
    return true;
}

bool
DistributedCache::isUp(const std::string &name) const
{
    for (const Node &node : nodes_) {
        if (node.name == name)
            return node.up;
    }
    return false;
}

DistributedCache::Node *
DistributedCache::find(const std::string &name)
{
    for (Node &node : nodes_) {
        if (node.name == name)
            return &node;
    }
    return nullptr;
}

const DistributedCache::Node *
DistributedCache::find(const std::string &name) const
{
    for (const Node &node : nodes_) {
        if (node.name == name)
            return &node;
    }
    return nullptr;
}

std::vector<DistributedCache::Node *>
DistributedCache::replicasOf(std::string_view key)
{
    const std::vector<std::string> names =
        ring_.nodesFor(key, replicationFactor_);
    std::vector<Node *> replicas;
    replicas.reserve(names.size());
    for (const std::string &name : names) {
        Node *node = find(name);
        if (!node)
            mercury_panic("ring returned unknown node ", name);
        replicas.push_back(node);
    }
    return replicas;
}

std::size_t
DistributedCache::pendingHints(const std::string &name) const
{
    const Node *node = find(name);
    return node ? node->hints.size() : 0;
}

kvstore::Store &
DistributedCache::storeOf(const std::string &name)
{
    Node *node = find(name);
    if (!node)
        mercury_panic("unknown node ", name);
    return *node->store;
}

kvstore::GetResult
DistributedCache::get(std::string_view key)
{
    std::vector<Node *> replicas = replicasOf(key);
    Node *server = nullptr;
    kvstore::GetResult result;
    std::vector<Node *> missed;
    bool any_up = false;
    for (Node *node : replicas) {
        if (!node->up)
            continue;
        any_up = true;
        kvstore::GetResult r = node->store->get(key);
        if (r.hit && !server) {
            server = node;
            result = std::move(r);
        } else if (!r.hit) {
            missed.push_back(node);
        }
    }
    if (!any_up) {
        ++topology_.downOps;
        return kvstore::GetResult{};  // whole replica set down
    }
    if (server && !missed.empty()) {
        // Divergence (typically a replica that restarted before
        // hinted handoff existed for its keys): repair the stragglers
        // with the value we are about to serve. The repair write has
        // no TTL to honor -- the survivor's TTL is not recoverable.
        ++replication_.divergentReads;
        for (Node *node : missed) {
            node->store->set(key, result.value, result.flags, 0);
            ++replication_.readRepairs;
        }
    }
    return result;
}

kvstore::StoreStatus
DistributedCache::set(std::string_view key, std::string_view value,
                      std::uint32_t flags, std::uint32_t ttl)
{
    return writeAll(
        Hint{false, std::string(key), std::string(value), flags, ttl},
        kvstore::StoreStatus::NotStored);
}

kvstore::StoreStatus
DistributedCache::remove(std::string_view key)
{
    return writeAll(Hint{true, std::string(key), std::string(), 0, 0},
                    kvstore::StoreStatus::NotFound);
}

kvstore::StoreStatus
DistributedCache::writeAll(const Hint &op,
                           kvstore::StoreStatus none_up_status)
{
    std::vector<Node *> replicas = replicasOf(op.key);
    kvstore::StoreStatus status = none_up_status;
    bool any_up = false;
    for (Node *node : replicas) {
        if (!node->up)
            continue;
        const kvstore::StoreStatus s =
            op.isRemove
                ? node->store->remove(op.key)
                : node->store->set(op.key, op.value, op.flags,
                                   op.ttl);
        ++replication_.replicaWrites;
        if (!any_up)
            status = s;  // the ring-first up replica's verdict
        any_up = true;
    }
    if (!any_up) {
        ++topology_.downOps;
        return none_up_status;
    }
    for (Node *node : replicas) {
        if (!node->up) {
            node->hints.push_back(op);
            ++replication_.hintsQueued;
        }
    }
    return status;
}

std::vector<std::pair<std::string, std::size_t>>
DistributedCache::itemCounts() const
{
    std::vector<std::pair<std::string, std::size_t>> counts;
    counts.reserve(nodes_.size());
    for (const Node &node : nodes_)
        counts.emplace_back(node.name, node.store->itemCount());
    return counts;
}

std::uint64_t
DistributedCache::usedBytes() const
{
    std::uint64_t total = 0;
    for (const Node &node : nodes_)
        total += node.store->usedBytes();
    return total;
}

} // namespace mercury::cluster
