/**
 * @file
 * A functional distributed cache: N independent Store instances
 * behind a consistent-hash ring, memcached-cluster style. Nodes
 * share nothing; adding or removing a node remaps only the affected
 * arcs (and, as in real memcached, remapped keys are simply lost
 * until re-filled).
 */

#ifndef MERCURY_CLUSTER_DISTRIBUTED_CACHE_HH
#define MERCURY_CLUSTER_DISTRIBUTED_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/ring.hh"
#include "kvstore/store.hh"

namespace mercury::cluster
{

class DistributedCache
{
  public:
    /**
     * @param nodes initial node count (named "node0".."nodeN-1")
     * @param store_params per-node store configuration
     * @param virtual_nodes ring points per node
     */
    DistributedCache(unsigned nodes,
                     const kvstore::StoreParams &store_params,
                     unsigned virtual_nodes = 40);

    kvstore::GetResult get(std::string_view key);

    kvstore::StoreStatus set(std::string_view key,
                             std::string_view value,
                             std::uint32_t flags = 0,
                             std::uint32_t ttl = 0);

    kvstore::StoreStatus remove(std::string_view key);

    /** Grow the cluster by one node. @return its name. */
    std::string addNode();

    /** Shrink the cluster; the node's data is dropped. */
    bool removeNode(const std::string &name);

    std::size_t numNodes() const { return ring_.numNodes(); }

    const ConsistentHashRing &ring() const { return ring_; }

    /** Per-node item counts, in node order. */
    std::vector<std::pair<std::string, std::size_t>>
    itemCounts() const;

    /** Aggregate memory in use across nodes. */
    std::uint64_t usedBytes() const;

    /** The store behind a node (for stats/tests). */
    kvstore::Store &storeOf(const std::string &name);

  private:
    kvstore::Store &storeFor(std::string_view key);

    kvstore::StoreParams storeParams_;
    ConsistentHashRing ring_;
    std::vector<std::pair<std::string,
                          std::unique_ptr<kvstore::Store>>> nodes_;
    unsigned nextNodeId_ = 0;
};

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_DISTRIBUTED_CACHE_HH
