/**
 * @file
 * A functional distributed cache: N independent Store instances
 * behind a consistent-hash ring, memcached-cluster style. Nodes
 * share nothing; adding or removing a node remaps only the affected
 * arcs (and, as in real memcached, remapped keys are simply lost
 * until re-filled).
 *
 * With replicationFactor R > 1, each key lives on the first R
 * distinct nodes in ring order (the failover order nodesFor already
 * yields). Writes go to every up replica (write-all); reads are
 * served by the first up replica that hits (read-one) and repair any
 * up replica found divergent. Writes aimed at a down replica are
 * queued as hints and replayed, in order, when the node restarts --
 * so a restarted replica comes back warm for everything written
 * while it was gone, instead of cold until clients re-fill it.
 */

#ifndef MERCURY_CLUSTER_DISTRIBUTED_CACHE_HH
#define MERCURY_CLUSTER_DISTRIBUTED_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/ring.hh"
#include "kvstore/store.hh"

namespace mercury::cluster
{

/** Bookkeeping of topology changes (removals and crashes). */
struct TopologyStats
{
    /** Nodes removed from the ring so far. */
    std::size_t removedNodes = 0;
    /** Items dropped with their node; memcached loses them until
     * clients re-fill. */
    std::size_t lostItems = 0;
    /** Sampled fraction of keys remapped by the last removal --
     * consistent hashing promises ~1/numNodes. */
    double lastRemapFraction = 0.0;
    /** Operations that found the key's owner crashed. */
    std::size_t downOps = 0;
};

/** Bookkeeping of the replication machinery. */
struct ReplicationStats
{
    /** Replica stores written by set/remove (R per op when every
     * replica is up). */
    std::size_t replicaWrites = 0;
    /** Writes queued for a down replica (hinted handoff). */
    std::size_t hintsQueued = 0;
    /** Hints applied on node restart. */
    std::size_t hintsReplayed = 0;
    /** Hints discarded because their target left the ring. */
    std::size_t hintsDropped = 0;
    /** Up replicas re-written because a read found them divergent. */
    std::size_t readRepairs = 0;
    /** Reads where one up replica hit and another missed. */
    std::size_t divergentReads = 0;
};

class DistributedCache
{
  public:
    /**
     * @param nodes initial node count (named "node0".."nodeN-1")
     * @param store_params per-node store configuration
     * @param virtual_nodes ring points per node
     * @param replication_factor replicas per key (1 = the classic
     *        unreplicated cluster, byte-identical to before)
     */
    DistributedCache(unsigned nodes,
                     const kvstore::StoreParams &store_params,
                     unsigned virtual_nodes = 40,
                     unsigned replication_factor = 1);

    kvstore::GetResult get(std::string_view key);

    kvstore::StoreStatus set(std::string_view key,
                             std::string_view value,
                             std::uint32_t flags = 0,
                             std::uint32_t ttl = 0);

    kvstore::StoreStatus remove(std::string_view key);

    /** Grow the cluster by one node. @return its name. */
    std::string addNode();

    /** Shrink the cluster; the node's data is dropped. Updates
     * topologyStats() with the item loss and the sampled remap
     * fraction measured before the ring shrank. */
    bool removeNode(const std::string &name);

    /**
     * Mark a node down (process crash). Its arcs stay on the ring --
     * clients time out against it -- and its data is unreachable.
     * @return false if unknown or already down.
     */
    bool crashNode(const std::string &name);

    /** Bring a crashed node back with a cold cache, as a real
     * memcached restart does. @return false if unknown or up. */
    bool restartNode(const std::string &name);

    /** @return false for crashed nodes and unknown names. */
    bool isUp(const std::string &name) const;

    /** Failover order for a key (ring successors). */
    std::vector<std::string>
    nodesFor(std::string_view key, std::size_t count) const
    {
        return ring_.nodesFor(key, count);
    }

    const TopologyStats &topologyStats() const { return topology_; }

    const ReplicationStats &replicationStats() const
    {
        return replication_;
    }

    unsigned replicationFactor() const { return replicationFactor_; }

    /** Hints queued for a (down) node, awaiting its restart. */
    std::size_t pendingHints(const std::string &name) const;

    std::size_t numNodes() const { return ring_.numNodes(); }

    const ConsistentHashRing &ring() const { return ring_; }

    /** Per-node item counts, in node order. */
    std::vector<std::pair<std::string, std::size_t>>
    itemCounts() const;

    /** Aggregate memory in use across nodes. */
    std::uint64_t usedBytes() const;

    /** The store behind a node (for stats/tests). */
    kvstore::Store &storeOf(const std::string &name);

  private:
    /** One write held for a down replica, replayed on restart. */
    struct Hint
    {
        bool isRemove = false;
        std::string key;
        std::string value;
        std::uint32_t flags = 0;
        std::uint32_t ttl = 0;
    };

    struct Node
    {
        std::string name;
        std::unique_ptr<kvstore::Store> store;
        bool up = true;
        /** Hinted-handoff queue, in write order. */
        std::vector<Hint> hints;
    };

    Node *find(const std::string &name);
    const Node *find(const std::string &name) const;

    /** The key's replica set, in ring order (down nodes included). */
    std::vector<Node *> replicasOf(std::string_view key);

    /** Apply a write to every up replica and hint the down ones.
     * @return the first up replica's status, or @p none_up_status
     * when the whole set is down (then nothing is hinted either:
     * there is no live coordinator left to hold the hint). */
    kvstore::StoreStatus
    writeAll(const Hint &op, kvstore::StoreStatus none_up_status);

    kvstore::StoreParams storeParams_;
    ConsistentHashRing ring_;
    unsigned replicationFactor_;
    std::vector<Node> nodes_;
    unsigned nextNodeId_ = 0;
    TopologyStats topology_;
    ReplicationStats replication_;
};

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_DISTRIBUTED_CACHE_HH
