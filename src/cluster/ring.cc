#include "cluster/ring.hh"

#include <algorithm>
#include <cmath>

#include "kvstore/hash.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace mercury::cluster
{

ConsistentHashRing::ConsistentHashRing(unsigned virtual_nodes)
    : virtualNodes_(virtual_nodes)
{
    mercury_assert(virtualNodes_ >= 1,
                   "need at least one virtual node per node");
}

bool
ConsistentHashRing::addNode(const std::string &name, unsigned rack)
{
    if (std::find(nodes_.begin(), nodes_.end(), name) != nodes_.end())
        return false;

    const std::size_t index = nodes_.size();
    nodes_.push_back(name);
    racks_.push_back(rack);
    for (unsigned v = 0; v < virtualNodes_; ++v) {
        const std::uint64_t point = kvstore::hashKey(name, v + 1);
        ring_[point] = index;
    }
    return true;
}

bool
ConsistentHashRing::removeNode(const std::string &name)
{
    auto it = std::find(nodes_.begin(), nodes_.end(), name);
    if (it == nodes_.end())
        return false;
    const auto index =
        static_cast<std::size_t>(it - nodes_.begin());

    for (unsigned v = 0; v < virtualNodes_; ++v)
        ring_.erase(kvstore::hashKey(name, v + 1));

    // Keep indices of the other nodes stable: swap the last node's
    // points onto the vacated slot.
    const std::size_t last = nodes_.size() - 1;
    if (index != last) {
        nodes_[index] = std::move(nodes_[last]);
        racks_[index] = racks_[last];
        for (auto &[point, owner] : ring_) {
            if (owner == last)
                owner = index;
        }
    }
    nodes_.pop_back();
    racks_.pop_back();
    return true;
}

const std::string &
ConsistentHashRing::nodeFor(std::string_view key) const
{
    mercury_assert(!ring_.empty(), "ring has no nodes");
    const std::uint64_t point = kvstore::hashKey(key);
    auto it = ring_.lower_bound(point);
    if (it == ring_.end())
        it = ring_.begin();  // wrap around the circle
    return nodes_[it->second];
}

std::vector<std::string>
ConsistentHashRing::nodesFor(std::string_view key,
                             std::size_t count) const
{
    mercury_assert(!ring_.empty(), "ring has no nodes");
    std::vector<std::string> order;
    order.reserve(std::min(count, nodes_.size()));

    const std::uint64_t point = kvstore::hashKey(key);
    auto it = ring_.lower_bound(point);
    // Walk the circle once, collecting each distinct owner in the
    // order its next virtual point appears.
    for (std::size_t steps = 0;
         steps < ring_.size() && order.size() < count; ++steps) {
        if (it == ring_.end())
            it = ring_.begin();
        const std::string &owner = nodes_[it->second];
        if (std::find(order.begin(), order.end(), owner) ==
            order.end()) {
            order.push_back(owner);
        }
        ++it;
    }
    return order;
}

std::vector<std::string>
ConsistentHashRing::replicasFor(std::string_view key,
                                std::size_t count,
                                bool distinct_racks) const
{
    if (!distinct_racks)
        return nodesFor(key, count);

    // Full distinct-owner ring order, then greedy rack spreading:
    // keep the primary, prefer successors from unused racks, and fall
    // back to plain ring order once every rack is represented.
    std::vector<std::string> order = nodesFor(key, nodes_.size());
    if (order.size() <= count)
        return order;

    std::vector<std::string> picked;
    std::vector<bool> used(order.size(), false);
    std::vector<unsigned> racks_seen;
    picked.reserve(count);
    picked.push_back(order[0]);
    used[0] = true;
    racks_seen.push_back(rackOf(order[0]));

    while (picked.size() < count) {
        std::size_t chosen = order.size();
        for (std::size_t i = 1; i < order.size(); ++i) {
            if (used[i])
                continue;
            const unsigned rack = rackOf(order[i]);
            if (std::find(racks_seen.begin(), racks_seen.end(),
                          rack) == racks_seen.end()) {
                chosen = i;
                break;
            }
        }
        if (chosen == order.size()) {
            for (std::size_t i = 1; i < order.size(); ++i) {
                if (!used[i]) {
                    chosen = i;
                    break;
                }
            }
        }
        if (chosen == order.size())
            break;
        used[chosen] = true;
        picked.push_back(order[chosen]);
        racks_seen.push_back(rackOf(order[chosen]));
    }
    return picked;
}

unsigned
ConsistentHashRing::rackOf(const std::string &name) const
{
    auto it = std::find(nodes_.begin(), nodes_.end(), name);
    if (it == nodes_.end())
        return 0;
    return racks_[static_cast<std::size_t>(it - nodes_.begin())];
}

std::map<std::string, double>
ConsistentHashRing::arcShare() const
{
    std::map<std::string, double> share;
    if (ring_.empty())
        return share;

    const double full = std::pow(2.0, 64.0);
    std::uint64_t prev = std::prev(ring_.end())->first;
    bool first = true;
    for (const auto &[point, owner] : ring_) {
        // Arc from the previous point (exclusive) to this point
        // belongs to this point's owner.
        const std::uint64_t arc =
            first ? point + (~prev + 1) : point - prev;
        share[nodes_[owner]] += static_cast<double>(arc) / full;
        prev = point;
        first = false;
    }
    return share;
}

LoadStats
ConsistentHashRing::sampleLoad(std::size_t samples,
                               std::uint64_t seed) const
{
    mercury_assert(!nodes_.empty(), "ring has no nodes");
    Rng rng(seed);
    std::map<std::string, std::size_t> counts;
    for (const auto &node : nodes_)
        counts[node] = 0;

    for (std::size_t i = 0; i < samples; ++i) {
        const std::string key = "k" + std::to_string(rng.next());
        ++counts[nodeFor(key)];
    }

    LoadStats stats;
    stats.mean = static_cast<double>(samples) /
                 static_cast<double>(nodes_.size());
    stats.min = static_cast<double>(samples);
    double variance = 0.0;
    for (const auto &[node, count] : counts) {
        const auto c = static_cast<double>(count);
        stats.max = std::max(stats.max, c);
        stats.min = std::min(stats.min, c);
        variance += (c - stats.mean) * (c - stats.mean);
    }
    variance /= static_cast<double>(nodes_.size());
    stats.imbalance = stats.mean > 0.0 ? stats.max / stats.mean : 0.0;
    stats.cv = stats.mean > 0.0 ? std::sqrt(variance) / stats.mean
                                : 0.0;
    return stats;
}

double
ConsistentHashRing::remapFractionOnRemoval(const std::string &node,
                                           std::size_t samples,
                                           std::uint64_t seed) const
{
    ConsistentHashRing without(virtualNodes_);
    for (const auto &name : nodes_) {
        if (name != node)
            without.addNode(name);
    }
    mercury_assert(without.numNodes() + 1 == numNodes(),
                   "node to remove must be on the ring");

    Rng rng(seed);
    std::size_t moved = 0;
    for (std::size_t i = 0; i < samples; ++i) {
        const std::string key = "k" + std::to_string(rng.next());
        if (nodeFor(key) != without.nodeFor(key))
            ++moved;
    }
    return static_cast<double>(moved) /
           static_cast<double>(samples);
}

} // namespace mercury::cluster
