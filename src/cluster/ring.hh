/**
 * @file
 * Consistent-hash ring with virtual nodes (Sec. 3.8).
 *
 * Keys map onto a point on a circle; each node owns the arcs ending
 * at its (virtual) points. More physical nodes -- the Mercury and
 * Iridium argument -- or more virtual nodes per physical node shrink
 * the arcs and flatten the load distribution, reducing resource
 * contention in the DHT.
 */

#ifndef MERCURY_CLUSTER_RING_HH
#define MERCURY_CLUSTER_RING_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mercury::cluster
{

/** Load summary over the ring's nodes. */
struct LoadStats
{
    double mean = 0.0;
    double max = 0.0;
    double min = 0.0;
    /** max / mean; 1.0 is a perfectly even split. */
    double imbalance = 0.0;
    /** Coefficient of variation across nodes. */
    double cv = 0.0;
};

class ConsistentHashRing
{
  public:
    /** @param virtual_nodes ring points per physical node */
    explicit ConsistentHashRing(unsigned virtual_nodes = 40);

    /** Add a node. @return false if the name already exists.
     * @param rack failure-domain label (rack-aware replica
     * placement); nodes default to rack 0. */
    bool addNode(const std::string &name, unsigned rack = 0);

    /** Remove a node and its ring points. @return false if absent. */
    bool removeNode(const std::string &name);

    /** Node responsible for a key.
     * @pre at least one node present. */
    const std::string &nodeFor(std::string_view key) const;

    /**
     * Up to @p count distinct nodes in ring order starting at the
     * key's owner -- the failover order a memcached client walks
     * when the primary does not answer.
     * @pre at least one node present.
     */
    std::vector<std::string> nodesFor(std::string_view key,
                                      std::size_t count) const;

    /**
     * Replica set for a key: the first @p count distinct nodes in
     * ring order, optionally spread across failure domains. With
     * @p distinct_racks, after the primary each successive replica
     * prefers the next ring successor whose rack has not been used
     * yet (falling back to plain ring order once every rack is
     * represented), so a rack-correlated crash cannot take out a
     * whole replica set while other racks hold spares.
     * @pre at least one node present.
     */
    std::vector<std::string> replicasFor(std::string_view key,
                                         std::size_t count,
                                         bool distinct_racks) const;

    /** Rack label of a node; 0 for unknown names. */
    unsigned rackOf(const std::string &name) const;

    std::size_t numNodes() const { return nodes_.size(); }

    unsigned virtualNodes() const { return virtualNodes_; }

    /** Fraction of the ring owned by each node. */
    std::map<std::string, double> arcShare() const;

    /** Distribute @p samples uniform-random keys and summarize the
     * per-node request counts. */
    LoadStats sampleLoad(std::size_t samples,
                         std::uint64_t seed = 1) const;

    /** Keys (of @p samples drawn) that change owner if @p node is
     * removed -- the consistent-hashing selling point. */
    double remapFractionOnRemoval(const std::string &node,
                                  std::size_t samples,
                                  std::uint64_t seed = 2) const;

  private:
    unsigned virtualNodes_;
    std::vector<std::string> nodes_;
    /** Rack label per node, parallel to nodes_. */
    std::vector<unsigned> racks_;
    /** hash point -> node index. */
    std::map<std::uint64_t, std::size_t> ring_;
};

} // namespace mercury::cluster

#endif // MERCURY_CLUSTER_RING_HH
