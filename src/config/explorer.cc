#include "config/explorer.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mercury::config
{

DesignExplorer::DesignExplorer(
    const physical::ChassisConstraints &chassis,
    const physical::ComponentCatalog &catalog,
    double dram_background_w)
    : chassis_(chassis), catalog_(catalog),
      dramBackgroundW_(dram_background_w)
{}

ServerDesign
DesignExplorer::solve(const physical::StackConfig &stack,
                      const PerCorePerf &perf) const
{
    mercury_assert(perf.tps64 > 0.0 && perf.maxBwGBs > 0.0,
                   "per-core performance inputs required");

    physical::StackModel model(stack, catalog_);
    mercury_assert(model.fitsLogicDie(),
                   "stack configuration exceeds the logic die");

    ServerDesign design;
    design.stack = stack;
    design.perf = perf;

    const double per_stack_max_bw =
        model.portBandwidthCapGBs(perf.maxBwGBs);
    const bool is_dram =
        stack.memory == physical::StackMemory::Dram3D;
    const double background = is_dram ? dramBackgroundW_ : 0.0;

    const double per_stack_power_max =
        model.powerW(per_stack_max_bw) + background;

    const unsigned by_power = static_cast<unsigned>(
        chassis_.stackPowerBudgetW() / per_stack_power_max);
    const unsigned by_area = chassis_.maxStacksByArea();
    const unsigned by_ports = chassis_.maxEthernetPorts;

    design.stacks = std::min({by_power, by_area, by_ports});
    design.cores = design.stacks * stack.coresPerStack;
    design.densityGB = design.stacks * model.densityGB();
    design.areaCm2 = chassis_.boardAreaFor(design.stacks);

    design.maxBwGBs = design.stacks * per_stack_max_bw;
    design.powerAtMaxBwW = std::min(
        chassis_.supplyW,
        chassis_.wallPowerW(design.stacks * per_stack_power_max));

    design.tps64 = static_cast<double>(design.cores) * perf.tps64;
    design.bw64GBs =
        static_cast<double>(design.cores) * perf.goodput64GBs;
    const double per_stack_bw_64 =
        stack.coresPerStack * perf.goodput64GBs;
    // At the 64 B operating point the DRAM mostly sits in power-down
    // between scattered accesses; only the dynamic draw is charged
    // (this matches the paper's Table 4 accounting).
    design.powerAt64BW = chassis_.wallPowerW(
        design.stacks * model.powerW(per_stack_bw_64));
    return design;
}

} // namespace mercury::config
