/**
 * @file
 * Server-design explorer: turns a stack configuration plus measured
 * per-core performance into a full 1.5U server design point under
 * the chassis power/area/port constraints (Sec. 5.3-5.6). This is
 * the machinery behind Tables 3-4 and Figures 7-8.
 */

#ifndef MERCURY_CONFIG_EXPLORER_HH
#define MERCURY_CONFIG_EXPLORER_HH

#include "physical/chassis.hh"

namespace mercury::config
{

/** Per-core performance inputs, measured with server::ServerModel. */
struct PerCorePerf
{
    /** TPS for 64 B GETs. */
    double tps64 = 0.0;
    /** Payload goodput at 64 B GETs (GB/s). */
    double goodput64GBs = 0.0;
    /** Peak per-core bandwidth across the request sweep (GB/s). */
    double maxBwGBs = 0.0;
};

/** A resolved 1.5U design point. */
struct ServerDesign
{
    physical::StackConfig stack;
    PerCorePerf perf;

    unsigned stacks = 0;
    unsigned cores = 0;
    double densityGB = 0.0;
    double areaCm2 = 0.0;

    /** Peak-bandwidth operating point (Table 3). */
    double maxBwGBs = 0.0;
    double powerAtMaxBwW = 0.0;

    /** 64 B GET operating point (Table 4, Figs. 7-8). */
    double tps64 = 0.0;
    double powerAt64BW = 0.0;
    double bw64GBs = 0.0;

    double
    tpsPerWatt() const
    {
        return powerAt64BW > 0.0 ? tps64 / powerAt64BW : 0.0;
    }

    double
    tpsPerGB() const
    {
        return densityGB > 0.0 ? tps64 / densityGB : 0.0;
    }
};

/**
 * Solves design points. The number of stacks is the largest count
 * satisfying all three constraints: 96 Ethernet ports, usable board
 * area, and the 472 W stack power budget at the peak-bandwidth
 * operating point (which includes the DRAM's background/refresh
 * draw; see EXPERIMENTS.md for the Table 3 vs Table 4 accounting).
 */
class DesignExplorer
{
  public:
    explicit DesignExplorer(
        const physical::ChassisConstraints &chassis =
            physical::defaultChassis(),
        const physical::ComponentCatalog &catalog =
            physical::defaultCatalog(),
        double dram_background_w = 0.95);

    ServerDesign solve(const physical::StackConfig &stack,
                       const PerCorePerf &perf) const;

  private:
    physical::ChassisConstraints chassis_;
    physical::ComponentCatalog catalog_;
    /** Background (refresh/standby) draw of a fully active 4 GB 3D
     * DRAM stack, fitted to the paper's Table 3 rows. */
    double dramBackgroundW_;
};

} // namespace mercury::config

#endif // MERCURY_CONFIG_EXPLORER_HH
