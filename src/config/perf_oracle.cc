#include "config/perf_oracle.hh"

#include <map>
#include <tuple>

#include "sim/sync.hh"
#include "sim/thread_annotations.hh"

namespace mercury::config
{

namespace
{

using MemoKey = std::tuple<int, int, int, bool, Tick, Tick,
                           int, unsigned, unsigned, unsigned>;

/**
 * Memoization shared by all sweep points; parallel sweeps (fig7/
 * fig8/table3 under --jobs N) probe it concurrently, so the entry
 * map is GUARDED_BY its mutex and the thread-safety analysis rejects
 * any unlocked access. The measurement itself runs outside the lock:
 * two points racing on the same key both compute the same
 * deterministic value, and the first insert wins.
 */
struct MemoCache
{
    sim::Mutex mutex;
    std::map<MemoKey, PerCorePerf> entries GUARDED_BY(mutex);
};

MemoCache &
memoCache()
{
    static MemoCache cache;
    return cache;
}

} // namespace

server::ServerModelParams
serverParamsFor(const physical::StackConfig &stack,
                const OracleOptions &options)
{
    server::ServerModelParams p;
    p.core = stack.core;
    p.withL2 = stack.withL2;
    p.memory = stack.memory == physical::StackMemory::Dram3D
                   ? server::MemoryKind::StackedDram
                   : server::MemoryKind::Flash;
    p.dramArrayLatency = options.dramLatency;
    p.flashReadLatency = options.flashReadLatency;
    p.storeMemLimit = 64 * miB;
    p.datapath = options.datapath;
    if (p.datapath.nicCacheEntries == 0 && stack.nicCacheMB > 0.0) {
        // Size the NIC cache from the stack's SRAM budget.
        p.datapath.nicCacheEntries = static_cast<unsigned>(
            stack.nicCacheMB * static_cast<double>(miB) /
            static_cast<double>(p.datapath.nicCacheEntryBytes));
    }
    return p;
}

PerCorePerf
measurePerCorePerf(const physical::StackConfig &stack,
                   const OracleOptions &options)
{
    MemoCache &cache = memoCache();
    // The memo key must include every knob that changes the modeled
    // core: the effective (derived) NIC-cache entry count folds in
    // stack.nicCacheMB, so two stacks differing only in SRAM budget
    // never share an entry.
    const server::ServerModelParams params =
        serverParamsFor(stack, options);
    const MemoKey key{static_cast<int>(stack.core.type),
                      static_cast<int>(stack.core.freqGHz * 100),
                      static_cast<int>(stack.memory), stack.withL2,
                      options.dramLatency, options.flashReadLatency,
                      static_cast<int>(params.datapath.kind),
                      params.datapath.rxBatch,
                      params.datapath.txBatch,
                      params.datapath.nicCacheEntries};
    {
        sim::ScopedLock lock(cache.mutex);
        auto it = cache.entries.find(key);
        if (it != cache.entries.end())
            return it->second;
    }

    server::ServerModel model(params);

    PerCorePerf perf;
    const server::Measurement small =
        model.measureGets(64, options.samples);
    perf.tps64 = small.avgTps;
    perf.goodput64GBs = small.goodput / 1e9;

    // Peak bandwidth appears at large requests; sweep the top sizes.
    for (std::uint32_t size : {256u * 1024u, 1024u * 1024u}) {
        const server::Measurement big =
            model.measureGets(size, options.samples);
        perf.maxBwGBs = std::max(perf.maxBwGBs, big.goodput / 1e9);
    }

    {
        sim::ScopedLock lock(cache.mutex);
        cache.entries.emplace(key, perf);
    }
    return perf;
}

} // namespace mercury::config
