#include "config/perf_oracle.hh"

#include <map>
#include <mutex>
#include <tuple>

namespace mercury::config
{

server::ServerModelParams
serverParamsFor(const physical::StackConfig &stack,
                const OracleOptions &options)
{
    server::ServerModelParams p;
    p.core = stack.core;
    p.withL2 = stack.withL2;
    p.memory = stack.memory == physical::StackMemory::Dram3D
                   ? server::MemoryKind::StackedDram
                   : server::MemoryKind::Flash;
    p.dramArrayLatency = options.dramLatency;
    p.flashReadLatency = options.flashReadLatency;
    p.storeMemLimit = 64 * miB;
    return p;
}

PerCorePerf
measurePerCorePerf(const physical::StackConfig &stack,
                   const OracleOptions &options)
{
    using Key = std::tuple<int, int, int, bool, Tick, Tick>;
    // Memoization shared by all sweep points; guarded so parallel
    // sweeps (fig7/fig8/table3 under --jobs N) may probe it
    // concurrently. The measurement itself runs outside the lock --
    // two points racing on the same key both compute the same
    // deterministic value, and the first insert wins.
    static std::map<Key, PerCorePerf> cache;
    static std::mutex cacheMutex;

    const Key key{static_cast<int>(stack.core.type),
                  static_cast<int>(stack.core.freqGHz * 100),
                  static_cast<int>(stack.memory), stack.withL2,
                  options.dramLatency, options.flashReadLatency};
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    server::ServerModel model(serverParamsFor(stack, options));

    PerCorePerf perf;
    const server::Measurement small =
        model.measureGets(64, options.samples);
    perf.tps64 = small.avgTps;
    perf.goodput64GBs = small.goodput / 1e9;

    // Peak bandwidth appears at large requests; sweep the top sizes.
    for (std::uint32_t size : {256u * 1024u, 1024u * 1024u}) {
        const server::Measurement big =
            model.measureGets(size, options.samples);
        perf.maxBwGBs = std::max(perf.maxBwGBs, big.goodput / 1e9);
    }

    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        cache.emplace(key, perf);
    }
    return perf;
}

} // namespace mercury::config
