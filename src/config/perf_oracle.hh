/**
 * @file
 * Measures per-core performance inputs for the design explorer by
 * running the single-core server timing model, with memoization so
 * benches can sweep many design points cheaply.
 */

#ifndef MERCURY_CONFIG_PERF_ORACLE_HH
#define MERCURY_CONFIG_PERF_ORACLE_HH

#include "config/explorer.hh"
#include "server/server_model.hh"

namespace mercury::config
{

struct OracleOptions
{
    Tick dramLatency = 10 * tickNs;
    Tick flashReadLatency = 10 * tickUs;
    unsigned samples = 12;
    /** Datapath the modeled cores run (kernel vs bypass, batching,
     * NIC GET cache). nicCacheEntries == 0 with stack.nicCacheMB > 0
     * derives the entry count from the SRAM budget. */
    net::DatapathParams datapath{};
};

/** Build the server-model parameters corresponding to one stack
 * configuration (per-core view). */
server::ServerModelParams
serverParamsFor(const physical::StackConfig &stack,
                const OracleOptions &options = {});

/**
 * Measure 64 B GET throughput and peak per-core bandwidth for a
 * stack configuration. Results are memoized per distinct
 * configuration for the lifetime of the process.
 */
PerCorePerf
measurePerCorePerf(const physical::StackConfig &stack,
                   const OracleOptions &options = {});

} // namespace mercury::config

#endif // MERCURY_CONFIG_PERF_ORACLE_HH
