#include "cpu/core.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace mercury::cpu
{

namespace
{

/** Implementation of TraceBuilder's bulk helpers lives here to keep
 * the header light. */
constexpr std::uint64_t
linesFor(std::uint64_t bytes, unsigned line_bytes)
{
    return (bytes + line_bytes - 1) / line_bytes;
}

} // anonymous namespace

TraceBuilder &
TraceBuilder::codePass(Addr base, std::uint64_t region_bytes,
                       std::uint64_t instructions, unsigned line_bytes)
{
    const std::uint64_t lines = linesFor(region_bytes, line_bytes);
    if (lines == 0)
        return compute(instructions);

    const std::uint64_t instr_per_line = instructions / lines;
    std::uint64_t remainder = instructions % lines;
    for (std::uint64_t i = 0; i < lines; ++i) {
        trace_.push_back(
            Op::ifetch(base + i * line_bytes, Stream::Sequential));
        std::uint64_t instr = instr_per_line;
        if (remainder > 0) {
            ++instr;
            --remainder;
        }
        compute(instr);
    }
    return *this;
}

TraceBuilder &
TraceBuilder::streamRead(Addr base, std::uint64_t bytes,
                         unsigned line_bytes)
{
    for (std::uint64_t i = 0; i < linesFor(bytes, line_bytes); ++i) {
        trace_.push_back(
            Op::load(base + i * line_bytes, Stream::Sequential));
    }
    return *this;
}

TraceBuilder &
TraceBuilder::streamWrite(Addr base, std::uint64_t bytes,
                          unsigned line_bytes)
{
    for (std::uint64_t i = 0; i < linesFor(bytes, line_bytes); ++i) {
        trace_.push_back(
            Op::store(base + i * line_bytes, Stream::Sequential));
    }
    return *this;
}

CoreModel::CoreModel(const CoreParams &params,
                     mem::CacheHierarchy *caches,
                     stats::StatGroup *parent)
    : SimObject(params.name), params_(params), caches_(caches),
      statGroup_(params.name, parent),
      instrRetired_(&statGroup_, "instructions", "instructions retired"),
      memOpsIssued_(&statGroup_, "memOps", "memory operations issued"),
      computeTicksStat_(&statGroup_, "computeTicks",
                        "ticks spent issuing instructions"),
      stallTicksStat_(&statGroup_, "stallTicks",
                      "ticks stalled on the memory system")
{
    mercury_assert(caches_ != nullptr, "core needs a cache hierarchy");
    mercury_assert(params_.freqGHz > 0.0, "core frequency must be > 0");
    mercury_assert(params_.issueIpc > 0.0, "core IPC must be > 0");
    mercury_assert(params_.mlpRandom >= 1 && params_.mlpSequential >= 1,
                   "MLP must be at least 1");
}

unsigned
CoreModel::mlpFor(Stream stream) const
{
    if (!params_.outOfOrder)
        return 1;
    switch (stream) {
      case Stream::Random: return params_.mlpRandom;
      case Stream::Sequential: return params_.mlpSequential;
      case Stream::Dependent: return 1;
    }
    return 1;
}

Tick
CoreModel::computeTicksFor(std::uint64_t instructions) const
{
    const double cycles =
        static_cast<double>(instructions) / params_.issueIpc;
    // Cycles-to-ticks at core frequency; keep the exact expression
    // (and its rounding) that the calibration constants were fit
    // against.
    // lint: allow(tick-cast)
    return static_cast<Tick>(cycles * static_cast<double>(tickNs) /
                             params_.freqGHz);
}

RunResult
CoreModel::run(const OpTrace &trace, Tick start)
{
    RunResult result;
    result.start = start;

    Tick cursor = start;
    Tick compute_ticks = 0;

    // Completion times of misses currently in flight.
    std::vector<Tick> outstanding;
    outstanding.reserve(params_.mlpSequential + params_.mlpRandom);

    const Tick issue_cost = params_.cyclePeriod();

    auto drain_all = [&] {
        for (const Tick t : outstanding)
            cursor = std::max(cursor, t);
        outstanding.clear();
    };

    auto wait_for_one_slot = [&](unsigned window) {
        while (outstanding.size() >= window) {
            auto earliest = std::min_element(outstanding.begin(),
                                             outstanding.end());
            cursor = std::max(cursor, *earliest);
            outstanding.erase(earliest);
        }
    };

    for (const Op &op : trace) {
        if (op.kind == Op::Kind::Compute) {
            // Out-of-order cores keep computing while misses are in
            // flight; in-order cores have already drained.
            const Tick t = computeTicksFor(op.instructions);
            cursor += t;
            compute_ticks += t;
            result.instructions += op.instructions;
            continue;
        }

        ++result.memOps;
        const unsigned window = mlpFor(op.stream);
        if (op.stream == Stream::Dependent)
            drain_all();
        wait_for_one_slot(window);

        cursor += issue_cost;
        compute_ticks += issue_cost;

        mem::CpuAccessKind kind;
        switch (op.kind) {
          case Op::Kind::IFetch:
            kind = mem::CpuAccessKind::IFetch;
            break;
          case Op::Kind::Load:
            kind = mem::CpuAccessKind::Load;
            break;
          default:
            kind = mem::CpuAccessKind::Store;
            break;
        }

        const mem::AccessResult access =
            caches_->access(kind, op.addr, cursor);

        if (access.source == mem::ServicedBy::L1) {
            // Hits stay in the pipeline.
            const Tick t = access.completion - cursor;
            cursor = access.completion;
            compute_ticks += t;
        } else if (op.stream == Stream::Dependent ||
                   !params_.outOfOrder) {
            cursor = access.completion;
        } else {
            outstanding.push_back(access.completion);
        }
    }

    drain_all();

    result.end = cursor;
    result.computeTicks = compute_ticks;
    result.stallTicks = result.elapsed() > compute_ticks
                            ? result.elapsed() - compute_ticks
                            : 0;

    instrRetired_ += static_cast<double>(result.instructions);
    memOpsIssued_ += static_cast<double>(result.memOps);
    computeTicksStat_ += static_cast<double>(result.computeTicks);
    stallTicksStat_ += static_cast<double>(result.stallTicks);
    return result;
}

void
CoreModel::reset()
{
    statGroup_.resetStats();
}

CoreParams
cortexA7Params()
{
    CoreParams p;
    p.name = "cortexA7";
    p.type = CoreType::CortexA7;
    p.freqGHz = 1.0;
    p.issueIpc = 1.0;
    p.outOfOrder = false;
    p.mlpRandom = 1;
    p.mlpSequential = 1;
    p.activePowerW = 0.1;
    p.areaMm2 = 0.58;
    return p;
}

CoreParams
cortexA15Params(double freq_ghz)
{
    CoreParams p;
    p.name = "cortexA15";
    p.type = CoreType::CortexA15;
    p.freqGHz = freq_ghz;
    p.issueIpc = 2.3;
    p.outOfOrder = true;
    p.mlpRandom = 4;
    p.mlpSequential = 6;
    p.activePowerW = freq_ghz > 1.25 ? 1.0 : 0.6;
    p.areaMm2 = 2.82;
    return p;
}

CoreParams
xeonParams()
{
    CoreParams p;
    p.name = "xeon";
    p.type = CoreType::XeonClass;
    p.freqGHz = 2.9;
    p.issueIpc = 3.0;
    p.outOfOrder = true;
    p.mlpRandom = 6;
    p.mlpSequential = 10;
    // Per-core share of a 95 W 6-core Xeon package.
    p.activePowerW = 15.8;
    p.areaMm2 = 20.0;
    return p;
}

mem::HierarchyParams
defaultHierarchy(CoreType type, bool with_l2)
{
    mem::HierarchyParams hp;
    hp.hasL2 = with_l2;
    switch (type) {
      case CoreType::CortexA7:
        hp.l1i = {"l1i", 32 * kiB, 2, 64, 1 * tickNs};
        hp.l1d = {"l1d", 32 * kiB, 4, 64, 1 * tickNs};
        hp.l2 = {"l2", 2 * miB, 8, 64, 25 * tickNs};
        break;
      case CoreType::CortexA15:
        hp.l1i = {"l1i", 32 * kiB, 2, 64, 1 * tickNs};
        hp.l1d = {"l1d", 32 * kiB, 2, 64, 1 * tickNs};
        hp.l2 = {"l2", 2 * miB, 16, 64, 25 * tickNs};
        break;
      case CoreType::XeonClass:
        hp.l1i = {"l1i", 32 * kiB, 8, 64, 1 * tickNs};
        hp.l1d = {"l1d", 32 * kiB, 8, 64, 1 * tickNs};
        // Model the L2+L3 of a server part as one large L2.
        hp.l2 = {"l2", 8 * miB, 16, 64, 12 * tickNs};
        break;
    }
    return hp;
}

} // namespace mercury::cpu
