/**
 * @file
 * Parametric core timing models.
 *
 * Two behaviours cover the paper's design space:
 *
 *  - In-order cores (Cortex-A7): stall on every miss; modest issue
 *    rate. Cheap and dense -- the Mercury/Iridium building block.
 *  - Out-of-order cores (Cortex-A15, Xeon-class): higher sustained
 *    IPC and memory-level parallelism that overlaps independent
 *    misses, hiding memory latency until dependent chains dominate.
 *
 * Cores execute OpTraces against a CacheHierarchy using a time cursor
 * plus a window of outstanding misses; see CoreModel::run().
 */

#ifndef MERCURY_CPU_CORE_HH
#define MERCURY_CPU_CORE_HH

#include <string>

#include "cpu/op_trace.hh"
#include "mem/cache.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::cpu
{

/** The core microarchitectures evaluated in the paper. */
enum class CoreType { CortexA7, CortexA15, XeonClass };

/** Static configuration of a core timing model. */
struct CoreParams
{
    std::string name = "core";
    CoreType type = CoreType::CortexA7;

    double freqGHz = 1.0;

    /** Sustained instructions per cycle on cache-resident code. */
    double issueIpc = 1.0;

    /** True for A15/Xeon-class machines. */
    bool outOfOrder = false;

    /** Maximum overlapped misses for independent random accesses. */
    unsigned mlpRandom = 1;

    /** Maximum overlapped misses for sequential streams (captures
     * next-line prefetching as well as OoO overlap). */
    unsigned mlpSequential = 1;

    /** Active power at this frequency (paper Table 1). */
    double activePowerW = 0.1;

    /** Core area in mm^2 at 28 nm (paper Table 1). */
    double areaMm2 = 0.58;

    /** Ticks for one cycle at this core's frequency. */
    Tick
    cyclePeriod() const
    {
        // Frequency-to-period needs a direct division; routing it
        // through secondsToTicks would change the rounding and shift
        // every calibrated timing result.
        // lint: allow(tick-cast)
        return static_cast<Tick>(static_cast<double>(tickNs) / freqGHz);
    }
};

/** Timing summary of one trace execution. */
struct RunResult
{
    Tick start = 0;
    Tick end = 0;
    /** Time the core spent issuing instructions. */
    Tick computeTicks = 0;
    /** Time the core spent stalled on the memory system. */
    Tick stallTicks = 0;
    Counter instructions = 0;
    Counter memOps = 0;

    Tick elapsed() const { return end - start; }
};

/**
 * A core timing model bound to its cache hierarchy.
 */
class CoreModel : public SimObject
{
  public:
    CoreModel(const CoreParams &params, mem::CacheHierarchy *caches,
              stats::StatGroup *parent = nullptr);

    /**
     * Execute a trace starting at the given absolute tick.
     *
     * The model advances a time cursor through the ops. In-order
     * cores serialize on every miss. Out-of-order cores keep up to
     * mlpRandom/mlpSequential misses in flight and only serialize on
     * dependent accesses and at the end of the trace.
     */
    RunResult run(const OpTrace &trace, Tick start);

    const CoreParams &params() const { return params_; }

    mem::CacheHierarchy *caches() const { return caches_; }

    void reset() override;

  private:
    unsigned mlpFor(Stream stream) const;

    Tick computeTicksFor(std::uint64_t instructions) const;

    CoreParams params_;
    mem::CacheHierarchy *caches_;

    stats::StatGroup statGroup_;
    stats::Scalar instrRetired_;
    stats::Scalar memOpsIssued_;
    stats::Scalar computeTicksStat_;
    stats::Scalar stallTicksStat_;
};

/** ARM Cortex-A7 @ 1 GHz: in-order, 100 mW, 0.58 mm^2 (Table 1). */
CoreParams cortexA7Params();

/** ARM Cortex-A15: out-of-order; 600 mW @ 1 GHz or 1 W @ 1.5 GHz. */
CoreParams cortexA15Params(double freq_ghz = 1.0);

/** Xeon-class big core for the baseline 1.5U server. */
CoreParams xeonParams();

/** Default cache hierarchies per core type. @p with_l2 attaches the
 * paper's 2 MB L2. */
mem::HierarchyParams defaultHierarchy(CoreType type, bool with_l2);

} // namespace mercury::cpu

#endif // MERCURY_CPU_CORE_HH
