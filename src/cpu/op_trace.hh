/**
 * @file
 * Operation traces: the unit of work executed by core timing models.
 *
 * Request processing is synthesized as a sequence of operations at
 * cache-line granularity: bulk compute (instruction execution with no
 * interesting memory behaviour), instruction fetches streaming through
 * code regions, and data loads/stores. The server module's trace
 * generator produces these from calibrated per-phase costs plus the
 * functional key-value store's actual probe walks.
 */

#ifndef MERCURY_CPU_OP_TRACE_HH
#define MERCURY_CPU_OP_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mercury::cpu
{

/** Access pattern hint used for memory-level-parallelism modelling. */
enum class Stream
{
    /** Independent random accesses; OoO cores overlap a few. */
    Random,
    /** Streaming/strided; prefetchable and easy to overlap. */
    Sequential,
    /** Dependent pointer chase; serializes on every machine. */
    Dependent,
};

/** One operation in a trace. */
struct Op
{
    enum class Kind : std::uint8_t { Compute, IFetch, Load, Store };

    Kind kind;
    Stream stream = Stream::Sequential;
    /** Instruction count for Compute ops. */
    std::uint64_t instructions = 0;
    /** Line-aligned address for memory ops. */
    Addr addr = 0;

    static Op
    compute(std::uint64_t instructions)
    {
        Op op;
        op.kind = Kind::Compute;
        op.instructions = instructions;
        return op;
    }

    static Op
    ifetch(Addr addr, Stream stream = Stream::Sequential)
    {
        Op op;
        op.kind = Kind::IFetch;
        op.addr = addr;
        op.stream = stream;
        return op;
    }

    static Op
    load(Addr addr, Stream stream = Stream::Random)
    {
        Op op;
        op.kind = Kind::Load;
        op.addr = addr;
        op.stream = stream;
        return op;
    }

    static Op
    store(Addr addr, Stream stream = Stream::Random)
    {
        Op op;
        op.kind = Kind::Store;
        op.addr = addr;
        op.stream = stream;
        return op;
    }
};

using OpTrace = std::vector<Op>;

/** Helpers for building common access patterns. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(OpTrace &trace) : trace_(trace) {}

    TraceBuilder &
    compute(std::uint64_t instructions)
    {
        if (instructions > 0)
            trace_.push_back(Op::compute(instructions));
        return *this;
    }

    /** Stream instruction fetches across a code region once,
     * interleaving the given instruction count as compute. */
    TraceBuilder &codePass(Addr base, std::uint64_t region_bytes,
                           std::uint64_t instructions,
                           unsigned line_bytes = 64);

    /** Sequentially read a buffer at line granularity. */
    TraceBuilder &streamRead(Addr base, std::uint64_t bytes,
                             unsigned line_bytes = 64);

    /** Sequentially write a buffer at line granularity. */
    TraceBuilder &streamWrite(Addr base, std::uint64_t bytes,
                              unsigned line_bytes = 64);

    /** A dependent load (pointer chase step); serializes. */
    TraceBuilder &
    chaseLoad(Addr addr)
    {
        trace_.push_back(Op::load(addr, Stream::Dependent));
        return *this;
    }

    TraceBuilder &
    randomStore(Addr addr)
    {
        trace_.push_back(Op::store(addr, Stream::Random));
        return *this;
    }

  private:
    OpTrace &trace_;
};

} // namespace mercury::cpu

#endif // MERCURY_CPU_OP_TRACE_HH
