#include "kvstore/binary_protocol.hh"

#include <cstring>

#include "sim/logging.hh"

namespace mercury::kvstore
{

namespace
{

constexpr std::uint8_t requestMagic = 0x80;
constexpr std::uint8_t responseMagic = 0x81;
constexpr std::size_t headerBytes = 24;

std::uint16_t
load16(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint16_t>((u[0] << 8) | u[1]);
}

std::uint32_t
load32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return (std::uint32_t(u[0]) << 24) | (std::uint32_t(u[1]) << 16) |
           (std::uint32_t(u[2]) << 8) | std::uint32_t(u[3]);
}

std::uint64_t
load64(const char *p)
{
    return (std::uint64_t(load32(p)) << 32) | load32(p + 4);
}

void
store16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v));
}

void
store32(std::string &out, std::uint32_t v)
{
    store16(out, static_cast<std::uint16_t>(v >> 16));
    store16(out, static_cast<std::uint16_t>(v));
}

void
store64(std::string &out, std::uint64_t v)
{
    store32(out, static_cast<std::uint32_t>(v >> 32));
    store32(out, static_cast<std::uint32_t>(v));
}

BinStatus
fromStoreStatus(StoreStatus status)
{
    switch (status) {
      case StoreStatus::Stored: return BinStatus::Ok;
      case StoreStatus::NotStored: return BinStatus::NotStored;
      case StoreStatus::Exists: return BinStatus::KeyExists;
      case StoreStatus::NotFound: return BinStatus::KeyNotFound;
      case StoreStatus::OutOfMemory: return BinStatus::OutOfMemory;
      case StoreStatus::BadValue: return BinStatus::DeltaBadval;
    }
    return BinStatus::UnknownCommand;
}

bool
isQuiet(BinOp op)
{
    return op == BinOp::GetQ || op == BinOp::GetKQ;
}

} // anonymous namespace

BinarySession::BinarySession(Store &store)
    : store_(store)
{}

BinarySession::Header
BinarySession::parseHeader(const char *raw)
{
    Header h;
    h.magic = static_cast<std::uint8_t>(raw[0]);
    h.opcode = static_cast<std::uint8_t>(raw[1]);
    h.keyLen = load16(raw + 2);
    h.extrasLen = static_cast<std::uint8_t>(raw[4]);
    // raw[5] = data type (always 0)
    h.status = load16(raw + 6);
    h.bodyLen = load32(raw + 8);
    h.opaque = load32(raw + 12);
    h.cas = load64(raw + 16);
    return h;
}

void
BinarySession::respond(std::string &out, const Header &request,
                       BinStatus status, std::string_view extras,
                       std::string_view key, std::string_view value,
                       std::uint64_t cas)
{
    out.push_back(static_cast<char>(responseMagic));
    out.push_back(static_cast<char>(request.opcode));
    store16(out, static_cast<std::uint16_t>(key.size()));
    out.push_back(static_cast<char>(extras.size()));
    out.push_back(0);  // data type
    store16(out, static_cast<std::uint16_t>(status));
    store32(out, static_cast<std::uint32_t>(
                     extras.size() + key.size() + value.size()));
    store32(out, request.opaque);
    store64(out, cas);
    out.append(extras);
    out.append(key);
    out.append(value);
}

std::string
BinarySession::consume(std::string_view bytes)
{
    buffer_.append(bytes);
    std::string out;

    while (!closed_ && buffer_.size() >= headerBytes) {
        const Header header = parseHeader(buffer_.data());
        if (header.magic != requestMagic) {
            // Unrecoverable framing error: close the session.
            closed_ = true;
            break;
        }
        if (buffer_.size() < headerBytes + header.bodyLen)
            break;

        const std::string_view body(buffer_.data() + headerBytes,
                                    header.bodyLen);
        const std::string_view extras =
            body.substr(0, header.extrasLen);
        const std::string_view key =
            body.substr(header.extrasLen, header.keyLen);
        const std::string_view value = body.substr(
            static_cast<std::size_t>(header.extrasLen) +
            header.keyLen);

        handle(header, extras, key, value, out);
        buffer_.erase(0, headerBytes + header.bodyLen);
    }
    return out;
}

void
BinarySession::handle(const Header &header, std::string_view extras,
                      std::string_view key, std::string_view value,
                      std::string &out)
{
    const auto op = static_cast<BinOp>(header.opcode);
    switch (op) {
      case BinOp::Get:
      case BinOp::GetQ:
      case BinOp::GetK:
      case BinOp::GetKQ: {
        const GetResult r = store_.get(key);
        if (!r.hit) {
            if (!isQuiet(op)) {
                respond(out, header, BinStatus::KeyNotFound, {},
                        {}, {});
            }
            return;
        }
        std::string flags;
        store32(flags, r.flags);
        const bool with_key =
            op == BinOp::GetK || op == BinOp::GetKQ;
        respond(out, header, BinStatus::Ok, flags,
                with_key ? key : std::string_view{}, r.value,
                r.cas);
        return;
      }
      case BinOp::Set:
      case BinOp::Add:
      case BinOp::Replace: {
        if (extras.size() != 8 || key.empty()) {
            respond(out, header, BinStatus::InvalidArguments);
            return;
        }
        const std::uint32_t flags = load32(extras.data());
        const std::uint32_t expiry = load32(extras.data() + 4);
        StoreStatus status;
        if (header.cas != 0) {
            status = store_.cas(key, value, header.cas, flags,
                                expiry);
        } else if (op == BinOp::Add) {
            status = store_.add(key, value, flags, expiry);
        } else if (op == BinOp::Replace) {
            status = store_.replace(key, value, flags, expiry);
        } else {
            status = store_.set(key, value, flags, expiry);
        }
        std::uint64_t cas = 0;
        if (status == StoreStatus::Stored)
            cas = store_.get(key).cas;
        respond(out, header, fromStoreStatus(status), {}, {}, {},
                cas);
        return;
      }
      case BinOp::Delete: {
        const StoreStatus status = store_.remove(key);
        respond(out, header,
                status == StoreStatus::Stored
                    ? BinStatus::Ok
                    : BinStatus::KeyNotFound);
        return;
      }
      case BinOp::Increment:
      case BinOp::Decrement: {
        if (extras.size() != 20) {
            respond(out, header, BinStatus::InvalidArguments);
            return;
        }
        const std::uint64_t delta = load64(extras.data());
        const std::uint64_t initial = load64(extras.data() + 8);
        const std::uint32_t expiry = load32(extras.data() + 16);

        std::uint64_t result = 0;
        StoreStatus status =
            op == BinOp::Increment ? store_.incr(key, delta, result)
                                   : store_.decr(key, delta, result);
        if (status == StoreStatus::NotFound && expiry != 0xffffffff) {
            // Binary semantics: seed with the initial value.
            status = store_.add(key, std::to_string(initial), 0,
                                expiry);
            result = initial;
        }
        if (status == StoreStatus::Stored) {
            std::string payload;
            store64(payload, result);
            respond(out, header, BinStatus::Ok, {}, {}, payload);
        } else {
            respond(out, header, fromStoreStatus(status));
        }
        return;
      }
      case BinOp::Append:
      case BinOp::Prepend: {
        const StoreStatus status =
            op == BinOp::Append ? store_.append(key, value)
                                : store_.prepend(key, value);
        respond(out, header, fromStoreStatus(status));
        return;
      }
      case BinOp::Touch: {
        if (extras.size() != 4) {
            respond(out, header, BinStatus::InvalidArguments);
            return;
        }
        const StoreStatus status =
            store_.touch(key, load32(extras.data()));
        respond(out, header, fromStoreStatus(
                                 status == StoreStatus::Stored
                                     ? StoreStatus::Stored
                                     : StoreStatus::NotFound));
        return;
      }
      case BinOp::Flush:
        store_.flushAll();
        respond(out, header, BinStatus::Ok);
        return;
      case BinOp::NoOp:
        respond(out, header, BinStatus::Ok);
        return;
      case BinOp::Version:
        respond(out, header, BinStatus::Ok, {}, {},
                "mercury-kvstore 1.0");
        return;
      case BinOp::Quit:
        respond(out, header, BinStatus::Ok);
        closed_ = true;
        return;
    }
    respond(out, header, BinStatus::UnknownCommand);
}

} // namespace mercury::kvstore
