/**
 * @file
 * Memcached binary protocol session.
 *
 * Implements the classic binary wire format (24-byte big-endian
 * header, magic 0x80/0x81): GET/GETQ/GETK, SET/ADD/REPLACE (with
 * CAS), DELETE, INCR/DECR, APPEND/PREPEND, TOUCH, FLUSH, NOOP,
 * VERSION and QUIT. Quiet (Q) variants suppress miss/success
 * responses per the specification. Input may arrive arbitrarily
 * fragmented, as TCP delivers it.
 */

#ifndef MERCURY_KVSTORE_BINARY_PROTOCOL_HH
#define MERCURY_KVSTORE_BINARY_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "kvstore/store.hh"

namespace mercury::kvstore
{

/** Binary protocol opcodes (subset). */
enum class BinOp : std::uint8_t
{
    Get = 0x00,
    Set = 0x01,
    Add = 0x02,
    Replace = 0x03,
    Delete = 0x04,
    Increment = 0x05,
    Decrement = 0x06,
    Quit = 0x07,
    Flush = 0x08,
    GetQ = 0x09,
    NoOp = 0x0a,
    Version = 0x0b,
    GetK = 0x0c,
    GetKQ = 0x0d,
    Append = 0x0e,
    Prepend = 0x0f,
    Touch = 0x1c,
};

/** Binary protocol response status codes. */
enum class BinStatus : std::uint16_t
{
    Ok = 0x0000,
    KeyNotFound = 0x0001,
    KeyExists = 0x0002,
    ValueTooLarge = 0x0003,
    InvalidArguments = 0x0004,
    NotStored = 0x0005,
    DeltaBadval = 0x0006,
    UnknownCommand = 0x0081,
    OutOfMemory = 0x0082,
};

class BinarySession
{
  public:
    explicit BinarySession(Store &store);

    /** Feed request bytes; returns any response bytes produced. */
    std::string consume(std::string_view bytes);

    bool closed() const { return closed_; }

  private:
    struct Header
    {
        std::uint8_t magic;
        std::uint8_t opcode;
        std::uint16_t keyLen;
        std::uint8_t extrasLen;
        std::uint16_t status;  // vbucket in requests
        std::uint32_t bodyLen;
        std::uint32_t opaque;
        std::uint64_t cas;
    };

    static Header parseHeader(const char *raw);

    void handle(const Header &header, std::string_view extras,
                std::string_view key, std::string_view value,
                std::string &out);

    /** Emit one response packet. */
    void respond(std::string &out, const Header &request,
                 BinStatus status, std::string_view extras = {},
                 std::string_view key = {},
                 std::string_view value = {},
                 std::uint64_t cas = 0);

    Store &store_;
    std::string buffer_;
    bool closed_ = false;
};

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_BINARY_PROTOCOL_HH
