#include "kvstore/eviction.hh"

#include "sim/contract.hh"

namespace mercury::kvstore
{

void
ItemList::pushFront(Item *item)
{
    MERCURY_EXPECTS(item != nullptr, "pushFront of null item");
    MERCURY_EXPECTS(!item->lruPrev && !item->lruNext && item != head_,
                    "pushFront of an item already linked in a list");
    item->lruPrev = nullptr;
    item->lruNext = head_;
    if (head_)
        head_->lruPrev = item;
    head_ = item;
    if (!tail_)
        tail_ = item;
    ++size_;
    MERCURY_ASSERT_SLOW(checkWellFormed(),
                        "LRU list malformed after pushFront");
}

void
ItemList::pushBack(Item *item)
{
    MERCURY_EXPECTS(item != nullptr, "pushBack of null item");
    MERCURY_EXPECTS(!item->lruPrev && !item->lruNext && item != tail_,
                    "pushBack of an item already linked in a list");
    item->lruNext = nullptr;
    item->lruPrev = tail_;
    if (tail_)
        tail_->lruNext = item;
    tail_ = item;
    if (!head_)
        head_ = item;
    ++size_;
    MERCURY_ASSERT_SLOW(checkWellFormed(),
                        "LRU list malformed after pushBack");
}

void
ItemList::unlink(Item *item)
{
    MERCURY_EXPECTS(item != nullptr, "unlink of null item");
    MERCURY_EXPECTS(size_ > 0, "unlink from empty list");
    MERCURY_EXPECTS(item->lruPrev != nullptr || item == head_,
                    "unlink of an item that is not in this list");
    MERCURY_EXPECTS(item->lruNext != nullptr || item == tail_,
                    "unlink of an item that is not in this list");
    MERCURY_ASSERT_SLOW(contains(item),
                        "unlink of an item from a different list");
    if (item->lruPrev)
        item->lruPrev->lruNext = item->lruNext;
    else
        head_ = item->lruNext;
    if (item->lruNext)
        item->lruNext->lruPrev = item->lruPrev;
    else
        tail_ = item->lruPrev;
    item->lruPrev = nullptr;
    item->lruNext = nullptr;
    --size_;
    MERCURY_ASSERT_SLOW(checkWellFormed(),
                        "LRU list malformed after unlink");
}

bool
ItemList::contains(const Item *item) const
{
    std::size_t walked = 0;
    for (const Item *it = head_; it; it = it->lruNext) {
        if (it == item)
            return true;
        if (++walked > size_)
            return false;
    }
    return false;
}

bool
ItemList::checkWellFormed() const
{
    if (head_ == nullptr || tail_ == nullptr)
        return head_ == nullptr && tail_ == nullptr && size_ == 0;
    if (head_->lruPrev != nullptr || tail_->lruNext != nullptr)
        return false;

    std::size_t walked = 0;
    const Item *prev = nullptr;
    for (const Item *it = head_; it; it = it->lruNext) {
        if (it->lruPrev != prev)
            return false;
        if (++walked > size_)
            return false;
        prev = it;
    }
    return prev == tail_ && walked == size_;
}

void
StrictLru::onInsert(Item *item, std::uint32_t now)
{
    item->lastAccess = now;
    list_.pushFront(item);
    ++tracked_;
}

void
StrictLru::onAccess(Item *item, std::uint32_t now)
{
    item->lastAccess = now;
    // The move-to-front that makes 1.4 serialize on the cache lock.
    list_.unlink(item);
    list_.pushFront(item);
    ++reorders_;
}

void
StrictLru::onRemove(Item *item)
{
    list_.unlink(item);
    MERCURY_ASSERT(tracked_ > 0, "remove from empty policy");
    --tracked_;
}

Item *
StrictLru::victim(std::uint32_t)
{
    return list_.back();
}

BagLru::BagLru(std::uint32_t bag_age_seconds)
    : bagAgeSeconds_(bag_age_seconds)
{}

void
BagLru::onInsert(Item *item, std::uint32_t now)
{
    item->lastAccess = now;
    item->bagIndex = 0;
    bags_[0].pushBack(item);
    ++tracked_;
}

void
BagLru::onAccess(Item *item, std::uint32_t now)
{
    // The whole point of Bags: a GET touches no shared list state.
    item->lastAccess = now;
}

void
BagLru::onRemove(Item *item)
{
    bags_[item->bagIndex].unlink(item);
    MERCURY_ASSERT(tracked_ > 0, "remove from empty policy");
    --tracked_;
}

void
BagLru::age(std::uint32_t now)
{
    // Demote a bounded number of stale items per pass. Oldest bags
    // are processed first so an item moves at most one bag per pass.
    constexpr unsigned max_moves_per_pass = 64;
    unsigned moves = 0;
    for (int bag = static_cast<int>(numBags) - 2; bag >= 0; --bag) {
        const auto b = static_cast<unsigned>(bag);
        while (moves < max_moves_per_pass) {
            Item *item = bags_[b].front();
            if (!item || now - item->lastAccess < bagAgeSeconds_)
                break;
            bags_[b].unlink(item);
            item->bagIndex = static_cast<std::uint8_t>(b + 1);
            bags_[b + 1].pushBack(item);
            ++reorders_;
            ++moves;
        }
    }
}

Item *
BagLru::victim(std::uint32_t now)
{
    // Take from the oldest non-empty bag; give recently-touched
    // items a second chance by promoting them back to the newest bag
    // and re-scanning (bounded attempts).
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
        Item *item = nullptr;
        int bag = -1;
        for (int b = numBags - 1; b >= 0; --b) {
            item = bags_[static_cast<unsigned>(b)].front();
            if (item) {
                bag = b;
                break;
            }
        }
        if (!item)
            return nullptr;
        if (bag > 0 && now - item->lastAccess < bagAgeSeconds_) {
            bags_[static_cast<unsigned>(bag)].unlink(item);
            item->bagIndex = 0;
            bags_[0].pushBack(item);
            ++reorders_;
            continue;
        }
        return item;
    }
    // Everything is hot; fall back to the coldest candidate anyway.
    for (int b = numBags - 1; b >= 0; --b) {
        if (Item *item = bags_[static_cast<unsigned>(b)].front())
            return item;
    }
    return nullptr;
}

std::size_t
BagLru::bagSize(unsigned bag) const
{
    MERCURY_EXPECTS(bag < numBags, "bag index out of range: ", bag);
    return bags_[bag].size();
}

namespace
{

// Item::bagIndex encoding for SegmentedLru: low 2 bits hold the
// segment, the top bit is the reference flag.
constexpr std::uint8_t referencedBit = 0x80;

unsigned
segmentOf(const Item *item)
{
    return item->bagIndex & 0x3;
}

bool
referenced(const Item *item)
{
    return item->bagIndex & referencedBit;
}

} // anonymous namespace

SegmentedLru::SegmentedLru(double hot_fraction, double warm_fraction)
    : hotFraction_(hot_fraction), warmFraction_(warm_fraction)
{
    MERCURY_EXPECTS(hot_fraction > 0.0 && warm_fraction > 0.0 &&
                    hot_fraction + warm_fraction < 1.0,
                    "segment fractions must leave room for COLD");
}

void
SegmentedLru::moveTo(Item *item, unsigned segment, bool to_front)
{
    segments_[segmentOf(item)].unlink(item);
    item->bagIndex = static_cast<std::uint8_t>(
        segment | (item->bagIndex & referencedBit));
    if (to_front)
        segments_[segment].pushFront(item);
    else
        segments_[segment].pushBack(item);
    ++reorders_;
}

void
SegmentedLru::onInsert(Item *item, std::uint32_t now)
{
    item->lastAccess = now;
    item->bagIndex = hotSeg;
    segments_[hotSeg].pushFront(item);
    ++tracked_;
    rebalance();
}

void
SegmentedLru::onAccess(Item *item, std::uint32_t now)
{
    item->lastAccess = now;
    if (segmentOf(item) == coldSeg) {
        // A second touch earns a WARM slot.
        moveTo(item, warmSeg, true);
        return;
    }
    // Common case: just flag the reference; no list update.
    item->bagIndex |= referencedBit;
}

void
SegmentedLru::onRemove(Item *item)
{
    segments_[segmentOf(item)].unlink(item);
    item->bagIndex = 0;
    MERCURY_ASSERT(tracked_ > 0, "remove from empty policy");
    --tracked_;
}

void
SegmentedLru::rebalance()
{
    constexpr unsigned max_moves = 8;
    unsigned moves = 0;

    auto over = [this](unsigned segment, double fraction) {
        return static_cast<double>(segments_[segment].size()) >
               fraction * static_cast<double>(tracked_) + 1.0;
    };

    while (moves < max_moves && over(hotSeg, hotFraction_)) {
        Item *tail = segments_[hotSeg].back();
        if (!tail)
            break;
        if (referenced(tail)) {
            tail->bagIndex &= static_cast<std::uint8_t>(
                ~referencedBit);
            moveTo(tail, warmSeg, true);
        } else {
            moveTo(tail, coldSeg, true);
        }
        ++moves;
    }
    while (moves < max_moves && over(warmSeg, warmFraction_)) {
        Item *tail = segments_[warmSeg].back();
        if (!tail)
            break;
        if (referenced(tail)) {
            // Second chance within WARM.
            tail->bagIndex &= static_cast<std::uint8_t>(
                ~referencedBit);
            moveTo(tail, warmSeg, true);
        } else {
            moveTo(tail, coldSeg, true);
        }
        ++moves;
    }
}

void
SegmentedLru::age(std::uint32_t)
{
    rebalance();
}

Item *
SegmentedLru::victim(std::uint32_t)
{
    if (Item *cold = segments_[coldSeg].back())
        return cold;
    if (Item *warm = segments_[warmSeg].back())
        return warm;
    return segments_[hotSeg].back();
}

std::size_t
SegmentedLru::segmentSize(unsigned segment) const
{
    MERCURY_EXPECTS(segment < 3, "segment index out of range: ", segment);
    return segments_[segment].size();
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionPolicyKind kind)
{
    switch (kind) {
      case EvictionPolicyKind::StrictLru:
        return std::make_unique<StrictLru>();
      case EvictionPolicyKind::Bags:
        return std::make_unique<BagLru>();
      case EvictionPolicyKind::Segmented:
        return std::make_unique<SegmentedLru>();
    }
    return nullptr;
}

} // namespace mercury::kvstore
