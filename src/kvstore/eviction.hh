/**
 * @file
 * Eviction policies: strict LRU (memcached 1.4) and the "Bags"
 * pseudo-LRU from Wiggins & Langston's memcached 1.6 scalability work
 * (paper Sec. 3.6).
 *
 * Strict LRU reorders its list on every access, which is why it needs
 * the global cache lock. Bags only appends on insert and lets a
 * housekeeping pass demote items between age bags, so GETs touch no
 * shared list state -- the property that lets memcached scale past a
 * few threads.
 */

#ifndef MERCURY_KVSTORE_EVICTION_HH
#define MERCURY_KVSTORE_EVICTION_HH

#include <array>
#include <cstdint>
#include <memory>

#include "kvstore/item.hh"

namespace mercury::kvstore
{

enum class EvictionPolicyKind { StrictLru, Bags, Segmented };

/** Intrusive doubly-linked list over Item::lruPrev/lruNext. */
class ItemList
{
  public:
    void pushFront(Item *item);
    void pushBack(Item *item);
    void unlink(Item *item);

    Item *front() const { return head_; }
    Item *back() const { return tail_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** True if @p item is reachable from head_ (O(n); slow checks). */
    bool contains(const Item *item) const;

    /**
     * Full well-formedness audit: forward walk matches size(),
     * prev/next pointers mirror each other, and the ends are
     * terminated. O(n); meant for tests and MERCURY_ASSERT_SLOW.
     */
    bool checkWellFormed() const;

  private:
    Item *head_ = nullptr;
    Item *tail_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * Per-slab-class eviction policy interface.
 *
 * The policy tracks items but never frees them; the Store owns
 * allocation. victim() proposes the coldest candidate; the Store
 * removes it via onRemove() before recycling the chunk.
 */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    /** A freshly stored item enters the hot end. */
    virtual void onInsert(Item *item, std::uint32_t now) = 0;

    /** The item was read. */
    virtual void onAccess(Item *item, std::uint32_t now) = 0;

    /** The item is leaving the store (delete/evict/expire). */
    virtual void onRemove(Item *item) = 0;

    /** Coldest candidate, or nullptr if empty. Does not unlink. */
    virtual Item *victim(std::uint32_t now) = 0;

    /** Periodic housekeeping (bag demotion). */
    virtual void age(std::uint32_t /* now */) {}

    /** Number of list-reordering operations performed; the proxy for
     * LRU lock contention used by the baseline scaling model. */
    virtual std::uint64_t reorderOps() const = 0;

    std::size_t trackedItems() const { return tracked_; }

  protected:
    std::size_t tracked_ = 0;
};

/** Classic move-to-front LRU (memcached 1.4). */
class StrictLru : public EvictionPolicy
{
  public:
    void onInsert(Item *item, std::uint32_t now) override;
    void onAccess(Item *item, std::uint32_t now) override;
    void onRemove(Item *item) override;
    Item *victim(std::uint32_t now) override;
    std::uint64_t reorderOps() const override { return reorders_; }

  private:
    ItemList list_;
    std::uint64_t reorders_ = 0;
};

/**
 * Bags pseudo-LRU: three age bags. Inserts append to the newest bag;
 * accesses only stamp Item::lastAccess; age() demotes stale items one
 * bag at a time; eviction takes from the oldest bag, giving recently
 * accessed items a second chance.
 */
class BagLru : public EvictionPolicy
{
  public:
    /** @param bag_age_seconds item age before demotion to the next
     * bag; also the second-chance recency window. */
    explicit BagLru(std::uint32_t bag_age_seconds = 60);

    void onInsert(Item *item, std::uint32_t now) override;
    void onAccess(Item *item, std::uint32_t now) override;
    void onRemove(Item *item) override;
    Item *victim(std::uint32_t now) override;
    void age(std::uint32_t now) override;
    std::uint64_t reorderOps() const override { return reorders_; }

    std::size_t bagSize(unsigned bag) const;

  private:
    static constexpr unsigned numBags = 3;

    std::array<ItemList, numBags> bags_;
    std::uint32_t bagAgeSeconds_;
    std::uint64_t reorders_ = 0;
};

/**
 * Segmented LRU (memcached 1.5 style): HOT, WARM and COLD segments.
 * New items enter HOT. An access to a COLD item promotes it to WARM
 * (single-touch items never pollute the warm set). Segment sizes are
 * balanced lazily: when HOT or WARM exceed their share of tracked
 * items, tail items demote toward COLD. Eviction takes the COLD
 * tail. Unlike strict LRU, accesses to HOT/WARM items only set a
 * reference bit, so the common-case GET does not reorder any list.
 */
class SegmentedLru : public EvictionPolicy
{
  public:
    /** @param hot_fraction / @param warm_fraction target shares of
     * tracked items (the remainder is COLD). */
    SegmentedLru(double hot_fraction = 0.2,
                 double warm_fraction = 0.4);

    void onInsert(Item *item, std::uint32_t now) override;
    void onAccess(Item *item, std::uint32_t now) override;
    void onRemove(Item *item) override;
    Item *victim(std::uint32_t now) override;
    void age(std::uint32_t now) override;
    std::uint64_t reorderOps() const override { return reorders_; }

    std::size_t segmentSize(unsigned segment) const;

  private:
    static constexpr unsigned hotSeg = 0;
    static constexpr unsigned warmSeg = 1;
    static constexpr unsigned coldSeg = 2;

    /** Move list tails to maintain the target segment shares. */
    void rebalance();

    void moveTo(Item *item, unsigned segment, bool to_front);

    std::array<ItemList, 3> segments_;
    double hotFraction_;
    double warmFraction_;
    std::uint64_t reorders_ = 0;
};

/** Factory. */
std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionPolicyKind kind);

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_EVICTION_HH
