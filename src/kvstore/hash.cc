#include "kvstore/hash.hh"

#include <cstring>

namespace mercury::kvstore
{

namespace
{

std::uint64_t
fmix64(std::uint64_t k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
}

} // anonymous namespace

std::uint64_t
hashKey(std::string_view key, std::uint64_t seed)
{
    // MurmurHash64A-style mixing over 8-byte chunks.
    const std::uint64_t m = 0xc6a4a7935bd1e995ull;
    const int r = 47;
    std::uint64_t h = seed ^ (key.size() * m);

    const char *data = key.data();
    std::size_t len = key.size();
    while (len >= 8) {
        std::uint64_t k;
        std::memcpy(&k, data, 8);
        k *= m;
        k ^= k >> r;
        k *= m;
        h ^= k;
        h *= m;
        data += 8;
        len -= 8;
    }

    std::uint64_t tail = 0;
    std::memcpy(&tail, data, len);
    h ^= tail;
    h *= m;

    return fmix64(h);
}

std::uint64_t
hashKey(std::string_view key)
{
    return hashKey(key, 0x5f3759df9e3779b9ull);
}

} // namespace mercury::kvstore
