/**
 * @file
 * Key hashing for the key-value store.
 *
 * A MurmurHash3-style 64-bit finalizing hash over the key bytes.
 * Memcached historically uses Bob Jenkins' lookup3; any well-mixed
 * hash preserves the behaviour that matters here (bucket dispersion
 * and the consistent-hash ring geometry), and the 64-bit output is
 * convenient for both the table and the ring.
 */

#ifndef MERCURY_KVSTORE_HASH_HH
#define MERCURY_KVSTORE_HASH_HH

#include <cstdint>
#include <string_view>

namespace mercury::kvstore
{

/** 64-bit hash of an arbitrary byte string. */
std::uint64_t hashKey(std::string_view key);

/** Hash with an explicit seed (used for virtual nodes on the ring). */
std::uint64_t hashKey(std::string_view key, std::uint64_t seed);

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_HASH_HH
