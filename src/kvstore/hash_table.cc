#include "kvstore/hash_table.hh"

#include "kvstore/hash.hh"
#include "sim/contract.hh"

namespace mercury::kvstore
{

HashTable::HashTable(unsigned initial_power)
{
    MERCURY_EXPECTS(initial_power >= 1 && initial_power <= 30,
                    "hash power out of range: ", initial_power);
    primary_.assign(std::size_t(1) << initial_power, nullptr);
}

Item **
HashTable::bucketFor(std::uint64_t hash, std::uint64_t &index)
{
    if (expanding_) {
        const std::size_t old_idx = hash & (old_.size() - 1);
        if (old_idx >= migrateBucket_) {
            index = old_idx;
            return &old_[old_idx];
        }
    }
    index = hash & (primary_.size() - 1);
    return &primary_[index];
}

ProbeResult
HashTable::find(std::string_view key, std::uint64_t hash)
{
    ProbeResult result;
    Item **bucket = bucketFor(hash, result.bucketIndex);
    result.bucketAddr = bucket;
    for (Item *it = *bucket; it; it = it->hNext) {
        ++result.chainLength;
        MERCURY_ASSERT(result.chainLength <= size_,
                       "bucket chain longer than the table "
                       "(corrupt chain or cycle)");
        if (it->key() == key) {
            result.item = it;
            return result;
        }
    }
    return result;
}

void
HashTable::insert(Item *item, std::uint64_t hash)
{
    MERCURY_EXPECTS(item != nullptr, "insert of null item");
    MERCURY_EXPECTS(item->hNext == nullptr,
                    "insert of item already linked in a chain");
    MERCURY_ASSERT_SLOW(find(item->key(), hash).item == nullptr,
                        "duplicate insert of key '", item->key(), "'");
    std::uint64_t index = 0;
    Item **bucket = bucketFor(hash, index);
    item->hNext = *bucket;
    *bucket = item;
    ++size_;
    maybeExpand();
    if (expanding_)
        migrateStep();
}

Item *
HashTable::remove(std::string_view key, std::uint64_t hash)
{
    std::uint64_t index = 0;
    Item **bucket = bucketFor(hash, index);
    for (Item **link = bucket; *link; link = &(*link)->hNext) {
        if ((*link)->key() == key) {
            Item *removed = *link;
            *link = removed->hNext;
            removed->hNext = nullptr;
            MERCURY_ASSERT(size_ > 0,
                           "remove from a table that thinks it is "
                           "empty");
            --size_;
            if (expanding_)
                migrateStep();
            return removed;
        }
    }
    return nullptr;
}

void
HashTable::maybeExpand()
{
    if (expanding_ || loadFactor() < expandLoadFactor)
        return;
    if (primary_.size() >= (std::size_t(1) << 30))
        return;

    old_.swap(primary_);
    primary_.assign(old_.size() * 2, nullptr);
    expanding_ = true;
    migrateBucket_ = 0;
    MERCURY_ENSURES(primary_.size() == old_.size() * 2,
                    "expansion must exactly double the table");
}

void
HashTable::migrateStep(unsigned buckets)
{
    if (!expanding_)
        return;

    MERCURY_ASSERT(migrateBucket_ <= old_.size(),
                   "migration cursor past the old table");
    for (unsigned step = 0;
         step < buckets && migrateBucket_ < old_.size(); ++step) {
        Item *it = old_[migrateBucket_];
        old_[migrateBucket_] = nullptr;
        while (it) {
            Item *next = it->hNext;
            const std::uint64_t hash = hashKey(it->key());
            Item **bucket = &primary_[hash & (primary_.size() - 1)];
            it->hNext = *bucket;
            *bucket = it;
            it = next;
        }
        ++migrateBucket_;
    }

    if (migrateBucket_ >= old_.size()) {
        old_.clear();
        old_.shrink_to_fit();
        expanding_ = false;
        migrateBucket_ = 0;
        MERCURY_ASSERT_SLOW(checkIntegrity(),
                            "hash table corrupt after finishing "
                            "incremental migration");
    }
}

bool
HashTable::checkIntegrity() const
{
    if (expanding_) {
        if (old_.empty() || primary_.size() != old_.size() * 2)
            return false;
        if (migrateBucket_ > old_.size())
            return false;
    } else {
        if (!old_.empty() || migrateBucket_ != 0)
            return false;
    }

    // Count linked items, bounding each chain walk so a cycle cannot
    // hang the audit.
    std::size_t linked = 0;
    auto walk = [this, &linked](const std::vector<Item *> &table) {
        for (const auto &head : table) {
            std::size_t chain = 0;
            for (Item *it = head; it; it = it->hNext) {
                if (++chain > size_ + 1)
                    return false;
                ++linked;
            }
        }
        return true;
    };
    if (!walk(primary_) || !walk(old_))
        return false;
    return linked == size_;
}

void
HashTable::validate() const
{
    MERCURY_ASSERT(checkIntegrity(),
                   "hash table structural audit failed: size=", size_,
                   " buckets=", primary_.size(),
                   " expanding=", expanding_);
}

} // namespace mercury::kvstore
