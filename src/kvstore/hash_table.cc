#include "kvstore/hash_table.hh"

#include "kvstore/hash.hh"
#include "sim/logging.hh"

namespace mercury::kvstore
{

HashTable::HashTable(unsigned initial_power)
{
    mercury_assert(initial_power >= 1 && initial_power <= 30,
                   "hash power out of range");
    primary_.assign(std::size_t(1) << initial_power, nullptr);
}

Item **
HashTable::bucketFor(std::uint64_t hash)
{
    if (expanding_) {
        const std::size_t old_idx = hash & (old_.size() - 1);
        if (old_idx >= migrateBucket_)
            return &old_[old_idx];
    }
    return &primary_[hash & (primary_.size() - 1)];
}

ProbeResult
HashTable::find(std::string_view key, std::uint64_t hash)
{
    ProbeResult result;
    Item **bucket = bucketFor(hash);
    result.bucketAddr = bucket;
    for (Item *it = *bucket; it; it = it->hNext) {
        ++result.chainLength;
        if (it->key() == key) {
            result.item = it;
            return result;
        }
    }
    return result;
}

void
HashTable::insert(Item *item, std::uint64_t hash)
{
    mercury_assert(item != nullptr, "insert of null item");
    Item **bucket = bucketFor(hash);
    item->hNext = *bucket;
    *bucket = item;
    ++size_;
    maybeExpand();
    if (expanding_)
        migrateStep();
}

Item *
HashTable::remove(std::string_view key, std::uint64_t hash)
{
    Item **bucket = bucketFor(hash);
    for (Item **link = bucket; *link; link = &(*link)->hNext) {
        if ((*link)->key() == key) {
            Item *removed = *link;
            *link = removed->hNext;
            removed->hNext = nullptr;
            --size_;
            if (expanding_)
                migrateStep();
            return removed;
        }
    }
    return nullptr;
}

void
HashTable::maybeExpand()
{
    if (expanding_ || loadFactor() < expandLoadFactor)
        return;
    if (primary_.size() >= (std::size_t(1) << 30))
        return;

    old_.swap(primary_);
    primary_.assign(old_.size() * 2, nullptr);
    expanding_ = true;
    migrateBucket_ = 0;
}

void
HashTable::migrateStep(unsigned buckets)
{
    if (!expanding_)
        return;

    for (unsigned step = 0;
         step < buckets && migrateBucket_ < old_.size(); ++step) {
        Item *it = old_[migrateBucket_];
        old_[migrateBucket_] = nullptr;
        while (it) {
            Item *next = it->hNext;
            const std::uint64_t hash = hashKey(it->key());
            Item **bucket = &primary_[hash & (primary_.size() - 1)];
            it->hNext = *bucket;
            *bucket = it;
            it = next;
        }
        ++migrateBucket_;
    }

    if (migrateBucket_ >= old_.size()) {
        old_.clear();
        old_.shrink_to_fit();
        expanding_ = false;
        migrateBucket_ = 0;
    }
}

} // namespace mercury::kvstore
