/**
 * @file
 * Chained hash table with memcached-style incremental expansion.
 *
 * The table doubles when the load factor passes a threshold, but
 * migration happens a few buckets at a time, piggybacked on mutating
 * operations, so no single request pays the full rehash (the
 * behaviour Wiggins & Langston analyse when scaling memcached 1.6).
 */

#ifndef MERCURY_KVSTORE_HASH_TABLE_HH
#define MERCURY_KVSTORE_HASH_TABLE_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "kvstore/item.hh"

namespace mercury::kvstore
{

/** Result of a probe, including what the walk touched (for the
 * timing layer). */
struct ProbeResult
{
    Item *item = nullptr;
    /** Items inspected, including the match if any. */
    unsigned chainLength = 0;
    /** Address of the bucket head slot that was read. */
    const void *bucketAddr = nullptr;
    /** Index of that slot within its table. Unlike bucketAddr this
     * is independent of the host heap layout, so the timing layer
     * maps it (not the pointer) into the simulated address space. */
    std::uint64_t bucketIndex = 0;
};

class HashTable
{
  public:
    /** @param initial_power log2 of the initial bucket count. */
    explicit HashTable(unsigned initial_power = 16);

    /** Find an item; counts the chain walk. */
    ProbeResult find(std::string_view key, std::uint64_t hash);

    /**
     * Link an item into its bucket.
     * @pre no item with the same key is present.
     */
    void insert(Item *item, std::uint64_t hash);

    /** Unlink an item; returns it, or nullptr if absent. */
    Item *remove(std::string_view key, std::uint64_t hash);

    /** Items currently linked. */
    std::size_t size() const { return size_; }

    std::size_t buckets() const { return primary_.size(); }

    bool expanding() const { return expanding_; }

    /** Current load factor (items per bucket). */
    double
    loadFactor() const
    {
        return static_cast<double>(size_) /
               static_cast<double>(primary_.size());
    }

    /**
     * Advance incremental migration by a few buckets. Called
     * internally on mutations; exposed so idle housekeeping can also
     * drive it.
     */
    void migrateStep(unsigned buckets = 2);

    /** Begin doubling if the load factor warrants it. */
    void maybeExpand();

    /**
     * Full structural audit: bucket chains are cycle-free, linked
     * item count matches size(), and the expansion bookkeeping is
     * coherent. O(items); meant for tests and MERCURY_ASSERT_SLOW.
     */
    bool checkIntegrity() const;

    /** MERCURY_ASSERT wrapper around checkIntegrity(), so callers
     * (tests, housekeeping) get the formatted contract diagnostic. */
    void validate() const;

    /** Visit every item (slow; used by flush and tests). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &head : old_) {
            for (Item *it = head; it; it = it->hNext)
                fn(it);
        }
        for (const auto &head : primary_) {
            for (Item *it = head; it; it = it->hNext)
                fn(it);
        }
    }

  private:
    /** Bucket slot (in whichever table currently owns the hash);
     * also yields the slot's index within that table. */
    Item **bucketFor(std::uint64_t hash, std::uint64_t &index);

    static constexpr double expandLoadFactor = 1.5;

    std::vector<Item *> primary_;
    std::vector<Item *> old_;
    bool expanding_ = false;
    /** Next old-table bucket to migrate. */
    std::size_t migrateBucket_ = 0;
    std::size_t size_ = 0;
};

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_HASH_TABLE_HH
