/**
 * @file
 * The in-memory item layout, memcached style.
 *
 * An item is a fixed header followed inline by the key bytes and the
 * value bytes, all living inside one slab chunk. Keeping the layout
 * inline (rather than std::string members) makes the store's memory
 * accounting faithful to real memcached, which is what the paper's
 * density arithmetic depends on.
 */

#ifndef MERCURY_KVSTORE_ITEM_HH
#define MERCURY_KVSTORE_ITEM_HH

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mercury::kvstore
{

/**
 * Item header; key and value bytes follow contiguously.
 */
struct Item
{
    /** Next item in the hash-bucket chain. */
    Item *hNext = nullptr;
    /** LRU list linkage (meaning depends on the eviction policy). */
    Item *lruNext = nullptr;
    Item *lruPrev = nullptr;

    /** Compare-and-swap token. */
    std::uint64_t casId = 0;

    /** Absolute expiry in store-clock seconds; 0 = never expires. */
    std::uint32_t expiry = 0;
    /** Store-clock second of the last access (for Bags aging). */
    std::uint32_t lastAccess = 0;
    /** Opaque client flags stored with the value. */
    std::uint32_t clientFlags = 0;

    std::uint32_t valueLen = 0;
    std::uint16_t keyLen = 0;
    /** Slab class the chunk was allocated from. */
    std::uint8_t slabClass = 0;
    /** Set while the item sits in an eviction bag (Bags policy). */
    std::uint8_t bagIndex = 0;

    char *
    data()
    {
        return reinterpret_cast<char *>(this + 1);
    }

    const char *
    data() const
    {
        return reinterpret_cast<const char *>(this + 1);
    }

    std::string_view
    key() const
    {
        return {data(), keyLen};
    }

    std::string_view
    value() const
    {
        return {data() + keyLen, valueLen};
    }

    void
    setKey(std::string_view key)
    {
        keyLen = static_cast<std::uint16_t>(key.size());
        std::memcpy(data(), key.data(), key.size());
    }

    void
    setValue(std::string_view value)
    {
        valueLen = static_cast<std::uint32_t>(value.size());
        std::memcpy(data() + keyLen, value.data(), value.size());
    }

    /** Bytes an item with the given key/value sizes occupies. */
    static std::size_t
    totalSize(std::size_t key_len, std::size_t value_len)
    {
        return sizeof(Item) + key_len + value_len;
    }

    /** Total bytes this particular item occupies. */
    std::size_t
    size() const
    {
        return totalSize(keyLen, valueLen);
    }
};

static_assert(sizeof(Item) % alignof(Item) == 0,
              "item data() payload must start aligned");

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_ITEM_HH
