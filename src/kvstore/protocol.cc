#include "kvstore/protocol.hh"

#include <charconv>

namespace mercury::kvstore
{

namespace
{

std::vector<std::string_view>
tokenize(std::string_view line)
{
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        std::size_t end = pos;
        while (end < line.size() && line[end] != ' ')
            ++end;
        if (end > pos)
            tokens.push_back(line.substr(pos, end - pos));
        pos = end;
    }
    return tokens;
}

template <typename T>
bool
parseNumber(std::string_view token, T &out)
{
    auto [ptr, ec] = std::from_chars(token.data(),
                                     token.data() + token.size(), out);
    return ec == std::errc() && ptr == token.data() + token.size();
}

const char *
statusReply(StoreStatus status)
{
    switch (status) {
      case StoreStatus::Stored: return "STORED\r\n";
      case StoreStatus::NotStored: return "NOT_STORED\r\n";
      case StoreStatus::Exists: return "EXISTS\r\n";
      case StoreStatus::NotFound: return "NOT_FOUND\r\n";
      case StoreStatus::OutOfMemory:
        return "SERVER_ERROR out of memory storing object\r\n";
      case StoreStatus::BadValue:
        return "CLIENT_ERROR bad data chunk\r\n";
    }
    return "ERROR\r\n";
}

} // anonymous namespace

ServerSession::ServerSession(Store &store)
    : store_(store)
{}

std::string
ServerSession::consume(std::string_view bytes)
{
    buffer_.append(bytes);
    std::string out;

    for (;;) {
        if (closed_)
            break;
        if (hasPending_) {
            // Wait for <bytes> of data plus the trailing \r\n.
            const std::size_t need = pending_.bytes + 2;
            if (buffer_.size() < need)
                break;
            dataBlock(std::string_view(buffer_).substr(0,
                                                       pending_.bytes),
                      out);
            buffer_.erase(0, need);
            hasPending_ = false;
            continue;
        }

        const std::size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos)
            break;
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 2);
        commandLine(line, out);
    }
    return out;
}

void
ServerSession::commandLine(std::string_view line, std::string &out)
{
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
        out += "ERROR\r\n";
        return;
    }

    const std::string_view verb = tokens[0];
    if (verb == "get" || verb == "gets") {
        doGet(tokens, verb == "gets", out);
    } else if (verb == "set" || verb == "add" || verb == "replace" ||
               verb == "cas" || verb == "append" ||
               verb == "prepend") {
        const bool is_cas = verb == "cas";
        const std::size_t expected = is_cas ? 6u : 5u;
        if (tokens.size() < expected) {
            out += "ERROR\r\n";
            return;
        }
        PendingStore p;
        p.verb = std::string(verb);
        p.key = std::string(tokens[1]);
        bool ok = parseNumber(tokens[2], p.flags) &&
                  parseNumber(tokens[3], p.ttl) &&
                  parseNumber(tokens[4], p.bytes);
        if (is_cas)
            ok = ok && parseNumber(tokens[5], p.casToken);
        const std::size_t noreply_at = expected;
        if (tokens.size() > noreply_at &&
            tokens[noreply_at] == "noreply") {
            p.noreply = true;
        }
        if (!ok || p.bytes > 1 * miB) {
            out += "CLIENT_ERROR bad command line format\r\n";
            return;
        }
        pending_ = std::move(p);
        hasPending_ = true;
    } else if (verb == "delete") {
        doDelete(tokens, out);
    } else if (verb == "incr" || verb == "decr") {
        doArith(tokens, verb == "incr", out);
    } else if (verb == "touch") {
        doTouch(tokens, out);
    } else if (verb == "flush_all") {
        store_.flushAll();
        out += "OK\r\n";
    } else if (verb == "version") {
        out += "VERSION mercury-kvstore 1.0\r\n";
    } else if (verb == "stats") {
        doStats(out);
    } else if (verb == "quit") {
        closed_ = true;
    } else {
        out += "ERROR\r\n";
    }
}

void
ServerSession::dataBlock(std::string_view data, std::string &out)
{
    StoreStatus status;
    if (pending_.verb == "set") {
        status = store_.set(pending_.key, data, pending_.flags,
                            pending_.ttl);
    } else if (pending_.verb == "add") {
        status = store_.add(pending_.key, data, pending_.flags,
                            pending_.ttl);
    } else if (pending_.verb == "replace") {
        status = store_.replace(pending_.key, data, pending_.flags,
                                pending_.ttl);
    } else if (pending_.verb == "append") {
        status = store_.append(pending_.key, data);
    } else if (pending_.verb == "prepend") {
        status = store_.prepend(pending_.key, data);
    } else {
        status = store_.cas(pending_.key, data, pending_.casToken,
                            pending_.flags, pending_.ttl);
    }
    if (!pending_.noreply)
        out += statusReply(status);
}

void
ServerSession::doGet(const std::vector<std::string_view> &tokens,
                     bool with_cas, std::string &out)
{
    if (tokens.size() < 2) {
        out += "ERROR\r\n";
        return;
    }
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        GetResult r = store_.get(tokens[i]);
        if (!r.hit)
            continue;
        out += "VALUE ";
        out += tokens[i];
        out += ' ';
        out += std::to_string(r.flags);
        out += ' ';
        out += std::to_string(r.value.size());
        if (with_cas) {
            out += ' ';
            out += std::to_string(r.cas);
        }
        out += "\r\n";
        out += r.value;
        out += "\r\n";
    }
    out += "END\r\n";
}

void
ServerSession::doDelete(const std::vector<std::string_view> &tokens,
                        std::string &out)
{
    if (tokens.size() < 2) {
        out += "ERROR\r\n";
        return;
    }
    const bool noreply = tokens.size() > 2 && tokens[2] == "noreply";
    const StoreStatus status = store_.remove(tokens[1]);
    if (noreply)
        return;
    out += status == StoreStatus::Stored ? "DELETED\r\n"
                                         : "NOT_FOUND\r\n";
}

void
ServerSession::doArith(const std::vector<std::string_view> &tokens,
                       bool increment, std::string &out)
{
    std::uint64_t delta = 0;
    if (tokens.size() < 3 || !parseNumber(tokens[2], delta)) {
        out += "CLIENT_ERROR invalid numeric delta argument\r\n";
        return;
    }
    std::uint64_t value = 0;
    const StoreStatus status =
        increment ? store_.incr(tokens[1], delta, value)
                  : store_.decr(tokens[1], delta, value);
    switch (status) {
      case StoreStatus::Stored:
        out += std::to_string(value);
        out += "\r\n";
        break;
      case StoreStatus::NotFound:
        out += "NOT_FOUND\r\n";
        break;
      default:
        out += "CLIENT_ERROR cannot increment or decrement "
               "non-numeric value\r\n";
        break;
    }
}

void
ServerSession::doTouch(const std::vector<std::string_view> &tokens,
                       std::string &out)
{
    std::uint32_t ttl = 0;
    if (tokens.size() < 3 || !parseNumber(tokens[2], ttl)) {
        out += "ERROR\r\n";
        return;
    }
    const StoreStatus status = store_.touch(tokens[1], ttl);
    out += status == StoreStatus::Stored ? "TOUCHED\r\n"
                                         : "NOT_FOUND\r\n";
}

void
ServerSession::doStats(std::string &out)
{
    const StoreCounters &c = store_.counters();
    auto stat = [&out](const char *name, std::uint64_t value) {
        out += "STAT ";
        out += name;
        out += ' ';
        out += std::to_string(value);
        out += "\r\n";
    };
    stat("cmd_get", c.gets.load());
    stat("get_hits", c.getHits.load());
    stat("get_misses", c.getMisses.load());
    stat("cmd_set", c.sets.load());
    stat("delete_hits", c.deletes.load());
    stat("evictions", c.evictions.load());
    stat("expired_unfetched", c.expiredReclaimed.load());
    stat("curr_items", store_.itemCount());
    stat("bytes", store_.usedBytes());
    stat("limit_maxbytes", store_.memLimit());
    out += "END\r\n";
}

} // namespace mercury::kvstore
