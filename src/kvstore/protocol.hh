/**
 * @file
 * Memcached text protocol session.
 *
 * A ServerSession consumes raw request bytes (possibly fragmented or
 * batched arbitrarily, as TCP delivers them), drives a Store, and
 * produces response bytes. It implements the classic text protocol
 * verbs: get/gets, set/add/replace/cas, delete, incr/decr, touch,
 * flush_all, version, stats and quit.
 */

#ifndef MERCURY_KVSTORE_PROTOCOL_HH
#define MERCURY_KVSTORE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kvstore/store.hh"

namespace mercury::kvstore
{

class ServerSession
{
  public:
    explicit ServerSession(Store &store);

    /**
     * Feed bytes into the session.
     *
     * @return response bytes produced by any commands completed by
     *         this input (may be empty if a command is still
     *         incomplete).
     */
    std::string consume(std::string_view bytes);

    /** True once the client sent "quit". */
    bool closed() const { return closed_; }

  private:
    struct PendingStore
    {
        std::string verb;
        std::string key;
        std::uint32_t flags = 0;
        std::uint32_t ttl = 0;
        std::size_t bytes = 0;
        std::uint64_t casToken = 0;
        bool noreply = false;
    };

    /** Handle one complete command line. */
    void commandLine(std::string_view line, std::string &out);

    /** Handle the data block of a storage command. */
    void dataBlock(std::string_view data, std::string &out);

    void doGet(const std::vector<std::string_view> &tokens,
               bool with_cas, std::string &out);
    void doDelete(const std::vector<std::string_view> &tokens,
                  std::string &out);
    void doArith(const std::vector<std::string_view> &tokens,
                 bool increment, std::string &out);
    void doTouch(const std::vector<std::string_view> &tokens,
                 std::string &out);
    void doStats(std::string &out);

    Store &store_;
    std::string buffer_;
    bool hasPending_ = false;
    PendingStore pending_;
    bool closed_ = false;
};

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_PROTOCOL_HH
