#include "kvstore/slab.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::kvstore
{

SlabAllocator::SlabAllocator(const SlabParams &params)
    : params_(params)
{
    mercury_assert(params_.pageSize >= params_.minChunk,
                   "slab page must fit at least one chunk");
    mercury_assert(params_.growthFactor > 1.0,
                   "slab growth factor must exceed 1");
    mercury_assert(params_.memLimit >= params_.pageSize,
                   "memory limit below one slab page");

    // Build the geometric class table, ending with one whole page.
    double size = params_.minChunk;
    while (static_cast<std::uint32_t>(size) < params_.pageSize) {
        SlabClass cls;
        cls.chunkSize =
            (static_cast<std::uint32_t>(size) + 7u) & ~7u;  // align 8
        if (!classes_.empty() &&
            cls.chunkSize <= classes_.back().chunkSize) {
            cls.chunkSize = classes_.back().chunkSize + 8;
        }
        classes_.push_back(cls);
        size *= params_.growthFactor;
    }
    SlabClass full_page;
    full_page.chunkSize = params_.pageSize;
    classes_.push_back(full_page);
}

int
SlabAllocator::classFor(std::size_t bytes) const
{
    if (bytes > params_.pageSize)
        return -1;
    // Classes are sorted; binary search for the first that fits.
    auto it = std::lower_bound(
        classes_.begin(), classes_.end(), bytes,
        [](const SlabClass &cls, std::size_t want) {
            return cls.chunkSize < want;
        });
    mercury_assert(it != classes_.end(), "class table must cover page");
    return static_cast<int>(it - classes_.begin());
}

std::uint32_t
SlabAllocator::chunkSize(unsigned cls) const
{
    mercury_assert(cls < classes_.size(), "bad slab class ", cls);
    return classes_[cls].chunkSize;
}

bool
SlabAllocator::growClass(unsigned cls)
{
    if (!canGrow())
        return false;

    auto page = std::make_unique<char[]>(params_.pageSize);
    char *base = page.get();
    const auto page_index = static_cast<std::uint32_t>(pages_.size());
    pages_.push_back(std::move(page));

    auto pos = std::lower_bound(
        pageBases_.begin(), pageBases_.end(), base,
        [](const auto &entry, const char *want) {
            return entry.first < want;
        });
    pageBases_.insert(pos, {base, page_index});

    SlabClass &slab_class = classes_[cls];
    const std::uint32_t chunks = params_.pageSize /
                                 slab_class.chunkSize;
    for (std::uint32_t i = 0; i < chunks; ++i)
        slab_class.freeChunks.push_back(base + i *
                                        slab_class.chunkSize);
    slab_class.totalChunks += chunks;
    ++slab_class.pages;
    allocatedBytes_ += params_.pageSize;
    return true;
}

void *
SlabAllocator::allocate(unsigned cls)
{
    mercury_assert(cls < classes_.size(), "bad slab class ", cls);
    SlabClass &slab_class = classes_[cls];
    if (slab_class.freeChunks.empty() && !growClass(cls))
        return nullptr;

    void *chunk = slab_class.freeChunks.back();
    slab_class.freeChunks.pop_back();
    usedBytes_ += slab_class.chunkSize;
    return chunk;
}

void
SlabAllocator::free(unsigned cls, void *chunk)
{
    mercury_assert(cls < classes_.size(), "bad slab class ", cls);
    mercury_assert(chunk != nullptr, "free of null chunk");
    SlabClass &slab_class = classes_[cls];
    slab_class.freeChunks.push_back(chunk);
    mercury_assert(usedBytes_ >= slab_class.chunkSize,
                   "slab accounting underflow");
    usedBytes_ -= slab_class.chunkSize;
}

std::uint64_t
SlabAllocator::usedChunks(unsigned cls) const
{
    mercury_assert(cls < classes_.size(), "bad slab class ", cls);
    const SlabClass &slab_class = classes_[cls];
    return slab_class.totalChunks - slab_class.freeChunks.size();
}

unsigned
SlabAllocator::pagesOf(unsigned cls) const
{
    mercury_assert(cls < classes_.size(), "bad slab class ", cls);
    return classes_[cls].pages;
}

std::int64_t
SlabAllocator::pageIndexOf(const void *chunk) const
{
    const char *p = static_cast<const char *>(chunk);
    auto it = std::upper_bound(
        pageBases_.begin(), pageBases_.end(), p,
        [](const char *want, const auto &entry) {
            return want < entry.first;
        });
    if (it == pageBases_.begin())
        return -1;
    --it;
    if (p >= it->first + params_.pageSize)
        return -1;
    return it->second;
}

std::uint64_t
SlabAllocator::pageOffsetOf(const void *chunk) const
{
    const char *p = static_cast<const char *>(chunk);
    auto it = std::upper_bound(
        pageBases_.begin(), pageBases_.end(), p,
        [](const char *want, const auto &entry) {
            return want < entry.first;
        });
    mercury_assert(it != pageBases_.begin(),
                   "pointer not from this allocator");
    --it;
    return static_cast<std::uint64_t>(p - it->first);
}

} // namespace mercury::kvstore
