#include "kvstore/slab.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::kvstore
{

SlabAllocator::SlabAllocator(const SlabParams &params)
    : params_(params)
{
    MERCURY_EXPECTS(params_.pageSize >= params_.minChunk,
                    "slab page must fit at least one chunk");
    MERCURY_EXPECTS(params_.growthFactor > 1.0,
                    "slab growth factor must exceed 1");
    MERCURY_EXPECTS(params_.memLimit >= params_.pageSize,
                    "memory limit below one slab page");

    // Build the geometric class table, ending with one whole page.
    double size = params_.minChunk;
    while (static_cast<std::uint32_t>(size) < params_.pageSize) {
        SlabClass cls;
        cls.chunkSize =
            (static_cast<std::uint32_t>(size) + 7u) & ~7u;  // align 8
        if (!classes_.empty() &&
            cls.chunkSize <= classes_.back().chunkSize) {
            cls.chunkSize = classes_.back().chunkSize + 8;
        }
        classes_.push_back(cls);
        size *= params_.growthFactor;
    }
    SlabClass full_page;
    full_page.chunkSize = params_.pageSize;
    classes_.push_back(full_page);
}

int
SlabAllocator::classFor(std::size_t bytes) const
{
    if (bytes > params_.pageSize)
        return -1;
    // Classes are sorted; binary search for the first that fits.
    auto it = std::lower_bound(
        classes_.begin(), classes_.end(), bytes,
        [](const SlabClass &cls, std::size_t want) {
            return cls.chunkSize < want;
        });
    MERCURY_ASSERT(it != classes_.end(), "class table must cover page");
    return static_cast<int>(it - classes_.begin());
}

std::uint32_t
SlabAllocator::chunkSize(unsigned cls) const
{
    MERCURY_EXPECTS(cls < classes_.size(), "bad slab class ", cls);
    return classes_[cls].chunkSize;
}

bool
SlabAllocator::growClass(unsigned cls)
{
    if (!canGrow())
        return false;

    auto page = std::make_unique<char[]>(params_.pageSize);
    char *base = page.get();
    const auto page_index = static_cast<std::uint32_t>(pages_.size());
    pages_.push_back(std::move(page));
    pageClass_.push_back(cls);

    auto pos = std::lower_bound(
        pageBases_.begin(), pageBases_.end(), base,
        [](const auto &entry, const char *want) {
            return entry.first < want;
        });
    pageBases_.insert(pos, {base, page_index});

    SlabClass &slab_class = classes_[cls];
    const std::uint32_t chunks = params_.pageSize /
                                 slab_class.chunkSize;
    for (std::uint32_t i = 0; i < chunks; ++i)
        slab_class.freeChunks.push_back(base + i *
                                        slab_class.chunkSize);
    slab_class.totalChunks += chunks;
    ++slab_class.pages;
    allocatedBytes_ += params_.pageSize;
    MERCURY_ENSURES(allocatedBytes_ <= params_.memLimit,
                    "slab pages exceed the memory budget");
    MERCURY_ASSERT_SLOW(checkConsistency(),
                        "slab tables inconsistent after page grow");
    return true;
}

void *
SlabAllocator::allocate(unsigned cls)
{
    MERCURY_EXPECTS(cls < classes_.size(), "bad slab class ", cls);
    SlabClass &slab_class = classes_[cls];
    if (slab_class.freeChunks.empty() && !growClass(cls))
        return nullptr;

    void *chunk = slab_class.freeChunks.back();
    slab_class.freeChunks.pop_back();
    usedBytes_ += slab_class.chunkSize;
    MERCURY_ENSURES(usedBytes_ <= allocatedBytes_,
                    "more chunk bytes in use than pages assigned");
    MERCURY_ENSURES(chunkClassMatches(cls, chunk),
                    "allocator handed out a chunk from the wrong class");
    return chunk;
}

bool
SlabAllocator::chunkClassMatches(unsigned cls, const void *chunk) const
{
    const std::int64_t page = pageIndexOf(chunk);
    if (page < 0)
        return false;
    if (pageClass_[static_cast<std::size_t>(page)] != cls)
        return false;
    // A chunk pointer must sit on a chunk boundary of its class.
    return pageOffsetOf(chunk) % classes_[cls].chunkSize == 0;
}

void
SlabAllocator::free(unsigned cls, void *chunk)
{
    MERCURY_EXPECTS(cls < classes_.size(), "bad slab class ", cls);
    MERCURY_EXPECTS(chunk != nullptr, "free of null chunk");
    MERCURY_EXPECTS(chunkClassMatches(cls, chunk),
                    "free of chunk that was not allocated from class ",
                    cls);
    SlabClass &slab_class = classes_[cls];
    MERCURY_EXPECTS(usedChunks(cls) > 0,
                    "free with no chunks outstanding in class ", cls,
                    " (double free?)");
    MERCURY_ASSERT_SLOW(std::find(slab_class.freeChunks.begin(),
                                  slab_class.freeChunks.end(),
                                  chunk) == slab_class.freeChunks.end(),
                        "double free of slab chunk in class ", cls);
    slab_class.freeChunks.push_back(chunk);
    MERCURY_ASSERT(usedBytes_ >= slab_class.chunkSize,
                   "slab accounting underflow");
    usedBytes_ -= slab_class.chunkSize;
}

std::uint64_t
SlabAllocator::usedChunks(unsigned cls) const
{
    MERCURY_EXPECTS(cls < classes_.size(), "bad slab class ", cls);
    const SlabClass &slab_class = classes_[cls];
    MERCURY_ASSERT(slab_class.freeChunks.size() <=
                   slab_class.totalChunks,
                   "class ", cls, " free list larger than the class");
    return slab_class.totalChunks - slab_class.freeChunks.size();
}

unsigned
SlabAllocator::pagesOf(unsigned cls) const
{
    MERCURY_EXPECTS(cls < classes_.size(), "bad slab class ", cls);
    return classes_[cls].pages;
}

unsigned
SlabAllocator::classOfPage(std::uint32_t page_index) const
{
    MERCURY_EXPECTS(page_index < pageClass_.size(),
                    "bad slab page index ", page_index);
    return pageClass_[page_index];
}

bool
SlabAllocator::checkConsistency() const
{
    if (pages_.size() != pageClass_.size() ||
        pages_.size() != pageBases_.size()) {
        return false;
    }
    if (allocatedBytes_ != pages_.size() * params_.pageSize)
        return false;

    std::uint64_t used_bytes = 0;
    std::vector<unsigned> pages_per_class(classes_.size(), 0);
    for (const std::uint32_t cls : pageClass_) {
        if (cls >= classes_.size())
            return false;
        ++pages_per_class[cls];
    }

    for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
        const SlabClass &slab_class = classes_[cls];
        if (slab_class.pages != pages_per_class[cls])
            return false;
        const std::uint64_t chunks_per_page =
            params_.pageSize / slab_class.chunkSize;
        if (slab_class.totalChunks !=
            chunks_per_page * slab_class.pages) {
            return false;
        }
        if (slab_class.freeChunks.size() > slab_class.totalChunks)
            return false;
        for (const void *chunk : slab_class.freeChunks) {
            if (!chunkClassMatches(static_cast<unsigned>(cls), chunk))
                return false;
        }
        used_bytes += (slab_class.totalChunks -
                       slab_class.freeChunks.size()) *
                      slab_class.chunkSize;
    }
    return used_bytes == usedBytes_;
}

std::int64_t
SlabAllocator::pageIndexOf(const void *chunk) const
{
    const char *p = static_cast<const char *>(chunk);
    auto it = std::upper_bound(
        pageBases_.begin(), pageBases_.end(), p,
        [](const char *want, const auto &entry) {
            return want < entry.first;
        });
    if (it == pageBases_.begin())
        return -1;
    --it;
    if (p >= it->first + params_.pageSize)
        return -1;
    return it->second;
}

std::uint64_t
SlabAllocator::pageOffsetOf(const void *chunk) const
{
    const char *p = static_cast<const char *>(chunk);
    auto it = std::upper_bound(
        pageBases_.begin(), pageBases_.end(), p,
        [](const char *want, const auto &entry) {
            return want < entry.first;
        });
    MERCURY_EXPECTS(it != pageBases_.begin(),
                    "pointer not from this allocator");
    --it;
    return static_cast<std::uint64_t>(p - it->first);
}

} // namespace mercury::kvstore
