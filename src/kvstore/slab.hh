/**
 * @file
 * Memcached-style slab allocator.
 *
 * Memory is carved into fixed-size pages (1 MiB by default). Each
 * page is assigned, on demand, to a size class; classes grow
 * geometrically from the minimum chunk size. Once assigned, pages are
 * never reassigned (matching memcached 1.4), so a workload's size mix
 * determines the per-class capacity -- the mechanism behind
 * memcached's "calcification" behaviour and part of why density
 * planning matters for the paper's servers.
 */

#ifndef MERCURY_KVSTORE_SLAB_HH
#define MERCURY_KVSTORE_SLAB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mercury::kvstore
{

/** Static configuration of the slab allocator. */
struct SlabParams
{
    /** Total memory budget for item storage. */
    std::uint64_t memLimit = 64 * miB;
    /** Slab page size. */
    std::uint32_t pageSize = 1 * miB;
    /** Smallest chunk size (fits the item header + small items). */
    std::uint32_t minChunk = 96;
    /** Geometric growth between adjacent classes. */
    double growthFactor = 1.25;
};

/**
 * The slab allocator. Not thread-safe by itself; the Store serializes
 * access per its locking mode.
 */
class SlabAllocator
{
  public:
    explicit SlabAllocator(const SlabParams &params);

    /** Smallest class whose chunks fit @p bytes, or -1 if the object
     * exceeds the largest class (one page). */
    int classFor(std::size_t bytes) const;

    /** Chunk size of a class. */
    std::uint32_t chunkSize(unsigned cls) const;

    unsigned numClasses() const
    {
        return static_cast<unsigned>(classes_.size());
    }

    /**
     * Allocate a chunk from a class.
     *
     * @return pointer to the chunk, or nullptr when the class free
     *         list is empty and the global page budget is exhausted
     *         (the caller should evict and retry).
     */
    void *allocate(unsigned cls);

    /** Return a chunk to its class free list. */
    void free(unsigned cls, void *chunk);

    /** Bytes of pages assigned so far (monotonic). */
    std::uint64_t allocatedBytes() const { return allocatedBytes_; }

    /** Bytes in chunks currently handed out. */
    std::uint64_t usedBytes() const { return usedBytes_; }

    std::uint64_t memLimit() const { return params_.memLimit; }

    /** Chunks currently handed out in a class. */
    std::uint64_t usedChunks(unsigned cls) const;

    /** Pages assigned to a class. */
    unsigned pagesOf(unsigned cls) const;

    /** True when another page could still be assigned. */
    bool
    canGrow() const
    {
        return allocatedBytes_ + params_.pageSize <= params_.memLimit;
    }

    /** Index of the slab page containing a chunk, for address
     * mapping; -1 if the pointer is not from this allocator. */
    std::int64_t pageIndexOf(const void *chunk) const;

    /** Class a page was assigned to (pages never move classes). */
    unsigned classOfPage(std::uint32_t page_index) const;

    /**
     * Full structural audit of the class tables and accounting:
     * per-class chunk counts, page assignment, byte accounting, and
     * free-list sanity. O(pages + free chunks); meant for tests and
     * MERCURY_ASSERT_SLOW, not the hot path.
     */
    bool checkConsistency() const;

    /** Byte offset of a chunk within its page. */
    std::uint64_t pageOffsetOf(const void *chunk) const;

    const SlabParams &params() const { return params_; }

  private:
    struct SlabClass
    {
        std::uint32_t chunkSize;
        std::vector<void *> freeChunks;
        std::uint64_t totalChunks = 0;
        unsigned pages = 0;
    };

    /** Assign a fresh page to a class; false if out of budget. */
    bool growClass(unsigned cls);

    /** True if @p chunk lies on a chunk boundary of a page owned by
     * class @p cls. */
    bool chunkClassMatches(unsigned cls, const void *chunk) const;

    SlabParams params_;
    std::vector<SlabClass> classes_;
    /** Owning storage for pages, in allocation order. */
    std::vector<std::unique_ptr<char[]>> pages_;
    /** (base address, page index) sorted by base, for pageIndexOf. */
    std::vector<std::pair<const char *, std::uint32_t>> pageBases_;
    /** Owning class of each page, indexed like pages_. */
    std::vector<std::uint32_t> pageClass_;

    std::uint64_t allocatedBytes_ = 0;
    std::uint64_t usedBytes_ = 0;
};

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_SLAB_HH
