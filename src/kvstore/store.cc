#include "kvstore/store.hh"

#include <algorithm>
#include <charconv>
#include <new>
#include <optional>

#include "kvstore/hash.hh"
#include "sim/logging.hh"

namespace mercury::kvstore
{

namespace
{

enum StoreMode { modeSet, modeAdd, modeReplace, modeCas };

} // anonymous namespace

Store::Store(const StoreParams &params)
    : params_(params),
      slabs_([&] {
          SlabParams sp = params.slab;
          sp.memLimit = params.memLimit;
          return sp;
      }()),
      table_(params.hashPower)
{
    mercury_assert(params_.lockStripes >= 1, "need at least one stripe");
    policies_.reserve(slabs_.numClasses());
    for (unsigned cls = 0; cls < slabs_.numClasses(); ++cls) {
        switch (params_.eviction) {
          case EvictionPolicyKind::Bags:
            policies_.push_back(
                std::make_unique<BagLru>(params_.bagAgeSeconds));
            break;
          case EvictionPolicyKind::Segmented:
            policies_.push_back(std::make_unique<SegmentedLru>());
            break;
          default:
            policies_.push_back(std::make_unique<StrictLru>());
            break;
        }
    }
    stripes_.reserve(params_.lockStripes);
    for (unsigned i = 0; i < params_.lockStripes; ++i)
        stripes_.push_back(std::make_unique<std::recursive_mutex>());
}

// Defined below RegisteredStats so unique_ptr sees a complete type.

unsigned
Store::stripeOf(std::uint64_t hash) const
{
    return static_cast<unsigned>(hash % stripes_.size());
}

bool
Store::itemDead(const Item *item) const
{
    if (item->casId <= flushCas_.load(std::memory_order_relaxed))
        return true;
    const std::uint32_t now = clock_.load(std::memory_order_relaxed);
    return item->expiry != 0 && item->expiry <= now;
}

std::uint32_t
Store::expiryFor(std::uint32_t ttl) const
{
    return ttl == 0 ? 0 : clock_.load(std::memory_order_relaxed) + ttl;
}

/**
 * Readers serialize on the whole store when the configuration demands
 * it: Global locking (memcached 1.4), or strict LRU, whose
 * move-to-front makes every GET a list mutation. Bags + striped
 * locking is the scalable 1.6 configuration: GETs take only their
 * stripe.
 */
struct Store::StripeLock
{
    StripeLock(Store &store, std::uint64_t hash, bool mutation)
    {
        // Bags is the only policy whose GET path mutates no shared
        // list state; every other policy's reads serialize on the
        // store-wide lock (the memcached 1.4 behaviour).
        const bool whole_store =
            store.params_.locking == LockingMode::Global ||
            store.params_.eviction != EvictionPolicyKind::Bags;
        if (mutation || whole_store)
            alloc.emplace(store.allocMutex_);
        if (store.params_.locking == LockingMode::Striped) {
            stripe.emplace(*store.stripes_[store.stripeOf(hash)]);
        }
    }

    std::optional<std::unique_lock<std::recursive_mutex>> alloc;
    std::optional<std::unique_lock<std::recursive_mutex>> stripe;
};

void
Store::destroyItem(Item *item)
{
    const std::uint64_t hash = hashKey(item->key());
    Item *removed = table_.remove(item->key(), hash);
    mercury_assert(removed == item, "hash table / policy out of sync");
    policies_[item->slabClass]->onRemove(item);
    slabs_.free(item->slabClass, item);
}

void *
Store::allocateWithEviction(unsigned cls, ProbeTrace *trace)
{
    for (int attempt = 0; attempt < 64; ++attempt) {
        void *chunk = slabs_.allocate(cls);
        if (chunk)
            return chunk;

        Item *victim = policies_[cls]->victim(clock_.load());
        if (!victim)
            return nullptr;

        // The victim may live in another stripe; mutations are
        // serialized by allocMutex_, so grabbing it here is safe and
        // recursive mutexes tolerate it being the stripe we hold.
        std::unique_lock<std::recursive_mutex> victim_stripe;
        if (params_.locking == LockingMode::Striped) {
            victim_stripe = std::unique_lock<std::recursive_mutex>(
                *stripes_[stripeOf(hashKey(victim->key()))]);
        }

        if (itemDead(victim)) {
            counters_.expiredReclaimed.fetch_add(1);
        } else {
            counters_.evictions.fetch_add(1);
        }
        if (trace)
            trace->evictedItems.push_back(victim);
        destroyItem(victim);
    }
    return nullptr;
}

Item *
Store::buildItem(void *chunk, unsigned cls, std::string_view key,
                 std::string_view value, std::uint32_t flags,
                 std::uint32_t ttl)
{
    Item *item = new (chunk) Item();
    item->slabClass = static_cast<std::uint8_t>(cls);
    item->clientFlags = flags;
    item->expiry = expiryFor(ttl);
    item->casId = casCounter_.fetch_add(1) + 1;
    item->setKey(key);
    item->setValue(value);
    return item;
}

GetResult
Store::get(std::string_view key)
{
    ProbeTrace trace;
    return getTraced(key, trace);
}

GetResult
Store::getTraced(std::string_view key, ProbeTrace &trace)
{
    GetResult result;
    const std::uint64_t hash = hashKey(key);
    counters_.gets.fetch_add(1);

    StripeLock guard(*this, hash, false);

    ProbeResult probe = table_.find(key, hash);
    trace.bucketAddr = probe.bucketAddr;
    trace.bucketIndex = probe.bucketIndex;
    trace.chainItems.clear();
    {
        // Reconstruct the walk for the timing layer.
        Item *it = *static_cast<Item *const *>(probe.bucketAddr);
        for (unsigned i = 0; i < probe.chainLength && it;
             ++i, it = it->hNext) {
            trace.chainItems.push_back(it);
        }
    }

    Item *item = probe.item;
    if (!item || itemDead(item)) {
        counters_.getMisses.fetch_add(1);
        trace.hit = false;
        return result;
    }

    policies_[item->slabClass]->onAccess(item, clock_.load());

    trace.hit = true;
    trace.itemAddr = item;
    trace.valueLen = item->valueLen;

    result.hit = true;
    result.value.assign(item->value());
    result.cas = item->casId;
    result.flags = item->clientFlags;
    counters_.getHits.fetch_add(1);
    return result;
}

StoreStatus
Store::storeInternal(std::string_view key, std::string_view value,
                     std::uint32_t flags, std::uint32_t ttl, int mode,
                     std::uint64_t cas_token, ProbeTrace *trace)
{
    if (key.empty() || key.size() > 250)
        return StoreStatus::BadValue;

    const std::uint64_t hash = hashKey(key);
    counters_.sets.fetch_add(1);

    StripeLock guard(*this, hash, true);

    ProbeResult probe = table_.find(key, hash);
    if (trace) {
        trace->bucketAddr = probe.bucketAddr;
        trace->bucketIndex = probe.bucketIndex;
        Item *walk = *static_cast<Item *const *>(probe.bucketAddr);
        for (unsigned i = 0; i < probe.chainLength && walk;
             ++i, walk = walk->hNext) {
            trace->chainItems.push_back(walk);
        }
    }

    Item *existing = probe.item;
    if (existing && itemDead(existing)) {
        counters_.expiredReclaimed.fetch_add(1);
        destroyItem(existing);
        existing = nullptr;
    }

    switch (mode) {
      case modeAdd:
        if (existing)
            return StoreStatus::NotStored;
        break;
      case modeReplace:
        if (!existing)
            return StoreStatus::NotStored;
        break;
      case modeCas:
        if (!existing)
            return StoreStatus::NotFound;
        if (existing->casId != cas_token) {
            counters_.casMismatches.fetch_add(1);
            return StoreStatus::Exists;
        }
        break;
      default:
        break;
    }

    const int cls = slabs_.classFor(Item::totalSize(key.size(),
                                                    value.size()));
    if (cls < 0) {
        counters_.outOfMemory.fetch_add(1);
        return StoreStatus::OutOfMemory;
    }

    // Pin the existing item: take it out of the eviction policy so
    // allocateWithEviction cannot free it underneath us, but keep it
    // readable in the table until the new item is ready.
    if (existing)
        policies_[existing->slabClass]->onRemove(existing);

    void *chunk = allocateWithEviction(static_cast<unsigned>(cls),
                                       trace);
    if (!chunk) {
        if (existing) {
            policies_[existing->slabClass]->onInsert(existing,
                                                     clock_.load());
        }
        counters_.outOfMemory.fetch_add(1);
        return StoreStatus::OutOfMemory;
    }

    if (existing) {
        Item *removed = table_.remove(key, hash);
        mercury_assert(removed == existing, "table lost the pinned item");
        if (trace)
            trace->evictedItems.push_back(existing);
        slabs_.free(existing->slabClass, existing);
    }

    Item *item = buildItem(chunk, static_cast<unsigned>(cls), key,
                           value, flags, ttl);
    table_.insert(item, hash);
    policies_[item->slabClass]->onInsert(item, clock_.load());

    if (trace) {
        trace->itemAddr = item;
        trace->valueLen = item->valueLen;
        trace->hit = true;
    }
    return StoreStatus::Stored;
}

StoreStatus
Store::set(std::string_view key, std::string_view value,
           std::uint32_t flags, std::uint32_t ttl)
{
    return storeInternal(key, value, flags, ttl, modeSet, 0, nullptr);
}

StoreStatus
Store::setTraced(std::string_view key, std::string_view value,
                 std::uint32_t flags, std::uint32_t ttl,
                 ProbeTrace &trace)
{
    return storeInternal(key, value, flags, ttl, modeSet, 0, &trace);
}

StoreStatus
Store::add(std::string_view key, std::string_view value,
           std::uint32_t flags, std::uint32_t ttl)
{
    return storeInternal(key, value, flags, ttl, modeAdd, 0, nullptr);
}

StoreStatus
Store::replace(std::string_view key, std::string_view value,
               std::uint32_t flags, std::uint32_t ttl)
{
    return storeInternal(key, value, flags, ttl, modeReplace, 0,
                         nullptr);
}

StoreStatus
Store::cas(std::string_view key, std::string_view value,
           std::uint64_t cas_token, std::uint32_t flags,
           std::uint32_t ttl)
{
    return storeInternal(key, value, flags, ttl, modeCas, cas_token,
                         nullptr);
}

StoreStatus
Store::remove(std::string_view key)
{
    const std::uint64_t hash = hashKey(key);
    StripeLock guard(*this, hash, true);

    ProbeResult probe = table_.find(key, hash);
    if (!probe.item)
        return StoreStatus::NotFound;

    const bool dead = itemDead(probe.item);
    destroyItem(probe.item);
    if (dead)
        return StoreStatus::NotFound;
    counters_.deletes.fetch_add(1);
    return StoreStatus::Stored;
}

StoreStatus
Store::arith(std::string_view key, std::uint64_t delta, bool increment,
             std::uint64_t &out)
{
    const std::uint64_t hash = hashKey(key);
    StripeLock guard(*this, hash, true);

    ProbeResult probe = table_.find(key, hash);
    Item *item = probe.item;
    if (!item || itemDead(item))
        return StoreStatus::NotFound;

    const std::string_view value = item->value();
    std::uint64_t current = 0;
    auto [ptr, ec] = std::from_chars(value.data(),
                                     value.data() + value.size(),
                                     current);
    if (ec != std::errc() || ptr != value.data() + value.size())
        return StoreStatus::BadValue;

    if (increment) {
        current += delta;  // memcached wraps on overflow
    } else {
        current = delta > current ? 0 : current - delta;
    }
    out = current;

    char buf[24];
    auto [end, ec2] = std::to_chars(buf, buf + sizeof(buf), current);
    mercury_assert(ec2 == std::errc(), "to_chars cannot fail here");
    const std::string_view new_value(buf,
                                     static_cast<std::size_t>(
                                         end - buf));

    // Rewrite in place when the chunk fits; otherwise fall back to a
    // full store (new chunk, possibly a different class).
    const std::size_t needed = Item::totalSize(key.size(),
                                               new_value.size());
    if (needed <= slabs_.chunkSize(item->slabClass)) {
        item->setValue(new_value);
        item->casId = casCounter_.fetch_add(1) + 1;
        policies_[item->slabClass]->onAccess(item, clock_.load());
        return StoreStatus::Stored;
    }
    return storeInternal(key, new_value, item->clientFlags, 0, modeSet,
                         0, nullptr);
}

StoreStatus
Store::concat(std::string_view key, std::string_view value,
              bool after)
{
    const std::uint64_t hash = hashKey(key);
    StripeLock guard(*this, hash, true);

    ProbeResult probe = table_.find(key, hash);
    Item *item = probe.item;
    if (!item || itemDead(item))
        return StoreStatus::NotStored;

    std::string combined;
    combined.reserve(item->valueLen + value.size());
    if (after) {
        combined.assign(item->value());
        combined.append(value);
    } else {
        combined.assign(value);
        combined.append(item->value());
    }

    // Preserve flags and remaining TTL of the existing item.
    const std::uint32_t flags = item->clientFlags;
    std::uint32_t ttl = 0;
    if (item->expiry != 0) {
        const std::uint32_t now = clock_.load();
        if (item->expiry <= now)
            return StoreStatus::NotStored;
        ttl = item->expiry - now;
    }
    return storeInternal(key, combined, flags, ttl, modeSet, 0,
                         nullptr);
}

StoreStatus
Store::append(std::string_view key, std::string_view value)
{
    return concat(key, value, true);
}

StoreStatus
Store::prepend(std::string_view key, std::string_view value)
{
    return concat(key, value, false);
}

StoreStatus
Store::incr(std::string_view key, std::uint64_t delta,
            std::uint64_t &out)
{
    return arith(key, delta, true, out);
}

StoreStatus
Store::decr(std::string_view key, std::uint64_t delta,
            std::uint64_t &out)
{
    return arith(key, delta, false, out);
}

StoreStatus
Store::touch(std::string_view key, std::uint32_t ttl)
{
    const std::uint64_t hash = hashKey(key);
    StripeLock guard(*this, hash, true);

    ProbeResult probe = table_.find(key, hash);
    Item *item = probe.item;
    if (!item || itemDead(item))
        return StoreStatus::NotFound;

    item->expiry = expiryFor(ttl);
    policies_[item->slabClass]->onAccess(item, clock_.load());
    return StoreStatus::Stored;
}

void
Store::flushAll()
{
    std::lock_guard<std::recursive_mutex> guard(allocMutex_);
    flushCas_.store(casCounter_.load());
}

void
Store::setClock(std::uint32_t seconds)
{
    clock_.store(seconds);
}

void
Store::housekeeping(unsigned reap_limit)
{
    std::lock_guard<std::recursive_mutex> guard(allocMutex_);
    const std::uint32_t now = clock_.load();

    unsigned reaped = 0;
    for (auto &policy : policies_) {
        policy->age(now);
        while (reaped < reap_limit) {
            Item *victim = policy->victim(now);
            if (!victim || !itemDead(victim))
                break;
            std::unique_lock<std::recursive_mutex> stripe;
            if (params_.locking == LockingMode::Striped) {
                stripe = std::unique_lock<std::recursive_mutex>(
                    *stripes_[stripeOf(hashKey(victim->key()))]);
            }
            counters_.expiredReclaimed.fetch_add(1);
            destroyItem(victim);
            ++reaped;
        }
    }
}

std::size_t
Store::itemCount() const
{
    return table_.size();
}

std::uint64_t
Store::usedBytes() const
{
    return slabs_.usedBytes();
}

std::uint64_t
Store::lruReorderOps() const
{
    std::uint64_t total = 0;
    for (const auto &policy : policies_)
        total += policy->reorderOps();
    return total;
}

struct Store::RegisteredStats
{
    RegisteredStats(Store *store, stats::StatGroup *parent)
        : group(store->params_.name, parent),
          gets(&group, "gets", "GET operations",
               [store] { return double(store->counters_.gets.load()); }),
          getHits(&group, "getHits", "GETs that found a live item",
                  [store] {
                      return double(store->counters_.getHits.load());
                  }),
          getMisses(&group, "getMisses", "GETs that found nothing",
                    [store] {
                        return double(store->counters_.getMisses.load());
                    }),
          sets(&group, "sets", "store mutations (set/add/replace/cas)",
               [store] { return double(store->counters_.sets.load()); }),
          deletes(&group, "deletes", "delete operations",
                  [store] {
                      return double(store->counters_.deletes.load());
                  }),
          evictions(&group, "evictions", "items evicted for space",
                    [store] {
                        return double(store->counters_.evictions.load());
                    }),
          expired(&group, "expiredReclaimed",
                  "dead items lazily reclaimed",
                  [store] {
                      return double(
                          store->counters_.expiredReclaimed.load());
                  }),
          casMismatches(&group, "casMismatches", "cas token mismatches",
                        [store] {
                            return double(
                                store->counters_.casMismatches.load());
                        }),
          outOfMemory(&group, "outOfMemory",
                      "allocations that failed outright",
                      [store] {
                          return double(
                              store->counters_.outOfMemory.load());
                      }),
          itemCount(&group, "items", "live items resident",
                    [store] { return double(store->itemCount()); }),
          usedBytes(&group, "usedBytes", "bytes of slab memory in use",
                    [store] { return double(store->usedBytes()); }),
          hitRate(&group, "hitRate", "GET hit fraction",
                  [store] {
                      const auto gets = store->counters_.gets.load();
                      return gets ? double(
                                        store->counters_.getHits.load()) /
                                        double(gets)
                                  : 0.0;
                  })
    {}

    stats::StatGroup group;
    stats::Formula gets;
    stats::Formula getHits;
    stats::Formula getMisses;
    stats::Formula sets;
    stats::Formula deletes;
    stats::Formula evictions;
    stats::Formula expired;
    stats::Formula casMismatches;
    stats::Formula outOfMemory;
    stats::Formula itemCount;
    stats::Formula usedBytes;
    stats::Formula hitRate;
};

void
Store::registerStats(stats::StatGroup *parent)
{
    stats_.reset();
    stats_ = std::make_unique<RegisteredStats>(this, parent);
}

Store::~Store() = default;

bool
Store::checkConsistency()
{
    std::lock_guard<std::recursive_mutex> guard(allocMutex_);

    std::size_t linked = 0;
    bool ok = true;
    table_.forEach([&](Item *item) {
        ++linked;
        if (slabs_.pageIndexOf(item) < 0)
            ok = false;
        if (item->slabClass >= slabs_.numClasses())
            ok = false;
        if (Item::totalSize(item->keyLen, item->valueLen) >
            slabs_.chunkSize(item->slabClass)) {
            ok = false;
        }
    });
    if (linked != table_.size())
        ok = false;

    std::size_t tracked = 0;
    for (const auto &policy : policies_)
        tracked += policy->trackedItems();
    if (tracked != linked)
        ok = false;

    return ok;
}

} // namespace mercury::kvstore
