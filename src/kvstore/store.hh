/**
 * @file
 * The memcached-compatible key-value store.
 *
 * Combines the slab allocator, chained hash table and an eviction
 * policy into a store supporting the memcached verb set (get, set,
 * add, replace, cas, delete, incr/decr, touch, flush_all) with lazy
 * TTL expiry.
 *
 * Locking models the two designs the paper compares:
 *  - Global (memcached 1.4): one lock serializes everything,
 *    including the strict-LRU reorder on every GET.
 *  - Striped (memcached 1.6 / Bags): per-stripe hash locks; GETs
 *    under the Bags policy touch no shared list state at all.
 *
 * The store is functional (it really stores bytes); the timing
 * simulator drives it through the *Traced variants, which report the
 * exact structures a request walked so the CPU/memory models can
 * charge time for them.
 */

#ifndef MERCURY_KVSTORE_STORE_HH
#define MERCURY_KVSTORE_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "kvstore/eviction.hh"
#include "kvstore/hash_table.hh"
#include "kvstore/slab.hh"
#include "sim/stats.hh"

namespace mercury::kvstore
{

enum class LockingMode { Global, Striped };

/** Static configuration of a store instance. */
struct StoreParams
{
    std::string name = "store";
    std::uint64_t memLimit = 64 * miB;
    unsigned hashPower = 16;
    EvictionPolicyKind eviction = EvictionPolicyKind::StrictLru;
    LockingMode locking = LockingMode::Global;
    unsigned lockStripes = 16;
    std::uint32_t bagAgeSeconds = 60;
    SlabParams slab{};
};

/** Outcome of mutating commands, matching memcached semantics. */
enum class StoreStatus
{
    Stored,
    NotStored,   ///< add on existing / replace on missing key
    Exists,      ///< cas token mismatch
    NotFound,    ///< delete/cas/incr on missing key
    OutOfMemory, ///< allocation failed and nothing evictable
    BadValue,    ///< incr/decr on non-numeric value
};

/** Result of a get. */
struct GetResult
{
    bool hit = false;
    std::string value;
    std::uint64_t cas = 0;
    std::uint32_t flags = 0;
};

/** What a request touched; consumed by the timing trace generator. */
struct ProbeTrace
{
    /** Bucket head slot that was read. */
    const void *bucketAddr = nullptr;
    /** Host-layout-independent index of that slot (timing layers
     * must map this, not the pointer, to stay deterministic). */
    std::uint64_t bucketIndex = 0;
    /** Headers of chain items inspected, in walk order. */
    std::vector<const void *> chainItems;
    /** The item finally operated on (hit item / new item). */
    const void *itemAddr = nullptr;
    /** Value length of the item operated on. */
    std::uint32_t valueLen = 0;
    /** Headers of items evicted to make room. */
    std::vector<const void *> evictedItems;
    bool hit = false;
};

/** Operation counters; readable without locks. */
struct StoreCounters
{
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> getHits{0};
    std::atomic<std::uint64_t> getMisses{0};
    std::atomic<std::uint64_t> sets{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> expiredReclaimed{0};
    std::atomic<std::uint64_t> casMismatches{0};
    std::atomic<std::uint64_t> outOfMemory{0};
};

class Store
{
  public:
    explicit Store(const StoreParams &params);
    ~Store();

    Store(const Store &) = delete;
    Store &operator=(const Store &) = delete;

    // --- The memcached verb set -------------------------------------

    GetResult get(std::string_view key);

    StoreStatus set(std::string_view key, std::string_view value,
                    std::uint32_t flags = 0, std::uint32_t ttl = 0);

    /** Store only if the key does not exist. */
    StoreStatus add(std::string_view key, std::string_view value,
                    std::uint32_t flags = 0, std::uint32_t ttl = 0);

    /** Store only if the key exists. */
    StoreStatus replace(std::string_view key, std::string_view value,
                        std::uint32_t flags = 0, std::uint32_t ttl = 0);

    /** Store only if the caller holds the current cas token. */
    StoreStatus cas(std::string_view key, std::string_view value,
                    std::uint64_t cas_token, std::uint32_t flags = 0,
                    std::uint32_t ttl = 0);

    /** Concatenate after an existing value (flags/TTL preserved). */
    StoreStatus append(std::string_view key, std::string_view value);

    /** Concatenate before an existing value. */
    StoreStatus prepend(std::string_view key, std::string_view value);

    StoreStatus remove(std::string_view key);

    /** Numeric increment; returns the new value through @p out. */
    StoreStatus incr(std::string_view key, std::uint64_t delta,
                     std::uint64_t &out);

    StoreStatus decr(std::string_view key, std::uint64_t delta,
                     std::uint64_t &out);

    /** Update TTL without touching the value. */
    StoreStatus touch(std::string_view key, std::uint32_t ttl);

    /** Invalidate everything stored so far (lazy reclamation). */
    void flushAll();

    // --- Traced variants for the timing simulator -------------------

    GetResult getTraced(std::string_view key, ProbeTrace &trace);

    StoreStatus setTraced(std::string_view key, std::string_view value,
                          std::uint32_t flags, std::uint32_t ttl,
                          ProbeTrace &trace);

    // --- Clock & housekeeping ----------------------------------------

    /** Advance the store clock (seconds since start). */
    void setClock(std::uint32_t seconds);

    std::uint32_t clock() const { return clock_.load(); }

    /** Run eviction-policy aging and reclaim a few dead items. */
    void housekeeping(unsigned reap_limit = 64);

    // --- Introspection ------------------------------------------------

    std::size_t itemCount() const;
    std::uint64_t usedBytes() const;
    std::uint64_t memLimit() const { return params_.memLimit; }
    const StoreCounters &counters() const { return counters_; }
    const SlabAllocator &slabs() const { return slabs_; }
    const HashTable &table() const { return table_; }
    const StoreParams &params() const { return params_; }

    /** Sum of reorder ops across class policies (contention proxy). */
    std::uint64_t lruReorderOps() const;

    /**
     * Publish the op counters into a stats registry as formula
     * stats under a group named after this store. Idempotent: a
     * second call replaces the previous registration.
     */
    void registerStats(stats::StatGroup *parent);

    /** Verify internal invariants (test hook): every linked item is
     * tracked by exactly one policy, accounting matches, etc. */
    bool checkConsistency();

  private:
    struct StripeLock;

    bool itemDead(const Item *item) const;

    /** Allocate a chunk for a class, evicting as needed.
     * @pre alloc lock held. */
    void *allocateWithEviction(unsigned cls, ProbeTrace *trace);

    /** Unlink + free an item. @pre alloc lock (or global) held. */
    void destroyItem(Item *item);

    Item *buildItem(void *chunk, unsigned cls, std::string_view key,
                    std::string_view value, std::uint32_t flags,
                    std::uint32_t ttl);

    StoreStatus storeInternal(std::string_view key,
                              std::string_view value,
                              std::uint32_t flags, std::uint32_t ttl,
                              int mode, std::uint64_t cas_token,
                              ProbeTrace *trace);

    StoreStatus arith(std::string_view key, std::uint64_t delta,
                      bool increment, std::uint64_t &out);

    StoreStatus concat(std::string_view key, std::string_view value,
                       bool after);

    std::uint32_t expiryFor(std::uint32_t ttl) const;

    unsigned stripeOf(std::uint64_t hash) const;

    StoreParams params_;
    SlabAllocator slabs_;
    HashTable table_;
    std::vector<std::unique_ptr<EvictionPolicy>> policies_;

    /** Serializes all mutations (and everything, in Global mode). */
    std::recursive_mutex allocMutex_;
    /** Hash stripes; recursive so eviction may revisit the held
     * stripe (mutations are already serialized by allocMutex_). */
    std::vector<std::unique_ptr<std::recursive_mutex>> stripes_;

    std::atomic<std::uint32_t> clock_{0};
    std::atomic<std::uint64_t> casCounter_{0};
    /** Items with casId <= flushCas_ are dead. */
    std::atomic<std::uint64_t> flushCas_{0};

    StoreCounters counters_;

    /** Registry bridge built by registerStats(). */
    struct RegisteredStats;
    std::unique_ptr<RegisteredStats> stats_;
};

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_STORE_HH
