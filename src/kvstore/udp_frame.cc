#include "kvstore/udp_frame.hh"

#include "sim/logging.hh"

namespace mercury::kvstore
{

namespace
{

void
push16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v));
}

std::uint16_t
read16(std::string_view in, std::size_t offset)
{
    return static_cast<std::uint16_t>(
        (static_cast<std::uint8_t>(in[offset]) << 8) |
        static_cast<std::uint8_t>(in[offset + 1]));
}

} // anonymous namespace

std::size_t
udpDatagramCount(std::size_t payload_bytes)
{
    return payload_bytes == 0
               ? 1
               : (payload_bytes + udpMaxPayload - 1) / udpMaxPayload;
}

std::vector<std::string>
udpFrame(std::uint16_t request_id, std::string_view payload)
{
    const std::size_t fragments = udpDatagramCount(payload.size());
    mercury_assert(fragments <= 0xffff,
                   "payload too large for UDP framing");

    std::vector<std::string> datagrams;
    datagrams.reserve(fragments);
    for (std::size_t i = 0; i < fragments; ++i) {
        std::string d;
        push16(d, request_id);
        push16(d, static_cast<std::uint16_t>(i));
        push16(d, static_cast<std::uint16_t>(fragments));
        push16(d, 0);
        d.append(payload.substr(i * udpMaxPayload,
                                udpMaxPayload));
        datagrams.push_back(std::move(d));
    }
    return datagrams;
}

std::vector<std::string>
udpFrameBatch(std::uint16_t first_request_id,
              const std::vector<std::string> &payloads)
{
    std::vector<std::string> datagrams;
    std::uint16_t id = first_request_id;
    for (const std::string &payload : payloads) {
        std::vector<std::string> framed = udpFrame(id++, payload);
        for (std::string &d : framed)
            datagrams.push_back(std::move(d));
    }
    return datagrams;
}

std::optional<std::pair<UdpFrameHeader, std::string_view>>
udpUnframe(std::string_view datagram)
{
    if (datagram.size() < UdpFrameHeader::bytes)
        return std::nullopt;
    UdpFrameHeader header;
    header.requestId = read16(datagram, 0);
    header.sequence = read16(datagram, 2);
    header.total = read16(datagram, 4);
    header.reserved = read16(datagram, 6);
    if (header.total == 0 || header.sequence >= header.total)
        return std::nullopt;
    return std::make_pair(header,
                          datagram.substr(UdpFrameHeader::bytes));
}

std::optional<std::string>
UdpReassembler::feed(std::string_view datagram)
{
    const auto parsed = udpUnframe(datagram);
    if (!parsed)
        return std::nullopt;
    const auto &[header, payload] = *parsed;

    if (header.total == 1) {
        pending_.erase(header.requestId);
        return std::string(payload);
    }

    Partial &partial = pending_[header.requestId];
    if (partial.fragments.empty())
        partial.fragments.resize(header.total);
    if (header.total != partial.fragments.size()) {
        // Inconsistent framing: restart the request.
        partial = Partial{};
        partial.fragments.resize(header.total);
    }
    if (partial.fragments[header.sequence].empty()) {
        partial.fragments[header.sequence] = std::string(payload);
        ++partial.received;
    }

    if (partial.received < partial.fragments.size())
        return std::nullopt;

    std::string full;
    for (const std::string &fragment : partial.fragments)
        full += fragment;
    pending_.erase(header.requestId);
    return full;
}

void
UdpReassembler::forget(std::uint16_t request_id)
{
    pending_.erase(request_id);
}

} // namespace mercury::kvstore
