/**
 * @file
 * Memcached UDP frame codec.
 *
 * Memcached's UDP mode prefixes every datagram with an 8-byte frame
 * header: request id (16b), sequence number (16b), datagram count
 * (16b) and a reserved field (16b). Large responses are split across
 * datagrams; the client reassembles by (request id, sequence). This
 * is the transport Facebook used for GETs, and the one the
 * ServerModel's udpGets mode represents.
 */

#ifndef MERCURY_KVSTORE_UDP_FRAME_HH
#define MERCURY_KVSTORE_UDP_FRAME_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mercury::kvstore
{

struct UdpFrameHeader
{
    std::uint16_t requestId = 0;
    std::uint16_t sequence = 0;
    std::uint16_t total = 1;
    std::uint16_t reserved = 0;

    static constexpr std::size_t bytes = 8;
};

/** Maximum payload per datagram (1400 B, memcached's default). */
constexpr std::size_t udpMaxPayload = 1400;

/** Number of datagrams udpFrame would emit for a payload, without
 * building them. Timing models (the kernel-bypass datapath, the
 * on-NIC GET cache response path) use this to count packets. */
std::size_t udpDatagramCount(std::size_t payload_bytes);

/** Split a response into framed datagrams for one request id. */
std::vector<std::string> udpFrame(std::uint16_t request_id,
                                  std::string_view payload);

/**
 * Frame a TX batch: consecutive request ids starting at
 * @p first_request_id, one per payload, datagrams concatenated in
 * submission order (the order a batched poll-mode driver publishes
 * descriptors). UdpReassembler handles the interleaving.
 */
std::vector<std::string>
udpFrameBatch(std::uint16_t first_request_id,
              const std::vector<std::string> &payloads);

/** Parse one datagram into header + payload view.
 * @return nullopt if the datagram is shorter than a header. */
std::optional<std::pair<UdpFrameHeader, std::string_view>>
udpUnframe(std::string_view datagram);

/**
 * Client-side reassembler: feed datagrams (possibly out of order),
 * get the full payload once every fragment of a request arrived.
 */
class UdpReassembler
{
  public:
    /** Feed one datagram.
     * @return the complete payload if this datagram finished its
     *         request, otherwise nullopt. */
    std::optional<std::string> feed(std::string_view datagram);

    /** Requests currently awaiting fragments. */
    std::size_t pending() const { return pending_.size(); }

    /** Drop partial state for a request (timeout handling). */
    void forget(std::uint16_t request_id);

  private:
    struct Partial
    {
        std::vector<std::string> fragments;
        std::size_t received = 0;
    };

    std::map<std::uint16_t, Partial> pending_;
};

} // namespace mercury::kvstore

#endif // MERCURY_KVSTORE_UDP_FRAME_HH
