#include "mem/cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace mercury::mem
{

SetAssocCache::SetAssocCache(const CacheParams &params)
    : params_(params)
{
    mercury_assert(params_.lineBytes > 0 &&
                   std::has_single_bit(params_.lineBytes),
                   "cache line size must be a power of two");
    mercury_assert(params_.assoc > 0, "cache needs associativity >= 1");
    mercury_assert(params_.sizeBytes %
                   (params_.lineBytes * params_.assoc) == 0,
                   "cache size must be a whole number of sets");

    numSets_ = static_cast<unsigned>(
        params_.sizeBytes / (params_.lineBytes * params_.assoc));
    mercury_assert(numSets_ > 0, "cache must have at least one set");
    lines_.resize(static_cast<std::size_t>(numSets_) * params_.assoc);
}

std::uint64_t
SetAssocCache::lineAddr(Addr addr) const
{
    return addr / params_.lineBytes;
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return lineAddr(addr) % numSets_;
}

std::uint64_t
SetAssocCache::tagOf(Addr addr) const
{
    return lineAddr(addr) / numSets_;
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    const std::uint64_t tag = tagOf(addr);
    Line *set = &lines_[setIndex(addr) * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (set[way].valid && set[way].tag == tag)
            return &set[way];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

bool
SetAssocCache::lookup(Addr addr)
{
    Line *line = findLine(addr);
    if (!line)
        return false;
    line->lruStamp = nextStamp_++;
    return true;
}

bool
SetAssocCache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

std::optional<Victim>
SetAssocCache::insert(Addr addr, bool dirty)
{
    Line *set = &lines_[setIndex(addr) * params_.assoc];
    const std::uint64_t tag = tagOf(addr);

    // Already present: just refresh.
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (set[way].valid && set[way].tag == tag) {
            set[way].lruStamp = nextStamp_++;
            set[way].dirty = set[way].dirty || dirty;
            return std::nullopt;
        }
    }

    // Prefer an invalid way; otherwise evict true-LRU.
    Line *victim_line = &set[0];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (!set[way].valid) {
            victim_line = &set[way];
            break;
        }
        if (set[way].lruStamp < victim_line->lruStamp)
            victim_line = &set[way];
    }

    std::optional<Victim> victim;
    if (victim_line->valid) {
        const std::uint64_t victim_line_number =
            victim_line->tag * numSets_ + setIndex(addr);
        victim = Victim{victim_line_number * params_.lineBytes,
                        victim_line->dirty};
    }

    victim_line->valid = true;
    victim_line->dirty = dirty;
    victim_line->tag = tag;
    victim_line->lruStamp = nextStamp_++;
    return victim;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    Line *line = findLine(addr);
    if (!line)
        return false;
    line->dirty = true;
    return true;
}

void
SetAssocCache::invalidate(Addr addr)
{
    Line *line = findLine(addr);
    if (line)
        line->valid = false;
}

void
SetAssocCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               MemDevice *memory,
                               stats::StatGroup *parent)
    : SimObject(params.name), params_(params), memory_(memory),
      l1i_(params.l1i), l1d_(params.l1d),
      statGroup_(params.name, parent),
      l1iHits_(&statGroup_, "l1iHits", "L1I hits"),
      l1iMisses_(&statGroup_, "l1iMisses", "L1I misses"),
      l1dHits_(&statGroup_, "l1dHits", "L1D hits"),
      l1dMisses_(&statGroup_, "l1dMisses", "L1D misses"),
      l2Hits_(&statGroup_, "l2Hits", "L2 hits"),
      l2Misses_(&statGroup_, "l2Misses", "L2 misses"),
      writebacks_(&statGroup_, "writebacks", "dirty lines written back"),
      memAccesses_(&statGroup_, "memAccesses",
                   "demand accesses reaching memory")
{
    mercury_assert(memory_ != nullptr, "hierarchy needs a memory device");
    if (params_.hasL2)
        l2_.emplace(params_.l2);
}

AccessResult
CacheHierarchy::fillFromBelow(Addr line_addr, bool store, Tick now)
{
    const unsigned line_bytes = params_.l1d.lineBytes;

    if (l2_) {
        const Tick after_l2 = now + params_.l2.hitLatency;
        if (l2_->lookup(line_addr)) {
            ++l2Hits_;
            if (store)
                l2_->markDirty(line_addr);
            return {after_l2, ServicedBy::L2};
        }
        ++l2Misses_;
        ++memAccesses_;
        const Tick mem_done = memory_->access(AccessType::Read, line_addr,
                                              line_bytes, after_l2);
        auto victim = l2_->insert(line_addr, store);
        if (victim && victim->dirty) {
            ++writebacks_;
            // Off the critical path: occupies the device after the
            // demand fill completes.
            memory_->access(AccessType::Write, victim->lineAddr,
                            line_bytes, mem_done);
        }
        return {mem_done, ServicedBy::Memory};
    }

    ++memAccesses_;
    const Tick mem_done = memory_->access(AccessType::Read, line_addr,
                                          line_bytes, now);
    return {mem_done, ServicedBy::Memory};
}

AccessResult
CacheHierarchy::access(CpuAccessKind kind, Addr addr, Tick now)
{
    SetAssocCache &l1 = kind == CpuAccessKind::IFetch ? l1i_ : l1d_;
    stats::Scalar &hits =
        kind == CpuAccessKind::IFetch ? l1iHits_ : l1dHits_;
    stats::Scalar &misses =
        kind == CpuAccessKind::IFetch ? l1iMisses_ : l1dMisses_;

    const bool store = kind == CpuAccessKind::Store;
    const bool dirtying = store && !params_.writeThroughStores;
    const Tick after_l1 = now + l1.params().hitLatency;

    if (l1.lookup(addr)) {
        ++hits;
        if (dirtying)
            l1.markDirty(addr);
        if (store && params_.writeThroughStores) {
            ++memAccesses_;
            const Tick done = memory_->access(
                AccessType::Write, addr, l1.params().lineBytes,
                after_l1);
            return {done, ServicedBy::Memory};
        }
        return {after_l1, ServicedBy::L1};
    }

    ++misses;
    if (store && params_.writeThroughStores) {
        // No write-allocate in write-through mode: the store goes
        // straight to the device.
        ++memAccesses_;
        const Tick done = memory_->access(AccessType::Write, addr,
                                          l1.params().lineBytes,
                                          after_l1);
        return {done, ServicedBy::Memory};
    }
    AccessResult below = fillFromBelow(addr, store, after_l1);

    auto victim = l1.insert(addr, store);
    if (victim && victim->dirty) {
        ++writebacks_;
        if (l2_) {
            l2_->insert(victim->lineAddr, true);
        } else {
            memory_->access(AccessType::Write, victim->lineAddr,
                            l1.params().lineBytes, below.completion);
        }
    }

    return below;
}

void
CacheHierarchy::flushAll()
{
    l1i_.flush();
    l1d_.flush();
    if (l2_)
        l2_->flush();
}

double
CacheHierarchy::l1iMissRate() const
{
    const double total = l1iHits_.value() + l1iMisses_.value();
    return total > 0.0 ? l1iMisses_.value() / total : 0.0;
}

double
CacheHierarchy::l1dMissRate() const
{
    const double total = l1dHits_.value() + l1dMisses_.value();
    return total > 0.0 ? l1dMisses_.value() / total : 0.0;
}

double
CacheHierarchy::l2MissRate() const
{
    const double total = l2Hits_.value() + l2Misses_.value();
    return total > 0.0 ? l2Misses_.value() / total : 0.0;
}

void
CacheHierarchy::reset()
{
    statGroup_.resetStats();
}

} // namespace mercury::mem
