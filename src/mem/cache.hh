/**
 * @file
 * Set-associative cache model and a two/three-level hierarchy.
 *
 * The hierarchy is the one the paper sweeps: split 32 KiB L1I/L1D per
 * core, with an optional unified 2 MB L2. Mercury configurations drop
 * the L2 entirely (Sec. 4.1.3) while Iridium requires it to hold the
 * instruction footprint in front of flash (Sec. 4.2.1).
 */

#ifndef MERCURY_MEM_CACHE_HH
#define MERCURY_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/mem_device.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::mem
{

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * kiB;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    /** Lookup/hit latency of this level. */
    Tick hitLatency = 1 * tickNs;
};

/** A line evicted to make room for a fill. */
struct Victim
{
    Addr lineAddr;
    bool dirty;
};

/**
 * A single set-associative cache array with true-LRU replacement.
 *
 * Tag state only; the simulator never stores data in caches (the
 * functional key-value store holds real data natively).
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /** Probe for a line; updates LRU on hit. */
    bool lookup(Addr addr);

    /** Probe without disturbing replacement state. */
    bool contains(Addr addr) const;

    /**
     * Install the line containing addr.
     *
     * @return the displaced line, if a valid line was evicted.
     */
    std::optional<Victim> insert(Addr addr, bool dirty);

    /** Mark a (present) line dirty; returns false if absent. */
    bool markDirty(Addr addr);

    /** Remove a line if present (used for invalidations). */
    void invalidate(Addr addr);

    /** Drop all lines. */
    void flush();

    const CacheParams &params() const { return params_; }

    unsigned numSets() const { return numSets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t lineAddr(Addr addr) const;
    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    CacheParams params_;
    unsigned numSets_;
    std::uint64_t nextStamp_ = 1;
    std::vector<Line> lines_;
};

/** Kind of access issued by a core. */
enum class CpuAccessKind { IFetch, Load, Store };

/** Where in the hierarchy an access was serviced. */
enum class ServicedBy { L1, L2, Memory };

/** Timing outcome of one hierarchy access. */
struct AccessResult
{
    /** Absolute completion tick. */
    Tick completion;
    ServicedBy source;
};

/** Configuration of a core's cache hierarchy. */
struct HierarchyParams
{
    std::string name = "caches";
    CacheParams l1i{"l1i", 32 * kiB, 2, 64, 1 * tickNs};
    CacheParams l1d{"l1d", 32 * kiB, 4, 64, 1 * tickNs};
    /** Present only when hasL2 is true. */
    bool hasL2 = false;
    CacheParams l2{"l2", 2 * miB, 8, 64, 20 * tickNs};

    /**
     * Write-through stores: every store is also forwarded to the
     * backing device synchronously and lines are never dirty. Used
     * for the Iridium stack, where there is no DRAM to hold dirty
     * state and every persistent write must program flash.
     */
    bool writeThroughStores = false;
};

/**
 * Per-core cache hierarchy in front of a shared memory device.
 *
 * Write-back, write-allocate. Dirty victims are written to the next
 * level off the critical path (the writeback occupies the memory
 * device but does not extend the triggering access).
 */
class CacheHierarchy : public SimObject
{
  public:
    CacheHierarchy(const HierarchyParams &params, MemDevice *memory,
                   stats::StatGroup *parent = nullptr);

    /** Issue one access at absolute tick @p now. */
    AccessResult access(CpuAccessKind kind, Addr addr, Tick now);

    /** Drop all cached state (e.g. between measurement phases). */
    void flushAll();

    bool hasL2() const { return params_.hasL2; }

    const HierarchyParams &params() const { return params_; }

    double l1iMissRate() const;
    double l1dMissRate() const;
    double l2MissRate() const;

    Counter memoryAccesses() const
    {
        return static_cast<Counter>(memAccesses_.value());
    }

    void reset() override;

  private:
    /** Service a miss from the level below L1. */
    AccessResult fillFromBelow(Addr line_addr, bool store, Tick now);

    HierarchyParams params_;
    MemDevice *memory_;

    SetAssocCache l1i_;
    SetAssocCache l1d_;
    std::optional<SetAssocCache> l2_;

    stats::StatGroup statGroup_;
    stats::Scalar l1iHits_;
    stats::Scalar l1iMisses_;
    stats::Scalar l1dHits_;
    stats::Scalar l1dMisses_;
    stats::Scalar l2Hits_;
    stats::Scalar l2Misses_;
    stats::Scalar writebacks_;
    stats::Scalar memAccesses_;
};

} // namespace mercury::mem

#endif // MERCURY_MEM_CACHE_HH
