#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::mem
{

DramModel::DramModel(const DramParams &params, stats::StatGroup *parent)
    : MemDevice(params.name), params_(params),
      statGroup_(params.name, parent),
      readCount_(&statGroup_, "reads", "read accesses"),
      writeCount_(&statGroup_, "writes", "write accesses"),
      bytesRead_(&statGroup_, "bytesRead", "bytes read"),
      bytesWritten_(&statGroup_, "bytesWritten", "bytes written"),
      rowHits_(&statGroup_, "rowHits", "open-row hits"),
      rowMisses_(&statGroup_, "rowMisses", "row activations"),
      portQueueTicks_(&statGroup_, "portQueueTicks",
                      "ticks spent queued behind busy ports/banks"),
      refreshStallTicks_(&statGroup_, "refreshStallTicks",
                         "ticks stalled behind refresh windows")
{
    mercury_assert(params_.numPorts > 0, "DRAM needs at least one port");
    mercury_assert(params_.banksPerPort > 0,
                   "DRAM needs at least one bank per port");
    mercury_assert(params_.capacity % params_.numPorts == 0,
                   "capacity must divide evenly across ports");

    portSize_ = params_.capacity / params_.numPorts;
    bankSize_ = portSize_ / params_.banksPerPort;
    mercury_assert(bankSize_ >= params_.rowBytes,
                   "bank smaller than one row");

    ports_.resize(params_.numPorts);
    for (auto &port : ports_)
        port.banks.resize(params_.banksPerPort);
}

unsigned
DramModel::portIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / portSize_) % params_.numPorts);
}

unsigned
DramModel::bankIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / bankSize_) %
                                 params_.banksPerPort);
}

std::int64_t
DramModel::rowIndex(Addr addr) const
{
    return static_cast<std::int64_t>(addr / params_.rowBytes);
}

Tick
DramModel::transferTime(unsigned size) const
{
    const double seconds =
        static_cast<double>(size) / params_.portBandwidth;
    return std::max<Tick>(1, secondsToTicks(seconds));
}

Tick
DramModel::access(AccessType type, Addr addr, unsigned size, Tick now)
{
    mercury_assert(size > 0, "zero-size DRAM access");
    addr %= params_.capacity;

    Port &port = ports_[portIndex(addr)];
    Bank &bank = port.banks[bankIndex(addr)];

    // Bank-level parallelism: an access only waits for its own bank;
    // the shared port pins are occupied just for the data transfer.
    Tick start = std::max(now, bank.busyUntil);

    if (params_.modelRefresh) {
        // All-bank refresh blackout windows at every tREFI.
        const Tick within = start % params_.refreshInterval;
        if (within < params_.refreshDuration) {
            const Tick delay = params_.refreshDuration - within;
            start += delay;
            refreshStallTicks_ += static_cast<double>(delay);
        }
    }

    Tick array_latency;
    const std::int64_t row = rowIndex(addr);
    if (params_.pagePolicy == PagePolicy::Open && bank.openRow == row) {
        array_latency = params_.rowHitLatency;
        ++rowHits_;
    } else {
        array_latency = params_.arrayLatency;
        ++rowMisses_;
        bank.openRow = params_.pagePolicy == PagePolicy::Open ? row : -1;
    }

    const Tick transfer = transferTime(size);
    const Tick transfer_start =
        std::max(start + array_latency, port.busyUntil);
    const Tick done = transfer_start + transfer;
    portQueueTicks_ += static_cast<double>(transfer_start - now);

    bank.busyUntil = done;
    port.busyUntil = done;

    if (type == AccessType::Read) {
        ++readCount_;
        bytesRead_ += static_cast<double>(size);
    } else {
        ++writeCount_;
        bytesWritten_ += static_cast<double>(size);
    }

    return done;
}

Tick
DramModel::idleReadLatency() const
{
    return params_.arrayLatency + transferTime(64);
}

double
DramModel::peakBandwidth() const
{
    return params_.portBandwidth * params_.numPorts;
}

std::uint64_t
DramModel::bytesTransferred() const
{
    return static_cast<std::uint64_t>(bytesRead_.value() +
                                      bytesWritten_.value());
}

double
DramModel::rowHitRate() const
{
    const double total = rowHits_.value() + rowMisses_.value();
    return total > 0.0 ? rowHits_.value() / total : 0.0;
}

void
DramModel::reset()
{
    statGroup_.resetStats();
    for (auto &port : ports_) {
        port.busyUntil = 0;
        for (auto &bank : port.banks) {
            bank.busyUntil = 0;
            bank.openRow = -1;
        }
    }
}

DramParams
stackedDramParams()
{
    DramParams p;
    p.name = "stackedDram";
    p.numPorts = 16;
    p.banksPerPort = 8;
    p.capacity = 4 * giB;
    p.rowBytes = 1024;
    p.arrayLatency = 11 * tickNs;
    p.rowHitLatency = 4 * tickNs;
    p.portBandwidth = 6.25e9;
    p.pagePolicy = PagePolicy::Closed;
    return p;
}

DramParams
ddr3Params()
{
    DramParams p;
    p.name = "ddr3";
    p.numPorts = 1;
    p.banksPerPort = 8;
    p.capacity = 2 * giB;
    p.rowBytes = 8192;
    p.arrayLatency = 50 * tickNs;
    p.rowHitLatency = 15 * tickNs;
    p.portBandwidth = 10.7e9;
    p.pagePolicy = PagePolicy::Open;
    return p;
}

DramParams
ddr4Params()
{
    DramParams p = ddr3Params();
    p.name = "ddr4";
    p.arrayLatency = 46 * tickNs;
    p.rowHitLatency = 14 * tickNs;
    p.portBandwidth = 21.3e9;
    return p;
}

DramParams
lpddr3Params()
{
    DramParams p;
    p.name = "lpddr3";
    p.numPorts = 1;
    p.banksPerPort = 8;
    p.capacity = 512 * miB;
    p.rowBytes = 4096;
    p.arrayLatency = 60 * tickNs;
    p.rowHitLatency = 18 * tickNs;
    p.portBandwidth = 6.4e9;
    p.pagePolicy = PagePolicy::Open;
    return p;
}

DramParams
hmc1Params()
{
    DramParams p;
    p.name = "hmc1";
    p.numPorts = 16;
    p.banksPerPort = 16;
    p.capacity = 512 * miB;
    p.rowBytes = 256;
    p.arrayLatency = 15 * tickNs;
    p.rowHitLatency = 6 * tickNs;
    p.portBandwidth = 8.0e9;
    p.pagePolicy = PagePolicy::Closed;
    return p;
}

DramParams
wideIoParams()
{
    DramParams p;
    p.name = "wideIo";
    p.numPorts = 4;
    p.banksPerPort = 4;
    p.capacity = 512 * miB;
    p.rowBytes = 2048;
    p.arrayLatency = 25 * tickNs;
    p.rowHitLatency = 10 * tickNs;
    p.portBandwidth = 3.2e9;
    p.pagePolicy = PagePolicy::Closed;
    return p;
}

DramParams
octopusParams()
{
    DramParams p;
    p.name = "octopus";
    p.numPorts = 8;
    p.banksPerPort = 8;
    p.capacity = 512 * miB;
    p.rowBytes = 1024;
    p.arrayLatency = 12 * tickNs;
    p.rowHitLatency = 5 * tickNs;
    p.portBandwidth = 6.25e9;
    p.pagePolicy = PagePolicy::Closed;
    return p;
}

} // namespace mercury::mem
