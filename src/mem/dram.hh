/**
 * @file
 * Parametric DRAM timing model.
 *
 * One model covers both the Tezzaron-style 3D-stacked DRAM used in
 * Mercury (16 independent 128-bit ports, 8 banks each, closed-page
 * access in 11 cycles at 1 GHz, 6.25 GB/s per port) and conventional
 * DIMM parts (DDR3/DDR4/LPDDR3) used by the baseline server, via the
 * preset factories at the bottom of this header. The paper's Table 2
 * catalog is expressed directly as these presets.
 */

#ifndef MERCURY_MEM_DRAM_HH
#define MERCURY_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/mem_device.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::mem
{

/** Row-buffer management policy. */
enum class PagePolicy
{
    /** Precharge after every access; every access pays full array
     * latency. The paper's worst-case assumption (Sec. 5.2). */
    Closed,
    /** Leave rows open; row hits pay only column access time. */
    Open,
};

/** Static configuration of a DramModel. */
struct DramParams
{
    std::string name = "dram";

    /** Independent ports/channels; each serves a contiguous slice of
     * the address space. */
    unsigned numPorts = 16;

    /** Banks behind each port. */
    unsigned banksPerPort = 8;

    /** Total device capacity. */
    std::uint64_t capacity = 4 * giB;

    /** DRAM row (page) size per bank; 8 kb rows = 1 KiB. */
    unsigned rowBytes = 1024;

    /** Closed-page array access latency (activate+read+precharge). */
    Tick arrayLatency = 11 * tickNs;

    /** Column access latency for an open-row hit. */
    Tick rowHitLatency = 4 * tickNs;

    /** Peak transfer bandwidth per port, bytes per second. */
    double portBandwidth = 6.25e9;

    PagePolicy pagePolicy = PagePolicy::Closed;

    /** Model all-bank refresh: every refreshInterval (tREFI) the
     * device is unavailable for refreshDuration (tRFC). Off by
     * default to match the paper's memory model. */
    bool modelRefresh = false;
    Tick refreshInterval = 7800 * tickNs;
    Tick refreshDuration = 350 * tickNs;
};

/**
 * Busy-until DRAM timing model with per-bank state and per-port
 * transfer occupancy.
 */
class DramModel : public MemDevice
{
  public:
    explicit DramModel(const DramParams &params,
                       stats::StatGroup *parent = nullptr);

    Tick access(AccessType type, Addr addr, unsigned size,
                Tick now) override;

    std::uint64_t capacityBytes() const override
    {
        return params_.capacity;
    }

    Tick idleReadLatency() const override;

    const DramParams &params() const { return params_; }

    /** Peak bandwidth across all ports, bytes/second. */
    double peakBandwidth() const;

    /** Bytes transferred so far (reads + writes). */
    std::uint64_t bytesTransferred() const;

    /** Per-request statistics. */
    const stats::StatGroup &statGroup() const { return statGroup_; }

    double rowHitRate() const;

    void reset() override;

  private:
    struct Bank
    {
        Tick busyUntil = 0;
        std::int64_t openRow = -1;
    };

    struct Port
    {
        Tick busyUntil = 0;
        std::vector<Bank> banks;
    };

    unsigned portIndex(Addr addr) const;
    unsigned bankIndex(Addr addr) const;
    std::int64_t rowIndex(Addr addr) const;
    Tick transferTime(unsigned size) const;

    DramParams params_;
    std::uint64_t portSize_;
    std::uint64_t bankSize_;
    std::vector<Port> ports_;

    stats::StatGroup statGroup_;
    stats::Scalar readCount_;
    stats::Scalar writeCount_;
    stats::Scalar bytesRead_;
    stats::Scalar bytesWritten_;
    stats::Scalar rowHits_;
    stats::Scalar rowMisses_;
    stats::Scalar portQueueTicks_;
    stats::Scalar refreshStallTicks_;
};

/** Tezzaron-style 3D-stacked DRAM, 4 GB (paper Sec. 4.1.1). */
DramParams stackedDramParams();

/** DDR3-1333 DIMM: 10.7 GB/s, 2 GB per DIMM (paper Table 2). */
DramParams ddr3Params();

/** DDR4-2667 DIMM: 21.3 GB/s, 2 GB (paper Table 2). */
DramParams ddr4Params();

/** LPDDR3: 6.4 GB/s, 512 MB (paper Table 2). */
DramParams lpddr3Params();

/** HMC-I 3D stack: 128 GB/s, 512 MB (paper Table 2). */
DramParams hmc1Params();

/** Wide I/O 3D stack: 12.8 GB/s, 512 MB (paper Table 2). */
DramParams wideIoParams();

/** Tezzaron Octopus 3D stack: 50 GB/s, 512 MB (paper Table 2). */
DramParams octopusParams();

} // namespace mercury::mem

#endif // MERCURY_MEM_DRAM_HH
