#include "mem/flash.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::mem
{

Ftl::Ftl(std::uint64_t phys_pages, unsigned pages_per_block,
         double overprovision, unsigned gc_low_water,
         unsigned wear_threshold)
    : physPages_(phys_pages), pagesPerBlock_(pages_per_block),
      gcLowWater_(gc_low_water), wearThreshold_(wear_threshold)
{
    MERCURY_EXPECTS(pagesPerBlock_ > 0,
                    "pagesPerBlock must be positive");
    MERCURY_EXPECTS(physPages_ >= pagesPerBlock_ * (gcLowWater_ + 2),
                    "flash channel too small for GC headroom");
    MERCURY_EXPECTS(overprovision > 0.0 && overprovision < 1.0,
                    "overprovision must be in (0,1)");

    numBlocks_ = physPages_ / pagesPerBlock_;
    physPages_ = numBlocks_ * pagesPerBlock_;

    logicalPages_ = static_cast<std::uint64_t>(
        static_cast<double>(physPages_) * (1.0 - overprovision));
    // Keep at least gcLowWater_+2 blocks of hard slack.
    const std::uint64_t max_logical =
        physPages_ - pagesPerBlock_ * (gcLowWater_ + 2);
    logicalPages_ = std::min(logicalPages_, max_logical);

    map_.assign(logicalPages_, unmapped);
    reverse_.assign(physPages_, unmapped);
    validCount_.assign(numBlocks_, 0);
    eraseCount_.assign(numBlocks_, 0);
    blockFree_.assign(numBlocks_, true);
    blockRetired_.assign(numBlocks_, false);
    pendingRetire_.assign(numBlocks_, false);
    for (std::uint64_t b = 0; b < numBlocks_; ++b)
        freeBlocks_.push_back(b);

    const std::uint64_t logical_blocks =
        (logicalPages_ + pagesPerBlock_ - 1) / pagesPerBlock_;
    minLiveBlocks_ = logical_blocks + gcLowWater_ + 2;
}

void
Ftl::setFaultInjection(fault::FaultInjector *injector,
                       double program_fail_probability,
                       double erase_fail_probability,
                       std::string target)
{
    faults_ = injector;
    programFailP_ = program_fail_probability;
    eraseFailP_ = erase_fail_probability;
    faultTarget_ = std::move(target);
}

bool
Ftl::canRetire() const
{
    return numBlocks_ - retiredBlocks_ > minLiveBlocks_;
}

double
Ftl::capacityLossFraction() const
{
    return static_cast<double>(retiredBlocks_) /
           static_cast<double>(numBlocks_);
}

std::uint64_t
Ftl::spareBlocksRemaining() const
{
    const std::uint64_t live = numBlocks_ - retiredBlocks_;
    return live > minLiveBlocks_ ? live - minLiveBlocks_ : 0;
}

bool
Ftl::isMapped(std::uint64_t lpn) const
{
    MERCURY_EXPECTS(lpn < logicalPages_, "lpn out of range: ", lpn);
    return map_[lpn] != unmapped;
}

std::uint64_t
Ftl::translate(std::uint64_t lpn) const
{
    MERCURY_EXPECTS(isMapped(lpn), "translate of unmapped lpn ", lpn);
    return static_cast<std::uint64_t>(map_[lpn]);
}

std::int64_t
Ftl::pickGcVictim() const
{
    std::int64_t best = unmapped;
    std::uint16_t best_valid = pagesPerBlock_;
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        if (blockFree_[b] || blockRetired_[b] ||
            static_cast<std::int64_t>(b) == activeBlock_)
            continue;
        if (validCount_[b] < best_valid) {
            best_valid = validCount_[b];
            best = static_cast<std::int64_t>(b);
        }
    }
    // A fully-valid victim frees nothing; report "no candidate".
    if (best != unmapped && best_valid >= pagesPerBlock_)
        return unmapped;
    return best;
}

void
Ftl::eraseBlock(std::uint64_t block, FtlWriteOutcome &outcome,
                Tick now)
{
    MERCURY_EXPECTS(block < numBlocks_, "erase of bad block ", block);
    MERCURY_EXPECTS(!blockFree_[block],
                    "erase of block already in the free pool");
    MERCURY_EXPECTS(!blockRetired_[block],
                    "erase of retired block ", block);
    MERCURY_EXPECTS(validCount_[block] == 0,
                    "erasing block with valid pages");

    // Grown-bad-block path: a block that failed a program earlier, or
    // fails this erase, is retired instead of reused -- unless the
    // spare headroom is gone, in which case the FTL (like an SSD near
    // end of life) keeps limping on the block rather than dying.
    if (faults_ != nullptr && canRetire() &&
        (pendingRetire_[block] || faults_->roll(eraseFailP_))) {
        pendingRetire_[block] = false;
        blockRetired_[block] = true;
        ++retiredBlocks_;
        ++outcome.retiredBlocks;
        faults_->record(now, fault::FaultKind::FlashBadBlock,
                        faultTarget_, block);
        return;
    }
    pendingRetire_[block] = false;
    blockFree_[block] = true;
    freeBlocks_.push_back(block);
    ++eraseCount_[block];
    ++totalErases_;
    ++outcome.erases;
}

void
Ftl::reclaimBlock(std::uint64_t block, FtlWriteOutcome &outcome,
                  Tick now)
{
    // Relocate every valid page into the active write stream.
    for (unsigned i = 0; i < pagesPerBlock_; ++i) {
        const std::uint64_t ppn = block * pagesPerBlock_ + i;
        const std::int64_t lpn = reverse_[ppn];
        if (lpn == unmapped)
            continue;

        // Raw allocation: GC must never recurse into GC.
        if (activeBlock_ == unmapped ||
            nextPageInActive_ == pagesPerBlock_) {
            MERCURY_ASSERT(!freeBlocks_.empty(),
                           "GC exhausted free blocks (overprovision "
                           "headroom violated)");
            activeBlock_ =
                static_cast<std::int64_t>(freeBlocks_.front());
            freeBlocks_.pop_front();
            blockFree_[static_cast<std::uint64_t>(activeBlock_)] = false;
            nextPageInActive_ = 0;
        }
        const std::uint64_t new_ppn =
            static_cast<std::uint64_t>(activeBlock_) * pagesPerBlock_ +
            nextPageInActive_++;

        MERCURY_ASSERT(validCount_[block] > 0,
                       "GC accounting underflow on block ", block);
        MERCURY_ASSERT(reverse_[new_ppn] == unmapped,
                       "GC relocation target page already mapped");
        reverse_[ppn] = unmapped;
        --validCount_[block];
        map_[static_cast<std::uint64_t>(lpn)] =
            static_cast<std::int64_t>(new_ppn);
        reverse_[new_ppn] = lpn;
        ++validCount_[blockOf(new_ppn)];

        ++totalMoves_;
        ++flashWrites_;
        ++outcome.movedPages;
    }
    MERCURY_ENSURES(validCount_[block] == 0,
                    "GC reclaim left valid pages behind in block ",
                    block);
    eraseBlock(block, outcome, now);
    // No full checkConsistency() here: reclaim runs nested inside
    // write(), which invalidates the overwritten page's reverse
    // mapping before allocating, so the map/reverse audit only holds
    // at the write()/trim() API boundary.
}

void
Ftl::maybeWearLevel(FtlWriteOutcome &outcome, Tick now)
{
    // Static wear leveling: when the erase-count spread grows too
    // large, park the coldest data in the most-worn free block. The
    // worn block then holds rarely-rewritten data and stops cycling,
    // while the freed cold block joins the hot rotation.
    std::int64_t hot = unmapped;
    std::uint32_t hot_erases = 0;
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        if (!blockFree_[b])
            continue;
        if (hot == unmapped || eraseCount_[b] > hot_erases) {
            hot_erases = eraseCount_[b];
            hot = static_cast<std::int64_t>(b);
        }
    }

    std::int64_t cold = unmapped;
    std::uint32_t cold_erases = ~0u;
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        if (blockFree_[b] || static_cast<std::int64_t>(b) == activeBlock_)
            continue;
        if (validCount_[b] == 0)
            continue;
        if (eraseCount_[b] < cold_erases) {
            cold_erases = eraseCount_[b];
            cold = static_cast<std::int64_t>(b);
        }
    }

    if (hot == unmapped || cold == unmapped)
        return;
    if (hot_erases - cold_erases <= wearThreshold_)
        return;

    // Take the hot block out of the free pool and fill it with the
    // cold block's valid pages.
    auto it = std::find(freeBlocks_.begin(), freeBlocks_.end(),
                        static_cast<std::uint64_t>(hot));
    MERCURY_ASSERT(it != freeBlocks_.end(), "free list out of sync");
    freeBlocks_.erase(it);
    blockFree_[static_cast<std::uint64_t>(hot)] = false;

    unsigned next_page = 0;
    const auto cold_block = static_cast<std::uint64_t>(cold);
    for (unsigned i = 0; i < pagesPerBlock_; ++i) {
        const std::uint64_t ppn = cold_block * pagesPerBlock_ + i;
        const std::int64_t lpn = reverse_[ppn];
        if (lpn == unmapped)
            continue;
        const std::uint64_t new_ppn =
            static_cast<std::uint64_t>(hot) * pagesPerBlock_ +
            next_page++;
        MERCURY_ASSERT(validCount_[cold_block] > 0,
                       "wear-level accounting underflow on block ",
                       cold_block);
        MERCURY_ASSERT(reverse_[new_ppn] == unmapped,
                       "wear-level target page already mapped");
        reverse_[ppn] = unmapped;
        --validCount_[cold_block];
        map_[static_cast<std::uint64_t>(lpn)] =
            static_cast<std::int64_t>(new_ppn);
        reverse_[new_ppn] = lpn;
        ++validCount_[static_cast<std::uint64_t>(hot)];
        ++totalMoves_;
        ++flashWrites_;
        ++outcome.movedPages;
    }
    eraseBlock(cold_block, outcome, now);
    // Full audit deferred to the write()/trim() boundary; see
    // reclaimBlock().
}

std::uint64_t
Ftl::allocPage(FtlWriteOutcome &outcome, Tick now)
{
    // Wear leveling can consume the freshly opened block, so loop
    // until the active block really has a free page. A program
    // failure burns the candidate page (it stays unused forever),
    // marks the block for retirement at its next erase, and retries
    // on the next page; the per-call failure budget keeps even a
    // pathological probability from looping without progress.
    while (true) {
        while (activeBlock_ == unmapped ||
               nextPageInActive_ == pagesPerBlock_) {
            while (freeBlocks_.size() <= gcLowWater_) {
                const std::int64_t victim = pickGcVictim();
                if (victim == unmapped)
                    break;
                reclaimBlock(static_cast<std::uint64_t>(victim),
                             outcome, now);
            }
            MERCURY_ASSERT(!freeBlocks_.empty(),
                           "flash channel out of space");
            activeBlock_ =
                static_cast<std::int64_t>(freeBlocks_.front());
            freeBlocks_.pop_front();
            blockFree_[static_cast<std::uint64_t>(activeBlock_)] =
                false;
            nextPageInActive_ = 0;
            maybeWearLevel(outcome, now);
        }
        if (faults_ != nullptr &&
            outcome.programFailures < pagesPerBlock_ &&
            faults_->roll(programFailP_)) {
            const auto block =
                static_cast<std::uint64_t>(activeBlock_);
            pendingRetire_[block] = true;
            ++programFailures_;
            ++outcome.programFailures;
            faults_->record(now, fault::FaultKind::FlashProgramFail,
                            faultTarget_,
                            block * pagesPerBlock_ +
                                nextPageInActive_);
            ++nextPageInActive_;  // burn the page, try the next
            continue;
        }
        break;
    }
    MERCURY_ENSURES(nextPageInActive_ < pagesPerBlock_,
                    "active flash block write cursor out of range");
    MERCURY_ENSURES(!blockFree_[static_cast<std::uint64_t>(
                        activeBlock_)],
                    "active flash block is marked free");
    return static_cast<std::uint64_t>(activeBlock_) * pagesPerBlock_ +
           nextPageInActive_++;
}

FtlWriteOutcome
Ftl::write(std::uint64_t lpn, Tick now)
{
    MERCURY_EXPECTS(lpn < logicalPages_,
                    "write to lpn out of range: ", lpn);

    FtlWriteOutcome outcome{};
    if (map_[lpn] != unmapped) {
        const auto old = static_cast<std::uint64_t>(map_[lpn]);
        MERCURY_ASSERT(validCount_[blockOf(old)] > 0,
                       "overwrite accounting underflow on block ",
                       blockOf(old));
        reverse_[old] = unmapped;
        --validCount_[blockOf(old)];
    }

    const std::uint64_t ppn = allocPage(outcome, now);
    map_[lpn] = static_cast<std::int64_t>(ppn);
    reverse_[ppn] = static_cast<std::int64_t>(lpn);
    ++validCount_[blockOf(ppn)];

    ++hostWrites_;
    ++flashWrites_;
    outcome.physicalPage = ppn;
    MERCURY_ASSERT_SLOW(auditIfDue(),
                        "FTL map/reverse/valid-count accounting "
                        "inconsistent after write of lpn ", lpn);
    return outcome;
}

void
Ftl::trim(std::uint64_t lpn)
{
    MERCURY_EXPECTS(lpn < logicalPages_,
                    "trim of lpn out of range: ", lpn);
    if (map_[lpn] == unmapped)
        return;
    const auto ppn = static_cast<std::uint64_t>(map_[lpn]);
    MERCURY_ASSERT(validCount_[blockOf(ppn)] > 0,
                   "trim accounting underflow on block ", blockOf(ppn));
    reverse_[ppn] = unmapped;
    --validCount_[blockOf(ppn)];
    map_[lpn] = unmapped;
    MERCURY_ASSERT_SLOW(auditIfDue(),
                        "FTL accounting inconsistent after trim of "
                        "lpn ", lpn);
}

double
Ftl::writeAmplification() const
{
    if (hostWrites_ == 0)
        return 1.0;
    return static_cast<double>(flashWrites_) /
           static_cast<double>(hostWrites_);
}

unsigned
Ftl::eraseSpread() const
{
    const auto [lo, hi] =
        std::minmax_element(eraseCount_.begin(), eraseCount_.end());
    return *hi - *lo;
}

bool
Ftl::auditIfDue() const
{
    // Full audit per mutation is fine up to ~64 Ki pages; beyond
    // that, sample every 1024 mutations so asan/debug runs on the
    // 19.8 GB stack channels stay tractable.
    constexpr std::uint64_t small_ftl_pages = 64 * 1024;
    constexpr std::uint64_t sample_interval = 1024;
    if (physPages_ > small_ftl_pages &&
        ++mutationsSinceAudit_ < sample_interval) {
        return true;
    }
    mutationsSinceAudit_ = 0;
    return checkConsistency();
}

bool
Ftl::checkConsistency() const
{
    std::vector<std::uint16_t> counts(numBlocks_, 0);
    for (std::uint64_t lpn = 0; lpn < logicalPages_; ++lpn) {
        const std::int64_t ppn = map_[lpn];
        if (ppn == unmapped)
            continue;
        if (reverse_[static_cast<std::uint64_t>(ppn)] !=
            static_cast<std::int64_t>(lpn)) {
            return false;
        }
        ++counts[blockOf(static_cast<std::uint64_t>(ppn))];
    }
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        if (counts[b] != validCount_[b])
            return false;
        if (blockFree_[b] && validCount_[b] != 0)
            return false;
        // Retired blocks hold no data and never rejoin the pool.
        if (blockRetired_[b] &&
            (blockFree_[b] || validCount_[b] != 0))
            return false;
    }
    std::uint64_t retired = 0;
    for (std::uint64_t b = 0; b < numBlocks_; ++b)
        retired += blockRetired_[b] ? 1 : 0;
    if (retired != retiredBlocks_)
        return false;
    for (const std::uint64_t b : freeBlocks_) {
        if (blockRetired_[b])
            return false;
    }
    return true;
}

FlashController::Channel::Channel(const FlashParams &params)
    : ftl(params.capacity / params.numChannels / params.pageBytes,
          params.pagesPerBlock, params.overprovision,
          params.gcLowWaterBlocks, params.wearLevelThreshold)
{}

FlashController::FlashController(const FlashParams &params,
                                 stats::StatGroup *parent)
    : MemDevice(params.name), params_(params),
      statGroup_(params.name, parent),
      lineReads_(&statGroup_, "lineReads", "line-granularity reads"),
      lineWrites_(&statGroup_, "lineWrites", "line-granularity writes"),
      pageSenses_(&statGroup_, "pageSenses", "page array senses"),
      pagePrograms_(&statGroup_, "pagePrograms", "page programs"),
      registerHits_(&statGroup_, "registerHits", "page-register hits"),
      gcMoves_(&statGroup_, "gcMoves", "pages moved by GC/wear level"),
      erases_(&statGroup_, "erases", "block erases"),
      programFailures_(&statGroup_, "programFailures",
                       "page programs that failed"),
      badBlocks_(&statGroup_, "badBlocks",
                 "blocks retired as grown-bad")
{
    MERCURY_EXPECTS(params_.numChannels > 0, "flash needs channels");
    channels_.reserve(params_.numChannels);
    for (unsigned c = 0; c < params_.numChannels; ++c)
        channels_.emplace_back(params_);
    channelBytes_ =
        channels_.front().ftl.logicalPages() * params_.pageBytes;
}

unsigned
FlashController::channelIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / channelBytes_) %
                                 params_.numChannels);
}

std::uint64_t
FlashController::channelOffset(Addr addr) const
{
    return addr % channelBytes_;
}

Tick
FlashController::transferTime(unsigned size) const
{
    const double seconds =
        static_cast<double>(size) / params_.channelBandwidth;
    return std::max<Tick>(1, secondsToTicks(seconds));
}

int
FlashController::findWriteSlot(const Channel &channel,
                               std::uint64_t lpn) const
{
    for (std::size_t i = 0; i < channel.writeSlots.size(); ++i) {
        if (channel.writeSlots[i].lpn == lpn)
            return static_cast<int>(i);
    }
    return -1;
}

Tick
FlashController::flushSlot(Channel &channel, std::size_t slot,
                           Tick now)
{
    const std::uint64_t lpn = channel.writeSlots[slot].lpn;
    const FtlWriteOutcome outcome = channel.ftl.write(lpn, now);

    Tick cost = params_.programLatency;
    cost += outcome.movedPages *
            (params_.readLatency + params_.programLatency);
    cost += outcome.erases * params_.eraseLatency;
    // Failed programs and failed (retiring) erases still occupy the
    // die for the attempt before the controller moves on.
    cost += outcome.programFailures * params_.programLatency;
    cost += outcome.retiredBlocks * params_.eraseLatency;

    ++pagePrograms_;
    gcMoves_ += outcome.movedPages;
    erases_ += outcome.erases;
    programFailures_ += outcome.programFailures;
    badBlocks_ += outcome.retiredBlocks;

    channel.writeSlots.erase(channel.writeSlots.begin() +
                             static_cast<std::ptrdiff_t>(slot));
    return cost;
}

Tick
FlashController::access(AccessType type, Addr addr, unsigned size,
                        Tick now)
{
    MERCURY_EXPECTS(size > 0 && size <= params_.pageBytes,
                    "flash access size must be within one page");
    addr %= capacityBytes();

    Channel &channel = channels_[channelIndex(addr)];
    const std::uint64_t lpn = channelOffset(addr) / params_.pageBytes;

    const Tick start = std::max(now, channel.busyUntil);
    Tick t = start;

    if (type == AccessType::Write) {
        ++lineWrites_;
        const int slot = findWriteSlot(channel, lpn);
        if (slot >= 0) {
            ++registerHits_;
            channel.writeSlots[static_cast<std::size_t>(slot)]
                .lastUse = ++channel.useCounter;
        } else {
            if (channel.writeSlots.size() >=
                params_.writeBufferPages) {
                // Evict the least-recently-used dirty page.
                std::size_t victim = 0;
                for (std::size_t i = 1;
                     i < channel.writeSlots.size(); ++i) {
                    if (channel.writeSlots[i].lastUse <
                        channel.writeSlots[victim].lastUse) {
                        victim = i;
                    }
                }
                t += flushSlot(channel, victim, t);
            }
            channel.writeSlots.push_back(
                WriteSlot{lpn, ++channel.useCounter});
        }
    } else {
        ++lineReads_;
        if (findWriteSlot(channel, lpn) >= 0 ||
            channel.readRegisterLpn ==
                static_cast<std::int64_t>(lpn)) {
            // Served from the write buffer or the read register.
            ++registerHits_;
        } else {
            // Sense the page only if it holds data; reading the
            // erased state costs nothing in the array.
            if (channel.ftl.isMapped(lpn)) {
                t += params_.readLatency;
                ++pageSenses_;
            }
            channel.readRegisterLpn = static_cast<std::int64_t>(lpn);
        }
    }

    t += transferTime(size);
    channel.busyUntil = t;
    return t;
}

std::uint64_t
FlashController::capacityBytes() const
{
    return channelBytes_ * params_.numChannels;
}

Tick
FlashController::idleReadLatency() const
{
    return params_.readLatency + transferTime(64);
}

Tick
FlashController::drainWrites(Tick now)
{
    Tick last = now;
    for (unsigned c = 0; c < channels_.size(); ++c)
        last = std::max(last, drainChannel(c, now));
    return last;
}

Tick
FlashController::drainChannel(unsigned channel_index, Tick now)
{
    MERCURY_EXPECTS(channel_index < channels_.size(),
                    "bad flash channel index ", channel_index);
    Channel &channel = channels_[channel_index];
    Tick t = std::max(now, channel.busyUntil);
    while (!channel.writeSlots.empty())
        t += flushSlot(channel, channel.writeSlots.size() - 1, t);
    channel.busyUntil = t;
    return t;
}

double
FlashController::writeAmplification() const
{
    std::uint64_t host = 0, flash = 0;
    for (const auto &channel : channels_) {
        host += channel.ftl.hostWrites();
        flash += channel.ftl.flashWrites();
    }
    return host ? static_cast<double>(flash) / static_cast<double>(host)
                : 1.0;
}

std::uint64_t
FlashController::totalErases() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.ftl.totalErases();
    return total;
}

std::uint64_t
FlashController::totalGcMoves() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.ftl.totalMoves();
    return total;
}

void
FlashController::setFaultInjector(fault::FaultInjector *injector)
{
    faults_ = injector;
    for (unsigned c = 0; c < channels_.size(); ++c) {
        channels_[c].ftl.setFaultInjection(
            injector, params_.programFailProbability,
            params_.eraseFailProbability,
            params_.name + ".ch" + std::to_string(c));
    }
}

void
FlashController::setWearRates(double program_fail_probability,
                              double erase_fail_probability)
{
    params_.programFailProbability = program_fail_probability;
    params_.eraseFailProbability = erase_fail_probability;
    setFaultInjector(faults_);
}

std::uint64_t
FlashController::totalRetiredBlocks() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.ftl.retiredBlocks();
    return total;
}

std::uint64_t
FlashController::totalProgramFailures() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.ftl.programFailures();
    return total;
}

double
FlashController::capacityDegradation() const
{
    double total = 0.0;
    for (const auto &channel : channels_)
        total += channel.ftl.capacityLossFraction();
    return total / static_cast<double>(channels_.size());
}

unsigned
FlashController::maxEraseSpread() const
{
    unsigned spread = 0;
    for (const auto &channel : channels_)
        spread = std::max(spread, channel.ftl.eraseSpread());
    return spread;
}

void
FlashController::reset()
{
    statGroup_.resetStats();
    for (auto &channel : channels_) {
        channel.busyUntil = 0;
        channel.readRegisterLpn = -1;
        channel.writeSlots.clear();
    }
}

} // namespace mercury::mem
