/**
 * @file
 * 3D NAND flash subsystem: raw die timing, a page-mapped FTL with
 * garbage collection and wear leveling, and a multi-channel controller
 * that implements the MemDevice interface.
 *
 * Iridium replaces the Mercury stack's DRAM with a single monolithic
 * layer of Toshiba p-BiCS-style 3D NAND (19.8 GB per stack) behind 16
 * independent flash controllers, mirroring the 16 DRAM ports
 * (Sec. 4.2.1). Read/write latencies follow the paper's simulation
 * values: reads 10-20 us, programs 200 us.
 *
 * Line-granularity accesses are serviced through a per-channel page
 * register: reads of lines in the most recently sensed page pay only
 * the channel transfer; writes coalesce in the register until a
 * different page is dirtied, at which point the register is flushed as
 * a log-structured program through the FTL. This reproduces the
 * paper's behaviour where scattered metadata updates make PUTs pay
 * multiple program latencies while streaming reads amortize the sense
 * cost across a whole page.
 */

#ifndef MERCURY_MEM_FLASH_HH
#define MERCURY_MEM_FLASH_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mem/mem_device.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::mem
{

/** Static configuration of the flash subsystem. */
struct FlashParams
{
    std::string name = "flash";

    /** Independent channels/controllers, one per address slice. */
    unsigned numChannels = 16;

    /** Total physical capacity across channels (19.8 GB per stack,
     * Sec. 4.2.1). */
    std::uint64_t capacity = 19'800'000'000ull;

    unsigned pageBytes = 4096;
    unsigned pagesPerBlock = 128;

    /** Fraction of physical pages reserved for the FTL. */
    double overprovision = 0.07;

    /** Array sense latency for a page read. */
    Tick readLatency = 10 * tickUs;

    /** Program latency for a page write. */
    Tick programLatency = 200 * tickUs;

    /** Block erase latency. */
    Tick eraseLatency = 2 * tickMs;

    /** Channel transfer bandwidth, bytes per second. */
    double channelBandwidth = 800e6;

    /** GC starts when a channel's free blocks drop to this level. */
    unsigned gcLowWaterBlocks = 4;

    /** Write-coalescing buffer slots per channel (whole pages).
     * Scattered line writes gather here and are programmed
     * page-at-a-time, as in real SSD controllers. */
    unsigned writeBufferPages = 16;

    /** Wear-leveling kicks in when erase-count spread exceeds this. */
    unsigned wearLevelThreshold = 64;

    // --- Fault model (only consulted with a FaultInjector) ----------

    /** Per-page probability a program fails: the page is burned and
     * its block marked for retirement at its next erase. */
    double programFailProbability = 0.0;

    /** Per-erase probability the block grows bad and is retired into
     * the (implicit) spare pool instead of being reused. */
    double eraseFailProbability = 0.0;
};

/** Cost summary of one FTL host-write (for the timing layer). */
struct FtlWriteOutcome
{
    std::uint64_t physicalPage;
    /** Valid pages relocated by garbage collection. */
    unsigned movedPages = 0;
    /** Blocks erased (GC + wear leveling). */
    unsigned erases = 0;
    /** Program attempts that failed (each cost a program latency). */
    unsigned programFailures = 0;
    /** Blocks retired as grown-bad (each cost an erase attempt). */
    unsigned retiredBlocks = 0;
};

/**
 * Page-mapped flash translation layer for one channel.
 *
 * Log-structured: every host write goes to the next free page of the
 * active block; the old physical page is invalidated. Greedy garbage
 * collection reclaims the block with the fewest valid pages. A simple
 * static wear-leveling rule relocates the coldest block when the
 * erase-count spread grows past a threshold.
 */
class Ftl
{
  public:
    /**
     * @param physPages physical pages on the channel
     * @param pagesPerBlock pages per erase block
     * @param overprovision fraction of pages invisible to the host
     * @param gcLowWater free-block threshold triggering GC
     * @param wearThreshold erase spread triggering wear leveling
     */
    Ftl(std::uint64_t physPages, unsigned pagesPerBlock,
        double overprovision, unsigned gcLowWater,
        unsigned wearThreshold);

    /** Number of pages the host may address. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    std::uint64_t physicalPages() const { return physPages_; }

    /** True once the logical page has been written. */
    bool isMapped(std::uint64_t lpn) const;

    /** Physical page currently holding the logical page.
     * @pre isMapped(lpn) */
    std::uint64_t translate(std::uint64_t lpn) const;

    /** Write (or overwrite) a logical page. @p now stamps any
     * injected fault records with the simulated time. */
    FtlWriteOutcome write(std::uint64_t lpn, Tick now = 0);

    /** Discard a logical page's mapping (TRIM). */
    void trim(std::uint64_t lpn);

    /** Total block erases so far. */
    std::uint64_t totalErases() const { return totalErases_; }

    /** Pages moved by GC/wear leveling so far. */
    std::uint64_t totalMoves() const { return totalMoves_; }

    /** Host page writes so far. */
    std::uint64_t hostWrites() const { return hostWrites_; }

    /** Flash page programs (host + relocation) so far. */
    std::uint64_t flashWrites() const { return flashWrites_; }

    /** flashWrites / hostWrites; 1.0 when GC never ran. */
    double writeAmplification() const;

    /** Spread between the most- and least-erased block. */
    unsigned eraseSpread() const;

    std::uint64_t freeBlocks() const { return freeBlocks_.size(); }

    /**
     * Attach a fault injector (nullptr detaches) with the failure
     * probabilities to apply and a target label for the recorded
     * timeline. Failures only fire while an injector is attached.
     */
    void setFaultInjection(fault::FaultInjector *injector,
                           double program_fail_probability,
                           double erase_fail_probability,
                           std::string target);

    /** Blocks permanently retired as grown-bad. */
    std::uint64_t retiredBlocks() const { return retiredBlocks_; }

    /** Page programs that failed (and were retried elsewhere). */
    std::uint64_t programFailures() const { return programFailures_; }

    /** Fraction of physical capacity lost to retired blocks. */
    double capacityLossFraction() const;

    /** Blocks that may still be retired before the guard refuses
     * further retirement to protect GC headroom. */
    std::uint64_t spareBlocksRemaining() const;

    /** Invariant checker used by tests: every mapped lpn's ppn must
     * reverse-map back to it, valid counts must be consistent, and
     * retired blocks must be empty and out of the free pool. */
    bool checkConsistency() const;

  private:
    static constexpr std::int64_t unmapped = -1;

    std::uint64_t blockOf(std::uint64_t ppn) const
    {
        return ppn / pagesPerBlock_;
    }

    /** Grab the next free physical page, running GC if required. */
    std::uint64_t allocPage(FtlWriteOutcome &outcome, Tick now);

    /** Relocate all valid pages out of a block, then erase it. */
    void reclaimBlock(std::uint64_t block, FtlWriteOutcome &outcome,
                      Tick now);

    void eraseBlock(std::uint64_t block, FtlWriteOutcome &outcome,
                    Tick now);

    /** Pick the fullest-invalid candidate block for GC. */
    std::int64_t pickGcVictim() const;

    void maybeWearLevel(FtlWriteOutcome &outcome, Tick now);

    /** True while retiring one more block keeps enough live blocks
     * for the logical space plus GC headroom. */
    bool canRetire() const;

    /** Slow-check helper: full consistency audit on every mutation
     * for small FTLs, sampled on big ones (the audit is O(pages), so
     * auditing a multi-GB channel per write would swamp the debug
     * presets). Always true when due-sampling skips the audit. */
    bool auditIfDue() const;

    /** Mutations since the last sampled audit (slow checks only). */
    mutable std::uint64_t mutationsSinceAudit_ = 0;

    std::uint64_t physPages_;
    unsigned pagesPerBlock_;
    std::uint64_t numBlocks_;
    std::uint64_t logicalPages_;
    unsigned gcLowWater_;
    unsigned wearThreshold_;

    std::vector<std::int64_t> map_;      // lpn -> ppn
    std::vector<std::int64_t> reverse_;  // ppn -> lpn
    std::vector<std::uint16_t> validCount_;
    std::vector<std::uint32_t> eraseCount_;
    std::vector<bool> blockFree_;
    /** Permanently retired (grown-bad) blocks: never free, never
     * allocated, always empty. */
    std::vector<bool> blockRetired_;
    /** Blocks that suffered a program failure; retired at their next
     * erase (grown-bad detection as real FTLs do it). */
    std::vector<bool> pendingRetire_;
    std::deque<std::uint64_t> freeBlocks_;

    std::int64_t activeBlock_ = unmapped;
    unsigned nextPageInActive_ = 0;

    std::uint64_t totalErases_ = 0;
    std::uint64_t totalMoves_ = 0;
    std::uint64_t hostWrites_ = 0;
    std::uint64_t flashWrites_ = 0;

    fault::FaultInjector *faults_ = nullptr;
    double programFailP_ = 0.0;
    double eraseFailP_ = 0.0;
    std::string faultTarget_;
    std::uint64_t retiredBlocks_ = 0;
    std::uint64_t programFailures_ = 0;
    /** Live blocks needed for the logical space + GC headroom. */
    std::uint64_t minLiveBlocks_ = 0;
};

/**
 * The Iridium flash controller: 16 channels, each with its own FTL,
 * die timing state and page register.
 */
class FlashController : public MemDevice
{
  public:
    explicit FlashController(const FlashParams &params,
                             stats::StatGroup *parent = nullptr);

    Tick access(AccessType type, Addr addr, unsigned size,
                Tick now) override;

    std::uint64_t capacityBytes() const override;

    Tick idleReadLatency() const override;

    const FlashParams &params() const { return params_; }

    /** Flush every channel's dirty write buffer at the given time.
     * @return tick at which the last flush completes. */
    Tick drainWrites(Tick now);

    /** Flush one channel's write buffer. */
    Tick drainChannel(unsigned channel, Tick now);

    /** Channel that owns a device address. */
    unsigned channelOf(Addr addr) const { return channelIndex(addr); }

    unsigned numChannels() const { return params_.numChannels; }

    double writeAmplification() const;
    std::uint64_t totalErases() const;
    std::uint64_t totalGcMoves() const;
    unsigned maxEraseSpread() const;

    /** Attach a fault injector to every channel's FTL (nullptr
     * detaches); the params' failure probabilities apply. */
    void setFaultInjector(fault::FaultInjector *injector);

    /** Retune the wear-fault probabilities at runtime (scheduled
     * wear-burst scenarios) and re-attach the last injector given to
     * setFaultInjector with the new rates. */
    void setWearRates(double program_fail_probability,
                      double erase_fail_probability);

    /** Blocks retired as grown-bad across all channels. */
    std::uint64_t totalRetiredBlocks() const;

    /** Failed page programs across all channels. */
    std::uint64_t totalProgramFailures() const;

    /** Fraction of raw capacity lost to retired blocks. */
    double capacityDegradation() const;

    const stats::StatGroup &statGroup() const { return statGroup_; }

    void reset() override;

  private:
    struct WriteSlot
    {
        std::uint64_t lpn;
        std::uint64_t lastUse;
    };

    struct Channel
    {
        explicit Channel(const FlashParams &params);

        Ftl ftl;
        Tick busyUntil = 0;
        /** Logical page currently in the read register, or -1. */
        std::int64_t readRegisterLpn = -1;
        /** Dirty pages gathering in the write buffer. */
        std::vector<WriteSlot> writeSlots;
        std::uint64_t useCounter = 0;
    };

    unsigned channelIndex(Addr addr) const;
    std::uint64_t channelOffset(Addr addr) const;
    Tick transferTime(unsigned size) const;

    /** Index of lpn's write slot, or -1. */
    int findWriteSlot(const Channel &channel,
                      std::uint64_t lpn) const;

    /** Program one write slot through the FTL; returns cost. */
    Tick flushSlot(Channel &channel, std::size_t slot, Tick now);

    FlashParams params_;
    std::uint64_t channelBytes_;
    std::vector<Channel> channels_;
    fault::FaultInjector *faults_ = nullptr;

    stats::StatGroup statGroup_;
    stats::Scalar lineReads_;
    stats::Scalar lineWrites_;
    stats::Scalar pageSenses_;
    stats::Scalar pagePrograms_;
    stats::Scalar registerHits_;
    stats::Scalar gcMoves_;
    stats::Scalar erases_;
    stats::Scalar programFailures_;
    stats::Scalar badBlocks_;
};

} // namespace mercury::mem

#endif // MERCURY_MEM_FLASH_HH
