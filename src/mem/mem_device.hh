/**
 * @file
 * Abstract interface for timed memory devices.
 *
 * Devices are modelled in the busy-until style: an access issued at an
 * absolute tick returns the absolute tick at which it completes,
 * internally accounting for queuing on ports, banks or channels. This
 * keeps single-request timing walks cheap while still letting
 * contention emerge when several cores share a device.
 */

#ifndef MERCURY_MEM_MEM_DEVICE_HH
#define MERCURY_MEM_MEM_DEVICE_HH

#include <cstdint>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mercury::mem
{

/** Kind of memory access, as seen by a memory device. */
enum class AccessType { Read, Write };

/**
 * A timed memory device (DRAM stack, DDR DIMM, flash controller...).
 */
class MemDevice : public SimObject
{
  public:
    using SimObject::SimObject;

    /**
     * Perform a timed access.
     *
     * @param type read or write
     * @param addr simulated physical address
     * @param size access size in bytes (usually one cache line)
     * @param now absolute tick the access is issued
     * @return absolute tick at which the access completes (>= now)
     */
    virtual Tick access(AccessType type, Addr addr, unsigned size,
                        Tick now) = 0;

    /** Total addressable capacity of the device in bytes. */
    virtual std::uint64_t capacityBytes() const = 0;

    /**
     * Unloaded (contention-free) read latency for a small access, used
     * by analytic consumers such as the power/perf explorer.
     */
    virtual Tick idleReadLatency() const = 0;
};

} // namespace mercury::mem

#endif // MERCURY_MEM_MEM_DEVICE_HH
