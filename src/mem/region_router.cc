#include "mem/region_router.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::mem
{

RegionRouter::RegionRouter(std::string name)
    : MemDevice(std::move(name))
{}

void
RegionRouter::addRegion(const AddressRegion &region, MemDevice *device,
                        std::uint64_t device_offset)
{
    mercury_assert(device != nullptr, "router region needs a device");
    mercury_assert(region.size > 0, "router region must be non-empty");
    for (const Entry &entry : entries_) {
        const bool disjoint = region.end() <= entry.region.base ||
                              entry.region.end() <= region.base;
        mercury_assert(disjoint, "router regions must not overlap");
    }
    entries_.push_back({region, device, device_offset});
}

MemDevice *
RegionRouter::deviceFor(Addr addr) const
{
    for (const Entry &entry : entries_) {
        if (entry.region.contains(addr))
            return entry.device;
    }
    return nullptr;
}

Tick
RegionRouter::access(AccessType type, Addr addr, unsigned size,
                     Tick now)
{
    for (Entry &entry : entries_) {
        if (entry.region.contains(addr)) {
            return entry.device->access(
                type, addr - entry.region.base + entry.deviceOffset,
                size, now);
        }
    }
    mercury_panic("access to unmapped address ", addr, " on ", name());
}

std::uint64_t
RegionRouter::capacityBytes() const
{
    std::uint64_t total = 0;
    for (const Entry &entry : entries_)
        total += entry.region.size;
    return total;
}

Tick
RegionRouter::idleReadLatency() const
{
    Tick worst = 0;
    for (const Entry &entry : entries_)
        worst = std::max(worst, entry.device->idleReadLatency());
    return worst;
}

} // namespace mercury::mem
