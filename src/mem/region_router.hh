/**
 * @file
 * A MemDevice that routes accesses to backing devices by address
 * region.
 *
 * The Iridium stack has no DRAM: key-value data and code live in
 * flash while packet buffers and scratch state live in on-stack NIC
 * SRAM. The router lets one cache hierarchy sit in front of that
 * split physical address space.
 */

#ifndef MERCURY_MEM_REGION_ROUTER_HH
#define MERCURY_MEM_REGION_ROUTER_HH

#include <string>
#include <vector>

#include "mem/mem_device.hh"
#include "sim/types.hh"

namespace mercury::mem
{

/** A half-open address range. */
struct AddressRegion
{
    Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(Addr addr) const
    {
        return addr >= base && addr - base < size;
    }

    Addr end() const { return base + size; }
};

class RegionRouter : public MemDevice
{
  public:
    explicit RegionRouter(std::string name);

    /**
     * Map a region onto a device. An access at `addr` reaches the
     * device at `addr - region.base + device_offset`, so several
     * disjoint regions can share one device without aliasing.
     * Regions must not overlap.
     */
    void addRegion(const AddressRegion &region, MemDevice *device,
                   std::uint64_t device_offset = 0);

    Tick access(AccessType type, Addr addr, unsigned size,
                Tick now) override;

    std::uint64_t capacityBytes() const override;

    Tick idleReadLatency() const override;

    /** Device that owns an address (nullptr if unmapped). */
    MemDevice *deviceFor(Addr addr) const;

  private:
    struct Entry
    {
        AddressRegion region;
        MemDevice *device;
        std::uint64_t deviceOffset;
    };

    std::vector<Entry> entries_;
};

} // namespace mercury::mem

#endif // MERCURY_MEM_REGION_ROUTER_HH
