#include "mem/simple_mem.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::mem
{

SimpleMemory::SimpleMemory(const SimpleMemParams &params)
    : MemDevice(params.name), params_(params)
{
    mercury_assert(params_.bandwidth > 0.0,
                   "SRAM bandwidth must be positive");
}

Tick
SimpleMemory::access(AccessType, Addr, unsigned size, Tick now)
{
    mercury_assert(size > 0, "zero-size SRAM access");
    const Tick start = std::max(now, busyUntil_);
    const Tick transfer = std::max<Tick>(
        1, secondsToTicks(static_cast<double>(size) /
                          params_.bandwidth));
    const Tick done = start + params_.latency + transfer;
    // Pipelined: the array is only busy for the transfer slot.
    busyUntil_ = start + transfer;
    return done;
}

} // namespace mercury::mem
