/**
 * @file
 * A simple fixed-latency, fixed-bandwidth memory device.
 *
 * Used for on-stack SRAM (NIC MAC buffers, scratch) where the
 * interesting behaviour is just "fast and always there".
 */

#ifndef MERCURY_MEM_SIMPLE_MEM_HH
#define MERCURY_MEM_SIMPLE_MEM_HH

#include <string>

#include "mem/mem_device.hh"
#include "sim/types.hh"

namespace mercury::mem
{

struct SimpleMemParams
{
    std::string name = "sram";
    std::uint64_t capacity = 1 * miB;
    Tick latency = 8 * tickNs;
    /** Bytes per second. */
    double bandwidth = 32e9;
};

class SimpleMemory : public MemDevice
{
  public:
    explicit SimpleMemory(const SimpleMemParams &params);

    const SimpleMemParams &params() const { return params_; }

    Tick access(AccessType type, Addr addr, unsigned size,
                Tick now) override;

    std::uint64_t capacityBytes() const override
    {
        return params_.capacity;
    }

    Tick idleReadLatency() const override { return params_.latency; }

    void reset() override { busyUntil_ = 0; }

  private:
    SimpleMemParams params_;
    Tick busyUntil_ = 0;
};

} // namespace mercury::mem

#endif // MERCURY_MEM_SIMPLE_MEM_HH
