#include "net/datapath.hh"

#include "sim/contract.hh"

namespace mercury::net
{

std::uint64_t
flowHash(std::string_view key)
{
    // FNV-1a, the same construction the fault/timeline digests use.
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

unsigned
rssQueueFor(std::uint64_t flow_hash, unsigned queues)
{
    MERCURY_EXPECTS(queues > 0, "RSS needs at least one queue");
    // Fold the high bits in so consecutive hashes spread even when
    // the queue count is a power of two.
    return static_cast<unsigned>((flow_hash ^ (flow_hash >> 32)) %
                                 queues);
}

NicGetCache::NicGetCache(const DatapathParams &params,
                         stats::StatGroup *parent,
                         const std::string &name)
    : params_(params),
      group_(name, parent),
      hits_(&group_, "hits", "GETs answered from the NIC cache"),
      misses_(&group_, "misses", "GET lookups that went to the core"),
      fills_(&group_, "fills", "entries inserted or refreshed"),
      evictions_(&group_, "evictions", "LRU evictions"),
      invalidations_(&group_, "invalidations",
                     "entries dropped by SET/DELETE or expiry"),
      hitRate_(&group_, "hitRate", "NIC-cache hit fraction",
               [this] {
                   const std::uint64_t total =
                       hits_.value() + misses_.value();
                   return total ? static_cast<double>(hits_.value()) /
                                      static_cast<double>(total)
                                : 0.0;
               })
{
    MERCURY_EXPECTS(params_.nicCacheEntries > 0,
                    "NicGetCache needs a non-zero capacity");
}

void
NicGetCache::erase(LruList::iterator it)
{
    index_.erase(it->key);
    lru_.erase(it);
}

std::optional<std::string_view>
NicGetCache::lookup(std::string_view key, std::uint64_t logical_clock)
{
    const auto idx = index_.find(key);
    if (idx == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    LruList::iterator it = idx->second;
    if (it->expiry != 0 && it->expiry <= logical_clock) {
        // The store's copy is gone; serving it would be stale.
        ++invalidations_;
        ++misses_;
        erase(it);
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it);
    ++hits_;
    return std::string_view(it->value);
}

void
NicGetCache::fill(std::string_view key, std::string_view value,
                  std::uint64_t expiry)
{
    if (value.size() > params_.nicCacheMaxValueBytes)
        return;

    const auto idx = index_.find(key);
    if (idx != index_.end()) {
        LruList::iterator it = idx->second;
        it->value.assign(value);
        it->expiry = expiry;
        lru_.splice(lru_.begin(), lru_, it);
        ++fills_;
        return;
    }

    lru_.push_front(Entry{std::string(key), std::string(value),
                          expiry});
    index_.emplace(lru_.front().key, lru_.begin());
    ++fills_;

    while (index_.size() > params_.nicCacheEntries) {
        ++evictions_;
        erase(std::prev(lru_.end()));
    }
    MERCURY_ENSURES(index_.size() == lru_.size(),
                    "NIC cache index out of sync with LRU list");
}

void
NicGetCache::invalidate(std::string_view key)
{
    const auto idx = index_.find(key);
    if (idx == index_.end())
        return;
    ++invalidations_;
    erase(idx->second);
}

void
NicGetCache::clear()
{
    invalidations_ += index_.size();
    index_.clear();
    lru_.clear();
}

} // namespace mercury::net
