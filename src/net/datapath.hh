/**
 * @file
 * Kernel-bypass datapath model: poll-mode UDP fast path with RX/TX
 * descriptor batching, RSS flow steering, and a LaKe-style on-NIC
 * GET cache.
 *
 * The paper's Fig. 4 charges 87-97 % of a small GET to the Linux
 * network stack. This module models the three standard ways that
 * time is bought back:
 *
 *  - DatapathKind::Bypass swaps the per-packet kernel path for a
 *    user-level poll-mode driver (DPDK-style): no syscalls, no
 *    socket state, per-*batch* descriptor-ring and doorbell costs
 *    amortized over rxBatch/txBatch packets. The CPU-side costs
 *    live in server::Calibration (bypass* fields); this header only
 *    carries the knobs.
 *
 *  - rss steers flows to per-core NIC RX queues (Toeplitz-style
 *    hash over the flow identity), so the multi-core stack walk
 *    models n independent queues instead of one shared softirq
 *    path. rssQueueFor() is the steering function; it must be a
 *    pure function of (flow hash, queue count) so runs stay
 *    deterministic.
 *
 *  - NicGetCache is a small NIC-resident LRU that answers hot GETs
 *    at wire latency without waking a core (LaKe, PAPERS.md). SETs
 *    and DELETEs invalidate; entries carry the item's absolute
 *    expiry time so a cached TTL item can never outlive the store's
 *    copy. The cache is a *value* cache: a hit returns exactly the
 *    bytes a store read would, which tests/property pins.
 *
 * Every knob defaults off; a default DatapathParams reproduces the
 * kernel path byte-for-byte.
 */

#ifndef MERCURY_NET_DATAPATH_HH
#define MERCURY_NET_DATAPATH_HH

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::net
{

/** Which request path the server's CPU model walks. */
enum class DatapathKind : std::uint8_t
{
    Kernel, ///< Linux TCP (or udpGets) path, as calibrated for Fig. 4
    Bypass, ///< user-level poll-mode driver, batched descriptors
};

/** Static configuration of a node's datapath. All defaults off. */
struct DatapathParams
{
    DatapathKind kind = DatapathKind::Kernel;

    /** RX descriptors fetched per doorbell/ring refill (bypass).
     * Per-batch costs in the calibration are divided by this. */
    unsigned rxBatch = 1;

    /** TX descriptors published per doorbell (bypass). */
    unsigned txBatch = 1;

    /** Steer flows to per-core NIC RX queues in StackSimulation
     * instead of sharing one softirq path. */
    bool rss = false;

    /** On-NIC GET cache capacity in entries; 0 disables the cache
     * entirely (no lookup, no stats, no timing change). */
    unsigned nicCacheEntries = 0;

    /** Largest value the NIC cache will hold; bigger responses
     * always go to the core (LaKe caches small hot items). */
    std::uint32_t nicCacheMaxValueBytes = 1024;

    /** Nominal SRAM cost of one cache slot (key + value + tag),
     * used to convert a physical-model MB budget into entries. */
    std::uint32_t nicCacheEntryBytes = 128;

    /** Hardware lookup + response-build latency of a cache hit,
     * charged instead of any CPU phase. */
    Tick nicCacheLookupLatency = 300 * tickNs;

    bool
    bypass() const
    {
        return kind == DatapathKind::Bypass;
    }

    bool
    nicCacheEnabled() const
    {
        return nicCacheEntries > 0;
    }
};

/** FNV-1a flow/key hash used for RSS steering. */
std::uint64_t flowHash(std::string_view key);

/** RSS indirection: which RX queue a flow lands on. Pure function
 * of the hash and queue count (deterministic across runs). */
unsigned rssQueueFor(std::uint64_t flow_hash, unsigned queues);

/**
 * Deterministic NIC-resident GET cache: LRU over (key -> value)
 * with SET/DELETE invalidation and absolute-expiry awareness.
 *
 * Determinism contract: iteration-order-sensitive state lives in a
 * std::list (recency order) indexed by an ordered std::map -- no
 * unordered containers, no pointer keys -- so eviction order is a
 * pure function of the operation sequence.
 */
class NicGetCache
{
  public:
    /**
     * @param params sizing knobs (nicCacheEntries must be > 0)
     * @param parent stats parent; nullptr keeps the group detached
     * @param name stat group name under @p parent
     */
    explicit NicGetCache(const DatapathParams &params,
                         stats::StatGroup *parent = nullptr,
                         const std::string &name = "nicCache");

    /**
     * Look up @p key at @p logical_clock (same clock as the expiry
     * passed to fill; 0 works when nothing ever has a TTL). A hit
     * promotes the entry and returns a view of the cached value; a
     * present-but-expired entry is dropped and counts as a miss.
     */
    std::optional<std::string_view>
    lookup(std::string_view key, std::uint64_t logical_clock = 0);

    /**
     * Insert/refresh @p key after a store read returned @p value.
     * @p expiry is the item's absolute expiry time (0 = never) on
     * the same clock lookup uses. Values over the configured size
     * cap are not cached.
     */
    void fill(std::string_view key, std::string_view value,
              std::uint64_t expiry = 0);

    /** Drop @p key (SET/DELETE seen by the NIC). */
    void invalidate(std::string_view key);

    /** Drop everything (flush_all). */
    void clear();

    std::size_t size() const { return index_.size(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t fills() const { return fills_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    std::uint64_t invalidations() const
    {
        return invalidations_.value();
    }

  private:
    struct Entry
    {
        std::string key;
        std::string value;
        std::uint64_t expiry = 0;
    };

    using LruList = std::list<Entry>;

    void erase(LruList::iterator it);

    DatapathParams params_;

    LruList lru_; ///< front = most recently used
    std::map<std::string, LruList::iterator, std::less<>> index_;

    stats::StatGroup group_;
    stats::Counter hits_;
    stats::Counter misses_;
    stats::Counter fills_;
    stats::Counter evictions_;
    stats::Counter invalidations_;
    stats::Formula hitRate_;
};

} // namespace mercury::net

#endif // MERCURY_NET_DATAPATH_HH
