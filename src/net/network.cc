#include "net/network.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::net
{

unsigned
TcpSegmenter::numSegments(std::uint64_t payload_bytes) const
{
    if (payload_bytes == 0)
        return 1;
    return static_cast<unsigned>((payload_bytes + params_.mss - 1) /
                                 params_.mss);
}

std::vector<unsigned>
TcpSegmenter::segmentSizes(std::uint64_t payload_bytes) const
{
    std::vector<unsigned> sizes;
    const unsigned n = numSegments(payload_bytes);
    sizes.reserve(n);
    std::uint64_t remaining = payload_bytes;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(remaining, params_.mss));
        sizes.push_back(chunk);
        remaining -= chunk;
    }
    return sizes;
}

std::uint64_t
TcpSegmenter::wireBytes(std::uint64_t payload_bytes) const
{
    return payload_bytes + static_cast<std::uint64_t>(
        numSegments(payload_bytes)) * params_.perPacketOverhead;
}

NetworkPath::NetworkPath(const NetParams &params,
                         stats::StatGroup *parent)
    : SimObject(params.name), params_(params), segmenter_(params),
      statGroup_(params.name, parent),
      messages_(&statGroup_, "messages", "messages delivered"),
      packets_(&statGroup_, "packets", "packets delivered"),
      payloadBytes_(&statGroup_, "payloadBytes", "payload bytes"),
      wireBytes_(&statGroup_, "wireBytes", "bytes on the wire"),
      queueTicks_(&statGroup_, "queueTicks",
                  "ticks messages waited for the link"),
      peakBuffer_(&statGroup_, "peakBufferBytes",
                  "peak MAC buffer occupancy")
{
    mercury_assert(params_.linkBandwidth > 0.0,
                   "link bandwidth must be positive");
    mercury_assert(params_.mss > 0, "MSS must be positive");
}

Tick
NetworkPath::serializationTime(std::uint64_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) / params_.linkBandwidth;
    return std::max<Tick>(1, secondsToTicks(seconds));
}

DeliveryResult
NetworkPath::deliver(std::uint64_t payload_bytes, Tick now)
{
    const unsigned n = segmenter_.numSegments(payload_bytes);
    const std::uint64_t wire = segmenter_.wireBytes(payload_bytes);

    const Tick start = std::max(now, linkBusyUntil_);
    queueTicks_ += static_cast<double>(start - now);

    // Packets serialize back to back; the receiver sees the last one
    // after the full wire time, plus the fixed per-hop latencies for
    // the final (store-and-forward) packet.
    const Tick serialization = serializationTime(wire);
    linkBusyUntil_ = start + serialization;

    const Tick completion = start + serialization + params_.phyLatency +
                            params_.macLatency + params_.propagation;

    // Store-and-forward buffering: while the core has not drained the
    // message, up to the whole message can sit in MAC buffers. Track
    // occupancy against the configured capacity.
    const std::uint64_t occupancy =
        std::min<std::uint64_t>(wire, params_.macBufferBytes);
    if (occupancy > peakBuffer_.value())
        peakBuffer_ = static_cast<double>(occupancy);
    if (wire > params_.macBufferBytes && n > 1) {
        // Larger messages stream through the buffer packet by packet;
        // this is fine for timing (TCP windows throttle the sender)
        // but worth surfacing for capacity planning.
        peakBuffer_ = static_cast<double>(params_.macBufferBytes);
    }

    ++messages_;
    packets_ += static_cast<double>(n);
    payloadBytes_ += static_cast<double>(payload_bytes);
    wireBytes_ += static_cast<double>(wire);

    return {completion, n, wire};
}

double
NetworkPath::utilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    const double capacity =
        params_.linkBandwidth * ticksToSeconds(elapsed);
    // Messages whose serialization began before the observation
    // window can push the ratio past 1 at saturation; clamp.
    return std::min(1.0, wireBytes_.value() / capacity);
}

void
NetworkPath::reset()
{
    statGroup_.resetStats();
    linkBusyUntil_ = 0;
}

NetParams
tenGbEParams()
{
    return NetParams{};
}

} // namespace mercury::net
