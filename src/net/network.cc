#include "net/network.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mercury::net
{

unsigned
TcpSegmenter::numSegments(std::uint64_t payload_bytes) const
{
    if (payload_bytes == 0)
        return 1;
    return static_cast<unsigned>((payload_bytes + params_.mss - 1) /
                                 params_.mss);
}

std::vector<unsigned>
TcpSegmenter::segmentSizes(std::uint64_t payload_bytes) const
{
    std::vector<unsigned> sizes;
    const unsigned n = numSegments(payload_bytes);
    sizes.reserve(n);
    std::uint64_t remaining = payload_bytes;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(remaining, params_.mss));
        sizes.push_back(chunk);
        remaining -= chunk;
    }
    return sizes;
}

std::uint64_t
TcpSegmenter::wireBytes(std::uint64_t payload_bytes) const
{
    return payload_bytes + static_cast<std::uint64_t>(
        numSegments(payload_bytes)) * params_.perPacketOverhead;
}

NetworkPath::NetworkPath(const NetParams &params,
                         stats::StatGroup *parent)
    : SimObject(params.name), params_(params), segmenter_(params),
      statGroup_(params.name, parent),
      messages_(&statGroup_, "messages", "messages delivered"),
      packets_(&statGroup_, "packets", "packets delivered"),
      payloadBytes_(&statGroup_, "payloadBytes", "payload bytes"),
      wireBytes_(&statGroup_, "wireBytes", "bytes on the wire"),
      queueTicks_(&statGroup_, "queueTicks",
                  "ticks messages waited for the link"),
      peakBuffer_(&statGroup_, "peakBufferBytes",
                  "peak MAC buffer occupancy"),
      bufferDrops_(&statGroup_, "bufferDrops",
                   "packets overflowing the MAC buffer"),
      drops_(&statGroup_, "packetDrops",
             "packets dropped (loss + buffer overflow)"),
      retransmits_(&statGroup_, "retransmits",
                   "TCP segments retransmitted"),
      rtoTicks_(&statGroup_, "rtoTicks",
                "ticks spent waiting out retransmission timeouts")
{
    mercury_assert(params_.linkBandwidth > 0.0,
                   "link bandwidth must be positive");
    mercury_assert(params_.mss > 0, "MSS must be positive");
}

Tick
NetworkPath::serializationTime(std::uint64_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) / params_.linkBandwidth;
    return std::max<Tick>(1, secondsToTicks(seconds));
}

std::uint64_t
NetworkPath::backlogBytes(Tick now) const
{
    if (linkBusyUntil_ <= now)
        return 0;
    return static_cast<std::uint64_t>(
        params_.linkBandwidth *
        ticksToSeconds(linkBusyUntil_ - now));
}

DeliveryResult
NetworkPath::deliver(std::uint64_t payload_bytes, Tick now)
{
    const unsigned n = segmenter_.numSegments(payload_bytes);
    const std::uint64_t wire = segmenter_.wireBytes(payload_bytes);

    // Store-and-forward buffering: everything queued behind the link
    // plus this message sits in the MAC buffer until serialized out.
    // Occupancy clamps at capacity; the excess is packets the buffer
    // cannot hold, accounted even in fault-free runs.
    const std::uint64_t occupancy = backlogBytes(now) + wire;
    const std::uint64_t clamped =
        std::min(occupancy, params_.macBufferBytes);
    if (clamped > peakBuffer_.value())
        peakBuffer_ = static_cast<double>(clamped);

    unsigned overflow_packets = 0;
    if (occupancy > params_.macBufferBytes) {
        const std::uint64_t overflow =
            occupancy - params_.macBufferBytes;
        const std::uint64_t per_packet =
            params_.mss + params_.perPacketOverhead;
        overflow_packets = static_cast<unsigned>(
            std::min<std::uint64_t>(
                n, (overflow + per_packet - 1) / per_packet));
        bufferDrops_ += static_cast<double>(overflow_packets);
    }

    const Tick start = std::max(now, linkBusyUntil_);
    queueTicks_ += static_cast<double>(start - now);

    DeliveryResult result;
    result.packets = n;

    // Fault path: lost segments are resent after an RTO that doubles
    // per consecutive loss, so every drop surfaces as latency. Both
    // legs are skipped entirely (no RNG, no arithmetic) when no
    // injector is attached, keeping fault-free runs bit-identical.
    Tick penalty = 0;
    std::uint64_t retrans_wire = 0;
    if (faults_ != nullptr) {
        if (params_.lossProbability > 0.0) {
            const std::vector<unsigned> sizes =
                segmenter_.segmentSizes(payload_bytes);
            for (unsigned i = 0; i < n; ++i) {
                Tick rto = params_.rtoMin;
                unsigned attempt = 0;
                while (attempt < params_.maxRetransmits &&
                       faults_->roll(params_.lossProbability)) {
                    ++result.drops;
                    ++result.retransmits;
                    faults_->record(now, fault::FaultKind::PacketLoss,
                                    name(), i);
                    penalty += rto;
                    rto *= 2;
                    retrans_wire += sizes[i] +
                                    params_.perPacketOverhead;
                    ++attempt;
                }
            }
        }
        if (params_.dropOnOverflow && overflow_packets > 0) {
            // Overflowed packets are dropped and resent after one
            // RTO; by then the buffer has drained, so one
            // retransmission suffices.
            result.bufferDrops = overflow_packets;
            result.drops += overflow_packets;
            result.retransmits += overflow_packets;
            faults_->record(now, fault::FaultKind::MacBufferDrop,
                            name(), overflow_packets);
            penalty += params_.rtoMin;
            retrans_wire +=
                static_cast<std::uint64_t>(overflow_packets) *
                (params_.mss + params_.perPacketOverhead);
        }
    }

    // Packets serialize back to back; the receiver sees the last one
    // after the full wire time (original + retransmitted bytes), any
    // retransmission timeouts, plus the fixed per-hop latencies for
    // the final (store-and-forward) packet.
    const Tick serialization = serializationTime(wire + retrans_wire);
    linkBusyUntil_ = start + serialization;

    result.wireBytes = wire + retrans_wire;
    result.completion = start + serialization + penalty +
                        params_.phyLatency + params_.macLatency +
                        params_.propagation;

    ++messages_;
    packets_ += static_cast<double>(n);
    payloadBytes_ += static_cast<double>(payload_bytes);
    wireBytes_ += static_cast<double>(result.wireBytes);
    drops_ += static_cast<double>(result.drops);
    retransmits_ += static_cast<double>(result.retransmits);
    rtoTicks_ += static_cast<double>(penalty);

    return result;
}

DeliveryResult
NetworkPath::deliverDatagrams(std::uint64_t payload_bytes, Tick now,
                              unsigned datagrams)
{
    const unsigned n = std::max(1u, datagrams);
    const std::uint64_t wire =
        payload_bytes + static_cast<std::uint64_t>(n) *
                            params_.udpPerPacketOverhead;

    // Same store-and-forward occupancy accounting as deliver().
    const std::uint64_t occupancy = backlogBytes(now) + wire;
    const std::uint64_t clamped =
        std::min(occupancy, params_.macBufferBytes);
    if (clamped > peakBuffer_.value())
        peakBuffer_ = static_cast<double>(clamped);
    if (occupancy > params_.macBufferBytes) {
        const std::uint64_t overflow =
            occupancy - params_.macBufferBytes;
        const std::uint64_t per_packet =
            params_.mss + params_.udpPerPacketOverhead;
        bufferDrops_ += static_cast<double>(
            std::min<std::uint64_t>(
                n, (overflow + per_packet - 1) / per_packet));
    }

    const Tick start = std::max(now, linkBusyUntil_);
    queueTicks_ += static_cast<double>(start - now);

    const Tick serialization = serializationTime(wire);
    linkBusyUntil_ = start + serialization;

    DeliveryResult result;
    result.packets = n;
    result.wireBytes = wire;
    result.completion = start + serialization + params_.phyLatency +
                        params_.macLatency + params_.propagation;

    ++messages_;
    packets_ += static_cast<double>(n);
    payloadBytes_ += static_cast<double>(payload_bytes);
    wireBytes_ += static_cast<double>(result.wireBytes);

    return result;
}

double
NetworkPath::utilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    const double capacity =
        params_.linkBandwidth * ticksToSeconds(elapsed);
    // Messages whose serialization began before the observation
    // window can push the ratio past 1 at saturation; clamp.
    return std::min(1.0, wireBytes_.value() / capacity);
}

void
NetworkPath::reset()
{
    statGroup_.resetStats();
    linkBusyUntil_ = 0;
}

NetParams
tenGbEParams()
{
    return NetParams{};
}

} // namespace mercury::net
