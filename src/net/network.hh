/**
 * @file
 * Network path model: TCP segmentation, 10GbE link timing, and the
 * integrated NIC (Niagara-2-style MAC on the stack, Broadcom-style
 * PHY off the stack), per Sec. 4.1.4.
 *
 * Each Mercury/Iridium stack owns a dedicated physical 10GbE port --
 * there is no server-level router -- so the path model covers: client
 * NIC -> wire -> PHY -> MAC buffers -> core. CPU-side protocol
 * processing is charged separately by the request trace generator;
 * this module accounts for everything that happens on the wire and in
 * the NIC.
 */

#ifndef MERCURY_NET_NETWORK_HH
#define MERCURY_NET_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::net
{

/** Static configuration of a network path. */
struct NetParams
{
    std::string name = "net";

    /** Link rate in bytes per second (10GbE). */
    double linkBandwidth = 10e9 / 8.0;

    /** TCP maximum segment size (1500 MTU - IP/TCP headers). */
    unsigned mss = 1448;

    /** Per-packet non-payload wire bytes: preamble+SFD (8), Ethernet
     * header (14), FCS (4), interframe gap (12), IP (20), TCP (20). */
    unsigned perPacketOverhead = 78;

    /** Same for UDP datagrams (8-byte UDP header instead of TCP's
     * 20): used by deliverDatagrams on the bypass/NIC-cache path. */
    unsigned udpPerPacketOverhead = 66;

    /** PHY traversal latency per direction. */
    Tick phyLatency = 500 * tickNs;

    /** MAC + buffer store-and-forward latency per packet. */
    Tick macLatency = 200 * tickNs;

    /** One-way propagation (client NIC to server PHY). */
    Tick propagation = 1 * tickUs;

    /** NIC MAC packet buffer capacity. */
    std::uint64_t macBufferBytes = 128 * kiB;

    // --- Fault model (all zero-cost when left at defaults) ----------

    /** Per-segment probability the wire/NIC drops the packet. Only
     * consulted when a FaultInjector is attached. */
    double lossProbability = 0.0;

    /** Minimum TCP retransmission timeout. Real kernels default to
     * 200 ms; datacenter deployments tune RTOmin to ~1-10 ms to
     * survive incast (Vasudevan et al., SIGCOMM'09), and our RTTs
     * are 10-1000 us, so 1 ms is the faithful in-rack choice. */
    Tick rtoMin = 1 * tickMs;

    /** Retransmission attempts per segment before giving up; each
     * consecutive loss doubles the RTO (exponential backoff). */
    unsigned maxRetransmits = 6;

    /** Enforce macBufferBytes by dropping overflowing packets (they
     * then pay the retransmission path). Off by default: fault-free
     * runs only *account* occupancy and overflow, preserving
     * bit-identical timing with pre-fault builds. */
    bool dropOnOverflow = false;
};

/**
 * Stateless TCP segmentation arithmetic.
 */
class TcpSegmenter
{
  public:
    explicit TcpSegmenter(const NetParams &params) : params_(params) {}

    /** Number of TCP segments needed for a payload. A zero-byte
     * payload still needs one (header-only) packet. */
    unsigned numSegments(std::uint64_t payload_bytes) const;

    /** Payload bytes of each segment, in order. */
    std::vector<unsigned>
    segmentSizes(std::uint64_t payload_bytes) const;

    /** Total bytes on the wire including all per-packet overhead. */
    std::uint64_t wireBytes(std::uint64_t payload_bytes) const;

  private:
    NetParams params_;
};

/** Timing outcome of one message delivery. */
struct DeliveryResult
{
    /** Tick the last byte is available at the receiver. */
    Tick completion = 0;
    unsigned packets = 0;
    std::uint64_t wireBytes = 0;
    /** Segments lost on the wire or to MAC buffer overflow. */
    unsigned drops = 0;
    /** Segments sent again (every drop that was retried). */
    unsigned retransmits = 0;
    /** Of the drops, those caused by MAC buffer overflow. */
    unsigned bufferDrops = 0;
};

/**
 * One direction of a network path with serialization, store-and-
 * forward and propagation timing. The link keeps busy-until state so
 * back-to-back messages queue.
 */
class NetworkPath : public SimObject
{
  public:
    explicit NetworkPath(const NetParams &params,
                         stats::StatGroup *parent = nullptr);

    /**
     * Deliver a message of @p payload_bytes entering the link at
     * @p now.
     *
     * The first packet reaches the receiver after its serialization
     * time plus PHY/MAC/propagation; subsequent packets pipeline
     * behind it. Completion is the arrival of the final packet.
     */
    DeliveryResult deliver(std::uint64_t payload_bytes, Tick now);

    /**
     * Deliver a message that is already framed as @p datagrams UDP
     * datagrams (the kernel-bypass / NIC-cache fast path). The
     * caller owns the framing arithmetic (kvstore::udpDatagramCount)
     * because datagram boundaries are a protocol concern, not a
     * link concern; this method charges UDP per-packet overhead and
     * the same serialization/store-and-forward/queueing model as
     * deliver(). No retransmission machinery: the fast path models
     * the fault-free wire (UDP losses surface as client timeouts at
     * a higher layer, not as link-level retries).
     */
    DeliveryResult deliverDatagrams(std::uint64_t payload_bytes,
                                    Tick now, unsigned datagrams);

    const NetParams &params() const { return params_; }

    const TcpSegmenter &segmenter() const { return segmenter_; }

    /** Offered-load utilization of the link since the last reset. */
    double utilization(Tick elapsed) const;

    /** Peak MAC buffer occupancy observed (bytes), clamped to the
     * configured capacity. */
    std::uint64_t peakBufferBytes() const
    {
        return static_cast<std::uint64_t>(peakBuffer_.value());
    }

    /** Packets the MAC buffer could not hold (counted in fault-free
     * runs too; only *dropped* with dropOnOverflow). */
    std::uint64_t bufferDropPackets() const
    {
        return static_cast<std::uint64_t>(bufferDrops_.value());
    }

    std::uint64_t droppedPackets() const
    {
        return static_cast<std::uint64_t>(drops_.value());
    }

    std::uint64_t retransmittedPackets() const
    {
        return static_cast<std::uint64_t>(retransmits_.value());
    }

    /**
     * Attach a fault injector; nullptr detaches. Packet-loss rolls
     * and overflow drops only happen while one is attached, so paths
     * without an injector stay bit-identical to pre-fault builds.
     */
    void setFaultInjector(fault::FaultInjector *injector)
    {
        faults_ = injector;
    }

    /**
     * Retune the per-segment loss probability at runtime (scheduled
     * degradation bursts in composed fault scenarios). Only consulted
     * while an injector is attached, so the zero-cost-off contract
     * holds regardless of the value set here.
     */
    void setLossProbability(double probability)
    {
        params_.lossProbability = probability;
    }

    void reset() override;

  private:
    Tick serializationTime(std::uint64_t bytes) const;

    /** Bytes still queued in the MAC buffer at @p now (the link has
     * not yet serialized them out). */
    std::uint64_t backlogBytes(Tick now) const;

    NetParams params_;
    TcpSegmenter segmenter_;
    Tick linkBusyUntil_ = 0;
    fault::FaultInjector *faults_ = nullptr;

    stats::StatGroup statGroup_;
    stats::Scalar messages_;
    stats::Scalar packets_;
    stats::Scalar payloadBytes_;
    stats::Scalar wireBytes_;
    stats::Scalar queueTicks_;
    stats::Scalar peakBuffer_;
    stats::Scalar bufferDrops_;
    stats::Scalar drops_;
    stats::Scalar retransmits_;
    stats::Scalar rtoTicks_;
};

/** 10GbE defaults used by every stack (Sec. 4.1.4). */
NetParams tenGbEParams();

} // namespace mercury::net

#endif // MERCURY_NET_NETWORK_HH
