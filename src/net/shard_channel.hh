/**
 * @file
 * Shard-aware node-to-node messaging for conservative PDES.
 *
 * The cluster fabric's one-way floor -- PHY traversal + MAC
 * store-and-forward + propagation -- is the smallest amount of
 * simulated time any message needs to move between two nodes, which
 * makes it the provable lookahead for sharding a topology across
 * threads: no node can affect another sooner than this, so a
 * time-window barrier of that length is causally safe
 * (see sim/sharded_sim.hh).
 *
 * ShardChannel is the send-side port: it owns (src, dst, latency)
 * and routes every message through ShardedSim::send(), i.e. the
 * destination shard's inbox, never directly into a foreign
 * EventQueue (the mercury_lint cross-shard-schedule rule enforces
 * the same discipline statically).
 */

#ifndef MERCURY_NET_SHARD_CHANNEL_HH
#define MERCURY_NET_SHARD_CHANNEL_HH

#include <functional>
#include <utility>

#include "net/network.hh"
#include "sim/sharded_sim.hh"
#include "sim/types.hh"

namespace mercury::net
{

/** Conservative one-way latency floor of a network path: PHY + MAC
 * + propagation, the cost of the smallest frame with no queueing,
 * serialization, or retransmission. Every real delivery through
 * NetworkPath takes at least this long, so it is a safe PDES
 * lookahead for topologies wired with these parameters. */
inline Tick
minOneWayLatency(const NetParams &params)
{
    return params.phyLatency + params.macLatency + params.propagation;
}

/**
 * A directed node-to-node message port bound to one ShardedSim
 * link. Registers the link at construction so the coordinator's
 * lookahead accounts for it.
 */
class ShardChannel
{
  public:
    ShardChannel(sim::ShardedSim &sim, sim::NodeId src,
                 sim::NodeId dst, Tick latency)
        : sim_(&sim), src_(src), dst_(dst), latency_(latency)
    {
        sim.addLink(src, dst, latency);
    }

    sim::NodeId src() const { return src_; }
    sim::NodeId dst() const { return dst_; }
    Tick latency() const { return latency_; }

    /** Deliver @p fn on the destination's shard at now + latency,
     * via the destination inbox (visible at the next barrier). */
    void
    send(Tick now, std::function<void()> fn)
    {
        sim_->send(src_, dst_, now + latency_, std::move(fn));
    }

  private:
    sim::ShardedSim *sim_;
    sim::NodeId src_;
    sim::NodeId dst_;
    Tick latency_;
};

/**
 * Register a uniform all-to-all fabric: every node can reach every
 * other at @p latency. Lookahead candidates are identical for all
 * pairs, so a single ring of registered links suffices to pin the
 * coordinator's lookahead without O(N^2) bookkeeping.
 */
inline void
registerUniformFabric(sim::ShardedSim &sim, Tick latency)
{
    const unsigned nodes = sim.nodeCount();
    if (nodes < 2)
        return;
    for (unsigned i = 0; i < nodes; ++i)
        sim.addLink(i, (i + 1) % nodes, latency);
}

} // namespace mercury::net

#endif // MERCURY_NET_SHARD_CHANNEL_HH
