#include "physical/chassis.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mercury::physical
{

unsigned
ChassisConstraints::maxStacksByArea() const
{
    // A packaged stack is a 21mm x 21mm BGA (441 mm^2 = 4.41 cm^2)
    // plus half of a dual-PHY chip of the same size.
    const double footprint_cm2 = 4.41 * 1.5;
    const double usable = boardAreaCm2 * usableBoardFraction;
    return static_cast<unsigned>(usable / footprint_cm2);
}

double
ChassisConstraints::boardAreaFor(unsigned stacks) const
{
    return static_cast<double>(stacks) * 4.41 * 1.5;
}

const ChassisConstraints &
defaultChassis()
{
    static const ChassisConstraints chassis;
    return chassis;
}

StackModel::StackModel(const StackConfig &config,
                       const ComponentCatalog &catalog)
    : config_(config), catalog_(catalog)
{
    mercury_assert(config_.coresPerStack >= 1, "stack needs cores");
}

double
StackModel::powerW(double mem_bandwidth_gbs) const
{
    const double cores = config_.coresPerStack *
                         catalog_.corePowerW(config_.core);
    const double mem_rate = config_.memory == StackMemory::Dram3D
                                ? catalog_.dramPowerPerGBs
                                : catalog_.flashPowerPerGBs;
    return cores + catalog_.nicMacPowerW + catalog_.nicPhyPowerW +
           config_.nicCacheMB * catalog_.nicCacheSramPowerWPerMB +
           mem_rate * mem_bandwidth_gbs;
}

double
StackModel::densityGB() const
{
    return config_.memory == StackMemory::Dram3D
               ? catalog_.dramCapacityGB
               : catalog_.flashCapacityGB;
}

double
StackModel::portBandwidthCapGBs(double per_core_max_gbs) const
{
    // 16 independent ports (DRAM) / controllers (flash); past 16
    // cores, two cores share a port (Sec. 4.1.2, 5.3).
    const double port_peak = config_.memory == StackMemory::Dram3D
                                 ? 6.25
                                 : 0.8;  // one channel's transfer rate
    const unsigned ports =
        std::min<unsigned>(config_.coresPerStack, 16);
    const double demand = config_.coresPerStack * per_core_max_gbs;
    return std::min(demand, ports * port_peak);
}

bool
StackModel::fitsLogicDie() const
{
    // The logic die matches the DRAM die footprint: 15.5mm x 18mm =
    // 279 mm^2, shared with DRAM peripheral logic and the NIC MAC.
    const double logic_budget_mm2 = 279.0 * 0.5;
    const double used =
        config_.coresPerStack * catalog_.coreAreaMm2(config_.core) +
        catalog_.nicMacAreaMm2 +
        config_.nicCacheMB * catalog_.nicCacheSramAreaMm2PerMB;
    return used <= logic_budget_mm2;
}

} // namespace mercury::physical
