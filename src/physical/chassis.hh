/**
 * @file
 * 1.5U chassis constraints and the stack-level power/area/density
 * arithmetic of Sec. 5.4-5.6.
 */

#ifndef MERCURY_PHYSICAL_CHASSIS_HH
#define MERCURY_PHYSICAL_CHASSIS_HH

#include "cpu/core.hh"
#include "physical/components.hh"

namespace mercury::physical
{

/** What memory a stack carries. */
enum class StackMemory { Dram3D, Flash3D };

/** One stack's composition. */
struct StackConfig
{
    cpu::CoreParams core = cpu::cortexA7Params();
    unsigned coresPerStack = 8;
    StackMemory memory = StackMemory::Dram3D;
    bool withL2 = true;
    /** On-NIC GET-cache SRAM (MB); 0 = no cache, no charge. */
    double nicCacheMB = 0.0;
};

/** 1.5U chassis limits (Sec. 5.4.1, 5.5). */
struct ChassisConstraints
{
    /** HP common-slot supply. */
    double supplyW = 750.0;
    /** Disk, motherboard, fans... */
    double otherComponentsW = 160.0;
    /** Margin for delivery losses and misc power. */
    double powerMargin = 0.8;

    /** 13in x 13in motherboard. */
    double boardAreaCm2 = 13.0 * 13.0 * 6.4516;
    /** Fraction of the board available for stacks + PHYs. */
    double usableBoardFraction = 0.77;

    /** Rear-panel Ethernet ports (Sec. 5.5). */
    unsigned maxEthernetPorts = 96;

    /** Power available for stacks and PHYs:
     * (750 - 160) x 0.8 = 472 W. */
    double
    stackPowerBudgetW() const
    {
        return (supplyW - otherComponentsW) * powerMargin;
    }

    /** Wall power for a given stack-component draw. */
    double
    wallPowerW(double stack_components_w) const
    {
        return otherComponentsW + stack_components_w / powerMargin;
    }

    /** Stacks that fit on the board: each 441 mm^2 BGA plus half of
     * a dual-PHY chip. */
    unsigned maxStacksByArea() const;

    /** Board footprint of n stacks (cm^2). */
    double boardAreaFor(unsigned stacks) const;
};

const ChassisConstraints &defaultChassis();

/** Per-stack physical model. */
class StackModel
{
  public:
    StackModel(const StackConfig &config,
               const ComponentCatalog &catalog = defaultCatalog());

    /** Component power at a given memory bandwidth draw (GB/s per
     * stack). Includes cores, NIC MAC, off-stack PHY share, and the
     * bandwidth-proportional memory power (Sec. 5.4). */
    double powerW(double mem_bandwidth_gbs) const;

    /** Storage carried by the stack (GB). */
    double densityGB() const;

    /** Peak memory bandwidth the stack's ports can deliver (GB/s);
     * cores can be port-limited (Sec. 5.5). */
    double portBandwidthCapGBs(double per_core_max_gbs) const;

    /** Silicon check: the logic die fits the cores + NIC (the paper
     * notes >400 cores would fit; we verify the configured count
     * does). */
    bool fitsLogicDie() const;

    const StackConfig &config() const { return config_; }

  private:
    StackConfig config_;
    ComponentCatalog catalog_;
};

} // namespace mercury::physical

#endif // MERCURY_PHYSICAL_CHASSIS_HH
