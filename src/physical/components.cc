#include "physical/components.hh"

#include "sim/logging.hh"

namespace mercury::physical
{

double
ComponentCatalog::corePowerW(const cpu::CoreParams &core) const
{
    switch (core.type) {
      case cpu::CoreType::CortexA7:
        return a7PowerW;
      case cpu::CoreType::CortexA15:
        return core.freqGHz > 1.25 ? a15PowerW15GHz : a15PowerW1GHz;
      case cpu::CoreType::XeonClass:
        return core.activePowerW;
    }
    mercury_panic("unknown core type");
}

double
ComponentCatalog::coreAreaMm2(const cpu::CoreParams &core) const
{
    switch (core.type) {
      case cpu::CoreType::CortexA7:
        return a7AreaMm2;
      case cpu::CoreType::CortexA15:
        return a15AreaMm2;
      case cpu::CoreType::XeonClass:
        return core.areaMm2;
    }
    mercury_panic("unknown core type");
}

const ComponentCatalog &
defaultCatalog()
{
    static const ComponentCatalog catalog;
    return catalog;
}

std::vector<MemoryTechRow>
memoryTechCatalog()
{
    return {
        {"DDR3-1333", 10.7, 2.0, false},
        {"DDR4-2667", 21.3, 2.0, false},
        {"LPDDR3 (30nm)", 6.4, 0.5, false},
        {"HMC I (3D-Stack)", 128.0, 0.5, true},
        {"Wide I/O (3D-stack, 50nm)", 12.8, 0.5, true},
        {"Tezzaron Octopus (3D-Stack)", 50.0, 0.5, true},
        {"Future Tezzaron (3D-stack)", 100.0, 4.0, true},
    };
}

} // namespace mercury::physical
