/**
 * @file
 * Component power and area catalog (paper Table 1) and the
 * memory-technology catalog (paper Table 2).
 */

#ifndef MERCURY_PHYSICAL_COMPONENTS_HH
#define MERCURY_PHYSICAL_COMPONENTS_HH

#include <string>
#include <vector>

#include "cpu/core.hh"

namespace mercury::physical
{

/** Power/area constants for the pieces of a 3D stack (Table 1). */
struct ComponentCatalog
{
    // Cores (28 nm).
    double a7PowerW = 0.100;
    double a7AreaMm2 = 0.58;
    double a15PowerW1GHz = 0.600;
    double a15PowerW15GHz = 1.000;
    double a15AreaMm2 = 2.82;

    // 3D DRAM: 4 GB in 8 layers; active power scales with bandwidth.
    double dramPowerPerGBs = 0.210;
    double dramAreaMm2 = 279.0;
    double dramCapacityGB = 4.0;

    // 3D NAND (p-BiCS, monolithic 16-layer): 19.8 GB per stack.
    double flashPowerPerGBs = 0.006;
    double flashAreaMm2 = 279.0;
    double flashCapacityGB = 19.8;

    // Integrated NIC MAC + buffers (on stack).
    double nicMacPowerW = 0.120;
    double nicMacAreaMm2 = 0.43;

    // 10GbE PHY (off stack; two per 441 mm^2 chip).
    double nicPhyPowerW = 0.300;
    double nicPhyAreaMm2 = 220.0;

    // Optional on-NIC GET-cache SRAM (LaKe-style), charged per MB
    // of cache on the logic die. 28 nm 6T SRAM runs ~3.5 mm^2/MB
    // at macro density; leakage + access power ~0.05 W/MB at the
    // NIC's duty cycle. Zero MB (the default) charges nothing.
    double nicCacheSramPowerWPerMB = 0.05;
    double nicCacheSramAreaMm2PerMB = 3.5;

    /** Per-core power for a core preset (Table 1 rows). */
    double corePowerW(const cpu::CoreParams &core) const;

    /** Per-core area for a core preset. */
    double coreAreaMm2(const cpu::CoreParams &core) const;
};

const ComponentCatalog &defaultCatalog();

/** One row of the Table 2 memory-technology comparison. */
struct MemoryTechRow
{
    std::string name;
    double bandwidthGBs;
    double capacityGB;
    bool stacked;
};

/** The Table 2 catalog. */
std::vector<MemoryTechRow> memoryTechCatalog();

} // namespace mercury::physical

#endif // MERCURY_PHYSICAL_COMPONENTS_HH
