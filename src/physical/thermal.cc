#include "physical/thermal.hh"

#include "sim/logging.hh"

namespace mercury::physical
{

ThermalReport
checkThermal(unsigned stacks, double stack_components_w,
             double wall_power_w, const ThermalParams &params)
{
    mercury_assert(stacks > 0, "thermal check needs stacks");

    ThermalReport report;
    report.perStackW = stack_components_w / stacks;

    // Worst-case stack sits at the back of the board, seeing air
    // already warmed by the rest of the box.
    const double local_ambient =
        params.inletTempC + params.airRiseBudgetC;
    report.junctionC =
        local_ambient + report.perStackW * params.thetaJaCPerW;
    report.passiveOk = report.junctionC <= params.maxJunctionC;

    report.airflowOk = wall_power_w <= params.chassisAirflowW;
    return report;
}

} // namespace mercury::physical
