/**
 * @file
 * Thermal feasibility model (paper Sec. 6.5).
 *
 * A Mercury/Iridium box spreads its ~600 W across 96 packages
 * instead of concentrating it in a few sockets, so each 21 mm BGA
 * dissipates only a few watts -- within passive (heatsink-less)
 * cooling under the chassis' forced airflow. This model checks a
 * design point: per-stack TDP, junction temperature under a simple
 * junction-to-ambient resistance, and board-level power density.
 */

#ifndef MERCURY_PHYSICAL_THERMAL_HH
#define MERCURY_PHYSICAL_THERMAL_HH

namespace mercury::physical
{

struct ThermalParams
{
    /** Chassis inlet air temperature (deg C). */
    double inletTempC = 25.0;
    /** Maximum junction temperature for the DRAM layers (DRAM
     * retention limits the stack, not the logic die). */
    double maxJunctionC = 85.0;
    /** Junction-to-ambient thermal resistance of a 21 mm BGA under
     * 1.5U forced airflow, no heatsink (deg C per W). */
    double thetaJaCPerW = 7.0;
    /** Air temperature rise budget front-to-back of the chassis. */
    double airRiseBudgetC = 15.0;
    /** Airflow heat-removal capacity of a 1.5U fan wall (W). */
    double chassisAirflowW = 900.0;
};

struct ThermalReport
{
    double perStackW = 0.0;
    double junctionC = 0.0;
    /** True if every stack stays under maxJunctionC without a
     * heatsink. */
    bool passiveOk = false;
    /** True if the fan wall can remove the box's heat within the
     * air-rise budget. */
    bool airflowOk = false;

    bool ok() const { return passiveOk && airflowOk; }
};

/**
 * Evaluate a design point.
 *
 * @param stacks stacks in the box
 * @param stack_components_w total stack-component power (the
 *        explorer's pre-margin figure)
 * @param wall_power_w box wall power (for the airflow check)
 */
ThermalReport checkThermal(unsigned stacks,
                           double stack_components_w,
                           double wall_power_w,
                           const ThermalParams &params = {});

} // namespace mercury::physical

#endif // MERCURY_PHYSICAL_THERMAL_HH
