#include "server/address_map.hh"

#include "sim/contract.hh"

namespace mercury::server
{

AddressMap::AddressMap(Addr base, std::uint64_t data_size)
    : base_(base), dataSize_(data_size)
{
    MERCURY_EXPECTS(data_size > 0, "data region must be non-empty");
    // The layout is a sum of region sizes from base_; make sure the
    // 64-bit address arithmetic cannot wrap inside the slice.
    MERCURY_ENSURES(end() > base_,
                    "address map overflows the 64-bit address space: "
                    "base=", base_, " dataSize=", dataSize_);
    MERCURY_ASSERT_SLOW(checkLayout(),
                        "address map regions overlap or leave gaps");
}

bool
AddressMap::checkLayout() const
{
    // Regions must tile the slice contiguously and disjointly, in
    // layout order, and the derived region views must agree with the
    // raw offsets.
    const mem::AddressRegion regions[] = {
        codeRegion(),
        {bufferBase(), bufferSize()},
        {scratchBase(), scratchSize()},
        {tableBase(), tableSize()},
        {sockBase(), sockSize()},
        {dataBase(), dataSize_},
    };
    Addr cursor = base_;
    for (const auto &region : regions) {
        if (region.base != cursor)
            return false;
        if (region.size == 0)
            return false;
        if (region.base + region.size < region.base)
            return false;  // wrapped
        cursor = region.base + region.size;
    }
    if (cursor != end())
        return false;

    // The composite views must stay inside the slice and mirror the
    // primitive regions they claim to cover.
    if (hotRegion().base != base_ ||
        hotRegion().size != codeSize() + bufferSize() + scratchSize())
        return false;
    if (sramRegion().base != bufferBase() ||
        sramRegion().size != bufferSize() + scratchSize())
        return false;
    if (coldRegion().base != tableBase() ||
        coldRegion().size != tableSize() + sockSize() + dataSize_)
        return false;
    return slice().base == base_ && slice().size == end() - base_;
}

mem::AddressRegion
AddressMap::hotRegion() const
{
    return {base_, codeSize() + bufferSize() + scratchSize()};
}

mem::AddressRegion
AddressMap::codeRegion() const
{
    return {base_, codeSize()};
}

mem::AddressRegion
AddressMap::sramRegion() const
{
    return {bufferBase(), bufferSize() + scratchSize()};
}

mem::AddressRegion
AddressMap::coldRegion() const
{
    return {tableBase(), tableSize() + sockSize() + dataSize_};
}

mem::AddressRegion
AddressMap::slice() const
{
    return {base_, end() - base_};
}

Addr
AddressMap::mapDataPointer(const kvstore::SlabAllocator &slabs,
                           const void *ptr) const
{
    const std::int64_t page = slabs.pageIndexOf(ptr);
    MERCURY_EXPECTS(page >= 0, "pointer is not a slab chunk");
    const std::uint64_t offset = slabs.pageOffsetOf(ptr);
    const Addr addr = dataBase() +
                      static_cast<std::uint64_t>(page) *
                          slabs.params().pageSize +
                      offset;
    MERCURY_ENSURES(addr >= dataBase() && addr < end(),
                    "slab page maps outside the data region: addr=",
                    addr);
    return addr;
}

Addr
AddressMap::mapBucketIndex(std::uint64_t index) const
{
    // Bucket slots are 8-byte entries; fold the slot's index into
    // the table region so a given bucket always lands on the same
    // simulated line. The index (unlike the host pointer of the
    // slot, which moves with the heap layout) makes the mapping
    // reproducible across runs and builds.
    const std::uint64_t slot = index % (tableSize() / 8);
    const Addr addr = tableBase() + slot * 8;
    MERCURY_ENSURES(addr >= tableBase() &&
                    addr < tableBase() + tableSize(),
                    "bucket maps outside the table region");
    return addr;
}

Addr
AddressMap::bufferAddr(std::uint64_t off) const
{
    return bufferBase() + off % bufferSize();
}

} // namespace mercury::server
