#include "server/address_map.hh"

#include "sim/logging.hh"

namespace mercury::server
{

AddressMap::AddressMap(Addr base, std::uint64_t data_size)
    : base_(base), dataSize_(data_size)
{
    mercury_assert(data_size > 0, "data region must be non-empty");
}

mem::AddressRegion
AddressMap::hotRegion() const
{
    return {base_, codeSize() + bufferSize() + scratchSize()};
}

mem::AddressRegion
AddressMap::codeRegion() const
{
    return {base_, codeSize()};
}

mem::AddressRegion
AddressMap::sramRegion() const
{
    return {bufferBase(), bufferSize() + scratchSize()};
}

mem::AddressRegion
AddressMap::coldRegion() const
{
    return {tableBase(), tableSize() + sockSize() + dataSize_};
}

mem::AddressRegion
AddressMap::slice() const
{
    return {base_, end() - base_};
}

Addr
AddressMap::mapDataPointer(const kvstore::SlabAllocator &slabs,
                           const void *ptr) const
{
    const std::int64_t page = slabs.pageIndexOf(ptr);
    mercury_assert(page >= 0, "pointer is not a slab chunk");
    const std::uint64_t offset = slabs.pageOffsetOf(ptr);
    const Addr addr = dataBase() +
                      static_cast<std::uint64_t>(page) *
                          slabs.params().pageSize +
                      offset;
    mercury_assert(addr < end(), "slab page beyond data region");
    return addr;
}

Addr
AddressMap::mapBucketPointer(const void *ptr) const
{
    // Bucket slots are 8-byte entries in a host vector; fold the
    // pointer into the table region deterministically, keeping
    // 8-byte alignment so a given bucket always lands on the same
    // simulated line.
    const auto raw = reinterpret_cast<std::uintptr_t>(ptr);
    const std::uint64_t slot = (raw / 8) % (tableSize() / 8);
    return tableBase() + slot * 8;
}

Addr
AddressMap::bufferAddr(std::uint64_t off) const
{
    return bufferBase() + off % bufferSize();
}

} // namespace mercury::server
