/**
 * @file
 * Simulated address-space layout for one server core, and mapping of
 * host pointers (from the functional store) into it.
 */

#ifndef MERCURY_SERVER_ADDRESS_MAP_HH
#define MERCURY_SERVER_ADDRESS_MAP_HH

#include "kvstore/slab.hh"
#include "mem/region_router.hh"
#include "sim/types.hh"

namespace mercury::server
{

/**
 * Per-core address layout.
 *
 * Layout (offsets within the core's slice of the device space):
 *   [0, codeSize)                     code (netstack | memcached | hash)
 *   [codeSize, +bufferSize)           packet/socket buffers (ring)
 *   [.., +scratchSize)                stack & scratch
 *   [dataBase, +dataSize)             key-value slab pages
 *
 * The functional store hands back host pointers; mapDataPointer
 * translates them via the slab allocator's page table so that two
 * accesses to the same item hit the same simulated cache line and a
 * value streams contiguously.
 */
class AddressMap
{
  public:
    /**
     * @param base start of this core's slice in device space
     * @param data_size bytes reserved for key-value data
     */
    AddressMap(Addr base, std::uint64_t data_size);

    // Code sub-regions.
    Addr netstackCode() const { return base_; }
    std::uint64_t netstackCodeSize() const { return 96 * kiB; }

    Addr memcachedCode() const { return base_ + 96 * kiB; }
    std::uint64_t memcachedCodeSize() const { return 32 * kiB; }

    Addr hashCode() const { return base_ + 128 * kiB; }
    std::uint64_t hashCodeSize() const { return 4 * kiB; }

    std::uint64_t codeSize() const { return 132 * kiB; }

    /** Packet/socket buffer ring. */
    Addr bufferBase() const { return base_ + 132 * kiB; }
    std::uint64_t bufferSize() const { return 192 * kiB; }

    /** Stack and scratch state. */
    Addr scratchBase() const { return bufferBase() + bufferSize(); }
    std::uint64_t scratchSize() const { return 64 * kiB; }

    /** Hash-table bucket array region. */
    Addr tableBase() const { return scratchBase() + scratchSize(); }
    std::uint64_t tableSize() const { return 16 * miB; }

    /** Kernel socket state (TCBs, sk_buff metadata, epoll): lives in
     * main memory, so on Iridium it is flash-resident like
     * everything else the OS allocates. */
    Addr sockBase() const { return tableBase() + tableSize(); }
    std::uint64_t sockSize() const { return 8 * miB; }

    /** Key-value slab data. */
    Addr dataBase() const { return sockBase() + sockSize(); }
    std::uint64_t dataSize() const { return dataSize_; }

    Addr end() const { return dataBase() + dataSize_; }

    /** Region covering code + buffers + scratch (SRAM-backed on
     * Iridium). */
    mem::AddressRegion hotRegion() const;

    /** Just the code (stored in flash on Iridium, like the OS
     * image). */
    mem::AddressRegion codeRegion() const;

    /** Buffers + scratch (NIC SRAM on Iridium). */
    mem::AddressRegion sramRegion() const;

    /** Region covering table + data (flash-backed on Iridium). */
    mem::AddressRegion coldRegion() const;

    /** Whole slice. */
    mem::AddressRegion slice() const;

    /** Map a slab chunk pointer into the data region. */
    Addr mapDataPointer(const kvstore::SlabAllocator &slabs,
                        const void *ptr) const;

    /** Map a hash-bucket slot index into the table region. */
    Addr mapBucketIndex(std::uint64_t index) const;

    /** A buffer-ring address for byte offset @p off (wraps). */
    Addr bufferAddr(std::uint64_t off) const;

    /**
     * Audit that the regions tile the slice contiguously with no
     * overlap and no wraparound. O(1); used by MERCURY_ASSERT_SLOW in
     * the constructor and by tests.
     */
    bool checkLayout() const;

  private:
    Addr base_;
    std::uint64_t dataSize_;
};

} // namespace mercury::server

#endif // MERCURY_SERVER_ADDRESS_MAP_HH
