/**
 * @file
 * Calibration constants for the request trace generator.
 *
 * These are the only fitted numbers in the simulator. They were
 * calibrated once against anchor points read from the paper
 * (gem5 full-system measurements) and everything else in the
 * reproduction is derived:
 *
 *  Anchor 1 (Fig. 5a): A15 @1 GHz + 2 MB L2, 10 ns DRAM, 64 B GET
 *            -> ~26 KTPS (RTT ~38 us).
 *  Anchor 2 (Fig. 5c / Table 4): A7 + L2, 10 ns DRAM, 64 B GET
 *            -> ~11 KTPS per core (Table 4 Mercury rows divide to
 *            10.99 KTPS/core).
 *  Anchor 3 (Fig. 4a): 64 B GET time splits ~87% network stack,
 *            ~10% memcached metadata, ~2-3% hash.
 *  Anchor 4 (Fig. 4b): PUT metadata share rises to ~20-30%.
 *  Anchor 5 (Table 3): A7 Mercury max per-core bandwidth ~0.2 GB/s
 *            at 1 MB requests (578 GB/s over 93 stacks x 32 cores).
 *
 * The instruction counts are per-request or per-packet costs of the
 * Linux network stack path, memcached metadata manipulation and key
 * hashing; they are well within the envelope reported by TSSP
 * (Lim et al.) and the scale-out workload characterizations the
 * paper cites.
 */

#ifndef MERCURY_SERVER_CALIBRATION_HH
#define MERCURY_SERVER_CALIBRATION_HH

#include <cstdint>

#include "sim/types.hh"

namespace mercury::server
{

struct Calibration
{
    // ---- Network stack (charged per packet / per byte) ------------

    /** Fixed per-request socket/syscall/epoll overhead, split across
     * receive and transmit sides. */
    std::uint64_t netstackInstrPerRequest = 52000;

    /** Driver + IP + TCP receive processing per inbound packet. */
    std::uint64_t netstackInstrPerRxPacket = 9000;

    /** Segment build + checksum + driver per outbound packet. */
    std::uint64_t netstackInstrPerTxPacket = 6000;

    /** Instructions per 64 B line copied between packet buffers and
     * the store (checksum + copy loops). */
    std::uint64_t copyInstrPerLine = 14;

    /** Code footprint walked per rx / tx packet (bytes). */
    std::uint64_t netstackRxPathBytes = 12 * kiB;
    std::uint64_t netstackTxPathBytes = 12 * kiB;
    /** Fixed-path code walked once per request (socket layer). */
    std::uint64_t netstackRequestPathBytes = 8 * kiB;

    /** Kernel socket-state lines touched per request (TCB fields,
     * sk_buff descriptors, epoll entries) on the receive and
     * transmit paths. These live in main memory, which is what
     * makes them expensive on Iridium. */
    unsigned sockStateLoadsRx = 3;
    unsigned sockStateStoresRx = 2;
    unsigned sockStateLoadsTx = 2;
    unsigned sockStateStoresTx = 1;

    // ---- UDP GET path (Facebook-style deployments) -----------------

    /** UDP skips connection state, ACK processing and most of the
     * TCP machinery: lighter per-packet and per-request costs and
     * only one socket-state line each way. */
    std::uint64_t udpInstrPerRequest = 26000;
    std::uint64_t udpInstrPerRxPacket = 5000;
    std::uint64_t udpInstrPerTxPacket = 3400;
    std::uint64_t udpRxPathBytes = 7 * kiB;
    std::uint64_t udpTxPathBytes = 7 * kiB;
    unsigned udpSockStateLoads = 1;
    unsigned udpSockStateStores = 1;

    // ---- Kernel-bypass path (poll-mode driver, batched rings) ------

    /** User-level request dispatch: no syscall, no epoll, no socket
     * lookup -- parse straight out of the DMA ring. The count is the
     * order TSSP/LaKe report for a user-level KV request path. */
    std::uint64_t bypassInstrPerRequest = 4000;

    /** Per-packet poll-mode RX work: descriptor read, header parse,
     * mbuf bookkeeping (~100 ns at 1 GHz, DPDK's envelope). */
    std::uint64_t bypassInstrPerRxPacket = 900;

    /** Per-packet TX work: descriptor write + header build. */
    std::uint64_t bypassInstrPerTxPacket = 700;

    /** Per-*batch* RX cost: doorbell MMIO, ring-tail update and
     * buffer replenish, amortized over DatapathParams::rxBatch. */
    std::uint64_t bypassInstrPerRxBatch = 1800;

    /** Per-batch TX cost: doorbell + completion reaping. */
    std::uint64_t bypassInstrPerTxBatch = 1400;

    /** Code footprint of the poll-mode RX/TX paths and the fixed
     * request path: small enough to stay L1-resident, which is half
     * the point of the bypass. */
    std::uint64_t bypassRxPathBytes = 2 * kiB;
    std::uint64_t bypassTxPathBytes = 2 * kiB;
    std::uint64_t bypassRequestPathBytes = 2 * kiB;

    /** Descriptor-ring lines dirtied per batch (tail pointer plus
     * one descriptor line); rings live in ordinary memory. */
    unsigned bypassRingStoresPerBatch = 1;

    // ---- Hash computation ------------------------------------------

    std::uint64_t hashInstrBase = 2000;
    std::uint64_t hashInstrPerKeyByte = 20;
    std::uint64_t hashCodeBytes = 2 * kiB;

    // ---- Memcached metadata -----------------------------------------

    /** Item lookup, LRU bookkeeping, response header build (GET). */
    std::uint64_t memcachedInstrGet = 7000;

    /** Allocation, hash insert, LRU insert (PUT), on top of GET. */
    std::uint64_t memcachedInstrPut = 20000;

    /** Extra instructions per hash-chain node walked. */
    std::uint64_t memcachedInstrPerChainNode = 90;

    /** Code footprint walked per GET / PUT. */
    std::uint64_t memcachedGetPathBytes = 7 * kiB;
    std::uint64_t memcachedPutPathBytes = 10 * kiB;

    // ---- Protocol byte overheads ------------------------------------

    /** Request line overhead beyond the key ("get \r\n"). */
    std::uint64_t getRequestOverheadBytes = 6;
    /** "VALUE <key> <flags> <len>\r\n...\r\nEND\r\n". */
    std::uint64_t getResponseOverheadBytes = 40;
    /** "set <key> <f> <e> <n>\r\n" + trailing "\r\n". */
    std::uint64_t putRequestOverheadBytes = 22;
    std::uint64_t putResponseBytes = 8;  // "STORED\r\n"
};

/** The default calibration used throughout the benches. */
const Calibration &defaultCalibration();

} // namespace mercury::server

#endif // MERCURY_SERVER_CALIBRATION_HH
