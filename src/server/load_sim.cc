#include "server/load_sim.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::server
{

LoadSimulation::LoadSimulation(const LoadSimParams &params)
    : params_(params), node_(params.node)
{
    keys_ = std::max<unsigned>(
        64, static_cast<unsigned>(
                4 * miB / std::max<std::uint32_t>(
                              params_.valueBytes, 256)));
    node_.populate(keys_, params_.valueBytes);
}

double
LoadSimulation::capacity()
{
    if (capacity_ == 0.0) {
        capacity_ =
            node_.measureGets(params_.valueBytes, 24, 6).avgTps;
    }
    return capacity_;
}

LoadPoint
LoadSimulation::run(double offered_tps)
{
    MERCURY_EXPECTS(offered_tps > 0.0,
                    "offered load must be positive");
    // An empty measurement window would index an empty latency
    // vector below (and divide by zero); catch it at the boundary.
    MERCURY_EXPECTS(params_.requests > 0,
                    "load simulation needs at least one measured "
                    "request");

    workload::PoissonArrivals arrivals(offered_tps, params_.seed);
    Rng rng(params_.seed * 7 + 1);

    std::vector<Tick> latencies;
    latencies.reserve(params_.requests);

    Tick arrival = node_.now();

    // Optional windowed time series. Everything below that feeds the
    // sampler is guarded, so an unsampled run takes the identical
    // path; sampling is pure observation of the same timeline.
    stats::Sampler *const sampler = params_.sampler;
    std::size_t ch_requests = 0, ch_gets = 0, ch_hits = 0;
    std::size_t ch_lat = 0;
    if (sampler) {
        ch_requests = sampler->addCounter("requests");
        ch_gets = sampler->addCounter("gets");
        ch_hits = sampler->addCounter("hits");
        sampler->addRatio("hit_rate", ch_hits, ch_gets, 1.0);
        ch_lat = sampler->addLatency("lat_us");
        sampler->begin(arrival);
    }
    Tick first_measured_arrival = 0;
    for (unsigned i = 0; i < params_.warmup + params_.requests; ++i) {
        const Tick prev_arrival = arrival;
        arrival = arrivals.next(arrival);
        // The open-loop generator must produce a monotone arrival
        // sequence; a regression here would make the FIFO service
        // rule below silently serve requests out of order.
        MERCURY_ASSERT(arrival >= prev_arrival,
                       "arrival process moved backwards: ", arrival,
                       " after ", prev_arrival);
        if (i == params_.warmup)
            first_measured_arrival = arrival;

        // FIFO: service begins when the server is free AND the
        // request has arrived.
        node_.advanceTo(arrival);
        const std::string key =
            "v" + std::to_string(params_.valueBytes) + ":" +
            std::to_string(rng.nextInt(keys_));
        if (sampler) {
            sampler->advanceTo(arrival);
            sampler->count(ch_requests);
        }
        if (rng.nextBool(params_.getFraction)) {
            const RequestTiming timing = node_.get(key);
            if (sampler) {
                sampler->count(ch_gets);
                if (timing.hit)
                    sampler->count(ch_hits);
            }
        } else {
            node_.put(key, params_.valueBytes);
        }

        MERCURY_ASSERT(node_.now() >= arrival,
                       "request completed before it arrived");
        if (sampler)
            sampler->recordLatency(
                ch_lat, static_cast<std::uint64_t>(
                            (node_.now() - arrival) / tickUs));
        if (i >= params_.warmup)
            latencies.push_back(node_.now() - arrival);
    }
    if (sampler)
        sampler->finish(arrival);

    std::sort(latencies.begin(), latencies.end());
    auto at = [&](double q) {
        return ticksToUs(latencies[static_cast<std::size_t>(
            q * static_cast<double>(latencies.size() - 1))]);
    };

    LoadPoint point;
    point.offeredTps = offered_tps;
    point.achievedTps =
        static_cast<double>(params_.requests) /
        ticksToSeconds(node_.now() - first_measured_arrival);
    double sum = 0.0;
    std::size_t sub_ms = 0;
    for (const Tick latency : latencies) {
        sum += ticksToUs(latency);
        if (latency < tickMs)
            ++sub_ms;
    }
    point.avgLatencyUs = sum / static_cast<double>(latencies.size());
    point.p50Us = at(0.50);
    point.p95Us = at(0.95);
    point.p99Us = at(0.99);
    point.subMsFraction = static_cast<double>(sub_ms) /
                          static_cast<double>(latencies.size());
    return point;
}

std::vector<LoadPoint>
LoadSimulation::sweep(const std::vector<double> &utilizations)
{
    const double cap = capacity();
    std::vector<LoadPoint> points;
    points.reserve(utilizations.size());
    for (const double u : utilizations)
        points.push_back(run(u * cap));
    return points;
}

} // namespace mercury::server
