/**
 * @file
 * Open-loop load simulation: Poisson arrivals against one server
 * core, FIFO service, measured response-time distribution.
 *
 * The paper's TPS numbers are closed-loop (1/RTT); real SLAs are
 * about the latency distribution under an offered load. This module
 * produces the classic latency-vs-load curve and locates the knee,
 * i.e. how much of a node's nominal throughput is usable before the
 * sub-millisecond guarantee erodes.
 */

#ifndef MERCURY_SERVER_LOAD_SIM_HH
#define MERCURY_SERVER_LOAD_SIM_HH

#include <vector>

#include "server/server_model.hh"
#include "sim/sampler.hh"
#include "workload/workload.hh"

namespace mercury::server
{

/** Static configuration of a load experiment. */
struct LoadSimParams
{
    ServerModelParams node;
    std::uint32_t valueBytes = 64;
    double getFraction = 0.95;
    /** Measured requests per load point (after warmup). */
    unsigned requests = 400;
    unsigned warmup = 40;
    std::uint64_t seed = 3;

    /**
     * Optional windowed time-series sampler for run(): requests,
     * hit rate and windowed latency percentiles per sample window,
     * warmup included. Must be freshly constructed; run() registers
     * the channels, begins it at the first arrival and finishes it
     * before returning, so attach a new sampler per run(). Null (the
     * default) changes nothing.
     */
    stats::Sampler *sampler = nullptr;
};

/** One point of the latency-vs-load curve. */
struct LoadPoint
{
    double offeredTps = 0.0;
    double achievedTps = 0.0;
    double avgLatencyUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double subMsFraction = 0.0;
};

class LoadSimulation
{
  public:
    explicit LoadSimulation(const LoadSimParams &params);

    /** The node's closed-loop capacity (requests per second). */
    double capacity();

    /** Run one open-loop experiment at an offered rate. */
    LoadPoint run(double offered_tps);

    /** Attach (or detach with null) the sampler the next run() will
     * feed; see LoadSimParams::sampler for the contract. */
    void setSampler(stats::Sampler *sampler)
    {
        params_.sampler = sampler;
    }

    /** Latency curve at the given fractions of capacity. */
    std::vector<LoadPoint>
    sweep(const std::vector<double> &utilizations);

  private:
    LoadSimParams params_;
    ServerModel node_;
    unsigned keys_ = 0;
    double capacity_ = 0.0;
};

} // namespace mercury::server

#endif // MERCURY_SERVER_LOAD_SIM_HH
