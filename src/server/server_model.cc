#include "server/server_model.hh"

#include <algorithm>
#include <vector>

#include "kvstore/udp_frame.hh"
#include "sim/contract.hh"

namespace mercury::server
{

namespace
{

const Calibration defaultCal{};

std::uint64_t
linesOf(std::uint64_t bytes)
{
    return (bytes + 63) / 64;
}

} // anonymous namespace

const Calibration &
defaultCalibration()
{
    return defaultCal;
}

ServerModel::ServerModel(const ServerModelParams &params,
                         const SharedStackDevices *shared)
    : params_(params),
      map_(params.sliceBase, params.storeMemLimit + miB),
      stats_(params.name, params.statsParent),
      gets_(&stats_, "gets", "GET requests served"),
      puts_(&stats_, "puts", "PUT requests served"),
      getHits_(&stats_, "getHits", "GETs that found the key"),
      getMisses_(&stats_, "getMisses", "GETs that missed"),
      bytesIn_(&stats_, "bytesIn", "request payload bytes received"),
      bytesOut_(&stats_, "bytesOut", "response payload bytes sent"),
      hitRate_(&stats_, "hitRate", "GET hit fraction",
               [this] {
                   return gets_.value()
                              ? static_cast<double>(getHits_.value()) /
                                    static_cast<double>(gets_.value())
                              : 0.0;
               }),
      window_("window", &stats_),
      rttHist_(&window_, "rtt", "request round-trip ticks"),
      wireHist_(&window_, "wireTicks",
                "serialization + propagation ticks per request"),
      netstackHist_(&window_, "netstackTicks",
                    "network stack + copy ticks per request"),
      netstackRxHist_(&window_, "netstackRxTicks",
                      "receive-side stack + copy ticks per request"),
      netstackTxHist_(&window_, "netstackTxTicks",
                      "transmit-side stack + copy ticks per request"),
      nicCacheHist_(&window_, "nicCacheTicks",
                    "on-NIC GET cache ticks per request"),
      hashHist_(&window_, "hashTicks",
                "key hash computation ticks per request"),
      memcachedHist_(&window_, "memcachedTicks",
                     "metadata walk + persistence ticks per request"),
      tracer_(params.tracer),
      rng_(params.seed)
{
    if (shared) {
        dram_ = shared->dram;
        flash_ = shared->flash;
        c2s_ = shared->clientToServer;
        s2c_ = shared->serverToClient;
    }

    if (!c2s_) {
        net::NetParams np = params_.net;
        np.name = params_.name + ".c2s";
        ownedC2s_ = std::make_unique<net::NetworkPath>(
            np, params_.statsParent);
        np.name = params_.name + ".s2c";
        ownedS2c_ = std::make_unique<net::NetworkPath>(
            np, params_.statsParent);
        c2s_ = ownedC2s_.get();
        s2c_ = ownedS2c_.get();
    }

    if (params_.memory == MemoryKind::StackedDram) {
        if (!dram_) {
            mem::DramParams dp = mem::stackedDramParams();
            dp.name = params_.name + ".dram";
            dp.arrayLatency = params_.dramArrayLatency;
            dp.pagePolicy = params_.dramPagePolicy;
            ownedDram_ = std::make_unique<mem::DramModel>(
                dp, params_.statsParent);
            dram_ = ownedDram_.get();
        }
        memory_ = dram_;
        MERCURY_EXPECTS(map_.end() <= dram_->capacityBytes(),
                        "store too large for the DRAM slice");
    } else {
        if (!flash_) {
            mem::FlashParams fp;
            fp.name = params_.name + ".flash";
            fp.readLatency = params_.flashReadLatency;
            fp.programLatency = params_.flashWriteLatency;
            if (params_.flashPageBytes)
                fp.pageBytes = params_.flashPageBytes;
            if (params_.flashCapacity)
                fp.capacity = params_.flashCapacity;
            ownedFlash_ = std::make_unique<mem::FlashController>(
                fp, params_.statsParent);
            flash_ = ownedFlash_.get();
        }

        mem::SimpleMemParams sp;
        sp.name = params_.name + ".sram";
        sp.capacity = 512 * kiB;
        sram_ = std::make_unique<mem::SimpleMemory>(sp);

        router_ = std::make_unique<mem::RegionRouter>(params_.name +
                                                      ".router");
        // Code lives in flash like the rest of the image (which is
        // why Iridium needs the L2, Sec. 4.2.1); only the NIC
        // buffers and scratch are SRAM. With sliceBase != 0 each
        // core's regions land in its own flash channel slice.
        const std::uint64_t flash_offset = params_.sliceBase;
        router_->addRegion(map_.sramRegion(), sram_.get());
        router_->addRegion(map_.coldRegion(), flash_, flash_offset);
        router_->addRegion(map_.codeRegion(), flash_,
                           flash_offset + map_.coldRegion().size);
        memory_ = router_.get();
        MERCURY_EXPECTS(flash_offset + map_.coldRegion().size +
                        map_.codeSize() <= flash_->capacityBytes(),
                        "store too large for the flash slice");

        // The code image and the kernel's socket-state pages are
        // resident in flash from boot: map them so later reads pay
        // real sense latency.
        Tick t = 0;
        for (std::uint64_t line = 0; line < map_.codeSize() / 64;
             ++line) {
            t = router_->access(mem::AccessType::Write,
                                map_.codeRegion().base + line * 64,
                                64, t);
        }
        for (std::uint64_t line = 0; line < map_.sockSize() / 64;
             ++line) {
            t = router_->access(mem::AccessType::Write,
                                map_.sockBase() + line * 64, 64, t);
        }
        cursor_ = flash_->drainChannel(ourChannel(), t);
    }

    mem::HierarchyParams hp =
        cpu::defaultHierarchy(params_.core.type, params_.withL2);
    hp.name = params_.name + ".caches";
    if (params_.l2SizeBytes)
        hp.l2.sizeBytes = params_.l2SizeBytes;
    caches_ = std::make_unique<mem::CacheHierarchy>(
        hp, memory_, params_.statsParent);

    cpu::CoreParams cp = params_.core;
    cp.name = params_.name + ".core";
    core_ = std::make_unique<cpu::CoreModel>(cp, caches_.get(),
                                             params_.statsParent);

    kvstore::StoreParams sp;
    sp.name = params_.name + ".store";
    sp.memLimit = params_.storeMemLimit;
    sp.eviction = params_.eviction;
    sp.locking = params_.locking;
    sp.hashPower = 16;
    store_ = std::make_unique<kvstore::Store>(sp);
    if (params_.statsParent)
        store_->registerStats(params_.statsParent);

    if (params_.datapath.nicCacheEnabled())
        nicCache_ = std::make_unique<net::NicGetCache>(
            params_.datapath, &stats_);
}

ServerModel::PathKind
ServerModel::getPath() const
{
    if (params_.datapath.bypass())
        return PathKind::Bypass;
    return params_.udpGets ? PathKind::Udp : PathKind::Tcp;
}

unsigned
ServerModel::ourChannel() const
{
    MERCURY_EXPECTS(flash_ != nullptr, "ourChannel needs flash");
    // All of this core's cold traffic lands in the channel holding
    // its slice base.
    return flash_->channelOf(params_.sliceBase %
                             flash_->capacityBytes());
}

void
ServerModel::setFaultInjector(fault::FaultInjector *injector)
{
    c2s_->setFaultInjector(injector);
    s2c_->setFaultInjector(injector);
    if (flash_)
        flash_->setFaultInjector(injector);
}

void
ServerModel::setPacketLoss(double probability)
{
    c2s_->setLossProbability(probability);
    s2c_->setLossProbability(probability);
}

void
ServerModel::setFlashWear(double program_fail_probability)
{
    if (flash_) {
        flash_->setWearRates(program_fail_probability,
                             flash_->params().eraseFailProbability);
    }
}

std::uint64_t
ServerModel::netDrops() const
{
    return c2s_->droppedPackets() + s2c_->droppedPackets();
}

std::uint64_t
ServerModel::netRetransmits() const
{
    return c2s_->retransmittedPackets() +
           s2c_->retransmittedPackets();
}

mem::MemDevice &
ServerModel::dataDevice()
{
    return params_.memory == MemoryKind::StackedDram
               ? static_cast<mem::MemDevice &>(*dram_)
               : static_cast<mem::MemDevice &>(*flash_);
}

std::string
ServerModel::keyFor(std::uint32_t value_bytes, unsigned index) const
{
    return "v" + std::to_string(value_bytes) + ":" +
           std::to_string(index);
}

unsigned
ServerModel::populatedKeys(std::uint32_t value_bytes) const
{
    auto it = populated_.find(value_bytes);
    return it == populated_.end() ? 0 : it->second;
}

unsigned
ServerModel::populate(unsigned num_keys, std::uint32_t value_bytes)
{
    const std::string value(value_bytes, 'v');
    unsigned start = populatedKeys(value_bytes);
    unsigned stored = start;

    for (unsigned i = start; i < start + num_keys; ++i) {
        kvstore::ProbeTrace probe;
        const auto status = store_->setTraced(keyFor(value_bytes, i),
                                              value, 0, 0, probe);
        if (status != kvstore::StoreStatus::Stored)
            break;
        ++stored;

        if (params_.memory == MemoryKind::Flash) {
            // Warm the device functionally so flash pages holding
            // this item (and its bucket line) are mapped.
            const Addr item = map_.mapDataPointer(
                store_->slabs(), probe.itemAddr);
            const std::uint64_t item_bytes = kvstore::Item::totalSize(
                keyFor(value_bytes, i).size(), value_bytes);
            Tick t = cursor_;
            for (std::uint64_t line = 0; line < linesOf(item_bytes);
                 ++line) {
                t = memory_->access(mem::AccessType::Write,
                                    item + line * 64, 64, t);
            }
            t = memory_->access(
                mem::AccessType::Write,
                map_.mapBucketIndex(probe.bucketIndex), 64, t);
            cursor_ = std::max(cursor_, t);
        }
    }

    if (flash_)
        cursor_ = std::max(
            cursor_, flash_->drainChannel(ourChannel(), cursor_));

    populated_[value_bytes] = stored;
    return stored - start;
}

void
ServerModel::recordRequest(const RequestTiming &timing, Tick rx,
                           Tick tx)
{
    rttHist_.record(timing.rtt);
    wireHist_.record(timing.breakdown.wire);
    netstackHist_.record(timing.breakdown.netstack);
    netstackRxHist_.record(rx);
    netstackTxHist_.record(tx);
    nicCacheHist_.record(timing.breakdown.nicCache);
    hashHist_.record(timing.breakdown.hash);
    memcachedHist_.record(timing.breakdown.memcached);
}

Tick
ServerModel::runPhase(const cpu::OpTrace &trace)
{
    if (trace.empty())
        return 0;
    const cpu::RunResult result = core_->run(trace, cursor_);
    MERCURY_ENSURES(result.end >= cursor_,
                    "CPU phase moved the node clock backwards");
    cursor_ = result.end;
    contract::noteTick(cursor_);
    return result.elapsed();
}

Addr
ServerModel::randomSockLine()
{
    const std::uint64_t lines = map_.sockSize() / 64;
    return map_.sockBase() + rng_.nextInt(lines) * 64;
}

Addr
ServerModel::mutableMetaAddr(Addr line)
{
    // On Mercury, mutable metadata (socket state, LRU bookkeeping)
    // is ordinary DRAM. On Iridium it must not be: a dirty line per
    // request would turn into a 200 us flash program in steady
    // state and destroy GET throughput -- the same reason McDipper
    // keeps its index in RAM. We model Iridium's mutable metadata
    // as an SRAM-backed working area (reads of cold state still
    // page in from flash at full sense latency).
    if (params_.memory != MemoryKind::Flash)
        return line;
    return map_.scratchBase() + (line / 64 * 64) %
                                    (map_.scratchSize() / 2);
}

void
ServerModel::buildRxPhase(cpu::OpTrace &trace,
                          std::uint64_t payload_bytes,
                          unsigned packets, PathKind path)
{
    const Calibration &cal = params_.cal;
    cpu::TraceBuilder b(trace);
    const bool udp = path == PathKind::Udp;

    if (path == PathKind::Bypass) {
        // Poll-mode user-level path: no syscalls, no socket state;
        // the request parses straight out of the DMA ring. Doorbell
        // and ring-refill costs are charged per batch and amortized
        // over rxBatch packets (the closed-loop walk serves one
        // request at a time, so the amortized share is charged
        // deterministically instead of sampling queue occupancy).
        const unsigned batch =
            std::max(1u, params_.datapath.rxBatch);
        b.codePass(map_.netstackCode() + 64 * kiB,
                   cal.bypassRequestPathBytes,
                   cal.bypassInstrPerRequest / 2);
        // Descriptor-ring tail update (the bypass path's only
        // mutable shared state; the sock region stands in for the
        // ring memory).
        for (unsigned s = 0; s < cal.bypassRingStoresPerBatch; ++s)
            b.randomStore(mutableMetaAddr(randomSockLine()));
        const std::uint64_t per_packet =
            packets ? payload_bytes / packets : 0;
        for (unsigned p = 0; p < packets; ++p) {
            b.codePass(map_.netstackCode(), cal.bypassRxPathBytes,
                       cal.bypassInstrPerRxPacket +
                           cal.bypassInstrPerRxBatch / batch);
            const std::uint64_t lines = linesOf(per_packet + 64);
            b.streamRead(map_.bufferAddr(p * 2048),
                         (per_packet + 64));
            b.compute(lines * cal.copyInstrPerLine);
        }
        return;
    }

    // Socket-layer fixed path (half charged on receive). The UDP
    // path skips connection management and ACK bookkeeping.
    b.codePass(map_.netstackCode() + 64 * kiB,
               cal.netstackRequestPathBytes,
               (udp ? cal.udpInstrPerRequest
                    : cal.netstackInstrPerRequest) / 2);

    // Connection/socket state touched on the receive path.
    const unsigned loads =
        udp ? cal.udpSockStateLoads : cal.sockStateLoadsRx;
    const unsigned stores =
        udp ? cal.udpSockStateStores : cal.sockStateStoresRx;
    for (unsigned i = 0; i < loads; ++i)
        b.chaseLoad(randomSockLine());
    for (unsigned i = 0; i < stores; ++i)
        b.randomStore(mutableMetaAddr(randomSockLine()));

    const std::uint64_t per_packet =
        packets ? payload_bytes / packets : 0;
    for (unsigned p = 0; p < packets; ++p) {
        b.codePass(map_.netstackCode(),
                   udp ? cal.udpRxPathBytes
                       : cal.netstackRxPathBytes,
                   udp ? cal.udpInstrPerRxPacket
                       : cal.netstackInstrPerRxPacket);
        // The NIC has DMAed the packet into the buffer ring; the
        // stack reads it (header inspection + copy to socket).
        const std::uint64_t lines = linesOf(per_packet + 64);
        b.streamRead(map_.bufferAddr(p * 2048), (per_packet + 64));
        b.compute(lines * cal.copyInstrPerLine);
    }
}

void
ServerModel::buildTxCodePhase(cpu::OpTrace &trace, unsigned packets,
                              PathKind path)
{
    const Calibration &cal = params_.cal;
    cpu::TraceBuilder b(trace);
    const bool udp = path == PathKind::Udp;

    if (path == PathKind::Bypass) {
        const unsigned batch =
            std::max(1u, params_.datapath.txBatch);
        b.codePass(map_.netstackCode() + 64 * kiB,
                   cal.bypassRequestPathBytes,
                   cal.bypassInstrPerRequest / 2);
        for (unsigned s = 0; s < cal.bypassRingStoresPerBatch; ++s)
            b.randomStore(mutableMetaAddr(randomSockLine()));
        for (unsigned p = 0; p < packets; ++p) {
            b.codePass(map_.netstackCode() + 32 * kiB,
                       cal.bypassTxPathBytes,
                       cal.bypassInstrPerTxPacket +
                           cal.bypassInstrPerTxBatch / batch);
        }
        return;
    }

    b.codePass(map_.netstackCode() + 64 * kiB,
               cal.netstackRequestPathBytes,
               (udp ? cal.udpInstrPerRequest
                    : cal.netstackInstrPerRequest) / 2);
    const unsigned loads =
        udp ? cal.udpSockStateLoads : cal.sockStateLoadsTx;
    const unsigned stores =
        udp ? cal.udpSockStateStores : cal.sockStateStoresTx;
    for (unsigned i = 0; i < loads; ++i)
        b.chaseLoad(randomSockLine());
    for (unsigned i = 0; i < stores; ++i)
        b.randomStore(mutableMetaAddr(randomSockLine()));
    for (unsigned p = 0; p < packets; ++p) {
        b.codePass(map_.netstackCode() + 32 * kiB,
                   udp ? cal.udpTxPathBytes
                       : cal.netstackTxPathBytes,
                   udp ? cal.udpInstrPerTxPacket
                       : cal.netstackInstrPerTxPacket);
    }
}

void
ServerModel::buildHashPhase(cpu::OpTrace &trace,
                            std::size_t key_len) const
{
    const Calibration &cal = params_.cal;
    cpu::TraceBuilder b(trace);
    b.codePass(map_.hashCode(), cal.hashCodeBytes,
               cal.hashInstrBase + cal.hashInstrPerKeyByte * key_len);
}

void
ServerModel::buildLookupPhase(cpu::OpTrace &trace,
                              const kvstore::ProbeTrace &probe,
                              bool is_put)
{
    const Calibration &cal = params_.cal;
    cpu::TraceBuilder b(trace);

    const std::uint64_t chain = probe.chainItems.size();
    b.codePass(map_.memcachedCode(),
               is_put ? cal.memcachedPutPathBytes
                      : cal.memcachedGetPathBytes,
               (is_put ? cal.memcachedInstrPut
                       : cal.memcachedInstrGet) +
                   cal.memcachedInstrPerChainNode * chain);

    // Bucket head, then the dependent chain walk.
    b.chaseLoad(map_.mapBucketIndex(probe.bucketIndex));
    for (const void *ptr : probe.chainItems)
        b.chaseLoad(map_.mapDataPointer(store_->slabs(), ptr));

    if (probe.itemAddr) {
        const Addr item =
            map_.mapDataPointer(store_->slabs(), probe.itemAddr);
        // LRU/bookkeeping dirties the item header and its list
        // neighbour (approximated by the previously touched item).
        // Mercury dirties the item headers in DRAM; Iridium's
        // mutable index lives in the SRAM working area (see
        // mutableMetaAddr) except on PUTs, where the new header is
        // genuinely written in place and persisted below.
        b.randomStore(is_put ? item : mutableMetaAddr(item));
        if (lastHotItem_ && lastHotItem_ != item)
            b.randomStore(mutableMetaAddr(lastHotItem_));
        lastHotItem_ = item;
    }

    for (const void *ptr : probe.evictedItems) {
        const Addr victim =
            map_.mapDataPointer(store_->slabs(), ptr);
        b.chaseLoad(victim);
        b.randomStore(mutableMetaAddr(victim));
    }

    if (is_put) {
        // Slab free-list and bucket-link updates.
        b.randomStore(map_.scratchBase() + 4096);
        b.randomStore(map_.mapBucketIndex(probe.bucketIndex));
    }
}

void
ServerModel::buildValueCopy(cpu::OpTrace &trace, Addr value_addr,
                            std::uint64_t bytes, bool to_store)
{
    if (bytes == 0)
        return;
    const Calibration &cal = params_.cal;
    cpu::TraceBuilder b(trace);

    // The buffer side wraps around the (small) ring; the value side
    // is a contiguous stream through the item.
    const std::uint64_t lines = linesOf(bytes);
    if (to_store) {
        for (std::uint64_t i = 0; i < lines; ++i) {
            trace.push_back(cpu::Op::load(
                map_.bufferAddr(bufferCursor_ + i * 64),
                cpu::Stream::Sequential));
            trace.push_back(cpu::Op::store(value_addr + i * 64,
                                           cpu::Stream::Sequential));
        }
    } else {
        for (std::uint64_t i = 0; i < lines; ++i) {
            trace.push_back(cpu::Op::load(value_addr + i * 64,
                                          cpu::Stream::Sequential));
            trace.push_back(cpu::Op::store(
                map_.bufferAddr(bufferCursor_ + i * 64),
                cpu::Stream::Sequential));
        }
    }
    bufferCursor_ += bytes;
    b.compute(lines * cal.copyInstrPerLine);
}

RequestTiming
ServerModel::get(const std::string &key)
{
    const Calibration &cal = params_.cal;
    const PathKind path = getPath();
    const Tick t0 = cursor_;

    std::uint32_t traceReq = 0;
    if (MERCURY_TRACING && tracer_)
        traceReq = tracer_->beginRequest();

    const std::uint64_t req_payload =
        key.size() + cal.getRequestOverheadBytes;
    const auto arrival =
        path == PathKind::Bypass
            ? c2s_->deliverDatagrams(
                  req_payload, t0,
                  static_cast<unsigned>(
                      kvstore::udpDatagramCount(req_payload)))
            : c2s_->deliver(req_payload, t0);
    cursor_ = arrival.completion;
    MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::NicIn, t0,
                       arrival.completion, req_payload);

    PhaseTimes pt;

    // On-NIC GET cache: the lookup engine sits between the MAC and
    // the DMA engine. A hit answers at wire latency without waking
    // the core; a miss pays the lookup and forwards to the host.
    if (nicCache_) {
        const Tick begin = cursor_;
        const auto cached = nicCache_->lookup(key);
        pt.nicCache = params_.datapath.nicCacheLookupLatency;
        cursor_ += pt.nicCache;
        contract::noteTick(cursor_);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::NicCache,
                           begin, cursor_, cached ? 1 : 0);
        if (cached) {
            const std::uint64_t resp_payload =
                cached->size() + cal.getResponseOverheadBytes;
            const auto response = s2c_->deliverDatagrams(
                resp_payload, cursor_,
                static_cast<unsigned>(
                    kvstore::udpDatagramCount(resp_payload)));
            const Tick wire = (arrival.completion - t0) +
                              (response.completion - cursor_);
            MERCURY_TRACE_SPAN(tracer_, traceReq,
                               trace::Stage::NicOut, cursor_,
                               response.completion, resp_payload);
            cursor_ = response.completion;
            MERCURY_TRACE_SPAN(tracer_, traceReq,
                               trace::Stage::Request, t0, cursor_, 1);

            RequestTiming timing;
            timing.rtt = response.completion - t0;
            timing.breakdown = {wire, 0, 0, 0, pt.nicCache};
            timing.hit = true;

            ++gets_;
            ++getHits_;
            bytesIn_ += req_payload;
            bytesOut_ += resp_payload;
            recordRequest(timing, 0, 0);
            return timing;
        }
    }

    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildRxPhase(trace, req_payload, arrival.packets, path);
        pt.rx += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Netstack,
                           begin, cursor_, arrival.packets);
    }
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildHashPhase(trace, key.size());
        pt.hash += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Hash,
                           begin, cursor_, key.size());
    }

    kvstore::ProbeTrace probe;
    const kvstore::GetResult result = store_->getTraced(key, probe);
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildLookupPhase(trace, probe, false);
        pt.memcached += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::StoreWalk,
                           begin, cursor_, probe.chainItems.size());
    }

    // The NIC cache observes the response DMA and keeps a copy of
    // hot values (zero CPU cost; the fill engine runs beside the
    // DMA engine). SETs invalidate, so a cached value can never
    // diverge from the store's copy.
    if (nicCache_ && result.hit)
        nicCache_->fill(key, result.value);

    const std::uint64_t resp_payload =
        result.hit ? probe.valueLen + cal.getResponseOverheadBytes
                   : 5;  // "END\r\n"
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        const unsigned packets =
            path == PathKind::Bypass
                ? static_cast<unsigned>(
                      kvstore::udpDatagramCount(resp_payload))
                : s2c_->segmenter().numSegments(resp_payload);
        buildTxCodePhase(trace, packets, path);
        if (result.hit && probe.itemAddr) {
            const Addr value_addr =
                map_.mapDataPointer(store_->slabs(), probe.itemAddr) +
                sizeof(kvstore::Item) + key.size();
            buildValueCopy(trace, value_addr, probe.valueLen, false);
        }
        pt.tx += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Netstack,
                           begin, cursor_, resp_payload);
    }

    const auto response =
        path == PathKind::Bypass
            ? s2c_->deliverDatagrams(
                  resp_payload, cursor_,
                  static_cast<unsigned>(
                      kvstore::udpDatagramCount(resp_payload)))
            : s2c_->deliver(resp_payload, cursor_);
    const Tick wire = (arrival.completion - t0) +
                      (response.completion - cursor_);
    MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::NicOut,
                       cursor_, response.completion, resp_payload);
    cursor_ = response.completion;
    MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Request, t0,
                       cursor_, result.hit ? 1 : 0);

    RequestTiming timing;
    timing.rtt = response.completion - t0;
    timing.breakdown = {wire, pt.netstack(), pt.hash, pt.memcached,
                        pt.nicCache};
    timing.hit = result.hit;

    ++gets_;
    if (result.hit)
        ++getHits_;
    else
        ++getMisses_;
    bytesIn_ += req_payload;
    bytesOut_ += resp_payload;
    recordRequest(timing, pt.rx, pt.tx);
    return timing;
}

RequestTiming
ServerModel::put(const std::string &key, std::uint32_t value_bytes)
{
    const Calibration &cal = params_.cal;
    // PUTs keep TCP framing on the wire (reliable transport); in
    // bypass mode the CPU walks the user-level stack (mTCP-style)
    // instead of the kernel path.
    const PathKind path = params_.datapath.bypass()
                              ? PathKind::Bypass
                              : PathKind::Tcp;
    const Tick t0 = cursor_;

    std::uint32_t traceReq = 0;
    if (MERCURY_TRACING && tracer_)
        traceReq = tracer_->beginRequest();

    const std::uint64_t req_payload =
        key.size() + value_bytes + cal.putRequestOverheadBytes;
    const auto arrival = c2s_->deliver(req_payload, t0);
    cursor_ = arrival.completion;
    MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::NicIn, t0,
                       arrival.completion, req_payload);

    PhaseTimes pt;
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildRxPhase(trace, req_payload, arrival.packets, path);
        pt.rx += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Netstack,
                           begin, cursor_, arrival.packets);
    }
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildHashPhase(trace, key.size());
        pt.hash += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Hash,
                           begin, cursor_, key.size());
    }

    kvstore::ProbeTrace probe;
    const std::string value(value_bytes, 'p');
    const auto status = store_->setTraced(key, value, 0, 0, probe);
    // The NIC cache snoops SETs and drops its copy (LaKe's
    // invalidate-on-write); the invalidation engine costs no CPU
    // time.
    if (nicCache_)
        nicCache_->invalidate(key);
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildLookupPhase(trace, probe, true);
        pt.memcached += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::StoreWalk,
                           begin, cursor_, probe.chainItems.size());
    }

    // Copy the inbound value from the socket buffers into the item
    // (data-transfer time, charged to the network stack per Fig. 4).
    if (status == kvstore::StoreStatus::Stored && probe.itemAddr) {
        cpu::OpTrace trace;
        const Addr value_addr =
            map_.mapDataPointer(store_->slabs(), probe.itemAddr) +
            sizeof(kvstore::Item) + key.size();
        buildValueCopy(trace, value_addr, value_bytes, true);
        pt.rx += runPhase(trace);
    }

    // On Iridium the stored item must actually be programmed into
    // flash before the server acknowledges: the paper keeps write
    // latency at 200 us and PUT throughput is bound by it (Fig. 6).
    if (params_.memory == MemoryKind::Flash &&
        status == kvstore::StoreStatus::Stored && probe.itemAddr) {
        const Tick memBegin = cursor_;
        const Addr item =
            map_.mapDataPointer(store_->slabs(), probe.itemAddr);
        const std::uint64_t item_bytes =
            kvstore::Item::totalSize(key.size(), value_bytes);
        Tick t = cursor_;
        for (std::uint64_t line = 0; line < linesOf(item_bytes);
             ++line) {
            t = memory_->access(mem::AccessType::Write,
                                item + line * 64, 64, t);
        }
        t = memory_->access(mem::AccessType::Write,
                            map_.mapBucketIndex(probe.bucketIndex),
                            64, t);
        // Unlink of the replaced/evicted items must also persist.
        for (const void *ptr : probe.evictedItems) {
            t = memory_->access(
                mem::AccessType::Write,
                map_.mapDataPointer(store_->slabs(), ptr), 64, t);
        }
        t = flash_->drainChannel(ourChannel(), t);
        pt.memcached += t - cursor_;
        cursor_ = t;
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Memory,
                           memBegin, cursor_, item_bytes);
    }

    const std::uint64_t resp_payload = cal.putResponseBytes;
    {
        Tick begin = cursor_;
        cpu::OpTrace trace;
        buildTxCodePhase(trace, 1, path);
        pt.tx += runPhase(trace);
        MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Netstack,
                           begin, cursor_, resp_payload);
    }

    const auto response = s2c_->deliver(resp_payload,
                                                  cursor_);
    const Tick wire = (arrival.completion - t0) +
                      (response.completion - cursor_);
    MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::NicOut,
                       cursor_, response.completion, resp_payload);
    cursor_ = response.completion;
    MERCURY_TRACE_SPAN(tracer_, traceReq, trace::Stage::Request, t0,
                       cursor_,
                       status == kvstore::StoreStatus::Stored ? 1 : 0);

    RequestTiming timing;
    timing.rtt = response.completion - t0;
    timing.breakdown = {wire, pt.netstack(), pt.hash, pt.memcached,
                        pt.nicCache};
    timing.hit = status == kvstore::StoreStatus::Stored;

    ++puts_;
    bytesIn_ += req_payload;
    bytesOut_ += resp_payload;
    recordRequest(timing, pt.rx, pt.tx);
    return timing;
}

Measurement
ServerModel::measure(bool puts, std::uint32_t value_bytes,
                     unsigned samples, unsigned warmup)
{
    // Memcached's item ceiling is one slab page (1 MiB) including
    // the header and key; a nominal "1 MB" request therefore stores
    // the largest value that fits, exactly as real clients must.
    const auto max_value = static_cast<std::uint32_t>(
        store_->slabs().params().pageSize - 512);
    value_bytes = std::min(value_bytes, max_value);

    // Working set comfortably larger than the L2 so steady-state
    // accesses are cold, as the paper's closed-page worst case
    // assumes.
    const std::uint64_t target_bytes = 8 * miB;
    const unsigned want = static_cast<unsigned>(std::clamp<
        std::uint64_t>(target_bytes / std::max<std::uint32_t>(
                           value_bytes, 256),
                       16, 20000));
    const unsigned have = populatedKeys(value_bytes);
    if (have < want)
        populate(want - have, value_bytes);
    const unsigned keys = populatedKeys(value_bytes);
    MERCURY_ASSERT(keys > 0, "populate stored nothing");

    // Quiesce between measurement runs: a real server gets idle
    // gaps in which dirty write-back state drains; without this,
    // dirty lines left by a previous (PUT) experiment flush into
    // the middle of this one and distort it.
    caches_->flushAll();
    if (flash_)
        cursor_ = std::max(
            cursor_, flash_->drainChannel(ourChannel(), cursor_));

    std::vector<Tick> rtts;
    rtts.reserve(samples);
    std::uint64_t payload_total = 0;
    Tick span_begin = 0;

    for (unsigned i = 0; i < warmup + samples; ++i) {
        const std::string key =
            keyFor(value_bytes, static_cast<unsigned>(
                                    rng_.nextInt(keys)));
        if (i == warmup) {
            span_begin = cursor_;
            // From here the window histograms hold exactly the
            // sampled requests; the breakdown below is a registry
            // query over them rather than bespoke accumulation.
            window_.resetStats();
        }
        const RequestTiming timing =
            puts ? put(key, value_bytes) : get(key);
        if (i < warmup)
            continue;
        rtts.push_back(timing.rtt);
        payload_total += value_bytes;
    }

    MERCURY_ASSERT(rttHist_.count() == samples,
                   "measurement window lost requests");

    Measurement m;
    const Tick span = cursor_ - span_begin;
    m.avgTps = static_cast<double>(samples) / ticksToSeconds(span);
    const double n = static_cast<double>(samples);
    m.avgRttUs = ticksToUs(span) / n;
    m.avgBreakdown = {
        static_cast<Tick>(wireHist_.totalSum() / samples),
        static_cast<Tick>(netstackHist_.totalSum() / samples),
        static_cast<Tick>(hashHist_.totalSum() / samples),
        static_cast<Tick>(memcachedHist_.totalSum() / samples),
        static_cast<Tick>(nicCacheHist_.totalSum() / samples)};
    std::sort(rtts.begin(), rtts.end());
    m.p99RttUs = ticksToUs(rtts[static_cast<std::size_t>(
        0.99 * (rtts.size() - 1))]);
    std::size_t sub_ms = 0;
    for (const Tick rtt : rtts) {
        if (rtt < tickMs)
            ++sub_ms;
    }
    m.subMsFraction = static_cast<double>(sub_ms) /
                      static_cast<double>(rtts.size());
    m.goodput = static_cast<double>(payload_total) /
                ticksToSeconds(span);
    return m;
}

Measurement
ServerModel::measureGets(std::uint32_t value_bytes, unsigned samples,
                         unsigned warmup)
{
    return measure(false, value_bytes, samples, warmup);
}

Measurement
ServerModel::measurePuts(std::uint32_t value_bytes, unsigned samples,
                         unsigned warmup)
{
    return measure(true, value_bytes, samples, warmup);
}

} // namespace mercury::server
