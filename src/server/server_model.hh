/**
 * @file
 * End-to-end timing model of a single-core Mercury/Iridium (or
 * baseline Xeon) server node running the functional key-value store.
 *
 * A request is simulated as: client -> wire -> NIC -> per-packet
 * network-stack processing -> hash -> store metadata walk (driven by
 * the *real* Store's probe trace) -> value streaming -> wire back.
 * CPU work executes as an operation trace on the core model through
 * the cache hierarchy into the configured memory device, so latency
 * sensitivity, L2 effects and flash behaviour all emerge from
 * mechanism.
 */

#ifndef MERCURY_SERVER_SERVER_MODEL_HH
#define MERCURY_SERVER_SERVER_MODEL_HH

#include <map>
#include <memory>
#include <string>

#include "cpu/core.hh"
#include "kvstore/store.hh"
#include "mem/dram.hh"
#include "mem/flash.hh"
#include "mem/region_router.hh"
#include "mem/simple_mem.hh"
#include "net/datapath.hh"
#include "net/network.hh"
#include "server/address_map.hh"
#include "server/calibration.hh"
#include "sim/contract.hh"
#include "sim/fault.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace mercury::server
{

/** What backs the stack's storage. */
enum class MemoryKind { StackedDram, Flash };

/** Static configuration of a server node model. */
struct ServerModelParams
{
    std::string name = "server";

    cpu::CoreParams core = cpu::cortexA7Params();
    bool withL2 = true;

    MemoryKind memory = MemoryKind::StackedDram;

    /** Closed-page DRAM latency (Fig. 5 sweeps 10-100 ns). */
    Tick dramArrayLatency = 10 * tickNs;

    /** Flash read latency (Fig. 6 sweeps 10-20 us). */
    Tick flashReadLatency = 10 * tickUs;
    /** Flash program latency (fixed at 200 us in the paper). */
    Tick flashWriteLatency = 200 * tickUs;

    /** DRAM row-buffer policy (closed-page is the paper's
     * worst-case assumption; open-page is the ablation). */
    mem::PagePolicy dramPagePolicy = mem::PagePolicy::Closed;

    /** L2 capacity override; 0 keeps the core type's default 2 MB. */
    std::uint64_t l2SizeBytes = 0;

    /** Flash page size override; 0 keeps 4 KiB. Setting 64 degrades
     * the model to the paper's flat per-line flash latency (no page
     * locality), used by the flash-model ablation. */
    unsigned flashPageBytes = 0;
    /** Flash capacity override; 0 keeps the 19.8 GB stack. */
    std::uint64_t flashCapacity = 0;

    /** Serve GETs over UDP (Facebook-style): connectionless receive
     * and transmit paths with far less kernel work per packet. PUTs
     * stay on TCP for reliability, as in production deployments. */
    bool udpGets = false;

    net::NetParams net{};

    /** Kernel-bypass datapath configuration: poll-mode batched UDP
     * fast path, RSS steering (consumed by StackSimulation) and the
     * on-NIC GET cache. All defaults off; the default reproduces
     * the kernel path bit-for-bit. */
    net::DatapathParams datapath{};

    /** Eviction/locking of the store instance on this core. */
    kvstore::EvictionPolicyKind eviction =
        kvstore::EvictionPolicyKind::StrictLru;
    kvstore::LockingMode locking = kvstore::LockingMode::Global;

    /** Memory budget of this core's store (one DRAM port slice by
     * default, Sec. 4.1.2). */
    std::uint64_t storeMemLimit = 224 * miB;

    Calibration cal{};

    std::uint64_t seed = 1;

    /**
     * Parent group for this node's statistics tree. The model and
     * every device it owns register under it (bench harnesses pass
     * their Registry root so --stats-json sees the whole node);
     * nullptr keeps the groups as detached roots, exactly as before
     * observability existed.
     */
    stats::StatGroup *statsParent = nullptr;

    /** Request-lifecycle tracer; nullptr (the default) records
     * nothing and costs nothing. */
    trace::Tracer *tracer = nullptr;

    /** Base of this core's slice in the stack's address space; used
     * when several cores share one stack's devices (multi-core
     * stack simulation). */
    Addr sliceBase = 0;
};

/**
 * Devices shared by all cores of one stack. When passed to a
 * ServerModel, the model uses these instead of creating private
 * ones, so port/channel/link contention between cores emerges.
 */
struct SharedStackDevices
{
    mem::DramModel *dram = nullptr;
    mem::FlashController *flash = nullptr;
    net::NetworkPath *clientToServer = nullptr;
    net::NetworkPath *serverToClient = nullptr;
};

/** Where a request's time went. */
struct RttBreakdown
{
    Tick wire = 0;       ///< serialization + propagation, both ways
    Tick netstack = 0;   ///< kernel/driver CPU time + data copies
    Tick hash = 0;       ///< key hash computation
    Tick memcached = 0;  ///< metadata walk & bookkeeping
    Tick nicCache = 0;   ///< on-NIC GET cache lookup/answer time

    Tick
    total() const
    {
        return wire + netstack + hash + memcached + nicCache;
    }

  private:
    double
    fractionOf(Tick part) const
    {
        return total() ? static_cast<double>(part) /
                             static_cast<double>(total())
                       : 0.0;
    }

  public:
    /** CPU time in the network stack only -- wire time is reported
     * separately by wireFraction() since the datapath PR split the
     * two (they respond to different optimizations). */
    double
    netstackFraction() const
    {
        return fractionOf(netstack);
    }

    /** Serialization + propagation share, both directions. */
    double
    wireFraction() const
    {
        return fractionOf(wire);
    }

    /** On-NIC cache share (zero unless the cache is enabled). */
    double
    nicCacheFraction() const
    {
        return fractionOf(nicCache);
    }

    /** Whole network share (wire + stack + NIC cache), the quantity
     * Fig. 4 plots as "network stack". */
    double
    networkFraction() const
    {
        return fractionOf(wire + netstack + nicCache);
    }

    double
    hashFraction() const
    {
        return fractionOf(hash);
    }

    double
    memcachedFraction() const
    {
        return fractionOf(memcached);
    }
};

/** Timing of one request. */
struct RequestTiming
{
    Tick rtt = 0;
    RttBreakdown breakdown;
    bool hit = false;
};

/** Aggregate over a measurement run. */
struct Measurement
{
    double avgTps = 0.0;
    double avgRttUs = 0.0;
    RttBreakdown avgBreakdown;  ///< in ticks, averaged
    double p99RttUs = 0.0;
    /** Fraction of requests under 1 ms (the paper's SLA claim). */
    double subMsFraction = 0.0;
    /** Payload goodput, bytes per second. */
    double goodput = 0.0;
};

class ServerModel
{
  public:
    /**
     * @param params configuration for this core's view of the node
     * @param shared devices shared with sibling cores on the same
     *        stack; nullptr creates private devices (single-core
     *        stack, the paper's measurement setup)
     */
    explicit ServerModel(const ServerModelParams &params,
                         const SharedStackDevices *shared = nullptr);

    /**
     * Pre-load @p num_keys values of @p value_bytes under a distinct
     * per-size namespace, bypassing the timing path (the devices are
     * warmed functionally: flash pages get mapped, caches stay cold).
     *
     * @return number of keys actually resident (eviction may cap it).
     */
    unsigned populate(unsigned num_keys, std::uint32_t value_bytes);

    /** One timed GET for a previously populated key. */
    RequestTiming get(const std::string &key);

    /** One timed PUT. */
    RequestTiming put(const std::string &key,
                      std::uint32_t value_bytes);

    /**
     * Closed-loop measurement: populate a working set for
     * @p value_bytes, run warmup + samples requests of the given
     * kind over random keys, and aggregate.
     */
    Measurement measureGets(std::uint32_t value_bytes,
                            unsigned samples = 12,
                            unsigned warmup = 4);
    Measurement measurePuts(std::uint32_t value_bytes,
                            unsigned samples = 12,
                            unsigned warmup = 4);

    kvstore::Store &store() { return *store_; }
    const ServerModelParams &params() const { return params_; }
    Tick now() const { return cursor_; }

    /** Idle the node until @p tick (no-op if already past it);
     * used by open-loop load generators. */
    void
    advanceTo(Tick tick)
    {
        if (tick > cursor_) {
            cursor_ = tick;
            contract::noteTick(cursor_);
        }
    }

    /** The backing data device (DRAM or flash), for stats. */
    mem::MemDevice &dataDevice();

    mem::CacheHierarchy &caches() { return *caches_; }

    /**
     * This node's statistics tree: lifetime counters (gets, puts,
     * hits, bytes) plus the "window" subgroup of per-stage latency
     * histograms that measure*() resets at each warmup boundary, so
     * post-measurement the window holds exactly the sampled
     * requests. Fig. 4's breakdown is a query over this group.
     */
    const stats::StatGroup &stats() const { return stats_; }

    /**
     * Attach @p injector to this node's fault-capable devices: both
     * network directions and, when present, the flash controller.
     * nullptr detaches. Fault probabilities come from the device
     * params; with none set, attaching changes nothing.
     */
    void setFaultInjector(fault::FaultInjector *injector);

    /** Retune the per-segment loss probability on both network
     * directions (scheduled loss-burst scenarios). Only consulted
     * while an injector is attached. */
    void setPacketLoss(double probability);

    /** Retune the flash program-fail probability (scheduled wear
     * bursts); no-op on DRAM-backed nodes. The configured erase-fail
     * probability is preserved. */
    void setFlashWear(double program_fail_probability);

    /** Packets dropped across both network directions. */
    std::uint64_t netDrops() const;

    /** Segments retransmitted across both network directions. */
    std::uint64_t netRetransmits() const;

    /** Hits/misses/fills of the on-NIC GET cache; nullptr while the
     * cache is disabled. */
    const net::NicGetCache *nicCache() const { return nicCache_.get(); }

  private:
    /** Which transport path the CPU phases model. */
    enum class PathKind { Tcp, Udp, Bypass };

    /** Cycle accounting per request, split rx / proto / tx plus the
     * NIC-cache time (which bypasses the CPU entirely). */
    struct PhaseTimes
    {
        Tick rx = 0;        ///< receive-side stack + inbound copies
        Tick tx = 0;        ///< transmit-side stack + outbound copies
        Tick hash = 0;
        Tick memcached = 0;
        Tick nicCache = 0;

        Tick netstack() const { return rx + tx; }
    };

    /** Run one trace as a phase, returning elapsed time. */
    Tick runPhase(const cpu::OpTrace &trace);

    /** Record one finished request into the window histograms. */
    void recordRequest(const RequestTiming &timing, Tick rx, Tick tx);

    /** GET rx/tx transport selection under the datapath knobs. */
    PathKind getPath() const;

    void buildRxPhase(cpu::OpTrace &trace, std::uint64_t payload_bytes,
                      unsigned packets, PathKind path = PathKind::Tcp);
    void buildTxCodePhase(cpu::OpTrace &trace, unsigned packets,
                          PathKind path = PathKind::Tcp);
    /** Random line in the kernel socket-state region. */
    Addr randomSockLine();

    /** The flash channel serving this core's slice. */
    unsigned ourChannel() const;

    /** Where a mutable-metadata store for @p line actually lands
     * (DRAM in place; SRAM working area on Iridium). */
    Addr mutableMetaAddr(Addr line);
    void buildHashPhase(cpu::OpTrace &trace,
                        std::size_t key_len) const;
    void buildLookupPhase(cpu::OpTrace &trace,
                          const kvstore::ProbeTrace &probe,
                          bool is_put);
    /** Stream the value between the store and the buffer ring. */
    void buildValueCopy(cpu::OpTrace &trace, Addr value_addr,
                        std::uint64_t bytes, bool to_store);

    Measurement measure(bool puts, std::uint32_t value_bytes,
                        unsigned samples, unsigned warmup);

    std::string keyFor(std::uint32_t value_bytes, unsigned index) const;

    /** Namespace bookkeeping for populated working sets. */
    unsigned populatedKeys(std::uint32_t value_bytes) const;

    ServerModelParams params_;
    AddressMap map_;

    // Statistics. Declared before the devices/store so child groups
    // registered under stats_ (or params_.statsParent) are destroyed
    // before their parent.
    stats::StatGroup stats_;
    stats::Counter gets_;
    stats::Counter puts_;
    stats::Counter getHits_;
    stats::Counter getMisses_;
    stats::Counter bytesIn_;
    stats::Counter bytesOut_;
    stats::Formula hitRate_;
    stats::StatGroup window_;
    stats::LatencyHistogram rttHist_;
    stats::LatencyHistogram wireHist_;
    stats::LatencyHistogram netstackHist_;
    stats::LatencyHistogram netstackRxHist_;
    stats::LatencyHistogram netstackTxHist_;
    stats::LatencyHistogram nicCacheHist_;
    stats::LatencyHistogram hashHist_;
    stats::LatencyHistogram memcachedHist_;

    trace::Tracer *tracer_ = nullptr;

    /** On-NIC GET cache; null while disabled. */
    std::unique_ptr<net::NicGetCache> nicCache_;

    // Owned devices (empty when shared devices are injected).
    std::unique_ptr<mem::DramModel> ownedDram_;
    std::unique_ptr<mem::FlashController> ownedFlash_;
    std::unique_ptr<net::NetworkPath> ownedC2s_;
    std::unique_ptr<net::NetworkPath> ownedS2c_;

    // Per-core devices.
    std::unique_ptr<mem::SimpleMemory> sram_;
    std::unique_ptr<mem::RegionRouter> router_;

    // Working pointers (owned or shared).
    mem::DramModel *dram_ = nullptr;
    mem::FlashController *flash_ = nullptr;
    net::NetworkPath *c2s_ = nullptr;
    net::NetworkPath *s2c_ = nullptr;
    mem::MemDevice *memory_ = nullptr;

    std::unique_ptr<mem::CacheHierarchy> caches_;
    std::unique_ptr<cpu::CoreModel> core_;

    std::unique_ptr<kvstore::Store> store_;

    Tick cursor_ = 0;
    std::uint64_t bufferCursor_ = 0;
    /** Previous hot item (stands in for the LRU list head
     * neighbours that a strict-LRU relink dirties). */
    Addr lastHotItem_ = 0;

    Rng rng_;
    std::map<std::uint32_t, unsigned> populated_;
};

} // namespace mercury::server

#endif // MERCURY_SERVER_SERVER_MODEL_HH
