#include "server/stack_sim.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::server
{

StackSimulation::StackSimulation(const StackSimParams &params)
    : params_(params)
{
    MERCURY_EXPECTS(params_.cores >= 1 && params_.cores <= 32,
                    "stack supports 1..32 cores, got ", params_.cores);

    ServerModelParams node = params_.node;

    // Build the shared stack devices.
    SharedStackDevices shared;
    if (node.memory == MemoryKind::StackedDram) {
        mem::DramParams dp = mem::stackedDramParams();
        dp.name = "stack.dram";
        dp.arrayLatency = node.dramArrayLatency;
        dp.pagePolicy = node.dramPagePolicy;
        dram_ = std::make_unique<mem::DramModel>(dp);
        shared.dram = dram_.get();
    } else {
        mem::FlashParams fp;
        fp.name = "stack.flash";
        fp.readLatency = node.flashReadLatency;
        fp.programLatency = node.flashWriteLatency;
        flash_ = std::make_unique<mem::FlashController>(fp);
        shared.flash = flash_.get();
    }

    // Without RSS all cores funnel through one shared path pair
    // (the kernel's single softirq/NAPI context). With RSS the NIC
    // hashes flows to per-core RX queues, so each core gets its own
    // pair below; the port itself interleaves packets at wire rate,
    // which is faithful while aggregate load stays under the port
    // rate (true at the small-GET operating points RSS targets).
    if (!node.datapath.rss) {
        net::NetParams np = node.net;
        np.name = "stack.c2s";
        c2s_ = std::make_unique<net::NetworkPath>(np);
        np.name = "stack.s2c";
        s2c_ = std::make_unique<net::NetworkPath>(np);
        shared.clientToServer = c2s_.get();
        shared.serverToClient = s2c_.get();
    } else {
        rxQueuesC2s_.reserve(params_.cores);
        rxQueuesS2c_.reserve(params_.cores);
        for (unsigned i = 0; i < params_.cores; ++i) {
            net::NetParams qp = node.net;
            qp.name = "stack.rxq" + std::to_string(i) + ".c2s";
            rxQueuesC2s_.push_back(
                std::make_unique<net::NetworkPath>(qp));
            qp.name = "stack.rxq" + std::to_string(i) + ".s2c";
            rxQueuesS2c_.push_back(
                std::make_unique<net::NetworkPath>(qp));
        }
    }

    // Size each core's store to its slice.
    const std::uint64_t fixed_overhead = 32 * miB;
    std::uint64_t slice;
    if (node.memory == MemoryKind::StackedDram) {
        slice = dram_->capacityBytes() / params_.cores;
    } else {
        const std::uint64_t channel =
            flash_->capacityBytes() / flash_->numChannels();
        slice = params_.cores <= 16 ? channel : channel / 2;
    }
    MERCURY_EXPECTS(slice > fixed_overhead + 8 * miB,
                    "too many cores for the stack's capacity");
    node.storeMemLimit = std::min<std::uint64_t>(
        node.storeMemLimit, slice - fixed_overhead);

    cores_.reserve(params_.cores);
    for (unsigned i = 0; i < params_.cores; ++i) {
        ServerModelParams core_params = node;
        core_params.name = "stack.core" + std::to_string(i);
        core_params.seed = node.seed + i;
        core_params.sliceBase = sliceBaseFor(i);
        SharedStackDevices core_shared = shared;
        if (node.datapath.rss) {
            core_shared.clientToServer = rxQueuesC2s_[i].get();
            core_shared.serverToClient = rxQueuesS2c_[i].get();
        }
        cores_.push_back(
            std::make_unique<ServerModel>(core_params,
                                          &core_shared));
    }

    // Reference single-core node with private devices.
    ServerModelParams ref = node;
    ref.name = "stack.reference";
    ref.sliceBase = 0;
    reference_ = std::make_unique<ServerModel>(ref);
}

Addr
StackSimulation::sliceBaseFor(unsigned core) const
{
    if (params_.node.memory == MemoryKind::StackedDram)
        return core * (dram_->capacityBytes() / params_.cores);

    const std::uint64_t channel =
        flash_->capacityBytes() / flash_->numChannels();
    if (params_.cores <= 16)
        return core * channel;
    // Two cores per channel past 16 (Sec. 4.1.2).
    return (core % 16) * channel + (core / 16) * (channel / 2);
}

StackSimResult
StackSimulation::run()
{
    const std::uint32_t size = params_.valueBytes;
    const unsigned keys = std::max<unsigned>(
        64, static_cast<unsigned>(4 * miB / std::max<std::uint32_t>(
                                      size, 256)));

    for (auto &core : cores_)
        core->populate(keys, size);
    reference_->populate(keys, size);

    // With RSS each core serves only the flows the NIC hash steers
    // to its queue: partition the key space by rssQueueFor. (A core
    // with an empty partition keeps key 0 so the closed loop always
    // has work; it cannot happen with the key counts above.)
    const bool rss = params_.node.datapath.rss;
    std::vector<std::vector<unsigned>> steered;
    if (rss) {
        steered.resize(params_.cores);
        for (unsigned k = 0; k < keys; ++k) {
            const std::string key =
                "v" + std::to_string(size) + ":" + std::to_string(k);
            steered[net::rssQueueFor(net::flowHash(key),
                                     params_.cores)]
                .push_back(k);
        }
        for (auto &part : steered) {
            if (part.empty())
                part.push_back(0);
        }
    }

    struct CoreState
    {
        ServerModel *model;
        Rng rng;
        unsigned index = 0;
        unsigned done = 0;
        Tick measureStart = 0;
    };
    std::vector<CoreState> states;
    states.reserve(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i)
        states.push_back({cores_[i].get(), Rng(1000 + i),
                          static_cast<unsigned>(i), 0, 0});

    auto issue = [&](CoreState &state) {
        unsigned key_index;
        if (rss) {
            const auto &part = steered[state.index];
            key_index = part[static_cast<std::size_t>(
                state.rng.nextInt(part.size()))];
        } else {
            key_index =
                static_cast<unsigned>(state.rng.nextInt(keys));
        }
        const std::string key = "v" + std::to_string(size) + ":" +
                                std::to_string(key_index);
        if (state.rng.nextBool(params_.getFraction))
            state.model->get(key);
        else
            state.model->put(key, size);
    };

    // Warmup round, all cores.
    const unsigned warmup = 4;
    for (unsigned round = 0; round < warmup; ++round) {
        for (auto &state : states)
            issue(state);
    }
    // The measured span starts at the earliest core's clock: cores
    // finish warmup at different simulated times, and measured
    // requests on the slowest-started core begin at its own (earlier)
    // clock, so anchoring the span to core 0 under-counted the span
    // and inflated aggregate throughput.
    Tick span_begin = maxTick;
    for (auto &state : states) {
        state.measureStart = state.model->now();
        span_begin = std::min(span_begin, state.measureStart);
    }

    // Closed loop: always advance the core that is furthest behind
    // in simulated time, so shared-device contention interleaves in
    // global time order.
    const unsigned total_requests =
        params_.requestsPerCore * params_.cores;
    unsigned completed = 0;
    while (completed < total_requests) {
        CoreState *next = nullptr;
        for (auto &state : states) {
            if (state.done >= params_.requestsPerCore)
                continue;
            if (!next || state.model->now() < next->model->now())
                next = &state;
        }
        // A request must never move its core's clock backwards --
        // the timing-walk equivalent of scheduling an event in the
        // past on a shared device.
        const Tick before = next->model->now();
        issue(*next);
        MERCURY_ASSERT(next->model->now() >= before,
                       "request moved a core's clock backwards");
        ++next->done;
        ++completed;
    }

    Tick span_end = 0;
    for (auto &state : states)
        span_end = std::max(span_end, state.model->now());
    MERCURY_ENSURES(span_end >= span_begin,
                    "measured span is negative");
    const Tick span = span_end - span_begin;

    // Reference single-core throughput for the linear prediction.
    Rng ref_rng(555);
    for (unsigned i = 0; i < warmup; ++i) {
        reference_->get("v" + std::to_string(size) + ":" +
                        std::to_string(ref_rng.nextInt(keys)));
    }
    const Tick ref_begin = reference_->now();
    for (unsigned i = 0; i < params_.requestsPerCore; ++i) {
        const std::string key =
            "v" + std::to_string(size) + ":" +
            std::to_string(ref_rng.nextInt(keys));
        if (ref_rng.nextBool(params_.getFraction))
            reference_->get(key);
        else
            reference_->put(key, size);
    }
    const double ref_tps =
        static_cast<double>(params_.requestsPerCore) /
        ticksToSeconds(reference_->now() - ref_begin);

    StackSimResult result;
    result.aggregateTps = static_cast<double>(total_requests) /
                          ticksToSeconds(span);
    result.perCoreTps = result.aggregateTps / params_.cores;
    result.linearPredictionTps = ref_tps * params_.cores;
    result.scalingEfficiency =
        result.aggregateTps / result.linearPredictionTps;
    if (rss) {
        // Per-queue paths share the one physical port: the port's
        // utilization is the sum of its queues' offered loads.
        double util = 0.0;
        for (const auto &queue : rxQueuesS2c_)
            util += queue->utilization(span);
        result.nicUtilization = std::min(1.0, util);
        result.rxQueues = params_.cores;
    } else {
        result.nicUtilization = s2c_->utilization(span);
    }
    return result;
}

} // namespace mercury::server
