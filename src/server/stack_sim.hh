/**
 * @file
 * Multi-core stack simulation.
 *
 * The paper scales single-core round-trip times linearly to the
 * stack and server level (Sec. 5.3), arguing that per-core Memcached
 * instances avoid software contention and that 16 memory ports keep
 * hardware contention negligible (two cores per port at n=32). This
 * module checks that assumption mechanistically: n cores run
 * closed-loop request streams against ONE shared stack -- shared
 * DRAM ports or flash channels and the stack's single 10GbE port --
 * and the aggregate is compared to n x single-core throughput.
 */

#ifndef MERCURY_SERVER_STACK_SIM_HH
#define MERCURY_SERVER_STACK_SIM_HH

#include <memory>
#include <vector>

#include "server/server_model.hh"

namespace mercury::server
{

/** Static configuration of a stack simulation. */
struct StackSimParams
{
    /** Per-core configuration (sliceBase is assigned internally). */
    ServerModelParams node;
    unsigned cores = 8;
    std::uint32_t valueBytes = 64;
    /** Measured requests per core (after one warmup round). */
    unsigned requestsPerCore = 24;
    /** GET fraction of the measured mix. */
    double getFraction = 1.0;
};

/** Outcome of a stack simulation. */
struct StackSimResult
{
    double aggregateTps = 0.0;
    double perCoreTps = 0.0;
    /** Single-core throughput x cores (the paper's assumption). */
    double linearPredictionTps = 0.0;
    /** aggregate / prediction; 1.0 = perfectly linear. */
    double scalingEfficiency = 0.0;
    /** Utilization of the stack's 10GbE port during the run
     * (summed over RX queues when RSS is on, clamped to 1). */
    double nicUtilization = 0.0;
    /** NIC RX queues the run modeled (cores when RSS is on). */
    unsigned rxQueues = 1;
};

class StackSimulation
{
  public:
    explicit StackSimulation(const StackSimParams &params);

    /** Run the closed-loop experiment and report scaling. */
    StackSimResult run();

    unsigned cores() const { return params_.cores; }

  private:
    /** Slice of the stack address space owned by core i. */
    Addr sliceBaseFor(unsigned core) const;

    StackSimParams params_;

    // Shared stack devices. Without RSS every core shares one
    // c2s_/s2c_ pair (the kernel softirq path); with RSS each core
    // owns a per-queue pair in rxQueues*_ instead.
    std::unique_ptr<mem::DramModel> dram_;
    std::unique_ptr<mem::FlashController> flash_;
    std::unique_ptr<net::NetworkPath> c2s_;
    std::unique_ptr<net::NetworkPath> s2c_;
    std::vector<std::unique_ptr<net::NetworkPath>> rxQueuesC2s_;
    std::vector<std::unique_ptr<net::NetworkPath>> rxQueuesS2c_;

    std::vector<std::unique_ptr<ServerModel>> cores_;
    std::unique_ptr<ServerModel> reference_;
};

} // namespace mercury::server

#endif // MERCURY_SERVER_STACK_SIM_HH
