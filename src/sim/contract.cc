#include "sim/contract.hh"

#include <atomic>
#include <cstdlib>

namespace mercury::contract
{

namespace
{

/** Most recent simulated time reported by a clock owner on THIS
 * thread. Thread-local so parallel sweep workers -- each running a
 * private simulation -- stamp their own diagnostics with their own
 * timeline instead of racing over one global, and noteTick() stays
 * a plain store on the hot path. */
thread_local Tick lastTick{0};

/** Nesting depth of active ScopedContractThrow guards. */
std::atomic<int> throwDepth{0};

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Invariant: return "invariant";
      case Kind::Precondition: return "precondition";
      case Kind::Postcondition: return "postcondition";
    }
    return "contract";
}

} // anonymous namespace

void
noteTick(Tick tick)
{
    lastTick = tick;
}

Tick
lastNotedTick()
{
    return lastTick;
}

ScopedContractThrow::ScopedContractThrow()
{
    throwDepth.fetch_add(1, std::memory_order_relaxed);
}

ScopedContractThrow::~ScopedContractThrow()
{
    throwDepth.fetch_sub(1, std::memory_order_relaxed);
}

void
fail(Kind kind, const char *cond, const char *file, int line,
     const std::string &message)
{
    std::ostringstream os;
    os << kindName(kind) << " '" << cond << "' violated at " << file
       << ":" << line << " [curTick=" << lastNotedTick() << "]";
    if (!message.empty())
        os << ": " << message;
    const std::string full = os.str();

    // Route through the logger so ScopedLogCapture sees the record.
    mercury::detail::log(LogLevel::Panic, full);

    if (throwDepth.load(std::memory_order_relaxed) > 0 ||
        mercury::detail::logThrowModeActive()) {
        throw ContractViolation(full);
    }
    std::abort();
}

} // namespace mercury::contract
