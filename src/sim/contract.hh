/**
 * @file
 * Simulator contract/invariant layer.
 *
 * Four macro families, all reporting through one formatted diagnostic
 * path that includes the most recently observed simulated time:
 *
 *   MERCURY_ASSERT(cond, ...)      - internal invariant; always on.
 *   MERCURY_EXPECTS(cond, ...)     - precondition on entry; always on.
 *   MERCURY_ENSURES(cond, ...)     - postcondition on exit; always on.
 *   MERCURY_ASSERT_SLOW(cond, ...) - expensive structural check
 *                                    (full-container walks); compiled
 *                                    in only with MERCURY_EXTRA_CHECKS
 *                                    (the debug and asan-ubsan presets
 *                                    enable it).
 *
 * The always-on variants must stay cheap enough for release builds:
 * O(1) or O(log n) per call, no allocation on the success path.
 *
 * A violation formats "<kind> '<cond>' violated at file:line
 * [curTick=N]: message" and aborts, so a debugger or core dump can
 * inspect the broken state. Tests instead install a
 * ScopedContractThrow (or the wider ScopedLogCapture), under which a
 * violation throws ContractViolation; ContractViolation derives from
 * SimFatalError so older tests that expect SimFatalError keep
 * passing.
 */

#ifndef MERCURY_SIM_CONTRACT_HH
#define MERCURY_SIM_CONTRACT_HH

#include <sstream>
#include <string>
#include <utility>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mercury::contract
{

/** Which contract family a violation came from. */
enum class Kind { Invariant, Precondition, Postcondition };

/** Thrown instead of aborting while a ScopedContractThrow (or
 * ScopedLogCapture) is active. */
struct ContractViolation : public SimFatalError
{
    explicit ContractViolation(const std::string &what)
        : SimFatalError(what)
    {}
};

/**
 * Record the simulated time most recently observed by a clock owner
 * (EventQueue, the server timing walk). Contract diagnostics embed
 * this value so a violation deep in a container still says *when* the
 * simulation broke.
 */
void noteTick(Tick tick);

/** The last tick passed to noteTick(); 0 before any. */
Tick lastNotedTick();

/**
 * RAII test mode: while alive, contract violations throw
 * ContractViolation instead of aborting the process. Nests safely.
 */
class ScopedContractThrow
{
  public:
    ScopedContractThrow();
    ~ScopedContractThrow();

    ScopedContractThrow(const ScopedContractThrow &) = delete;
    ScopedContractThrow &operator=(const ScopedContractThrow &) = delete;
};

/** Report a violated contract and abort (or throw in test mode). */
[[noreturn]] void fail(Kind kind, const char *cond, const char *file,
                       int line, const std::string &message);

namespace detail
{

/** Fold any streamable arguments into one string ("" for none). */
template <typename... Args>
std::string
concat(Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        return os.str();
    }
}

} // namespace detail

} // namespace mercury::contract

#define MERCURY_CONTRACT_CHECK_(kind, cond, ...)                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::mercury::contract::fail(                                      \
                kind, #cond, __FILE__, __LINE__,                            \
                ::mercury::contract::detail::concat(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

/** Always-on internal invariant check. */
#define MERCURY_ASSERT(cond, ...)                                           \
    MERCURY_CONTRACT_CHECK_(::mercury::contract::Kind::Invariant, cond,     \
                            ##__VA_ARGS__)

/** Always-on precondition check (caller handed us bad state). */
#define MERCURY_EXPECTS(cond, ...)                                          \
    MERCURY_CONTRACT_CHECK_(::mercury::contract::Kind::Precondition, cond,  \
                            ##__VA_ARGS__)

/** Always-on postcondition check (we are about to hand back bad
 * state). */
#define MERCURY_ENSURES(cond, ...)                                          \
    MERCURY_CONTRACT_CHECK_(::mercury::contract::Kind::Postcondition, cond, \
                            ##__VA_ARGS__)

#ifdef MERCURY_EXTRA_CHECKS
/** Expensive structural check; compiled in only with
 * MERCURY_EXTRA_CHECKS. The condition is NOT evaluated otherwise. */
#define MERCURY_ASSERT_SLOW(cond, ...) MERCURY_ASSERT(cond, ##__VA_ARGS__)
#define MERCURY_EXTRA_CHECKS_ENABLED 1
#else
#define MERCURY_ASSERT_SLOW(cond, ...) static_cast<void>(0)
#define MERCURY_EXTRA_CHECKS_ENABLED 0
#endif

#endif // MERCURY_SIM_CONTRACT_HH
