/**
 * @file
 * Slab arena for dynamically created events.
 *
 * Discrete-event hot paths that spawn one-shot events (request
 * arrivals, timeouts, chained completions) would otherwise pay a
 * heap round-trip per event. The arena carves fixed-size slots out
 * of block allocations and recycles them through an intrusive free
 * list: make() and release() are a pointer pop/push after the first
 * pass over a block, and nothing is returned to the host allocator
 * until the arena dies. Slots are a fixed 192 bytes, enough for an
 * EventFunctionWrapper with a captured lambda; make<T>() rejects
 * larger event types at compile time.
 *
 * The arena owns every object it created: release() runs the
 * destructor and recycles the slot, and the arena destructor
 * releases any slots still live (simulation teardown with events in
 * flight). Manual `delete` of an arena object is a double free --
 * the mercury_lint event-ownership rule flags it.
 *
 * Not thread-safe: an arena belongs to one EventQueue, and a queue
 * belongs to one worker thread (the parallel sweep runner gives
 * every sweep point its own queue).
 */

#ifndef MERCURY_SIM_EVENT_ARENA_HH
#define MERCURY_SIM_EVENT_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mercury
{

class EventArena
{
  public:
    /** Fixed slot footprint; make<T>() statically requires
     * sizeof(T) <= slotBytes. */
    static constexpr std::size_t slotBytes = 192;
    /** Slots carved per block allocation. */
    static constexpr std::size_t slotsPerBlock = 64;

    EventArena() = default;

    EventArena(const EventArena &) = delete;
    EventArena &operator=(const EventArena &) = delete;

    ~EventArena()
    {
        // Destroy objects still live at teardown (events in flight
        // when the simulation stopped).
        for (Slot *slot : slots_)
            if (slot->object)
                destroy(slot);
    }

    /** Construct a T in a recycled (or fresh) slot. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        static_assert(sizeof(T) <= slotBytes,
                      "event type exceeds the arena slot size; "
                      "shrink it or raise EventArena::slotBytes");
        static_assert(alignof(T) <= alignof(std::max_align_t),
                      "over-aligned event types are not supported");
        Slot *slot = pop();
        T *object = new (slot->storage) T(std::forward<Args>(args)...);
        slot->object = object;
        slot->destructor = [](void *p) { static_cast<T *>(p)->~T(); };
        ++liveCount_;
        return object;
    }

    /** Destroy an arena-owned object and recycle its slot. */
    void
    release(void *object)
    {
        Slot *slot = slotOf(object);
        destroy(slot);
        push(slot);
    }

    /** Objects currently live (made and not yet released). */
    std::size_t liveObjects() const { return liveCount_; }

    /** Slots ever carved (live + free). */
    std::size_t capacity() const { return slots_.size(); }

    /** Host allocations performed (one per block). */
    std::size_t blockAllocations() const { return blocks_.size(); }

  private:
    struct Slot
    {
        alignas(std::max_align_t) unsigned char storage[slotBytes];
        /** The constructed object, for typed destruction; null while
         * the slot sits on the free list. */
        void *object = nullptr;
        Slot *nextFree = nullptr;
        void (*destructor)(void *) = nullptr;
    };

    static Slot *
    slotOf(void *object)
    {
        // storage is the slot's first member, so the object pointer
        // (placement-new'd at storage) is also the slot pointer.
        return std::launder(reinterpret_cast<Slot *>(object));
    }

    Slot *
    pop()
    {
        if (!free_)
            grow();
        Slot *slot = free_;
        free_ = slot->nextFree;
        slot->nextFree = nullptr;
        return slot;
    }

    void
    push(Slot *slot)
    {
        slot->nextFree = free_;
        free_ = slot;
    }

    void
    destroy(Slot *slot)
    {
        slot->destructor(slot->object);
        slot->object = nullptr;
        slot->destructor = nullptr;
        --liveCount_;
    }

    void
    grow()
    {
        auto block = std::make_unique<Slot[]>(slotsPerBlock);
        for (std::size_t i = 0; i < slotsPerBlock; ++i) {
            slots_.push_back(&block[i]);
            push(&block[i]);
        }
        blocks_.push_back(std::move(block));
    }

    Slot *free_ = nullptr;
    std::vector<std::unique_ptr<Slot[]>> blocks_;
    /** Every slot ever carved, for the teardown sweep. */
    std::vector<Slot *> slots_;
    std::size_t liveCount_ = 0;
};

} // namespace mercury

#endif // MERCURY_SIM_EVENT_ARENA_HH
