#include "sim/event_queue.hh"

#include <vector>

#if MERCURY_EVENT_PROFILE
#include <chrono>
#endif

#include "sim/contract.hh"
#include "sim/json.hh"

namespace mercury
{

void
EventProfiler::writeJson(std::ostream &os) const
{
    bool first = true;
    os << "{";
    json::writeField(os, first, "serviced", serviced_);
    json::writeField(os, first, "queues", queues_);
    json::writeField(os, first, "serviced_per_queue",
                     meanServicedPerQueue());
    json::writeField(os, first, "host_ns", hostNs_);
    json::writeField(os, first, "shape_samples", shapeSamples_);
    json::writeField(os, first, "mean_depth", meanDepth());
    json::writeField(os, first, "max_depth", depthMax_);
    json::writeField(os, first, "mean_bins", meanBins());
    json::writeField(os, first, "max_bins", binMax_);
    json::writeKey(os, first, "types");
    os << "{";
    bool first_type = true;
    for (const auto &[type, cost] : costs_) {
        json::writeKey(os, first_type, type);
        os << "{";
        bool first_field = true;
        json::writeField(os, first_field, "serviced", cost.serviced);
        json::writeField(os, first_field, "host_ns", cost.hostNs);
        json::writeField(os, first_field, "share",
                         hostNs_ ? static_cast<double>(cost.hostNs) /
                                       static_cast<double>(hostNs_)
                                 : 0.0);
        os << "}";
    }
    os << "}}\n";
}

void
EventProfiler::mergeFrom(const EventProfiler &other)
{
    for (const auto &[type, cost] : other.costs_) {
        TypeCost &mine = costs_[type];
        mine.serviced += cost.serviced;
        mine.hostNs += cost.hostNs;
    }
    serviced_ += other.serviced_;
    hostNs_ += other.hostNs_;
    shapeSamples_ += other.shapeSamples_;
    depthSum_ += other.depthSum_;
    binSum_ += other.binSum_;
    queues_ += other.queues_;
    if (other.depthMax_ > depthMax_)
        depthMax_ = other.depthMax_;
    if (other.binMax_ > binMax_)
        binMax_ = other.binMax_;
}

void
EventProfiler::clear()
{
    costs_.clear();
    serviced_ = 0;
    hostNs_ = 0;
    shapeSamples_ = 0;
    depthSum_ = 0;
    depthMax_ = 0;
    binSum_ = 0;
    binMax_ = 0;
    queues_ = 1;
}

Event::~Event()
{
    MERCURY_ASSERT(!_scheduled,
                   "event destroyed while scheduled: ", description());
}

EventQueue::EventQueue(std::string name)
    : _name(std::move(name))
{}

EventQueue::~EventQueue()
{
    // Arena events still queued at teardown are released here, under
    // their own bookkeeping, so the arena's destructor never sees a
    // still-scheduled Event (whose destructor would assert). Static
    // events keep their scheduled flag: destroying one while its
    // queue entry was never serviced is a bug worth the assert.
    std::vector<Event *> managed;
    for (Event *bin = head_; bin; bin = bin->_nextBin) {
        Event *event = bin;
        do {
            if (event->_arenaManaged)
                managed.push_back(event);
            event = event->_nextInBin;
        } while (event != bin);
    }
    for (Event *event : managed) {
        event->_scheduled = false;
        arena_.release(event);
    }
}

bool
EventQueue::checkInvariants() const
{
    // Walk both levels: bins must ascend strictly in (when,
    // priority); every member must carry its bin's key, be flagged
    // scheduled, and link back consistently; the member count must
    // match size().
    std::size_t counted = 0;
    std::size_t countedBins = 0;
    const Event *prevBin = nullptr;
    for (const Event *bin = head_; bin; bin = bin->_nextBin) {
        ++countedBins;
        if (!bin->_binHead)
            return false;
        if (bin->_prevBin != prevBin)
            return false;
        if (prevBin && !binBefore(prevBin->_when, prevBin->_priority, bin))
            return false;
        if (bin->_when < _curTick)
            return false;
        const Event *event = bin;
        do {
            if (!event->_scheduled)
                return false;
            if (event->_when != bin->_when ||
                event->_priority != bin->_priority) {
                return false;
            }
            if (event != bin && event->_binHead)
                return false;
            if (event->_nextInBin->_prevInBin != event)
                return false;
            ++counted;
            event = event->_nextInBin;
        } while (event != bin);
        prevBin = bin;
    }
    if (tail_ != prevBin)
        return false;
    if (countedBins != binCount_)
        return false;
    return counted == size_;
}

void
EventQueue::link(Event *event)
{
    const Tick when = event->_when;
    const Event::Priority priority = event->_priority;

    // Self-link the second level; fixed up below when joining a bin.
    event->_nextInBin = event;
    event->_prevInBin = event;
    event->_nextBin = nullptr;
    event->_prevBin = nullptr;
    event->_binHead = false;

    if (!head_) {
        event->_binHead = true;
        head_ = tail_ = event;
        ++binCount_;
        return;
    }

    // Find the first bin not ordering before (when, priority).
    // Checking the tail first makes append-at-the-end O(1); the walk
    // from the head is short for the dominant near-now schedules.
    Event *bin;
    if (binBefore(tail_->_when, tail_->_priority, event) ||
        binEqual(when, priority, tail_)) {
        bin = binEqual(when, priority, tail_) ? tail_ : nullptr;
    } else {
        bin = head_;
        while (bin && binBefore(bin->_when, bin->_priority, event))
            bin = bin->_nextBin;
        if (bin && !binEqual(when, priority, bin)) {
            // Insert a new bin before `bin`.
            event->_binHead = true;
            event->_prevBin = bin->_prevBin;
            event->_nextBin = bin;
            if (bin->_prevBin)
                bin->_prevBin->_nextBin = event;
            else
                head_ = event;
            bin->_prevBin = event;
            ++binCount_;
            return;
        }
    }

    if (!bin) {
        // Append a fresh last bin.
        event->_binHead = true;
        event->_prevBin = tail_;
        tail_->_nextBin = event;
        tail_ = event;
        ++binCount_;
        return;
    }

    // FIFO-append into the existing bin (before the head in the
    // circular list).
    Event *last = bin->_prevInBin;
    last->_nextInBin = event;
    event->_prevInBin = last;
    event->_nextInBin = bin;
    bin->_prevInBin = event;
}

void
EventQueue::unlink(Event *event)
{
    if (!event->_binHead) {
        event->_prevInBin->_nextInBin = event->_nextInBin;
        event->_nextInBin->_prevInBin = event->_prevInBin;
        return;
    }

    if (event->_nextInBin == event) {
        // Sole member: drop the whole bin from the first level.
        if (event->_prevBin)
            event->_prevBin->_nextBin = event->_nextBin;
        else
            head_ = event->_nextBin;
        if (event->_nextBin)
            event->_nextBin->_prevBin = event->_prevBin;
        else
            tail_ = event->_prevBin;
        --binCount_;
    } else {
        // Promote the next-oldest member to bin head.
        Event *next = event->_nextInBin;
        event->_prevInBin->_nextInBin = next;
        next->_prevInBin = event->_prevInBin;
        next->_binHead = true;
        next->_nextBin = event->_nextBin;
        next->_prevBin = event->_prevBin;
        if (event->_prevBin)
            event->_prevBin->_nextBin = next;
        else
            head_ = next;
        if (event->_nextBin)
            event->_nextBin->_prevBin = next;
        else
            tail_ = next;
    }
    event->_binHead = false;
}

void
EventQueue::releaseIfManaged(Event *event)
{
    if (event->_arenaManaged)
        arena_.release(event);
}

void
EventQueue::schedule(Event *event, Tick when)
{
    MERCURY_EXPECTS(event != nullptr, "null event scheduled on ", _name);
    MERCURY_EXPECTS(!event->_scheduled,
                    "double-schedule of event: ", event->description());
    MERCURY_EXPECTS(when >= _curTick,
                    "event '", event->description(),
                    "' scheduled in the past: when=", when,
                    " curTick=", _curTick);

    event->_when = when;
    event->_sequence = _nextSequence++;
    event->_scheduled = true;
    link(event);
    ++size_;
    MERCURY_ASSERT_SLOW(checkInvariants(),
                        "event queue ", _name,
                        " inconsistent after schedule");
}

void
EventQueue::deschedule(Event *event)
{
    MERCURY_EXPECTS(event != nullptr,
                    "null event descheduled on ", _name);
    MERCURY_EXPECTS(event->_scheduled,
                    "deschedule of unscheduled event: ",
                    event->description());

    unlink(event);
    --size_;
    event->_scheduled = false;
    MERCURY_ASSERT_SLOW(checkInvariants(),
                        "event queue ", _name,
                        " inconsistent after deschedule");
    releaseIfManaged(event);
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    MERCURY_EXPECTS(event != nullptr,
                    "null event rescheduled on ", _name);
    if (!event->_scheduled) {
        schedule(event, when);
        return;
    }
    MERCURY_EXPECTS(when >= _curTick,
                    "event '", event->description(),
                    "' rescheduled in the past: when=", when,
                    " curTick=", _curTick);

    // Single move: unlink from the old bin, restamp, relink -- one
    // structural audit instead of the two a deschedule + schedule
    // pair would run.
    unlink(event);
    event->_when = when;
    event->_sequence = _nextSequence++;
    link(event);
    MERCURY_ASSERT_SLOW(checkInvariants(),
                        "event queue ", _name,
                        " inconsistent after reschedule");
}

Event *
EventQueue::serviceOne()
{
    if (!head_)
        return nullptr;

    Event *event = head_;
    MERCURY_ASSERT(event->_when >= _curTick, "event queue time warp: ",
                   "head when=", event->_when, " curTick=", _curTick);
#if MERCURY_EVENT_PROFILE
    // Shape before the unlink: the depth/occupancy this service saw.
    profiler_.noteQueueShape(size_, binCount_);
    const std::string profiledType = event->description();
#endif
    unlink(event);
    --size_;
    _curTick = event->_when;
    contract::noteTick(_curTick);

    event->_scheduled = false;
    ++_numServiced;
#if MERCURY_EVENT_PROFILE
    const auto hostBegin = std::chrono::steady_clock::now();
    event->process();
    profiler_.noteService(
        profiledType,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - hostBegin)
                .count()));
#else
    event->process();
#endif
    MERCURY_ASSERT_SLOW(checkInvariants(),
                        "event queue ", _name,
                        " inconsistent after servicing ",
                        event->description());
    if (event->_arenaManaged && !event->_scheduled) {
        // One-shot arena event: recycle it now that it ran (unless
        // process() rescheduled it).
        arena_.release(event);
        return nullptr;
    }
    return event;
}

Counter
EventQueue::run(Tick limit)
{
    Counter serviced = 0;
    while (head_ && headWhen() <= limit) {
        serviceOne();
        ++serviced;
    }
    if (_curTick < limit && limit != maxTick) {
        _curTick = limit;
        contract::noteTick(_curTick);
    }
    return serviced;
}

void
EventQueue::setCurTick(Tick tick)
{
    MERCURY_EXPECTS(tick >= _curTick,
                    "attempt to move simulated time backwards: tick=",
                    tick, " curTick=", _curTick);
    if (head_) {
        MERCURY_EXPECTS(tick <= headWhen(),
                        "setCurTick would skip scheduled events: tick=",
                        tick, " next event at ", headWhen());
    }
    _curTick = tick;
    contract::noteTick(_curTick);
}

} // namespace mercury
