#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace mercury
{

Event::~Event()
{
    mercury_assert(!_scheduled,
                   "event destroyed while scheduled: ", description());
}

EventQueue::EventQueue(std::string name)
    : _name(std::move(name))
{}

void
EventQueue::schedule(Event *event, Tick when)
{
    mercury_assert(event != nullptr, "null event scheduled on ", _name);
    mercury_assert(!event->_scheduled,
                   "double-schedule of event: ", event->description());
    if (when < _curTick) {
        mercury_panic("event '", event->description(),
                      "' scheduled in the past: when=", when,
                      " curTick=", _curTick);
    }

    event->_when = when;
    event->_sequence = _nextSequence++;
    event->_scheduled = true;
    queue_.insert(Entry{when, event->priority(), event->_sequence, event});
}

void
EventQueue::deschedule(Event *event)
{
    mercury_assert(event != nullptr, "null event descheduled on ", _name);
    mercury_assert(event->_scheduled,
                   "deschedule of unscheduled event: ",
                   event->description());

    Entry key{event->_when, event->priority(), event->_sequence, event};
    auto it = queue_.find(key);
    mercury_assert(it != queue_.end(),
                   "scheduled event missing from queue: ",
                   event->description());
    queue_.erase(it);
    event->_scheduled = false;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->scheduled())
        deschedule(event);
    schedule(event, when);
}

Event *
EventQueue::serviceOne()
{
    if (queue_.empty())
        return nullptr;

    auto it = queue_.begin();
    Entry entry = *it;
    queue_.erase(it);

    mercury_assert(entry.when >= _curTick, "event queue time warp");
    _curTick = entry.when;

    Event *event = entry.event;
    event->_scheduled = false;
    ++_numServiced;
    event->process();
    return event;
}

Counter
EventQueue::run(Tick limit)
{
    Counter serviced = 0;
    while (!queue_.empty() && queue_.begin()->when <= limit) {
        serviceOne();
        ++serviced;
    }
    if (_curTick < limit && limit != maxTick)
        _curTick = limit;
    return serviced;
}

void
EventQueue::setCurTick(Tick tick)
{
    mercury_assert(tick >= _curTick,
                   "attempt to move simulated time backwards");
    if (!queue_.empty()) {
        mercury_assert(tick <= queue_.begin()->when,
                       "setCurTick would skip scheduled events");
    }
    _curTick = tick;
}

} // namespace mercury
