#include "sim/event_queue.hh"

#include "sim/contract.hh"

namespace mercury
{

Event::~Event()
{
    MERCURY_ASSERT(!_scheduled,
                   "event destroyed while scheduled: ", description());
}

EventQueue::EventQueue(std::string name)
    : _name(std::move(name))
{}

bool
EventQueue::checkInvariants() const
{
    // Every queued entry must be in the future (or now), flagged
    // scheduled, and agree with the event's own bookkeeping.
    Tick prev = _curTick;
    for (const Entry &entry : queue_) {
        if (entry.when < prev)
            return false;
        prev = entry.when;
        if (!entry.event->_scheduled)
            return false;
        if (entry.event->_when != entry.when)
            return false;
    }
    return true;
}

void
EventQueue::schedule(Event *event, Tick when)
{
    MERCURY_EXPECTS(event != nullptr, "null event scheduled on ", _name);
    MERCURY_EXPECTS(!event->_scheduled,
                    "double-schedule of event: ", event->description());
    MERCURY_EXPECTS(when >= _curTick,
                    "event '", event->description(),
                    "' scheduled in the past: when=", when,
                    " curTick=", _curTick);

    event->_when = when;
    event->_sequence = _nextSequence++;
    event->_scheduled = true;
    queue_.insert(Entry{when, event->priority(), event->_sequence, event});
    MERCURY_ASSERT_SLOW(checkInvariants(),
                        "event queue ", _name,
                        " inconsistent after schedule");
}

void
EventQueue::deschedule(Event *event)
{
    MERCURY_EXPECTS(event != nullptr,
                    "null event descheduled on ", _name);
    MERCURY_EXPECTS(event->_scheduled,
                    "deschedule of unscheduled event: ",
                    event->description());

    Entry key{event->_when, event->priority(), event->_sequence, event};
    auto it = queue_.find(key);
    MERCURY_ASSERT(it != queue_.end(),
                   "scheduled event missing from queue: ",
                   event->description());
    queue_.erase(it);
    event->_scheduled = false;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    MERCURY_EXPECTS(event != nullptr,
                    "null event rescheduled on ", _name);
    if (event->scheduled())
        deschedule(event);
    schedule(event, when);
}

Event *
EventQueue::serviceOne()
{
    if (queue_.empty())
        return nullptr;

    auto it = queue_.begin();
    Entry entry = *it;
    queue_.erase(it);

    MERCURY_ASSERT(entry.when >= _curTick, "event queue time warp: ",
                   "head when=", entry.when, " curTick=", _curTick);
    _curTick = entry.when;
    contract::noteTick(_curTick);

    Event *event = entry.event;
    event->_scheduled = false;
    ++_numServiced;
    event->process();
    MERCURY_ASSERT_SLOW(checkInvariants(),
                        "event queue ", _name,
                        " inconsistent after servicing ",
                        event->description());
    return event;
}

Counter
EventQueue::run(Tick limit)
{
    Counter serviced = 0;
    while (!queue_.empty() && queue_.begin()->when <= limit) {
        serviceOne();
        ++serviced;
    }
    if (_curTick < limit && limit != maxTick) {
        _curTick = limit;
        contract::noteTick(_curTick);
    }
    return serviced;
}

void
EventQueue::setCurTick(Tick tick)
{
    MERCURY_EXPECTS(tick >= _curTick,
                    "attempt to move simulated time backwards: tick=",
                    tick, " curTick=", _curTick);
    if (!queue_.empty()) {
        MERCURY_EXPECTS(tick <= queue_.begin()->when,
                        "setCurTick would skip scheduled events: tick=",
                        tick, " next event at ", queue_.begin()->when);
    }
    _curTick = tick;
    contract::noteTick(_curTick);
}

} // namespace mercury
