/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel follows the classic gem5 structure: Events are scheduled
 * on an EventQueue at absolute ticks and are serviced in (tick,
 * priority, insertion-order) order. The queue owns nothing; event
 * lifetime is the caller's responsibility, which allows events to be
 * members of the objects they operate on.
 */

#ifndef MERCURY_SIM_EVENT_QUEUE_HH
#define MERCURY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "sim/types.hh"

namespace mercury
{

class EventQueue;

/**
 * An occurrence scheduled to happen at a future tick.
 *
 * Derive and implement process(), or use EventFunctionWrapper for
 * lambda-based events.
 */
class Event
{
  public:
    /** Relative ordering of events scheduled for the same tick;
     * lower values are serviced first. */
    using Priority = int;

    static constexpr Priority defaultPriority = 0;
    /** Service before ordinary events at the same tick. */
    static constexpr Priority highPriority = -100;
    /** Service after ordinary events at the same tick (e.g. stats
     * sampling). */
    static constexpr Priority lowPriority = 100;

    explicit Event(Priority priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event();

    /** The event's action, invoked when the queue reaches its tick. */
    virtual void process() = 0;

    /** Human-readable description for debugging. */
    virtual std::string description() const { return "generic event"; }

    /** Tick this event is currently scheduled for. Only meaningful
     * while scheduled() is true. */
    Tick when() const { return _when; }

    Priority priority() const { return _priority; }

    /** True while the event sits in a queue awaiting service. */
    bool scheduled() const { return _scheduled; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    Priority _priority;
    bool _scheduled = false;
};

/** Convenience event that runs a captured callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "function event",
                         Priority priority = defaultPriority)
        : Event(priority), callback_(std::move(callback)),
          name_(std::move(name))
    {}

    void process() override { callback_(); }
    std::string description() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * The event queue: a priority queue of events ordered by tick,
 * priority, then insertion order (for determinism).
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "event queue");

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    const std::string &name() const { return _name; }

    /** Number of events awaiting service. */
    std::size_t size() const { return queue_.size(); }

    bool empty() const { return queue_.empty(); }

    /** Total events serviced since construction. */
    Counter numServiced() const { return _numServiced; }

    /**
     * Schedule an event at an absolute tick.
     *
     * @pre when >= curTick(); scheduling in the past is a simulator
     *      bug and panics.
     * @pre the event is not already scheduled.
     */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event from the queue without running it. */
    void deschedule(Event *event);

    /** Deschedule (if needed) and schedule at a new tick. */
    void reschedule(Event *event, Tick when);

    /**
     * Service the single next event, advancing curTick to its time.
     *
     * @return the event serviced, or nullptr if the queue was empty.
     */
    Event *serviceOne();

    /**
     * Run until the queue drains or the time limit is exceeded.
     * Events scheduled exactly at @p limit are still serviced.
     *
     * @return number of events serviced.
     */
    Counter run(Tick limit = maxTick);

    /** Advance time with no event semantics (used by timing-walk
     * models that share a clock with the event world). */
    void setCurTick(Tick tick);

  private:
    /** Full structural audit (ordering, flags, cross-links); used by
     * MERCURY_ASSERT_SLOW in the mutating paths. */
    bool checkInvariants() const;

    struct Entry
    {
        Tick when;
        Event::Priority priority;
        std::uint64_t sequence;
        Event *event;
    };

    struct EntryLess
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when < b.when;
            if (a.priority != b.priority)
                return a.priority < b.priority;
            return a.sequence < b.sequence;
        }
    };

    std::string _name;
    Tick _curTick = 0;
    std::uint64_t _nextSequence = 0;
    Counter _numServiced = 0;
    /** Ordered set so deschedule() can erase by key in O(log n). */
    std::set<Entry, EntryLess> queue_;
};

} // namespace mercury

#endif // MERCURY_SIM_EVENT_QUEUE_HH
