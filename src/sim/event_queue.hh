/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel follows the classic gem5 structure: Events are scheduled
 * on an EventQueue at absolute ticks and are serviced in (tick,
 * priority, insertion-order) order.
 *
 * The queue is an intrusive two-level structure. The first level is a
 * doubly-linked list of *bins*, one per distinct (tick, priority) key,
 * kept in service order; the second level is a circular doubly-linked
 * FIFO of the events inside one bin. All links live inside the Event
 * itself, so schedule / deschedule / serviceOne never allocate, and
 * every list operation is O(1) once the bin is located. Locating the
 * bin checks the head and tail first (the overwhelmingly common
 * "near now" and "append at end" cases) before walking, which keeps
 * scheduling O(1) amortized for the workloads the simulator runs.
 *
 * Statically owned events work exactly as before: the queue owns
 * nothing and event lifetime is the caller's responsibility, which
 * allows events to be members of the objects they operate on. For
 * dynamically created one-shot events, each queue also carries a slab
 * EventArena: makeEvent<T>() returns an arena-owned event that is
 * destroyed and recycled automatically after it is serviced (or when
 * it is descheduled), so the hot path never touches the host
 * allocator. Never `delete` an arena-owned event (the mercury_lint
 * event-ownership rule flags it).
 */

#ifndef MERCURY_SIM_EVENT_QUEUE_HH
#define MERCURY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_arena.hh"
#include "sim/types.hh"

#ifndef MERCURY_EVENT_PROFILE
#define MERCURY_EVENT_PROFILE 0
#endif

namespace mercury
{

class EventQueue;

/**
 * Host-side cost map of an event queue's activity: where host cycles
 * go per event type, plus queue depth / first-level bin occupancy at
 * every service. This is the measurement the conservative-PDES
 * sharding work is designed against ("which subsystems dominate host
 * time, and how contended is the queue").
 *
 * The class itself is always compiled (it is directly unit-tested);
 * the EventQueue hooks that feed it with steady_clock measurements
 * around process() exist only when configured with
 * -DMERCURY_PROFILE_EVENTS=ON. The default build's serviceOne is
 * hook-free, so the zero-overhead-off contract holds at the
 * instruction level, and the simulated timeline is identical either
 * way (profiling is pure host-side observation).
 *
 * Host times are inherently machine-dependent; nothing emitted here
 * is golden-pinned. Aggregation by type is a std::map, so writeJson
 * emits types in sorted order -- the *structure* is deterministic
 * even though the numbers are not.
 *
 * Threading: a profiler is confined to its owning EventQueue's
 * thread and carries no lock (the hot noteService path must stay
 * cheap even in profiling builds). Aggregation across queues --
 * e.g. parallel-sweep workers, or future PDES shards -- happens on
 * the emitter thread after the pool's idle barrier, via mergeFrom().
 */
class EventProfiler
{
  public:
    struct TypeCost
    {
        std::uint64_t serviced = 0;
        std::uint64_t hostNs = 0;
    };

    /** Account one serviced event of @p type costing @p host_ns. */
    void
    noteService(const std::string &type, std::uint64_t host_ns)
    {
        TypeCost &cost = costs_[type];
        ++cost.serviced;
        cost.hostNs += host_ns;
        ++serviced_;
        hostNs_ += host_ns;
    }

    /** Sample the queue shape (events pending, first-level bins)
     * observed at one service. */
    void
    noteQueueShape(std::size_t depth, std::size_t bins)
    {
        ++shapeSamples_;
        depthSum_ += depth;
        binSum_ += bins;
        if (depth > depthMax_)
            depthMax_ = depth;
        if (bins > binMax_)
            binMax_ = bins;
    }

    std::uint64_t serviced() const { return serviced_; }
    std::uint64_t hostNs() const { return hostNs_; }
    std::uint64_t shapeSamples() const { return shapeSamples_; }
    std::uint64_t maxDepth() const { return depthMax_; }
    std::uint64_t maxBins() const { return binMax_; }

    /** Number of event queues folded into this profiler. A fresh
     * profiler describes one queue; mergeFrom() sums the counts, so
     * after aggregating K PDES shards queues() == K and the shape
     * stats read as per-queue samples, not one global structure. */
    std::uint64_t queues() const { return queues_; }

    double
    meanDepth() const
    {
        return shapeSamples_ ? static_cast<double>(depthSum_) /
                                   static_cast<double>(shapeSamples_)
                             : 0.0;
    }

    double
    meanBins() const
    {
        return shapeSamples_ ? static_cast<double>(binSum_) /
                                   static_cast<double>(shapeSamples_)
                             : 0.0;
    }

    /** Mean serviced-event count per constituent queue; with one
     * queue this equals serviced(). */
    double
    meanServicedPerQueue() const
    {
        return queues_ ? static_cast<double>(serviced_) /
                             static_cast<double>(queues_)
                       : 0.0;
    }

    /** Per-type costs, keyed and iterated in sorted type order. */
    const std::map<std::string, TypeCost> &costs() const
    {
        return costs_;
    }

    /**
     * One JSON object: totals, queue-shape summary, and a "types"
     * map of {serviced, host_ns, share} sorted by type name.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Fold another profiler's counters into this one: per-type
     * costs add, totals add, queue counts add, shape maxima take
     * the max. The merge is the single-threaded aggregation step
     * for per-worker (or per-PDES-shard) profilers; call it after
     * the owning workers have quiesced. The operation is
     * associative and commutative (every field is a sum or a max),
     * so any merge tree over the same shard profilers produces the
     * same aggregate -- tests/sim/event_profile_test.cc pins that
     * algebra.
     */
    void mergeFrom(const EventProfiler &other);

    void clear();

  private:
    std::map<std::string, TypeCost> costs_;
    std::uint64_t serviced_ = 0;
    std::uint64_t hostNs_ = 0;
    std::uint64_t shapeSamples_ = 0;
    std::uint64_t depthSum_ = 0;
    std::uint64_t depthMax_ = 0;
    std::uint64_t binSum_ = 0;
    std::uint64_t binMax_ = 0;
    /** Constituent queue count; shape stats are per-queue samples. */
    std::uint64_t queues_ = 1;
};

/**
 * An occurrence scheduled to happen at a future tick.
 *
 * Derive and implement process(), or use EventFunctionWrapper for
 * lambda-based events.
 */
class Event
{
  public:
    /** Relative ordering of events scheduled for the same tick;
     * lower values are serviced first. */
    using Priority = int;

    static constexpr Priority defaultPriority = 0;
    /** Service before ordinary events at the same tick. */
    static constexpr Priority highPriority = -100;
    /** Service after ordinary events at the same tick (e.g. stats
     * sampling). */
    static constexpr Priority lowPriority = 100;

    explicit Event(Priority priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event();

    /** The event's action, invoked when the queue reaches its tick. */
    virtual void process() = 0;

    /** Human-readable description for debugging. */
    virtual std::string description() const { return "generic event"; }

    /** Tick this event is currently scheduled for. Only meaningful
     * while scheduled() is true. */
    Tick when() const { return _when; }

    Priority priority() const { return _priority; }

    /** True while the event sits in a queue awaiting service. */
    bool scheduled() const { return _scheduled; }

    /** True when the event's storage is owned by its queue's arena
     * (created via EventQueue::makeEvent); such events are released
     * automatically after service or deschedule. */
    bool arenaManaged() const { return _arenaManaged; }

  private:
    friend class EventQueue;

    // --- intrusive queue links (owned by the queue while scheduled) -
    //
    // Events at one (when, priority) key form a circular doubly-linked
    // FIFO through _nextInBin/_prevInBin; the oldest event of each bin
    // is the *bin head* and additionally carries the _nextBin/_prevBin
    // links of the first-level bin list. Only the queue ever touches
    // these.
    Event *_nextBin = nullptr;
    Event *_prevBin = nullptr;
    Event *_nextInBin = nullptr;
    Event *_prevInBin = nullptr;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    Priority _priority;
    bool _scheduled = false;
    bool _binHead = false;
    bool _arenaManaged = false;
};

/** Convenience event that runs a captured callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "function event",
                         Priority priority = defaultPriority)
        : Event(priority), callback_(std::move(callback)),
          name_(std::move(name))
    {}

    void process() override { callback_(); }
    std::string description() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * The event queue: a priority queue of events ordered by tick,
 * priority, then insertion order (for determinism).
 */
class EventQueue
{
  public:
    explicit EventQueue(std::string name = "event queue");
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    const std::string &name() const { return _name; }

    /** Number of events awaiting service. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Number of first-level (tick, priority) bins currently live;
     * size()/bins() is the mean bin occupancy. */
    std::size_t bins() const { return binCount_; }

    /** Total events serviced since construction. */
    Counter numServiced() const { return _numServiced; }

    /** Tick of the earliest pending event, or maxTick when empty.
     * The PDES barrier scheduler peeks this to place the next
     * time window. */
    Tick nextWhen() const { return head_ ? head_->_when : maxTick; }

    /**
     * Schedule an event at an absolute tick.
     *
     * @pre when >= curTick(); scheduling in the past is a simulator
     *      bug and panics.
     * @pre the event is not already scheduled.
     */
    void schedule(Event *event, Tick when);

    /**
     * Remove a scheduled event from the queue without running it.
     * An arena-managed event is released back to the arena and must
     * not be touched afterwards.
     */
    void deschedule(Event *event);

    /**
     * Deschedule (if needed) and schedule at a new tick, as a single
     * unlink + relink with one structural audit. The event is
     * re-stamped with a fresh sequence number, so it services after
     * events already queued at the same (tick, priority) — exactly
     * the order the old deschedule-then-schedule pair produced.
     */
    void reschedule(Event *event, Tick when);

    /**
     * Service the single next event, advancing curTick to its time.
     *
     * @return the event serviced, or nullptr if the queue was empty
     *         or the serviced event was arena-managed (it has been
     *         released and must not be touched).
     */
    Event *serviceOne();

    /**
     * Run until the queue drains or the time limit is exceeded.
     * Events scheduled exactly at @p limit are still serviced.
     *
     * @return number of events serviced.
     */
    Counter run(Tick limit = maxTick);

    /** Advance time with no event semantics (used by timing-walk
     * models that share a clock with the event world). */
    void setCurTick(Tick tick);

    /**
     * Construct a dynamically-created event in this queue's slab
     * arena. The queue releases it automatically after it is
     * serviced or descheduled; never delete it manually.
     */
    template <typename T, typename... Args>
    T *
    makeEvent(Args &&...args)
    {
        T *event = arena_.make<T>(std::forward<Args>(args)...);
        event->_arenaManaged = true;
        return event;
    }

    /** The queue's event arena (exposed for capacity probes). */
    const EventArena &arena() const { return arena_; }

#if MERCURY_EVENT_PROFILE
    /** Host-side profiler fed by serviceOne (profiling builds only;
     * guard call sites with `#if MERCURY_EVENT_PROFILE`). */
    EventProfiler &profiler() { return profiler_; }
    const EventProfiler &profiler() const { return profiler_; }
#endif

  private:
    /** Tick of the next event to service; queue must be non-empty. */
    Tick headWhen() const { return head_->_when; }

    /** True when a orders strictly before b's (when, priority). */
    static bool
    binBefore(Tick when, Event::Priority priority, const Event *b)
    {
        if (when != b->_when)
            return when < b->_when;
        return priority < b->_priority;
    }

    /** Same first-level key (one bin)? */
    static bool
    binEqual(Tick when, Event::Priority priority, const Event *b)
    {
        return when == b->_when && priority == b->_priority;
    }

    /** Unlink @p event from both levels; flags are left untouched. */
    void unlink(Event *event);

    /** Link @p event into the two-level structure at its stamped
     * (when, priority), at the tail of its bin. */
    void link(Event *event);

    /** Release an arena-managed event after service/deschedule. */
    void releaseIfManaged(Event *event);

    /** Full structural audit (ordering, flags, cross-links); used by
     * MERCURY_ASSERT_SLOW in the mutating paths. */
    bool checkInvariants() const;

    std::string _name;
    Tick _curTick = 0;
    std::uint64_t _nextSequence = 0;
    Counter _numServiced = 0;
    std::size_t size_ = 0;
    /** Live first-level bins (maintained by link/unlink). */
    std::size_t binCount_ = 0;
    /** Head of the first-level bin list (earliest bin), or nullptr. */
    Event *head_ = nullptr;
    /** Last bin, for O(1) append-beyond-the-end scheduling. */
    Event *tail_ = nullptr;
    EventArena arena_;
#if MERCURY_EVENT_PROFILE
    EventProfiler profiler_;
#endif
};

} // namespace mercury

#endif // MERCURY_SIM_EVENT_QUEUE_HH
