#include "sim/fault.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::fault
{

const char *
kindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::PacketLoss: return "packet-loss";
      case FaultKind::MacBufferDrop: return "mac-buffer-drop";
      case FaultKind::FlashProgramFail: return "flash-program-fail";
      case FaultKind::FlashBadBlock: return "flash-bad-block";
      case FaultKind::NodeCrash: return "node-crash";
      case FaultKind::NodeRestart: return "node-restart";
      case FaultKind::NetDegrade: return "net-degrade";
      case FaultKind::NetRestore: return "net-restore";
      case FaultKind::FlashWear: return "flash-wear";
    }
    return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed)
    : seed_(seed), rng_(seed)
{}

void
FaultInjector::reset(std::uint64_t seed)
{
    seed_ = seed;
    rng_.seed(seed);
    scheduled_.clear();
    timeline_.clear();
}

bool
FaultInjector::roll(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return rng_.nextBool(probability);
}

double
FaultInjector::jitter(double fraction)
{
    if (fraction <= 0.0)
        return 1.0;
    return 1.0 + fraction * (2.0 * rng_.nextDouble() - 1.0);
}

Tick
FaultInjector::nextInterval(Tick mean)
{
    MERCURY_EXPECTS(mean > 0, "fault interval mean must be positive");
    const double drawn =
        rng_.nextExponential(static_cast<double>(mean));
    return std::max<Tick>(1, static_cast<Tick>(drawn));
}

std::uint64_t
FaultInjector::pick(std::uint64_t bound)
{
    MERCURY_EXPECTS(bound > 0, "pick needs a positive bound");
    return rng_.nextInt(bound);
}

void
FaultInjector::schedule(Tick at, FaultKind kind, std::string target,
                        std::uint64_t detail)
{
    scheduled_.emplace(
        at, ScheduledFault{at, kind, std::move(target), detail});
}

std::optional<ScheduledFault>
FaultInjector::popDue(Tick now)
{
    auto it = scheduled_.begin();
    if (it == scheduled_.end() || it->first > now)
        return std::nullopt;
    ScheduledFault fault = std::move(it->second);
    scheduled_.erase(it);
    return fault;
}

Tick
FaultInjector::nextScheduledAt() const
{
    return scheduled_.empty() ? maxTick : scheduled_.begin()->first;
}

void
FaultInjector::record(Tick at, FaultKind kind, std::string_view target,
                      std::uint64_t detail)
{
    timeline_.push_back(
        FaultRecord{at, kind, std::string(target), detail});
}

std::uint64_t
FaultInjector::forkSeed(std::string_view label) const
{
    constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ull;
    constexpr std::uint64_t fnv_prime = 0x100000001b3ull;

    std::uint64_t hash = fnv_offset;
    for (int shift = 0; shift < 64; shift += 8) {
        hash ^= static_cast<std::uint8_t>(seed_ >> shift);
        hash *= fnv_prime;
    }
    for (const char c : label) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= fnv_prime;
    }
    return hash;
}

std::uint64_t
FaultInjector::timelineDigest() const
{
    constexpr std::uint64_t fnv_offset = 0xcbf29ce484222325ull;
    return timelineDigest(fnv_offset);
}

std::uint64_t
FaultInjector::timelineDigest(std::uint64_t basis) const
{
    constexpr std::uint64_t fnv_prime = 0x100000001b3ull;

    std::uint64_t hash = basis;
    auto fold_byte = [&hash](std::uint8_t byte) {
        hash ^= byte;
        hash *= fnv_prime;
    };
    auto fold_u64 = [&fold_byte](std::uint64_t value) {
        for (int shift = 0; shift < 64; shift += 8)
            fold_byte(static_cast<std::uint8_t>(value >> shift));
    };

    for (const FaultRecord &record : timeline_) {
        fold_u64(record.at);
        fold_byte(static_cast<std::uint8_t>(record.kind));
        for (const char c : record.target)
            fold_byte(static_cast<std::uint8_t>(c));
        fold_u64(record.detail);
    }
    return hash;
}

void
FaultInjector::formatTimeline(std::ostream &os,
                              std::size_t max_records) const
{
    const std::size_t shown =
        std::min(max_records, timeline_.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const FaultRecord &r = timeline_[i];
        os << ticksToUs(r.at) << " us  " << kindName(r.kind) << "  "
           << r.target << "  #" << r.detail << "\n";
    }
    if (shown < timeline_.size()) {
        os << "... (" << timeline_.size() - shown
           << " more faults)\n";
    }
}

void
scheduleBadDay(FaultInjector &injector, const BadDayPlan &plan)
{
    Tick when = plan.at;
    for (const std::string &victim : plan.crashNodes) {
        injector.schedule(when, FaultKind::NodeCrash, victim);
        if (plan.downtime > 0) {
            injector.schedule(when + plan.downtime,
                              FaultKind::NodeRestart, victim);
        }
        when += plan.crashStagger;
    }
    if (plan.lossProbability > 0.0 && plan.lossDuration > 0) {
        injector.schedule(plan.at, FaultKind::NetDegrade, allNodes,
                          probabilityToPpb(plan.lossProbability));
        injector.schedule(plan.at + plan.lossDuration,
                          FaultKind::NetRestore, allNodes);
    }
    if (plan.flashProgramFailProbability > 0.0 &&
        plan.flashWearDuration > 0) {
        injector.schedule(
            plan.at, FaultKind::FlashWear, allNodes,
            probabilityToPpb(plan.flashProgramFailProbability));
        injector.schedule(plan.at + plan.flashWearDuration,
                          FaultKind::FlashWear, allNodes, 0);
    }
}

} // namespace mercury::fault
