/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultInjector owns a dedicated RNG stream (seeded independently
 * of every workload stream) plus two sources of faults:
 *
 *  - probabilistic: subsystems ask roll(p) at their fault points
 *    (packet transmission, page program, block erase, ...); and
 *  - scheduled: an explicit timeline of (tick, kind, target) events
 *    (e.g. "crash node3 at t=40ms") drained by the simulation loop.
 *
 * Every fault that actually fires is appended to a recorded timeline,
 * so two runs with the same seed and the same request stream produce
 * bit-identical fault histories; timelineDigest() folds the history
 * into one comparable value for determinism tests and sweep output.
 *
 * Zero-cost-off contract: roll(p) with p <= 0 returns false WITHOUT
 * consuming RNG state, and subsystems only consult an injector they
 * were explicitly handed. A simulation without an injector (or with
 * all rates zero) therefore computes bit-identically to a build that
 * never heard of faults.
 */

#ifndef MERCURY_SIM_FAULT_HH
#define MERCURY_SIM_FAULT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace mercury::fault
{

/** What failed. One enumerator per instrumented fault point. */
enum class FaultKind : std::uint8_t
{
    PacketLoss,       ///< wire/NIC dropped a TCP segment
    MacBufferDrop,    ///< NIC MAC buffer overflowed
    FlashProgramFail, ///< page program failed (page burned)
    FlashBadBlock,    ///< block retired (grown bad block)
    NodeCrash,        ///< cluster node process died
    NodeRestart,      ///< cluster node came back (cold)
    NetDegrade,       ///< loss burst began (detail: probability, ppb)
    NetRestore,       ///< loss burst ended
    FlashWear,        ///< wear burst (detail: program-fail prob, ppb)
};

/** Encode a probability into a FaultRecord's integral detail field
 * as parts-per-billion (the NetDegrade/FlashWear convention). */
constexpr std::uint64_t
probabilityToPpb(double probability)
{
    return static_cast<std::uint64_t>(probability * 1e9);
}

constexpr double
ppbToProbability(std::uint64_t ppb)
{
    return static_cast<double>(ppb) / 1e9;
}

/** Stable printable name ("packet-loss", "node-crash", ...). */
const char *kindName(FaultKind kind);

/** One fault that fired. */
struct FaultRecord
{
    Tick at = 0;
    FaultKind kind{};
    std::string target;
    std::uint64_t detail = 0;
};

/** One fault planned for the future. */
struct ScheduledFault
{
    Tick at = 0;
    FaultKind kind{};
    std::string target;
    std::uint64_t detail = 0;
};

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 0xfa17ull);

    std::uint64_t seed() const { return seed_; }

    /** Re-seed and clear the timeline and the schedule. */
    void reset(std::uint64_t seed);

    /**
     * Seed for a subordinate injector derived from this one's seed
     * and a label (FNV-1a), consuming no RNG state here. Giving
     * each simulated node its own forked injector decouples the
     * node-local fault streams (packet loss, flash faults) from the
     * master's scenario draws -- the prerequisite for running nodes
     * on PDES shards: a node's draws then depend only on its own
     * history, not on the global interleaving of all nodes' rolls.
     */
    std::uint64_t forkSeed(std::string_view label) const;

    // --- Probabilistic fault points ---------------------------------

    /**
     * True with the given probability. p <= 0 is false and p >= 1 is
     * true, in both cases without consuming RNG state, so disabled
     * fault points perturb nothing.
     */
    bool roll(double probability);

    /** Uniform multiplier in [1-fraction, 1+fraction] (backoff
     * jitter). fraction <= 0 returns 1.0 without consuming RNG. */
    double jitter(double fraction);

    /** Exponentially distributed waiting time with the given mean
     * (Poisson fault arrivals). */
    Tick nextInterval(Tick mean);

    /** Uniform integer in [0, bound) (victim selection). */
    std::uint64_t pick(std::uint64_t bound);

    // --- Scheduled fault plans --------------------------------------

    void schedule(Tick at, FaultKind kind, std::string target,
                  std::uint64_t detail = 0);

    /** Earliest scheduled fault with at <= now, removed from the
     * plan; nullopt when none is due. Ties pop in insertion order. */
    std::optional<ScheduledFault> popDue(Tick now);

    /** Tick of the next scheduled fault, or maxTick when empty. */
    Tick nextScheduledAt() const;

    std::size_t pendingScheduled() const { return scheduled_.size(); }

    // --- Recorded timeline ------------------------------------------

    /** Append a fired fault to the timeline. Subsystems call this at
     * the moment they act on a fault. */
    void record(Tick at, FaultKind kind, std::string_view target,
                std::uint64_t detail = 0);

    const std::vector<FaultRecord> &timeline() const
    {
        return timeline_;
    }

    std::size_t faultCount() const { return timeline_.size(); }

    /** FNV-1a fold of the full timeline: equal digests mean equal
     * fault histories. Seeded runs must reproduce this exactly. */
    std::uint64_t timelineDigest() const;

    /**
     * Timeline fold continued from @p basis instead of the FNV
     * offset: chains several injectors' timelines (master first,
     * then each node fork in node-index order) into one combined
     * digest that is independent of how the work was sharded.
     */
    std::uint64_t timelineDigest(std::uint64_t basis) const;

    /** Human-readable dump of (up to) the first max_records faults. */
    void formatTimeline(std::ostream &os,
                        std::size_t max_records = 50) const;

  private:
    std::uint64_t seed_;
    Rng rng_;
    /** Planned faults keyed by due tick; multimap keeps insertion
     * order within a tick. */
    std::multimap<Tick, ScheduledFault> scheduled_;
    std::vector<FaultRecord> timeline_;
};

/**
 * A correlated "bad day" scenario: node crashes (typically a whole
 * rack, staggered by a deterministic interval as the power rail or
 * ToR takes them down one by one), a packet-loss burst, and a flash
 * wear burst, all on one seeded timeline. scheduleBadDay() expands
 * the plan into the injector's scheduled-fault queue; the simulation
 * loop drains it with popDue() like any hand-scheduled fault.
 */
struct BadDayPlan
{
    /** When the bad day begins. */
    Tick at = 0;

    /** Nodes that crash, in order; empty for a crash-free plan. */
    std::vector<std::string> crashNodes;

    /** Deterministic gap between consecutive crashes. */
    Tick crashStagger = 0;

    /** Per-node downtime; a matching NodeRestart is scheduled for
     * each crash. 0 leaves restarts to the simulation's default
     * downtime policy. */
    Tick downtime = 0;

    /** Cluster-wide packet-loss burst (target "*"): per-segment drop
     * probability and how long the burst lasts. 0 disables. */
    double lossProbability = 0.0;
    Tick lossDuration = 0;

    /** Cluster-wide flash wear burst (target "*"): page program-fail
     * probability and burst duration. 0 disables. */
    double flashProgramFailProbability = 0.0;
    Tick flashWearDuration = 0;
};

/** Targets all nodes in a scheduled fault ("*"). */
inline constexpr const char *allNodes = "*";

/** Expand a composed scenario into the injector's schedule. */
void scheduleBadDay(FaultInjector &injector, const BadDayPlan &plan);

} // namespace mercury::fault

#endif // MERCURY_SIM_FAULT_HH
