/**
 * @file
 * Tiny deterministic JSON emission helpers.
 *
 * The stats registry and the bench harnesses emit JSON that golden
 * tests digest byte-for-byte, so formatting must be reproducible
 * across builds: fields appear in insertion order, integers print as
 * integers, and doubles go through one canonical printf format.
 */

#ifndef MERCURY_SIM_JSON_HH
#define MERCURY_SIM_JSON_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace mercury::json
{

/** Escape a string for inclusion inside JSON double quotes. */
inline std::string
escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Append @p text escaped for inclusion inside JSON double quotes,
 * without building a temporary (the stats hot path dumps thousands
 * of keys per sweep). Byte-identical to `out += escape(text)`. */
inline void
appendEscaped(std::string &out, std::string_view text)
{
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/** Canonical double formatting: round-trippable, locale-free. */
inline void
appendDouble(std::string &out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

inline void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

/**
 * Append `"p1p2p3":` with the leading comma handled via @p first.
 * The key is passed in up to three pieces (prefix, name, "::field")
 * so callers never concatenate a temporary key string.
 */
inline void
appendKey(std::string &out, bool &first, std::string_view p1,
          std::string_view p2 = {}, std::string_view p3 = {})
{
    if (!first)
        out += ',';
    first = false;
    out += '"';
    appendEscaped(out, p1);
    appendEscaped(out, p2);
    appendEscaped(out, p3);
    out += "\":";
}

/** Canonical double formatting: round-trippable, locale-free. */
inline void
writeDouble(std::ostream &os, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << buf;
}

/** Emit "key": with the leading comma handled via @p first. */
inline void
writeKey(std::ostream &os, bool &first, std::string_view key)
{
    if (!first)
        os << ",";
    first = false;
    os << "\"" << escape(key) << "\":";
}

inline void
writeField(std::ostream &os, bool &first, std::string_view key,
           std::uint64_t value)
{
    writeKey(os, first, key);
    os << value;
}

inline void
writeField(std::ostream &os, bool &first, std::string_view key,
           double value)
{
    writeKey(os, first, key);
    writeDouble(os, value);
}

inline void
writeField(std::ostream &os, bool &first, std::string_view key,
           std::string_view value)
{
    writeKey(os, first, key);
    os << "\"" << escape(value) << "\"";
}

} // namespace mercury::json

#endif // MERCURY_SIM_JSON_HH
