#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mercury
{

namespace
{

struct LogState
{
    bool throwMode = false;
    bool captureMode = false;
    std::vector<std::string> captured;
    std::mutex mutex;
};

LogState &
state()
{
    static LogState s;
    return s;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // anonymous namespace

namespace detail
{

void
log(LogLevel level, const std::string &message)
{
    LogState &s = state();
    std::lock_guard<std::mutex> guard(s.mutex);
    if (s.captureMode) {
        s.captured.push_back(message);
        return;
    }
    std::cerr << levelName(level) << ": " << message << "\n";
}

bool
logThrowModeActive()
{
    LogState &s = state();
    std::lock_guard<std::mutex> guard(s.mutex);
    return s.throwMode;
}

void
logAndAbort(LogLevel level, const std::string &message,
            const char *file, int line)
{
    {
        LogState &s = state();
        std::lock_guard<std::mutex> guard(s.mutex);
        if (!s.captureMode) {
            std::cerr << levelName(level) << ": " << message
                      << " (" << file << ":" << line << ")\n";
        }
        if (s.throwMode)
            throw SimFatalError(message);
    }
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

ScopedLogCapture::ScopedLogCapture()
{
    LogState &s = state();
    std::lock_guard<std::mutex> guard(s.mutex);
    s.throwMode = true;
    s.captureMode = true;
    s.captured.clear();
}

ScopedLogCapture::~ScopedLogCapture()
{
    LogState &s = state();
    std::lock_guard<std::mutex> guard(s.mutex);
    s.throwMode = false;
    s.captureMode = false;
}

const std::vector<std::string> &
ScopedLogCapture::messages() const
{
    return state().captured;
}

} // namespace mercury
