/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug);
 *            aborts so a debugger or core dump can inspect the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   - something works well enough but deserves attention.
 * inform() - normal operating status messages.
 */

#ifndef MERCURY_SIM_LOGGING_HH
#define MERCURY_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mercury
{

/** Severity levels understood by the logger. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail
{

/** Emit one formatted log record and take the level's exit action. */
[[noreturn]] void logAndAbort(LogLevel level, const std::string &message,
                              const char *file, int line);

void log(LogLevel level, const std::string &message);

/** True while a ScopedLogCapture has switched fatal paths to throw. */
bool logThrowModeActive();

/** Fold any streamable arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Thrown instead of terminating when log-throw mode is active. */
struct SimFatalError : public std::runtime_error
{
    explicit SimFatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * RAII helper for tests: while alive, fatal()/panic() throw
 * SimFatalError instead of terminating the process, and warn/inform
 * output is captured instead of written to stderr.
 */
class ScopedLogCapture
{
  public:
    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    /** Messages captured so far, one per element. */
    const std::vector<std::string> &messages() const;
};

template <typename... Args>
void
inform(Args &&...args)
{
    detail::log(LogLevel::Inform,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args &&...args)
{
    detail::log(LogLevel::Warn,
                detail::concat(std::forward<Args>(args)...));
}

} // namespace mercury

/** User-error termination; see file comment. */
#define mercury_fatal(...)                                                  \
    ::mercury::detail::logAndAbort(                                         \
        ::mercury::LogLevel::Fatal,                                         \
        ::mercury::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Internal-bug termination; see file comment. */
#define mercury_panic(...)                                                  \
    ::mercury::detail::logAndAbort(                                         \
        ::mercury::LogLevel::Panic,                                         \
        ::mercury::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Panic unless the given invariant holds. */
#define mercury_assert(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            mercury_panic("assertion '" #cond "' failed: ",                 \
                          ##__VA_ARGS__);                                   \
        }                                                                   \
    } while (0)

#endif // MERCURY_SIM_LOGGING_HH
