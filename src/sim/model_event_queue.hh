/**
 * @file
 * Reference event queue: the simplest implementation of the
 * simulator's service order that can possibly work.
 *
 * A std::set of (tick, priority, sequence) keys -- exactly the
 * structure the production EventQueue used before it became an
 * intrusive two-level list. It exists for two audiences:
 *
 *  - the event-queue order tests drive the production queue and this
 *    model with identical operation streams and demand identical
 *    service orders, making the model the executable specification;
 *  - bench/selfbench.cc uses it as the baseline the intrusive
 *    queue's events/sec speedup is measured against.
 *
 * It deliberately does not touch Event's private intrusive state, so
 * the same Event object can sit in a ModelEventQueue while the
 * production queue schedules its own copy of the workload.
 * Not part of the simulator proper -- nothing under src/ outside
 * this header may include it.
 */

#ifndef MERCURY_SIM_MODEL_EVENT_QUEUE_HH
#define MERCURY_SIM_MODEL_EVENT_QUEUE_HH

#include <cstdint>
#include <set>
#include <tuple>

#include "sim/contract.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mercury
{

class ModelEventQueue
{
  public:
    Tick curTick() const { return curTick_; }
    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    void
    schedule(Event *event, Tick when)
    {
        MERCURY_EXPECTS(when >= curTick_,
                        "model: scheduling in the past");
        queue_.insert(Entry{when, event->priority(), nextSequence_++,
                            event});
    }

    /** Remove (the earliest entry of) @p event; O(n). */
    void
    deschedule(Event *event)
    {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->event == event) {
                queue_.erase(it);
                return;
            }
        }
        MERCURY_EXPECTS(false, "model: descheduling unqueued event");
    }

    /** Deschedule + schedule with a fresh sequence, mirroring
     * EventQueue::reschedule. */
    void
    reschedule(Event *event, Tick when)
    {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->event == event) {
                queue_.erase(it);
                break;
            }
        }
        schedule(event, when);
    }

    /** Pop the next event in (tick, priority, sequence) order and
     * run its process(). Returns it, or nullptr when empty. */
    Event *
    serviceOne()
    {
        if (queue_.empty())
            return nullptr;
        const Entry entry = *queue_.begin();
        queue_.erase(queue_.begin());
        curTick_ = entry.when;
        entry.event->process();
        return entry.event;
    }

  private:
    struct Entry
    {
        Tick when;
        Event::Priority priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator<(const Entry &other) const
        {
            return std::tie(when, priority, sequence) <
                   std::tie(other.when, other.priority,
                            other.sequence);
        }
    };

    std::set<Entry> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSequence_ = 0;
};

} // namespace mercury

#endif // MERCURY_SIM_MODEL_EVENT_QUEUE_HH
