#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mercury
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextInt(std::uint64_t bound)
{
    mercury_assert(bound > 0, "nextInt bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    mercury_assert(lo <= hi, "nextRange requires lo <= hi");
    return lo + nextInt(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double probability)
{
    return nextDouble() < probability;
}

double
Rng::nextExponential(double mean)
{
    mercury_assert(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

} // namespace mercury
