/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * A self-contained xoshiro256** implementation is used rather than
 * std::mt19937 so that streams are identical across standard-library
 * implementations, which keeps regression outputs stable.
 */

#ifndef MERCURY_SIM_RANDOM_HH
#define MERCURY_SIM_RANDOM_HH

#include <cstdint>

namespace mercury
{

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also
 * be plugged into <random> distributions when convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()() { return next(); }

    std::uint64_t next();

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint64_t nextInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** True with the given probability. */
    bool nextBool(double probability);

    /** Exponentially distributed value with the given mean. */
    double nextExponential(double mean);

    /** Re-seed the generator deterministically. */
    void seed(std::uint64_t seed);

  private:
    std::uint64_t state_[4];
};

} // namespace mercury

#endif // MERCURY_SIM_RANDOM_HH
