#include "sim/sampler.hh"

#include <cstdio>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace mercury::stats
{

Sampler::Sampler(Tick interval, std::string label)
    : interval_(interval), label_(std::move(label)),
      histParent_("sampler")
{
    mercury_assert(interval_ > 0, "sampler window must be non-empty");
    line_.reserve(256);
}

std::size_t
Sampler::addChannel(Kind kind, std::string name)
{
    mercury_assert(!began_,
                   "sampler channels must be registered before "
                   "begin(): ", name);
    Channel channel;
    channel.kind = kind;
    channel.name = std::move(name);
    channels_.push_back(std::move(channel));
    return channels_.size() - 1;
}

std::size_t
Sampler::addCounter(std::string name)
{
    return addChannel(Kind::Count, std::move(name));
}

std::size_t
Sampler::watch(const Counter &stat, std::string name)
{
    const std::size_t index =
        addChannel(Kind::Watch, std::move(name));
    channels_[index].watched = &stat;
    channels_[index].a = stat.value();
    return index;
}

std::size_t
Sampler::addRatio(std::string name, std::size_t numerator,
                  std::size_t denominator, double when_empty)
{
    mercury_assert(numerator < channels_.size() &&
                       denominator < channels_.size(),
                   "ratio channel references unknown channels");
    mercury_assert(channels_[numerator].kind != Kind::Ratio &&
                       channels_[denominator].kind != Kind::Ratio &&
                       channels_[numerator].kind != Kind::Latency &&
                       channels_[denominator].kind != Kind::Latency,
                   "ratio channels must reference counter or watch "
                   "channels");
    const std::size_t index =
        addChannel(Kind::Ratio, std::move(name));
    channels_[index].a = numerator;
    channels_[index].b = denominator;
    channels_[index].whenEmpty = when_empty;
    return index;
}

std::size_t
Sampler::addLatency(std::string name, unsigned precision_bits)
{
    const std::size_t index =
        addChannel(Kind::Latency, std::move(name));
    channels_[index].a = hists_.size();
    hists_.push_back(std::make_unique<LatencyHistogram>(
        &histParent_, channels_[index].name,
        "interval histogram of " + channels_[index].name,
        precision_bits));
    return index;
}

void
Sampler::begin(Tick origin)
{
    mercury_assert(!began_, "sampler already begun");
    began_ = true;
    origin_ = origin;
    windowStart_ = origin;
    windowIndex_ = 0;
}

void
Sampler::count(std::size_t channel, std::uint64_t delta)
{
    mercury_assert(channel < channels_.size() &&
                       channels_[channel].kind == Kind::Count,
                   "count() on a non-counter sampler channel");
    channels_[channel].a += delta;
}

void
Sampler::recordLatency(std::size_t channel, std::uint64_t value)
{
    mercury_assert(channel < channels_.size() &&
                       channels_[channel].kind == Kind::Latency,
                   "recordLatency() on a non-latency channel");
    hists_[channels_[channel].a]->record(value);
}

void
Sampler::closeWindow()
{
    // Pass 1: materialize every counter-like channel's window value
    // so ratio channels can reference them regardless of order.
    for (Channel &channel : channels_) {
        switch (channel.kind) {
          case Kind::Count:
            channel.window = channel.a;
            channel.a = 0;
            break;
          case Kind::Watch: {
            const std::uint64_t now = channel.watched->value();
            channel.window = now - channel.a;
            channel.a = now;
            break;
          }
          case Kind::Ratio:
          case Kind::Latency:
            break;
        }
    }

    // Pass 2: emit the line. Fixed field order (window bookkeeping
    // first, then channels in registration order) and fixed numeric
    // formats keep the bytes deterministic for golden pinning.
    line_.clear();
    line_ += '{';
    bool first = true;
    if (!label_.empty()) {
        json::appendKey(line_, first, "label");
        line_ += '"';
        json::appendEscaped(line_, label_);
        line_ += '"';
    }
    json::appendKey(line_, first, "window");
    json::appendUint(line_, windowIndex_);
    json::appendKey(line_, first, "t0");
    json::appendUint(line_, windowStart_);
    json::appendKey(line_, first, "t1");
    json::appendUint(line_, windowStart_ + interval_);

    for (Channel &channel : channels_) {
        switch (channel.kind) {
          case Kind::Count:
          case Kind::Watch:
            json::appendKey(line_, first, channel.name);
            json::appendUint(line_, channel.window);
            break;
          case Kind::Ratio: {
            const std::uint64_t num = channels_[channel.a].window;
            const std::uint64_t den = channels_[channel.b].window;
            const double value =
                den ? static_cast<double>(num) /
                          static_cast<double>(den)
                    : channel.whenEmpty;
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6f", value);
            json::appendKey(line_, first, channel.name);
            line_ += buf;
            break;
          }
          case Kind::Latency: {
            LatencyHistogram &hist = *hists_[channel.a];
            json::appendKey(line_, first, channel.name, "_count");
            json::appendUint(line_, hist.count());
            json::appendKey(line_, first, channel.name, "_p50");
            json::appendUint(line_, hist.percentile(0.50));
            json::appendKey(line_, first, channel.name, "_p99");
            json::appendUint(line_, hist.percentile(0.99));
            json::appendKey(line_, first, channel.name, "_p999");
            json::appendUint(line_, hist.percentile(0.999));
            hist.reset();
            break;
          }
        }
    }
    line_ += "}\n";
    out_ += line_;

    windowStart_ += interval_;
    ++windowIndex_;
    ++windowsClosed_;
}

void
Sampler::advanceTo(Tick now)
{
    mercury_assert(began_, "sampler used before begin()");
    mercury_assert(!finished_, "sampler used after finish()");
    mercury_assert(now >= origin_,
                   "sampler moved before its origin: ", now);
    while (now >= windowStart_ + interval_)
        closeWindow();
}

void
Sampler::finish(Tick end)
{
    if (finished_)
        return;
    mercury_assert(began_, "sampler finished before begin()");
    advanceTo(end);
    // The trailing partial window is emitted iff simulated time
    // actually entered it, so a run ending exactly on a boundary
    // produces no empty tail line.
    if (end > windowStart_)
        closeWindow();
    finished_ = true;
}

} // namespace mercury::stats
