/**
 * @file
 * Windowed time-series sampler over simulated time.
 *
 * The stats registry (sim/stats.hh) answers "what happened over the
 * whole run"; the Sampler answers "how did it evolve": it divides
 * simulated time into fixed windows of `interval` ticks and emits one
 * JSONL line per window holding per-window counter deltas, derived
 * ratios, and windowed latency percentiles from interval histograms
 * that reset at every window boundary (and merge associatively, so
 * coarser windows can be rebuilt offline by folding finer ones).
 *
 * Channels are registered before begin(); afterwards the hot path --
 * count(), recordLatency(), advanceTo() -- is allocation-free in
 * steady state once the output buffer has warmed up (reserve() it, or
 * accept one geometric growth tail; the sampler unit tests pin the
 * zero-allocation property with the operator-new probe).
 *
 * Determinism contract: everything the sampler emits is a pure
 * function of (interval, origin, the recorded values); it never reads
 * the host clock or RNG state, and window boundaries derive from
 * simulated ticks only. A run that samples computes the same timeline
 * as one that never attached a sampler, and `--jobs N` sweeps carry
 * per-point samplers whose lines merge in submission order, so the
 * JSONL bytes are identical across worker counts.
 */

#ifndef MERCURY_SIM_SAMPLER_HH
#define MERCURY_SIM_SAMPLER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace mercury::stats
{

class Sampler
{
  public:
    /**
     * @param interval window width in simulated ticks (> 0)
     * @param label optional series label emitted as the first field
     *        of every line (sweep benches use it to tag the point)
     */
    explicit Sampler(Tick interval, std::string label = "");

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    Tick interval() const { return interval_; }
    const std::string &label() const { return label_; }
    void setLabel(std::string label) { label_ = std::move(label); }

    // --- channel registration (before begin()) ---------------------

    /** Per-window event counter: count() accumulates into the open
     * window; the close emits the window's total and resets it. */
    std::size_t addCounter(std::string name);

    /** Snapshot channel: at every window close the watched registry
     * counter is read and the delta against the previous close is
     * emitted. Reading is pure observation; the counter's owner is
     * never touched. The counter must outlive the sampler's last
     * window close. */
    std::size_t watch(const Counter &stat, std::string name);

    /**
     * Derived per-window ratio of two previously registered
     * counter/watch channels' window values, emitted with a fixed
     * "%.6f" format. Windows where the denominator is zero emit
     * @p when_empty (e.g. 1.0 for availability: an idle window is
     * a fully available one).
     */
    std::size_t addRatio(std::string name, std::size_t numerator,
                         std::size_t denominator,
                         double when_empty = 1.0);

    /**
     * Windowed latency percentiles: an interval LatencyHistogram
     * that resets at every window boundary. The close emits
     * name_count plus name_p50/name_p99/name_p999 (the recorded
     * unit, typically ticks; 0 for an empty window).
     */
    std::size_t addLatency(std::string name,
                           unsigned precision_bits = 7);

    // --- run -------------------------------------------------------

    /** Anchor window 0 at @p origin. Channels are frozen from here
     * on. Calling twice is a bug. */
    void begin(Tick origin);

    bool active() const { return began_; }

    /** Accumulate into a counter channel's open window. */
    void count(std::size_t channel, std::uint64_t delta = 1);

    /** Record one value into a latency channel's open window. */
    void recordLatency(std::size_t channel, std::uint64_t value);

    /** Close (and emit) every window whose end is <= @p now. */
    void advanceTo(Tick now);

    /**
     * Close out the series at @p end: closes every whole window
     * before @p end and then the final partial window, provided any
     * simulated time elapsed in it. Idempotent for the same @p end.
     */
    void finish(Tick end);

    // --- output ----------------------------------------------------

    /** The accumulated JSONL, one object per closed window. */
    const std::string &jsonl() const { return out_; }

    std::uint64_t windowsClosed() const { return windowsClosed_; }

    /** Pre-size the output buffer so steady-state emission never
     * reallocates (the zero-allocation tests use this). */
    void reserve(std::size_t bytes) { out_.reserve(bytes); }

  private:
    enum class Kind : std::uint8_t { Count, Watch, Ratio, Latency };

    struct Channel
    {
        Kind kind;
        std::string name;
        /** Count/Watch: accumulated / last-snapshot value.
         * Ratio: numerator channel. Latency: histogram index. */
        std::uint64_t a = 0;
        /** Ratio: denominator channel. */
        std::uint64_t b = 0;
        /** Ratio: emitted when the denominator's window is zero. */
        double whenEmpty = 0.0;
        /** Watch: the registry counter being snapshot. */
        const Counter *watched = nullptr;
        /** Scratch: this window's value, filled at close. */
        std::uint64_t window = 0;
    };

    std::size_t addChannel(Kind kind, std::string name);
    void closeWindow();

    Tick interval_;
    std::string label_;
    bool began_ = false;
    bool finished_ = false;
    Tick origin_ = 0;
    /** Start tick of the currently open window. */
    Tick windowStart_ = 0;
    std::uint64_t windowIndex_ = 0;
    std::uint64_t windowsClosed_ = 0;

    std::vector<Channel> channels_;
    /** Detached parent for the interval histograms (never reachable
     * from any Registry, so --stats-json output is unaffected). */
    StatGroup histParent_;
    std::vector<std::unique_ptr<LatencyHistogram>> hists_;

    /** Reusable per-line scratch and the accumulated JSONL. */
    std::string line_;
    std::string out_;
};

} // namespace mercury::stats

#endif // MERCURY_SIM_SAMPLER_HH
