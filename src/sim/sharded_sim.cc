/**
 * @file
 * ShardedSim: conservative-PDES barrier scheduling and inbox drain.
 */

#include "sim/sharded_sim.hh"

#include <algorithm>

#include "sim/contract.hh"
#include "sim/thread_pool.hh"

namespace mercury::sim
{

ShardedSim::ShardedSim(unsigned shards)
{
    if (shards == 0)
        shards = 1;
    queues_.reserve(shards);
    inboxes_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        queues_.push_back(
            std::make_unique<EventQueue>("shard" + std::to_string(s)));
        inboxes_.push_back(std::make_unique<Inbox>());
    }
}

ShardedSim::~ShardedSim() = default;

NodeId
ShardedSim::addNode(unsigned shard)
{
    MERCURY_ASSERT(shard < queues_.size(),
                   "addNode: shard out of range: ", shard);
    nodeShard_.push_back(shard);
    sendSeq_.push_back(0);
    return static_cast<NodeId>(nodeShard_.size() - 1);
}

NodeId
ShardedSim::addNode()
{
    return addNode(static_cast<unsigned>(nodeShard_.size()) %
                   static_cast<unsigned>(queues_.size()));
}

void
ShardedSim::addLink(NodeId src, NodeId dst, Tick latency)
{
    MERCURY_ASSERT(src < nodeShard_.size() && dst < nodeShard_.size(),
                   "addLink: node out of range");
    MERCURY_ASSERT(latency > 0,
                   "addLink: zero-latency link has no lookahead");
    linkLatencies_.push_back(latency);
}

Tick
ShardedSim::lookahead() const
{
    if (lookaheadOverride_ != 0)
        return lookaheadOverride_;
    MERCURY_ASSERT(!linkLatencies_.empty(),
                   "lookahead() with no links registered; addLink "
                   "the topology (or override for tests) first");
    return *std::min_element(linkLatencies_.begin(),
                             linkLatencies_.end());
}

void
ShardedSim::overrideLookaheadForTest(Tick lookahead)
{
    MERCURY_ASSERT(!inWindow_,
                   "lookahead override inside a window");
    lookaheadOverride_ = lookahead;
}

void
ShardedSim::send(NodeId src, NodeId dst, Tick deliverTick,
                 std::function<void()> deliver)
{
    MERCURY_ASSERT(src < nodeShard_.size() && dst < nodeShard_.size(),
                   "send: node out of range");
    // The conservative contract: a message issued during a window
    // may not land inside it. Guaranteed by construction when the
    // delivery latency is >= the lookahead (= min link latency); a
    // violation means the lookahead overstates how fast the fabric
    // really is.
    MERCURY_ASSERT(!inWindow_ || deliverTick >= windowEnd_,
                   "cross-shard causality violation: delivery at ",
                   deliverTick, " inside the window ending at ",
                   windowEnd_,
                   " -- lookahead exceeds the true min link latency");
    Inbox &inbox = *inboxes_[nodeShard_[dst]];
    std::uint64_t seq = sendSeq_[src]++;
    ScopedLock lock(inbox.mutex);
    inbox.pending.push_back(
        Message{deliverTick, src, seq, std::move(deliver)});
}

void
ShardedSim::post(NodeId dst, Tick tick, std::function<void()> fn)
{
    MERCURY_ASSERT(!inWindow_, "post() inside a window");
    MERCURY_ASSERT(dst < nodeShard_.size(), "post: node out of range");
    // A post is a send from the destination to itself: the
    // (tick, dst, per-node seq) sort key keeps equal-tick posts to
    // one node in post order, under every partition.
    Inbox &inbox = *inboxes_[nodeShard_[dst]];
    std::uint64_t seq = sendSeq_[dst]++;
    ScopedLock lock(inbox.mutex);
    inbox.pending.push_back(Message{tick, dst, seq, std::move(fn)});
}

void
ShardedSim::drainInboxes()
{
    for (std::size_t s = 0; s < inboxes_.size(); ++s) {
        Inbox &inbox = *inboxes_[s];
        std::vector<Message> batch;
        {
            ScopedLock lock(inbox.mutex);
            batch.swap(inbox.pending);
        }
        // Canonical delivery order: (tick, src, srcSeq) is unique
        // per message and independent of shard placement and of
        // the host-time order the sends raced into the inbox.
        std::sort(batch.begin(), batch.end(),
                  [](const Message &a, const Message &b) {
                      if (a.tick != b.tick)
                          return a.tick < b.tick;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.srcSeq < b.srcSeq;
                  });
        EventQueue &queue = *queues_[s];
        for (Message &msg : batch) {
            queue.schedule(queue.makeEvent<EventFunctionWrapper>(
                               std::move(msg.deliver), "shard message"),
                           msg.tick);
        }
    }
}

bool
ShardedSim::runWindow()
{
    MERCURY_ASSERT(!inWindow_, "runWindow() re-entered");
    drainInboxes();

    Tick start = maxTick;
    for (const auto &queue : queues_)
        start = std::min(start, queue->nextWhen());
    if (start == maxTick)
        return false;

    const Tick ahead = lookahead();
    windowStart_ = start;
    // Saturate rather than wrap at the end of time.
    windowEnd_ = (start > maxTick - ahead) ? maxTick : start + ahead;
    inWindow_ = true;
    ++windowsRun_;

    // run(limit) services events *at* limit inclusive; the window
    // is [start, end), so stop one tick short.
    const Tick limit = windowEnd_ - 1;
    if (queues_.size() == 1) {
        queues_[0]->run(limit);
    } else {
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(
                static_cast<unsigned>(queues_.size()));
        for (const auto &queue : queues_) {
            EventQueue *q = queue.get();
            if (q->nextWhen() <= limit)
                pool_->submit([q, limit] { q->run(limit); });
        }
        pool_->wait();
    }
    inWindow_ = false;
    return true;
}

Counter
ShardedSim::run()
{
    while (runWindow()) {
    }
    return numServiced();
}

Counter
ShardedSim::numServiced() const
{
    Counter total = 0;
    for (const auto &queue : queues_)
        total += queue->numServiced();
    return total;
}

#if MERCURY_EVENT_PROFILE
EventProfiler
ShardedSim::aggregateProfile() const
{
    EventProfiler merged;
    bool first = true;
    for (const auto &queue : queues_) {
        if (first) {
            merged = queue->profiler();
            first = false;
        } else {
            merged.mergeFrom(queue->profiler());
        }
    }
    return merged;
}
#endif

} // namespace mercury::sim
