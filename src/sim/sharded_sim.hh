/**
 * @file
 * Conservative parallel discrete-event simulation (PDES) coordinator.
 *
 * ShardedSim partitions a simulated topology into shards, each owning
 * a private EventQueue, and executes them in lockstep time windows on
 * a sim::ThreadPool. The synchronization protocol is classic
 * conservative PDES with a time-window barrier:
 *
 *   - Every node is assigned to exactly one shard. A node may
 *     schedule events for *itself* directly on its shard's queue
 *     (localQueue()); every node-to-node message -- same shard or
 *     not -- goes through send(), which appends to the destination
 *     shard's inbox.
 *   - The lookahead L is the minimum latency over *all* registered
 *     links (not just the links that happen to cross shards under
 *     the current partition). That makes the window boundaries a
 *     pure function of the topology, independent of the shard
 *     mapping -- the property the byte-identity contract rests on.
 *   - runWindow() drains every inbox in canonical order, picks
 *     windowStart = min pending tick across shards, sets
 *     windowEnd = windowStart + L, and runs every shard's queue up
 *     to (but excluding) windowEnd concurrently. Because any
 *     message sent during the window is delivered no earlier than
 *     send time + link latency >= windowEnd, no shard can receive
 *     an event inside the window it is currently executing:
 *     cross-shard skew never exceeds the lookahead.
 *
 * Determinism: inbox messages are drained sorted by
 * (deliverTick, srcNode, srcSeq) where srcSeq is a per-source send
 * counter -- a total order independent of shard placement and host
 * thread interleaving. Within a shard, locally scheduled events
 * keep EventQueue's (tick, priority, insertion) order; because a
 * direct schedule only ever targets the scheduling node itself,
 * per-node event order is identical for every shard count, which is
 * what makes sharded output byte-identical to serial
 * (see DESIGN.md "Parallel simulation").
 *
 * Threading: inboxes are the only shared mutable state and are
 * mutex-guarded. Queues are confined to their shard's worker during
 * a window; the pool's wait() barrier publishes all writes back to
 * the coordinator between windows.
 */

#ifndef MERCURY_SIM_SHARDED_SIM_HH
#define MERCURY_SIM_SHARDED_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sync.hh"
#include "sim/thread_annotations.hh"
#include "sim/types.hh"

namespace mercury::sim
{

class ThreadPool;

/** Index of a simulated node within a ShardedSim topology. */
using NodeId = std::uint32_t;

class ShardedSim
{
  public:
    /** @param shards number of shards (clamped to >= 1). Each shard
     * owns one EventQueue; with one shard execution is inline and
     * the engine degenerates to a serial run with the same event
     * order. */
    explicit ShardedSim(unsigned shards);
    ~ShardedSim();

    ShardedSim(const ShardedSim &) = delete;
    ShardedSim &operator=(const ShardedSim &) = delete;

    // ---- topology registration (before the first window) ---------

    /** Register a node on an explicit shard; returns its id. */
    NodeId addNode(unsigned shard);

    /** Register a node round-robin across shards (node i lands on
     * shard i % shards -- a placement that is itself a pure
     * function of the node index). */
    NodeId addNode();

    /**
     * Register a directed communication link. Every link's latency
     * is a lookahead candidate regardless of whether its endpoints
     * share a shard, so lookahead() -- and therefore every window
     * boundary -- does not depend on the partition.
     *
     * @pre latency > 0 (a zero-latency link has no lookahead and
     *      cannot be simulated conservatively).
     */
    void addLink(NodeId src, NodeId dst, Tick latency);

    unsigned shards() const { return static_cast<unsigned>(queues_.size()); }
    unsigned nodeCount() const { return static_cast<unsigned>(nodeShard_.size()); }
    unsigned shardOf(NodeId node) const { return nodeShard_[node]; }

    /** Minimum latency over all registered links. */
    Tick lookahead() const;

    /**
     * Test hook: force the window length regardless of registered
     * links. Inflating the lookahead past the true minimum link
     * latency makes a legitimate send() violate the causality
     * contract (deliver inside the current window) -- the negative
     * test in tests/sim/sharded_lockstep_test.cc uses exactly that
     * to prove the MERCURY_ASSERT guards the window invariant.
     */
    void overrideLookaheadForTest(Tick lookahead);

    // ---- event access ---------------------------------------------

    /**
     * The queue a node's *own* events live on. Only ever schedule
     * a node's self-events here; cross-node messages must use
     * send() (the mercury_lint cross-shard-schedule rule flags
     * direct scheduling through queueFor()).
     */
    EventQueue &localQueue(NodeId node)
    {
        return *queues_[nodeShard_[node]];
    }

    /**
     * A shard's queue, addressed by shard index. Read-only
     * inspection (size, curTick, profiler) is fine from the
     * coordinator between windows; scheduling through this
     * accessor bypasses the inbox protocol and breaks both
     * causality and determinism -- use send() instead.
     */
    EventQueue &queueFor(unsigned shard) { return *queues_[shard]; }
    const EventQueue &queueFor(unsigned shard) const
    {
        return *queues_[shard];
    }

    /**
     * Deliver a cross-node message: run @p deliver on @p dst's
     * shard at @p deliverTick. Goes through the destination inbox
     * even when src and dst share a shard, so the observable
     * delivery order is identical under every partition.
     *
     * Causality contract: when called from inside a window,
     * @p deliverTick must be >= the window end -- guaranteed
     * whenever deliverTick = now + link latency >= lookahead
     * (MERCURY_ASSERT enforced).
     */
    void send(NodeId src, NodeId dst, Tick deliverTick,
              std::function<void()> deliver);

    /**
     * Coordinator-side injection: run @p fn on @p dst's shard at
     * @p tick. Like send() but originates outside the simulated
     * topology (e.g. a driver pre-posting per-node work), so it is
     * not subject to the lookahead contract; it must only be
     * called between windows. Posts to the same node preserve
     * their post order at equal ticks.
     */
    void post(NodeId dst, Tick tick, std::function<void()> fn);

    // ---- execution ------------------------------------------------

    /**
     * Execute one barrier-delimited window: drain inboxes, place
     * the window at the earliest pending tick, run every shard up
     * to the window end (exclusive) in parallel.
     *
     * @return false when nothing was pending (the simulation is
     *         drained).
     */
    bool runWindow();

    /** Run windows until drained; returns total events serviced
     * across all shards. */
    Counter run();

    /** Total events serviced across all shards so far. */
    Counter numServiced() const;

    /** Number of barrier windows executed. */
    Counter windowsRun() const { return windowsRun_; }

    Tick windowStart() const { return windowStart_; }
    Tick windowEnd() const { return windowEnd_; }

#if MERCURY_EVENT_PROFILE
    /** Merge every shard's profiler into one aggregate whose
     * queues() equals the shard count. Call between windows. */
    EventProfiler aggregateProfile() const;
#endif

  private:
    struct Message
    {
        Tick tick;
        NodeId src;
        std::uint64_t srcSeq;
        std::function<void()> deliver;
    };

    /** One shard's inbox: messages visible at the next barrier. */
    struct Inbox
    {
        Mutex mutex;
        std::vector<Message> pending GUARDED_BY(mutex);
    };

    void drainInboxes();

    std::vector<std::unique_ptr<EventQueue>> queues_;
    /** Inboxes are pointers so shard count never moves a Mutex. */
    std::vector<std::unique_ptr<Inbox>> inboxes_;
    std::vector<unsigned> nodeShard_;
    /** Per-source-node send sequence; a node's sends are issued
     * from exactly one thread at a time, so no lock is needed. */
    std::vector<std::uint64_t> sendSeq_;
    std::vector<Tick> linkLatencies_;
    Tick lookaheadOverride_ = 0;
    Tick windowStart_ = 0;
    /** End (exclusive) of the window being executed; read by
     * send()'s causality assert from worker threads. Written only
     * between windows. */
    Tick windowEnd_ = 0;
    bool inWindow_ = false;
    Counter windowsRun_ = 0;
    /** Lazily created on the first multi-shard window. */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace mercury::sim

#endif // MERCURY_SIM_SHARDED_SIM_HH
