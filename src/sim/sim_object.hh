/**
 * @file
 * Base class for named simulation components.
 */

#ifndef MERCURY_SIM_SIM_OBJECT_HH
#define MERCURY_SIM_SIM_OBJECT_HH

#include <string>

namespace mercury
{

/**
 * A named component of the simulated system.
 *
 * Names are hierarchical, dot-separated paths (e.g.
 * "server.stack0.core3.l1d") so statistics output can be grouped by
 * component.
 */
class SimObject
{
  public:
    explicit SimObject(std::string name)
        : _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    const std::string &name() const { return _name; }

    /** Reset any accumulated statistics / transient state. */
    virtual void reset() {}

  private:
    std::string _name;
};

} // namespace mercury

#endif // MERCURY_SIM_SIM_OBJECT_HH
