#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "sim/logging.hh"

namespace mercury::stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    mercury_assert(parent != nullptr,
                   "statistic '", _name, "' needs a parent group");
    parent->addStat(this);
}

namespace
{

void
formatLine(std::ostream &os, const std::string &prefix,
           const std::string &name, double value, const std::string &desc)
{
    std::ostringstream full;
    full << prefix << name;
    os << std::left << std::setw(44) << full.str()
       << std::right << std::setw(16) << value
       << "  # " << desc << "\n";
}

} // anonymous namespace

void
Scalar::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name(), _value, desc());
}

void
Average::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name() + "::mean", mean(), desc());
    formatLine(os, prefix, name() + "::count",
               static_cast<double>(_count), desc());
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     Scale scale, std::size_t buckets, double lo, double hi)
    : StatBase(parent, std::move(name), std::move(desc)),
      scale_(scale), lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    mercury_assert(buckets > 0, "histogram needs at least one bucket");
    if (scale_ == Scale::Linear)
        mercury_assert(hi_ > lo_, "linear histogram needs hi > lo");
}

std::size_t
Histogram::bucketFor(double value) const
{
    if (scale_ == Scale::Log2) {
        if (value < 1.0)
            return 0;
        auto b = static_cast<std::size_t>(std::floor(std::log2(value)));
        return std::min(b + 1, buckets_.size() - 1);
    }
    if (value < lo_)
        return 0;
    if (value >= hi_)
        return buckets_.size() - 1;
    double frac = (value - lo_) / (hi_ - lo_);
    auto b = static_cast<std::size_t>(frac * buckets_.size());
    return std::min(b, buckets_.size() - 1);
}

double
Histogram::bucketLow(std::size_t index) const
{
    if (scale_ == Scale::Log2)
        return index == 0 ? 0.0 : std::exp2(static_cast<double>(index - 1));
    return lo_ + (hi_ - lo_) * static_cast<double>(index) /
           static_cast<double>(buckets_.size());
}

double
Histogram::bucketHigh(std::size_t index) const
{
    if (scale_ == Scale::Log2)
        return std::exp2(static_cast<double>(index));
    return lo_ + (hi_ - lo_) * static_cast<double>(index + 1) /
           static_cast<double>(buckets_.size());
}

void
Histogram::sample(double value, std::uint64_t weight)
{
    buckets_[bucketFor(value)] += weight;
    _count += weight;
    _sum += value * static_cast<double>(weight);
    _min = std::min(_min, value);
    _max = std::max(_max, value);
}

double
Histogram::percentile(double p) const
{
    mercury_assert(p >= 0.0 && p <= 1.0, "percentile requires p in [0,1]");
    if (_count == 0)
        return 0.0;

    const double target = p * static_cast<double>(_count);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double next = cumulative + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            double frac = (target - cumulative) /
                          static_cast<double>(buckets_[i]);
            double low = std::max(bucketLow(i), _min);
            double high = std::min(bucketHigh(i), _max);
            return low + frac * (high - low);
        }
        cumulative = next;
    }
    return _max;
}

double
Histogram::fractionBelow(double threshold) const
{
    if (_count == 0)
        return 0.0;

    std::uint64_t below = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (bucketHigh(i) <= threshold) {
            below += buckets_[i];
        } else if (bucketLow(i) < threshold) {
            // Partial bucket: assume uniform within the bucket.
            double span = bucketHigh(i) - bucketLow(i);
            double covered = threshold - bucketLow(i);
            below += static_cast<std::uint64_t>(
                static_cast<double>(buckets_[i]) * covered / span);
        }
    }
    return static_cast<double>(below) / static_cast<double>(_count);
}

void
Histogram::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name() + "::count",
               static_cast<double>(_count), desc());
    formatLine(os, prefix, name() + "::mean", mean(), desc());
    if (_count > 0) {
        formatLine(os, prefix, name() + "::min", _min, desc());
        formatLine(os, prefix, name() + "::max", _max, desc());
        formatLine(os, prefix, name() + "::p50", percentile(0.50), desc());
        formatLine(os, prefix, name() + "::p95", percentile(0.95), desc());
        formatLine(os, prefix, name() + "::p99", percentile(0.99), desc());
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
StatGroup::format(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const auto *stat : stats_)
        stat->format(os, full);
    for (const auto *child : children_)
        child->format(os, full);
}

void
StatGroup::resetStats()
{
    for (auto *stat : stats_)
        stat->reset();
    for (auto *child : children_)
        child->resetStats();
}

} // namespace mercury::stats
