#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace mercury::stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    mercury_assert(parent != nullptr,
                   "statistic '", _name, "' needs a parent group");
    parent->addStat(this);
}

namespace
{

void
formatLine(std::ostream &os, const std::string &prefix,
           const std::string &name, double value, const std::string &desc)
{
    std::ostringstream full;
    full << prefix << name;
    os << std::left << std::setw(44) << full.str()
       << std::right << std::setw(16) << value
       << "  # " << desc << "\n";
}

} // anonymous namespace

void
Scalar::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name(), _value, desc());
}

void
Scalar::formatJson(std::string &out, const std::string &prefix,
                   bool &first) const
{
    json::appendKey(out, first, prefix, name());
    json::appendDouble(out, _value);
}

void
Counter::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name(), static_cast<double>(_value), desc());
}

void
Counter::formatJson(std::string &out, const std::string &prefix,
                    bool &first) const
{
    json::appendKey(out, first, prefix, name());
    json::appendUint(out, _value);
}

void
Average::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name() + "::mean", mean(), desc());
    formatLine(os, prefix, name() + "::count",
               static_cast<double>(_count), desc());
}

void
Average::formatJson(std::string &out, const std::string &prefix,
                    bool &first) const
{
    json::appendKey(out, first, prefix, name(), "::mean");
    json::appendDouble(out, mean());
    json::appendKey(out, first, prefix, name(), "::count");
    json::appendUint(out, _count);
}

void
TickAverage::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name() + "::mean", mean(), desc());
    formatLine(os, prefix, name() + "::ticks",
               static_cast<double>(_ticks), desc());
}

void
TickAverage::formatJson(std::string &out, const std::string &prefix,
                        bool &first) const
{
    json::appendKey(out, first, prefix, name(), "::mean");
    json::appendDouble(out, mean());
    json::appendKey(out, first, prefix, name(), "::ticks");
    json::appendUint(out, static_cast<std::uint64_t>(_ticks));
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     Scale scale, std::size_t buckets, double lo, double hi)
    : StatBase(parent, std::move(name), std::move(desc)),
      scale_(scale), lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    mercury_assert(buckets > 0, "histogram needs at least one bucket");
    if (scale_ == Scale::Linear)
        mercury_assert(hi_ > lo_, "linear histogram needs hi > lo");
}

std::size_t
Histogram::bucketFor(double value) const
{
    if (scale_ == Scale::Log2) {
        if (value < 1.0)
            return 0;
        auto b = static_cast<std::size_t>(std::floor(std::log2(value)));
        return std::min(b + 1, buckets_.size() - 1);
    }
    if (value < lo_)
        return 0;
    if (value >= hi_)
        return buckets_.size() - 1;
    double frac = (value - lo_) / (hi_ - lo_);
    auto b = static_cast<std::size_t>(frac * buckets_.size());
    return std::min(b, buckets_.size() - 1);
}

double
Histogram::bucketLow(std::size_t index) const
{
    if (scale_ == Scale::Log2)
        return index == 0 ? 0.0 : std::exp2(static_cast<double>(index - 1));
    return lo_ + (hi_ - lo_) * static_cast<double>(index) /
           static_cast<double>(buckets_.size());
}

double
Histogram::bucketHigh(std::size_t index) const
{
    if (scale_ == Scale::Log2)
        return std::exp2(static_cast<double>(index));
    return lo_ + (hi_ - lo_) * static_cast<double>(index + 1) /
           static_cast<double>(buckets_.size());
}

void
Histogram::sample(double value, std::uint64_t weight)
{
    buckets_[bucketFor(value)] += weight;
    _count += weight;
    _sum += value * static_cast<double>(weight);
    _min = std::min(_min, value);
    _max = std::max(_max, value);
}

double
Histogram::percentile(double p) const
{
    mercury_assert(p >= 0.0 && p <= 1.0, "percentile requires p in [0,1]");
    if (_count == 0)
        return 0.0;

    const double target = p * static_cast<double>(_count);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double next = cumulative + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            double frac = (target - cumulative) /
                          static_cast<double>(buckets_[i]);
            double low = std::max(bucketLow(i), _min);
            double high = std::min(bucketHigh(i), _max);
            return low + frac * (high - low);
        }
        cumulative = next;
    }
    return _max;
}

double
Histogram::fractionBelow(double threshold) const
{
    if (_count == 0)
        return 0.0;

    std::uint64_t below = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (bucketHigh(i) <= threshold) {
            below += buckets_[i];
        } else if (bucketLow(i) < threshold) {
            // Partial bucket: assume uniform within the bucket.
            double span = bucketHigh(i) - bucketLow(i);
            double covered = threshold - bucketLow(i);
            below += static_cast<std::uint64_t>(
                static_cast<double>(buckets_[i]) * covered / span);
        }
    }
    return static_cast<double>(below) / static_cast<double>(_count);
}

void
Histogram::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name() + "::count",
               static_cast<double>(_count), desc());
    formatLine(os, prefix, name() + "::mean", mean(), desc());
    if (_count > 0) {
        formatLine(os, prefix, name() + "::min", _min, desc());
        formatLine(os, prefix, name() + "::max", _max, desc());
        formatLine(os, prefix, name() + "::p50", percentile(0.50), desc());
        formatLine(os, prefix, name() + "::p95", percentile(0.95), desc());
        formatLine(os, prefix, name() + "::p99", percentile(0.99), desc());
    }
}

void
Histogram::formatJson(std::string &out, const std::string &prefix,
                      bool &first) const
{
    json::appendKey(out, first, prefix, name(), "::count");
    json::appendUint(out, _count);
    json::appendKey(out, first, prefix, name(), "::mean");
    json::appendDouble(out, mean());
    if (_count > 0) {
        json::appendKey(out, first, prefix, name(), "::min");
        json::appendDouble(out, _min);
        json::appendKey(out, first, prefix, name(), "::max");
        json::appendDouble(out, _max);
        json::appendKey(out, first, prefix, name(), "::p50");
        json::appendDouble(out, percentile(0.50));
        json::appendKey(out, first, prefix, name(), "::p99");
        json::appendDouble(out, percentile(0.99));
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

LatencyHistogram::LatencyHistogram(StatGroup *parent, std::string name,
                                   std::string desc,
                                   unsigned precision_bits,
                                   unsigned max_value_bits)
    : StatBase(parent, std::move(name), std::move(desc)),
      precisionBits_(precision_bits), maxValueBits_(max_value_bits)
{
    mercury_assert(precisionBits_ >= 1 && precisionBits_ <= 20,
                   "latency histogram precision out of range");
    mercury_assert(maxValueBits_ > precisionBits_ && maxValueBits_ <= 64,
                   "latency histogram max-value bits out of range");
    const std::size_t half = std::size_t(1) << precisionBits_;
    const std::size_t regular =
        2 * half + (maxValueBits_ - (precisionBits_ + 1)) * half;
    buckets_.assign(regular + 1, 0);  // + overflow slot
}

std::uint64_t
LatencyHistogram::lowOf(std::size_t index) const
{
    const std::uint64_t half = std::uint64_t(1) << precisionBits_;
    const std::uint64_t sub = half << 1;
    if (index < sub)
        return index;
    const std::uint64_t r = index - sub;
    const unsigned shift = static_cast<unsigned>(r / half) + 1;
    const std::uint64_t subIdx = half + r % half;
    return subIdx << shift;
}

void
LatencyHistogram::record(std::uint64_t value, std::uint64_t count)
{
    const std::size_t index = indexFor(value);
    buckets_[index] += count;
    if (index == buckets_.size() - 1)
        _overflow += count;
    _count += count;
    _sum += value * count;
    _min = std::min(_min, value);
    _max = std::max(_max, value);
}

std::uint64_t
LatencyHistogram::percentile(double p) const
{
    mercury_assert(p >= 0.0 && p <= 1.0, "percentile requires p in [0,1]");
    if (_count == 0)
        return 0;
    if (p <= 0.0)
        return _min;

    auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(_count)));
    rank = std::clamp<std::uint64_t>(rank, 1, _count);
    if (rank == _count)
        return _max;  // the last rank is the recorded maximum

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank) {
            if (i == buckets_.size() - 1)
                return _max;  // overflow bucket: best answer is max
            return std::clamp(lowOf(i), _min, _max);
        }
    }
    return _max;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    mercury_assert(precisionBits_ == other.precisionBits_ &&
                       maxValueBits_ == other.maxValueBits_,
                   "cannot merge latency histograms of different "
                   "geometry");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    _count += other._count;
    _sum += other._sum;
    _overflow += other._overflow;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
LatencyHistogram::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name() + "::count",
               static_cast<double>(_count), desc());
    formatLine(os, prefix, name() + "::sum",
               static_cast<double>(_sum), desc());
    if (_count > 0) {
        formatLine(os, prefix, name() + "::min",
                   static_cast<double>(minValue()), desc());
        formatLine(os, prefix, name() + "::max",
                   static_cast<double>(_max), desc());
        formatLine(os, prefix, name() + "::p50",
                   static_cast<double>(percentile(0.50)), desc());
        formatLine(os, prefix, name() + "::p99",
                   static_cast<double>(percentile(0.99)), desc());
        formatLine(os, prefix, name() + "::p999",
                   static_cast<double>(percentile(0.999)), desc());
    }
}

void
LatencyHistogram::formatJson(std::string &out, const std::string &prefix,
                             bool &first) const
{
    json::appendKey(out, first, prefix, name(), "::count");
    json::appendUint(out, _count);
    json::appendKey(out, first, prefix, name(), "::sum");
    json::appendUint(out, _sum);
    json::appendKey(out, first, prefix, name(), "::min");
    json::appendUint(out, minValue());
    json::appendKey(out, first, prefix, name(), "::max");
    json::appendUint(out, _max);
    json::appendKey(out, first, prefix, name(), "::p50");
    json::appendUint(out, percentile(0.50));
    json::appendKey(out, first, prefix, name(), "::p99");
    json::appendUint(out, percentile(0.99));
    json::appendKey(out, first, prefix, name(), "::p999");
    json::appendUint(out, percentile(0.999));
    json::appendKey(out, first, prefix, name(), "::overflow");
    json::appendUint(out, _overflow);
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    _count = 0;
    _sum = 0;
    _min = std::numeric_limits<std::uint64_t>::max();
    _max = 0;
    _overflow = 0;
}

Formula::Formula(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)),
      fn_(std::move(fn))
{
}

void
Formula::format(std::ostream &os, const std::string &prefix) const
{
    formatLine(os, prefix, name(), value(), desc());
}

void
Formula::formatJson(std::string &out, const std::string &prefix,
                    bool &first) const
{
    json::appendKey(out, first, prefix, name());
    json::appendDouble(out, value());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
StatGroup::format(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const auto *stat : stats_)
        stat->format(os, full);
    for (const auto *child : children_)
        child->format(os, full);
}

void
StatGroup::formatJson(std::string &out, const std::string &prefix,
                      bool &first) const
{
    const std::string full =
        prefix.empty() ? _name + "." : prefix + _name + ".";
    for (const auto *stat : stats_)
        stat->formatJson(out, full, first);
    for (const auto *child : children_)
        child->formatJson(out, full, first);
}

void
StatGroup::resetStats()
{
    for (auto *stat : stats_)
        stat->reset();
    for (auto *child : children_)
        child->resetStats();
}

const StatGroup *
StatGroup::findGroup(std::string_view path) const
{
    const StatGroup *group = this;
    while (!path.empty()) {
        const std::size_t dot = path.find('.');
        const std::string_view head =
            dot == std::string_view::npos ? path : path.substr(0, dot);
        path = dot == std::string_view::npos ? std::string_view{}
                                             : path.substr(dot + 1);
        const StatGroup *next = nullptr;
        for (const auto *child : group->children_) {
            if (child->_name == head) {
                next = child;
                break;
            }
        }
        if (!next)
            return nullptr;
        group = next;
    }
    return group;
}

const StatBase *
StatGroup::find(std::string_view path) const
{
    const std::size_t dot = path.rfind('.');
    const StatGroup *group = this;
    std::string_view leaf = path;
    if (dot != std::string_view::npos) {
        group = findGroup(path.substr(0, dot));
        leaf = path.substr(dot + 1);
    }
    if (!group)
        return nullptr;
    for (const auto *stat : group->stats_) {
        if (stat->name() == leaf)
            return stat;
    }
    return nullptr;
}

void
Registry::writeJson(std::string &out) const
{
    out += '{';
    bool first = true;
    formatJson(out, "", first);
    out += "}\n";
}

void
Registry::writeJson(std::ostream &os) const
{
    sim::ScopedLock lock(jsonMutex_);
    // clear() keeps the buffer's capacity, so after the first dump a
    // sweep loop formats into already-sized storage.
    jsonBuffer_.clear();
    if (jsonBuffer_.capacity() < 4096)
        jsonBuffer_.reserve(4096);
    writeJson(jsonBuffer_);
    os.write(jsonBuffer_.data(),
             static_cast<std::streamsize>(jsonBuffer_.size()));
}

} // namespace mercury::stats
