/**
 * @file
 * Lightweight statistics package.
 *
 * Components own typed statistics (Scalar, Average, Histogram) that
 * register themselves with a StatGroup. A group can format all of its
 * statistics to a stream, gem5 stats.txt style, and reset them between
 * measurement intervals.
 */

#ifndef MERCURY_SIM_STATS_HH
#define MERCURY_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace mercury::stats
{

class StatGroup;

/** Common name/description plumbing for all statistic types. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Write "name value # desc" style lines to the stream. */
    virtual void format(std::ostream &os,
                        const std::string &prefix) const = 0;

    /** Zero out accumulated values. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A simple accumulating counter / gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double amount) { _value += amount; return *this; }
    Scalar &operator-=(double amount) { _value -= amount; return *this; }
    Scalar &operator=(double value) { _value = value; return *this; }

    double value() const { return _value; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double value) { _sum += value; ++_count; }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * A bucketed sample distribution.
 *
 * Buckets are either linear over [min, max) or logarithmic (powers of
 * two starting at 1). Percentiles are estimated by linear
 * interpolation within the containing bucket, which is plenty for
 * latency-SLA style reporting.
 */
class Histogram : public StatBase
{
  public:
    enum class Scale { Linear, Log2 };

    /**
     * @param buckets number of buckets (excluding underflow/overflow)
     * @param lo lowest representable sample (linear scale)
     * @param hi highest representable sample (linear scale)
     */
    Histogram(StatGroup *parent, std::string name, std::string desc,
              Scale scale = Scale::Log2, std::size_t buckets = 48,
              double lo = 0.0, double hi = 1.0);

    void sample(double value, std::uint64_t weight = 1);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minValue() const { return _min; }
    double maxValue() const { return _max; }

    /** Estimated p-quantile (p in [0,1]). */
    double percentile(double p) const;

    /** Fraction of samples with value <= threshold. */
    double fractionBelow(double threshold) const;

    void format(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::size_t bucketFor(double value) const;
    double bucketLow(std::size_t index) const;
    double bucketHigh(std::size_t index) const;

    Scale scale_;
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A named collection of statistics belonging to one component.
 * Groups may nest; format() walks the subtree.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Dump every statistic in this group and its children. */
    void format(std::ostream &os, const std::string &prefix = "") const;

    /** Reset every statistic in this group and its children. */
    void resetStats();

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { stats_.push_back(stat); }
    void addChild(StatGroup *child) { children_.push_back(child); }
    void removeChild(StatGroup *child);

    std::string _name;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace mercury::stats

#endif // MERCURY_SIM_STATS_HH
