/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components own typed statistics (Counter, Scalar, Average,
 * TickAverage, Histogram, LatencyHistogram, Formula) that register
 * themselves with a StatGroup. Groups nest into a tree rooted at a
 * Registry; the tree can be formatted gem5 stats.txt style, dumped
 * as one flat deterministic JSON object (the golden-trace suite
 * digests that output byte-for-byte), queried by dotted path, and
 * reset between measurement intervals.
 *
 * Recording is pure observation: no statistic consumes RNG state or
 * advances simulated time, so an instrumented run computes the same
 * timeline as one that never reads its registry.
 */

#ifndef MERCURY_SIM_STATS_HH
#define MERCURY_SIM_STATS_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sync.hh"
#include "sim/thread_annotations.hh"
#include "sim/types.hh"

namespace mercury::stats
{

class StatGroup;

/** Common name/description plumbing for all statistic types. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Write "name value # desc" style lines to the stream. */
    virtual void format(std::ostream &os,
                        const std::string &prefix) const = 0;

    /**
     * Append this statistic's fields to a flat JSON object as
     * "<prefix><name>[::field]": value pairs, appended to @p out.
     * @p first carries the comma state across the whole object.
     * String-building (not streaming) so one pre-sized buffer can be
     * reused across the repeated dumps of a sweep loop.
     */
    virtual void formatJson(std::string &out, const std::string &prefix,
                            bool &first) const = 0;

    /** Zero out accumulated values. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A simple accumulating counter / gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double amount) { _value += amount; return *this; }
    Scalar &operator-=(double amount) { _value -= amount; return *this; }
    Scalar &operator=(double value) { _value = value; return *this; }

    double value() const { return _value; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** An exact 64-bit event counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t amount)
    {
        _value += amount;
        return *this;
    }

    std::uint64_t value() const { return _value; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double value) { _sum += value; ++_count; }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    void reset() override { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * Time-weighted mean of a level signal (queue depth, buffer
 * occupancy, utilization): each sample holds a value for a number of
 * ticks and contributes proportionally to the elapsed time.
 */
class TickAverage : public StatBase
{
  public:
    using StatBase::StatBase;

    /** The signal held @p value for @p ticks simulated ticks. */
    void
    sample(double value, Tick ticks)
    {
        _weighted += value * static_cast<double>(ticks);
        _ticks += ticks;
    }

    double
    mean() const
    {
        return _ticks ? _weighted / static_cast<double>(_ticks) : 0.0;
    }

    Tick ticks() const { return _ticks; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    void reset() override { _weighted = 0.0; _ticks = 0; }

  private:
    double _weighted = 0.0;
    Tick _ticks = 0;
};

/**
 * A bucketed sample distribution.
 *
 * Buckets are either linear over [min, max) or logarithmic (powers of
 * two starting at 1). Percentiles are estimated by linear
 * interpolation within the containing bucket, which is plenty for
 * latency-SLA style reporting. For exact quantiles over integer tick
 * values, use LatencyHistogram instead.
 */
class Histogram : public StatBase
{
  public:
    enum class Scale { Linear, Log2 };

    /**
     * @param buckets number of buckets (excluding underflow/overflow)
     * @param lo lowest representable sample (linear scale)
     * @param hi highest representable sample (linear scale)
     */
    Histogram(StatGroup *parent, std::string name, std::string desc,
              Scale scale = Scale::Log2, std::size_t buckets = 48,
              double lo = 0.0, double hi = 1.0);

    void sample(double value, std::uint64_t weight = 1);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minValue() const { return _min; }
    double maxValue() const { return _max; }

    /** Estimated p-quantile (p in [0,1]). */
    double percentile(double p) const;

    /** Fraction of samples with value <= threshold. */
    double fractionBelow(double threshold) const;

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    void reset() override;

  private:
    std::size_t bucketFor(double value) const;
    double bucketLow(std::size_t index) const;
    double bucketHigh(std::size_t index) const;

    Scale scale_;
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Log2 latency histogram with sub-bucket precision (HdrHistogram
 * style) over unsigned 64-bit tick values.
 *
 * Values below 2^(precisionBits+1) are recorded exactly (one bucket
 * per value); larger values land in buckets whose width keeps the
 * relative error below 2^-precisionBits. Quantiles use nearest-rank
 * semantics and return the lowest value of the containing bucket, so
 * they are *exact* for any distribution within the exact range, and
 * within the relative-precision bound above it.
 *
 * All buckets are allocated at construction: record() is a shift,
 * an index computation, and a few integer adds -- it never allocates,
 * which the histogram unit tests assert.
 *
 * Values of maxValueBits bits or fewer are representable; anything
 * wider lands in a dedicated overflow bucket (quantiles falling into
 * it report the recorded maximum).
 */
class LatencyHistogram : public StatBase
{
  public:
    LatencyHistogram(StatGroup *parent, std::string name,
                     std::string desc, unsigned precision_bits = 7,
                     unsigned max_value_bits = 64);

    void record(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t count() const { return _count; }
    std::uint64_t totalSum() const { return _sum; }
    std::uint64_t minValue() const { return _count ? _min : 0; }
    std::uint64_t maxValue() const { return _max; }
    std::uint64_t overflowCount() const { return _overflow; }
    double mean() const
    {
        return _count ? static_cast<double>(_sum) /
                            static_cast<double>(_count)
                      : 0.0;
    }

    unsigned precisionBits() const { return precisionBits_; }
    unsigned maxValueBits() const { return maxValueBits_; }
    std::size_t bucketCount() const { return buckets_.size(); }

    /**
     * Nearest-rank p-quantile (p in [0,1]): the lowest value of the
     * bucket holding the ceil(p * count)-th smallest sample, clamped
     * to the recorded [min, max].
     */
    std::uint64_t percentile(double p) const;

    /** Fold another histogram of identical geometry into this one. */
    void merge(const LatencyHistogram &other);

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    void reset() override;

  private:
    std::size_t
    indexFor(std::uint64_t value) const
    {
        const std::uint64_t half = std::uint64_t(1) << precisionBits_;
        const std::uint64_t sub = half << 1;
        if (value < sub)
            return static_cast<std::size_t>(value);
        const unsigned width =
            static_cast<unsigned>(std::bit_width(value));
        if (width > maxValueBits_)
            return buckets_.size() - 1;  // overflow bucket
        const unsigned shift = width - (precisionBits_ + 1);
        return static_cast<std::size_t>(
            sub + (shift - 1) * half + ((value >> shift) - half));
    }

    /** Lowest value mapping to bucket @p index. */
    std::uint64_t lowOf(std::size_t index) const;

    unsigned precisionBits_;
    unsigned maxValueBits_;
    /** Regular buckets plus one trailing overflow slot. */
    std::vector<std::uint64_t> buckets_;
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t _max = 0;
    std::uint64_t _overflow = 0;
};

/**
 * A derived statistic evaluated on demand: rates, ratios, and
 * bridges to counters owned elsewhere (e.g. the functional store's
 * atomic op counters).
 */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void format(std::ostream &os, const std::string &prefix) const override;
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const override;
    /** Formulas have no state of their own. */
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics belonging to one component.
 * Groups may nest; format()/formatJson()/resetStats() walk the
 * subtree in registration order, so output is deterministic.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Dump every statistic in this group and its children. */
    void format(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Append this subtree's statistics to a flat JSON object keyed
     * by full dotted path.
     */
    void formatJson(std::string &out, const std::string &prefix,
                    bool &first) const;

    /** Reset every statistic in this group and its children. */
    void resetStats();

    /**
     * Look up a statistic by dotted path relative to this group
     * (e.g. "dram.reads"); nullptr when absent.
     */
    const StatBase *find(std::string_view path) const;

    /** Look up a child group by dotted path; nullptr when absent. */
    const StatGroup *findGroup(std::string_view path) const;

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { stats_.push_back(stat); }
    void addChild(StatGroup *child) { children_.push_back(child); }
    void removeChild(StatGroup *child);

    std::string _name;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

/**
 * The root of a stats tree. Subsystems hang their groups off the
 * registry a harness hands them (ServerModelParams::statsParent et
 * al.); the harness dumps the whole tree as one JSON object whose
 * bytes are deterministic for a given build and seed.
 */
class Registry : public StatGroup
{
  public:
    explicit Registry(std::string name = "sim")
        : StatGroup(std::move(name))
    {}

    /** Write the flat {"path":value,...} object plus newline. The
     * text is built in a pre-sized buffer that the registry keeps
     * and reuses, so repeated --stats-json dumps in a sweep loop
     * stop paying reallocation-per-append. */
    void writeJson(std::ostream &os) const EXCLUDES(jsonMutex_);

    /** Append the flat {"path":value,...} object plus newline. */
    void writeJson(std::string &out) const;

  private:
    /** Serializes dumps through the shared buffer. The stats tree
     * itself is single-writer by design (each sweep point owns its
     * own Registry); the buffer is the one piece of state a shared
     * root registry mutates on a *read* path, so it gets a real
     * capability rather than a convention. */
    mutable sim::Mutex jsonMutex_;
    /** Reused across dumps; capacity persists, contents do not. */
    mutable std::string jsonBuffer_ GUARDED_BY(jsonMutex_);
};

} // namespace mercury::stats

#endif // MERCURY_SIM_STATS_HH
