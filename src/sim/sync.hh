/**
 * @file
 * Annotated synchronization primitives.
 *
 * std::mutex and std::condition_variable carry no thread-safety
 * attributes, so Clang's analysis cannot see through them. These
 * thin wrappers restore visibility: Mutex is a CAPABILITY,
 * ScopedLock is a SCOPED_CAPABILITY, and ConditionVariable::wait
 * REQUIRES the mutex it atomically releases. All wrappers are
 * zero-cost forwarding shims around the std primitives (the
 * condition variable is a condition_variable_any so it can wait on
 * the annotated Mutex directly).
 *
 * Every lock in the simulator's host-concurrency surface
 * (sim::ThreadPool, the perf-oracle memo cache, Registry's shared
 * JSON buffer) goes through these types; new concurrent code must
 * too, or `-Wthread-safety -Werror` (MERCURY_THREAD_SAFETY, on by
 * default under Clang) cannot vouch for it.
 */

#ifndef MERCURY_SIM_SYNC_HH
#define MERCURY_SIM_SYNC_HH

#include <condition_variable>
#include <mutex>

#include "sim/thread_annotations.hh"

namespace mercury::sim
{

/** A std::mutex the thread-safety analysis can reason about. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mutex_.lock(); }
    void unlock() RELEASE() { mutex_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /** For negative-capability assertions (`!mutex`). */
    const Mutex &operator!() const { return *this; }

  private:
    std::mutex mutex_;
};

/** RAII lock over Mutex (std::lock_guard with annotations). */
class SCOPED_CAPABILITY ScopedLock
{
  public:
    explicit ScopedLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~ScopedLock() RELEASE() { mutex_.unlock(); }

    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable waiting on the annotated Mutex. Callers hold
 * the mutex across wait() (it is released atomically while blocked
 * and re-acquired before return) and re-check their predicate in a
 * while loop, spurious-wakeup style.
 */
class ConditionVariable
{
  public:
    ConditionVariable() = default;
    ConditionVariable(const ConditionVariable &) = delete;
    ConditionVariable &operator=(const ConditionVariable &) = delete;

    /** Block until notified; @p mutex must be held. */
    void
    wait(Mutex &mutex) REQUIRES(mutex)
    {
        cv_.wait(mutex);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace mercury::sim

#endif // MERCURY_SIM_SYNC_HH
