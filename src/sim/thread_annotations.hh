/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These expand to the `capability`-family attributes when the
 * compiler is Clang (where `-Wthread-safety`, enabled by the
 * MERCURY_THREAD_SAFETY build option, turns lock-discipline
 * violations into compile errors) and to nothing everywhere else, so
 * GCC builds are unaffected. They are the static half of the
 * determinism contract: the golden/determinism suites prove runs are
 * byte-identical after the fact, the annotations prove no guarded
 * state can even be compiled without its lock -- which is what the
 * conservative-PDES sharding work relies on before it may split the
 * event core across threads.
 *
 * Usage follows the standard Clang mutex.h pattern: annotate the
 * lock with CAPABILITY via sim/sync.hh's Mutex, mark the data it
 * protects GUARDED_BY(that_mutex), and mark functions that expect
 * the lock held REQUIRES(that_mutex). tests/lint's thread-safety
 * negative-compile check demonstrates that removing an annotation or
 * touching a guarded field lock-free fails the Clang build.
 */

#ifndef MERCURY_SIM_THREAD_ANNOTATIONS_HH
#define MERCURY_SIM_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#define MERCURY_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define MERCURY_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if MERCURY_TSA_HAS_ATTRIBUTE(capability)
#define MERCURY_TSA_ATTR(x) __attribute__((x))
#else
#define MERCURY_TSA_ATTR(x)  // not Clang: annotations compile away
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define CAPABILITY(x) MERCURY_TSA_ATTR(capability(x))

/** Marks an RAII type that acquires on construction and releases on
 * destruction. */
#define SCOPED_CAPABILITY MERCURY_TSA_ATTR(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define GUARDED_BY(x) MERCURY_TSA_ATTR(guarded_by(x))

/** Pointer member whose *pointee* is protected by the capability. */
#define PT_GUARDED_BY(x) MERCURY_TSA_ATTR(pt_guarded_by(x))

/** Lock-ordering declarations (deadlock prevention). */
#define ACQUIRED_BEFORE(...) MERCURY_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MERCURY_TSA_ATTR(acquired_after(__VA_ARGS__))

/** Caller must hold the capability exclusively / shared. */
#define REQUIRES(...) MERCURY_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    MERCURY_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/** Function acquires / releases the capability. */
#define ACQUIRE(...) MERCURY_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    MERCURY_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MERCURY_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    MERCURY_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
    MERCURY_TSA_ATTR(release_generic_capability(__VA_ARGS__))

/** Function acquires the capability when it returns `ret`. */
#define TRY_ACQUIRE(ret, ...) \
    MERCURY_TSA_ATTR(try_acquire_capability(ret, __VA_ARGS__))

/** Caller must NOT hold the capability (non-reentrancy guard). */
#define EXCLUDES(...) MERCURY_TSA_ATTR(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held. */
#define ASSERT_CAPABILITY(x) MERCURY_TSA_ATTR(assert_capability(x))

/** Function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) MERCURY_TSA_ATTR(lock_returned(x))

/** Escape hatch; every use needs a comment explaining why the
 * analysis cannot see the synchronization. */
#define NO_THREAD_SAFETY_ANALYSIS \
    MERCURY_TSA_ATTR(no_thread_safety_analysis)

#endif // MERCURY_SIM_THREAD_ANNOTATIONS_HH
