#include "sim/thread_pool.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::sim
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = std::max(1u, threads);
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        ScopedLock lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notifyAll();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    MERCURY_EXPECTS(task != nullptr, "null task submitted to pool");
    {
        ScopedLock lock(mutex_);
        MERCURY_EXPECTS(!stopping_, "task submitted to stopping pool");
        tasks_.push_back(std::move(task));
        ++inFlight_;
    }
    workAvailable_.notifyOne();
}

void
ThreadPool::wait()
{
    ScopedLock lock(mutex_);
    while (inFlight_ != 0)
        allIdle_.wait(mutex_);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            ScopedLock lock(mutex_);
            while (!stopping_ && tasks_.empty())
                workAvailable_.wait(mutex_);
            if (tasks_.empty())
                return;  // stopping, queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            ScopedLock lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allIdle_.notifyAll();
        }
    }
}

} // namespace mercury::sim
