#include "sim/thread_pool.hh"

#include <algorithm>

#include "sim/contract.hh"

namespace mercury::sim
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = std::max(1u, threads);
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    MERCURY_EXPECTS(task != nullptr, "null task submitted to pool");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        MERCURY_EXPECTS(!stopping_, "task submitted to stopping pool");
        tasks_.push_back(std::move(task));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return;  // stopping, queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allIdle_.notify_all();
        }
    }
}

} // namespace mercury::sim
