/**
 * @file
 * Fixed-size host thread pool for embarrassingly-parallel sweeps.
 *
 * The simulator itself stays single-threaded: one sweep point owns
 * one EventQueue, one FaultInjector stream, and one stats Registry,
 * and never shares them. The pool only provides the host-side
 * workers that execute independent points concurrently; determinism
 * is the *caller's* job and is achieved by merging results in
 * submission order (see bench::ParallelSweep), never by relying on
 * completion order.
 *
 * The implementation is a plain mutex + condition-variable task
 * queue, clean under ThreadSanitizer (scripts/check.sh runs the
 * determinism suite under the tsan preset) and fully annotated for
 * Clang's thread-safety analysis (sim/sync.hh): every field the
 * workers share is GUARDED_BY(mutex_), so taking one without the
 * lock is a compile error under -Wthread-safety.
 */

#ifndef MERCURY_SIM_THREAD_POOL_HH
#define MERCURY_SIM_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "sim/sync.hh"
#include "sim/thread_annotations.hh"

namespace mercury::sim
{

class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding work (wait()) before joining. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; tasks may be submitted from any thread. */
    void submit(std::function<void()> task) EXCLUDES(mutex_);

    /** Block until every submitted task has finished executing. */
    void wait() EXCLUDES(mutex_);

    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Host hardware concurrency, at least 1. */
    static unsigned
    hardwareThreads()
    {
        const unsigned n = std::thread::hardware_concurrency();
        return n ? n : 1;
    }

  private:
    void workerLoop() EXCLUDES(mutex_);

    Mutex mutex_;
    ConditionVariable workAvailable_;
    ConditionVariable allIdle_;
    std::deque<std::function<void()>> tasks_ GUARDED_BY(mutex_);
    /** Queued + currently executing. */
    std::size_t inFlight_ GUARDED_BY(mutex_) = 0;
    bool stopping_ GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_;
};

} // namespace mercury::sim

#endif // MERCURY_SIM_THREAD_POOL_HH
