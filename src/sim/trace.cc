#include "sim/trace.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace mercury::trace
{

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::NicIn: return "nic-in";
      case Stage::Netstack: return "netstack";
      case Stage::Hash: return "hash";
      case Stage::StoreWalk: return "store-walk";
      case Stage::Memory: return "memory";
      case Stage::NicOut: return "nic-out";
      case Stage::Request: return "request";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity)
{
    mercury_assert(capacity > 0, "tracer needs a non-empty ring");
    ring_.resize(capacity);
}

const Span &
Tracer::span(std::size_t index) const
{
    mercury_assert(index < size(), "tracer span index out of range");
    const std::size_t oldest =
        written_ < ring_.size()
            ? 0
            : static_cast<std::size_t>(written_ % ring_.size());
    return ring_[(oldest + index) % ring_.size()];
}

void
Tracer::writeJsonl(std::ostream &os) const
{
    for (std::size_t i = 0; i < size(); ++i) {
        const Span &s = span(i);
        bool first = true;
        os << "{";
        json::writeField(os, first, "req",
                         static_cast<std::uint64_t>(s.request));
        json::writeField(os, first, "stage",
                         std::string_view(stageName(s.stage)));
        json::writeField(os, first, "begin",
                         static_cast<std::uint64_t>(s.begin));
        json::writeField(os, first, "end",
                         static_cast<std::uint64_t>(s.end));
        json::writeField(os, first, "arg", s.arg);
        os << "}\n";
    }
}

std::uint64_t
Tracer::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto fold = [&hash](std::uint64_t value) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (byte * 8)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };
    for (std::size_t i = 0; i < size(); ++i) {
        const Span &s = span(i);
        fold(s.begin);
        fold(s.end);
        fold(s.arg);
        fold(s.request);
        fold(static_cast<std::uint64_t>(s.stage));
    }
    return hash;
}

void
Tracer::clear()
{
    written_ = 0;
    nextRequest_ = 0;
}

} // namespace mercury::trace
