#include "sim/trace.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace mercury::trace
{

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::NicIn: return "nic-in";
      case Stage::Netstack: return "netstack";
      case Stage::Hash: return "hash";
      case Stage::StoreWalk: return "store-walk";
      case Stage::Memory: return "memory";
      case Stage::NicOut: return "nic-out";
      case Stage::Request: return "request";
      case Stage::Client: return "client";
      case Stage::Attempt: return "attempt";
      case Stage::Backoff: return "backoff";
      case Stage::NicCache: return "nic-cache";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity)
{
    mercury_assert(capacity > 0, "tracer needs a non-empty ring");
    ring_.resize(capacity);
}

const Span &
Tracer::span(std::size_t index) const
{
    mercury_assert(index < size(), "tracer span index out of range");
    const std::size_t oldest =
        written_ < ring_.size()
            ? 0
            : static_cast<std::size_t>(written_ % ring_.size());
    return ring_[(oldest + index) % ring_.size()];
}

void
Tracer::writeJsonl(std::ostream &os) const
{
    for (std::size_t i = 0; i < size(); ++i) {
        const Span &s = span(i);
        bool first = true;
        os << "{";
        json::writeField(os, first, "req",
                         static_cast<std::uint64_t>(s.request));
        json::writeField(os, first, "stage",
                         std::string_view(stageName(s.stage)));
        json::writeField(os, first, "node",
                         static_cast<std::uint64_t>(s.node));
        if (s.parent != noParent)
            json::writeField(os, first, "parent",
                             static_cast<std::uint64_t>(s.parent));
        json::writeField(os, first, "begin",
                         static_cast<std::uint64_t>(s.begin));
        json::writeField(os, first, "end",
                         static_cast<std::uint64_t>(s.end));
        json::writeField(os, first, "arg", s.arg);
        os << "}\n";
    }
}

namespace
{

/** Ticks (ps) as Chrome's microsecond timestamps, exactly. */
void
writeTs(std::ostream &os, Tick ticks)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(ticks / tickUs),
                  static_cast<unsigned long long>(ticks % tickUs));
    os << buf;
}

void
writeProcessName(std::ostream &os, bool &first_event,
                 std::uint16_t node)
{
    if (!first_event)
        os << ",\n";
    first_event = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
       << node << ",\"tid\":0,\"args\":{\"name\":\"";
    if (node == clientNode)
        os << "client";
    else
        os << "node" << node;
    os << "\"}}";
}

} // anonymous namespace

void
Tracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first_event = true;

    // Process-name metadata, one per distinct node, in first-seen
    // order (deterministic: span order is recording order).
    std::vector<std::uint16_t> nodes;
    for (std::size_t i = 0; i < size(); ++i) {
        const std::uint16_t node = span(i).node;
        bool seen = false;
        for (const std::uint16_t n : nodes)
            seen = seen || n == node;
        if (!seen) {
            nodes.push_back(node);
            writeProcessName(os, first_event, node);
        }
    }

    for (std::size_t i = 0; i < size(); ++i) {
        const Span &s = span(i);
        if (!first_event)
            os << ",\n";
        first_event = false;

        os << "{\"ph\":\"X\",\"name\":\"" << stageName(s.stage)
           << "\",\"cat\":\"stage\",\"pid\":" << s.node
           << ",\"tid\":" << s.request << ",\"ts\":";
        writeTs(os, s.begin);
        os << ",\"dur\":";
        writeTs(os, s.end - s.begin);
        os << ",\"args\":{\"req\":" << s.request << ",\"arg\":"
           << s.arg;
        if (s.parent != noParent)
            os << ",\"parent\":" << s.parent;
        os << "}}";

        // Flow arrows carry the cross-node causality: an arrow
        // starts on each cluster Client envelope and lands on every
        // Attempt span sharing its request id (the failover hops).
        if (s.stage == Stage::Client) {
            os << ",\n{\"ph\":\"s\",\"name\":\"causal\",\"cat\":"
                  "\"flow\",\"id\":"
               << s.request << ",\"pid\":" << s.node << ",\"tid\":"
               << s.request << ",\"ts\":";
            writeTs(os, s.begin);
            os << "}";
        } else if (s.stage == Stage::Attempt) {
            os << ",\n{\"ph\":\"f\",\"bp\":\"e\",\"name\":"
                  "\"causal\",\"cat\":\"flow\",\"id\":"
               << s.request << ",\"pid\":" << s.node << ",\"tid\":"
               << s.request << ",\"ts\":";
            writeTs(os, s.begin);
            os << "}";
        }
    }
    os << "\n]}\n";
}

std::uint64_t
Tracer::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto fold = [&hash](std::uint64_t value) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (byte * 8)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };
    for (std::size_t i = 0; i < size(); ++i) {
        const Span &s = span(i);
        fold(s.begin);
        fold(s.end);
        fold(s.arg);
        fold(s.request);
        fold(s.parent);
        fold(s.node);
        fold(static_cast<std::uint64_t>(s.stage));
    }
    return hash;
}

void
Tracer::clear()
{
    written_ = 0;
    nextRequest_ = 0;
    node_ = 0;
    parent_ = noParent;
}

} // namespace mercury::trace
