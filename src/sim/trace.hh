/**
 * @file
 * Ring-buffered request-lifecycle event tracer.
 *
 * A request flows NIC-in -> TCP/UDP stack -> hash -> store walk ->
 * DRAM/flash -> NIC-out; the tracer records one Span per stage with
 * begin/end ticks so per-request breakdowns (paper Fig. 4) can be
 * reconstructed offline from `--trace-out` instead of bespoke
 * plumbing.
 *
 * Off modes, both provably zero-cost on the simulated timeline
 * (recording is pure observation and never consumes RNG state):
 *
 *  - compile-time: configure with -DMERCURY_TRACING=OFF and the
 *    MERCURY_TRACE_SPAN macro expands to nothing;
 *  - runtime: subsystems only record through a Tracer pointer they
 *    were explicitly handed (default nullptr), and an attached
 *    tracer can additionally be setEnabled(false).
 *
 * The buffer is a fixed-capacity ring: recording never allocates
 * after construction, and when full the oldest spans are overwritten
 * (droppedSpans() counts them).
 */

#ifndef MERCURY_SIM_TRACE_HH
#define MERCURY_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

#ifndef MERCURY_TRACING
#define MERCURY_TRACING 1
#endif

namespace mercury::trace
{

/** Request lifecycle stages, in wire order. */
enum class Stage : std::uint8_t
{
    NicIn,     ///< client -> server wire + NIC delivery
    Netstack,  ///< TCP/UDP per-packet processing and copies
    Hash,      ///< key hash computation
    StoreWalk, ///< hash-table walk + item bookkeeping
    Memory,    ///< explicit DRAM/flash persistence (PUT programs)
    NicOut,    ///< server -> client wire
    Request,   ///< whole-request envelope span
    Client,    ///< cluster client-side envelope (arrival -> answer)
    Attempt,   ///< one client attempt against one node (or timeout)
    Backoff,   ///< client retry backoff between attempts
    NicCache,  ///< on-NIC GET cache lookup (hit: answers in place)
};

/** Stable printable name ("nic-in", "store-walk", ...). */
const char *stageName(Stage stage);

/** Node id of client-side spans in a cluster trace. */
constexpr std::uint16_t clientNode = 0xffff;

/** Span::parent value meaning "no causal parent". */
constexpr std::uint32_t noParent = 0xffffffff;

/** One recorded stage span. */
struct Span
{
    Tick begin = 0;
    Tick end = 0;
    std::uint64_t arg = 0;   ///< stage-specific (bytes, hit flag...)
    std::uint32_t request = 0;
    /** Request id this span's request was issued on behalf of
     * (client -> ring -> failover hops), or noParent. */
    std::uint32_t parent = noParent;
    /** Node/shard the span executed on (clientNode for the
     * cluster client side; 0 for single-node runs). */
    std::uint16_t node = 0;
    Stage stage{};
};

class Tracer
{
  public:
    /** @param capacity spans retained (oldest overwritten beyond). */
    explicit Tracer(std::size_t capacity = 1 << 16);

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** Start a new request; returns its id for subsequent spans. */
    std::uint32_t
    beginRequest()
    {
        return nextRequest_++;
    }

    /**
     * Recording context: spans stamped until the next set. A cluster
     * harness sets (node, parentRequest) around each per-node model
     * invocation, so the model's unchanged record() calls produce
     * cross-node causally-linked spans. ScopedTraceContext restores
     * the previous context on scope exit and tolerates a null
     * tracer.
     */
    void
    setContext(std::uint16_t node, std::uint32_t parent = noParent)
    {
        node_ = node;
        parent_ = parent;
    }

    std::uint16_t contextNode() const { return node_; }
    std::uint32_t contextParent() const { return parent_; }

    /** Record one stage span. No-op while disabled. */
    void
    record(std::uint32_t request, Stage stage, Tick begin, Tick end,
           std::uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        Span &span = ring_[written_ % ring_.size()];
        span.begin = begin;
        span.end = end;
        span.arg = arg;
        span.request = request;
        span.parent = parent_;
        span.node = node_;
        span.stage = stage;
        ++written_;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Spans currently retained in the ring. */
    std::size_t
    size() const
    {
        return written_ < ring_.size()
                   ? static_cast<std::size_t>(written_)
                   : ring_.size();
    }

    /** Spans overwritten because the ring wrapped. */
    std::uint64_t
    droppedSpans() const
    {
        return written_ < ring_.size() ? 0 : written_ - ring_.size();
    }

    std::uint64_t recordedSpans() const { return written_; }

    /** Retained span by age (0 = oldest retained). */
    const Span &span(std::size_t index) const;

    /** One JSON object per line, oldest retained span first. */
    void writeJsonl(std::ostream &os) const;

    /**
     * Chrome trace-event JSON (loadable in Perfetto or
     * chrome://tracing): one complete ("X") event per span with
     * pid = node, tid = request and timestamps in microseconds,
     * process-name metadata per node, and flow arrows from each
     * cluster Client envelope to its Attempt spans so the
     * client -> node -> failover causality renders as arrows.
     */
    void writeChromeJson(std::ostream &os) const;

    /** FNV-1a fold of the retained spans, for drift tests. */
    std::uint64_t digest() const;

    void clear();

  private:
    bool enabled_ = true;
    std::uint32_t nextRequest_ = 0;
    std::uint64_t written_ = 0;
    std::uint16_t node_ = 0;
    std::uint32_t parent_ = noParent;
    std::vector<Span> ring_;
};

/**
 * RAII context guard: installs (node, parent) on construction,
 * restores the previous context on destruction. Null tracer is a
 * no-op, so harness code can guard unconditionally.
 */
class ScopedTraceContext
{
  public:
    ScopedTraceContext(Tracer *tracer, std::uint16_t node,
                       std::uint32_t parent = noParent)
        : tracer_(tracer)
    {
        if (tracer_) {
            prevNode_ = tracer_->contextNode();
            prevParent_ = tracer_->contextParent();
            tracer_->setContext(node, parent);
        }
    }

    ~ScopedTraceContext()
    {
        if (tracer_)
            tracer_->setContext(prevNode_, prevParent_);
    }

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    Tracer *tracer_;
    std::uint16_t prevNode_ = 0;
    std::uint32_t prevParent_ = noParent;
};

} // namespace mercury::trace

/**
 * Record a span through an optional tracer pointer. Compiles to
 * nothing when tracing is configured out, so instrumented hot paths
 * carry provably zero cost in that build.
 */
#if MERCURY_TRACING
#define MERCURY_TRACE_SPAN(tracer, request, stage, begin, end, arg)   \
    do {                                                              \
        if (tracer)                                                   \
            (tracer)->record((request), (stage), (begin), (end),      \
                             (arg));                                  \
    } while (0)
#else
#define MERCURY_TRACE_SPAN(tracer, request, stage, begin, end, arg)   \
    do {                                                              \
    } while (0)
#endif

#endif // MERCURY_SIM_TRACE_HH
