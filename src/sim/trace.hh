/**
 * @file
 * Ring-buffered request-lifecycle event tracer.
 *
 * A request flows NIC-in -> TCP/UDP stack -> hash -> store walk ->
 * DRAM/flash -> NIC-out; the tracer records one Span per stage with
 * begin/end ticks so per-request breakdowns (paper Fig. 4) can be
 * reconstructed offline from `--trace-out` instead of bespoke
 * plumbing.
 *
 * Off modes, both provably zero-cost on the simulated timeline
 * (recording is pure observation and never consumes RNG state):
 *
 *  - compile-time: configure with -DMERCURY_TRACING=OFF and the
 *    MERCURY_TRACE_SPAN macro expands to nothing;
 *  - runtime: subsystems only record through a Tracer pointer they
 *    were explicitly handed (default nullptr), and an attached
 *    tracer can additionally be setEnabled(false).
 *
 * The buffer is a fixed-capacity ring: recording never allocates
 * after construction, and when full the oldest spans are overwritten
 * (droppedSpans() counts them).
 */

#ifndef MERCURY_SIM_TRACE_HH
#define MERCURY_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

#ifndef MERCURY_TRACING
#define MERCURY_TRACING 1
#endif

namespace mercury::trace
{

/** Request lifecycle stages, in wire order. */
enum class Stage : std::uint8_t
{
    NicIn,     ///< client -> server wire + NIC delivery
    Netstack,  ///< TCP/UDP per-packet processing and copies
    Hash,      ///< key hash computation
    StoreWalk, ///< hash-table walk + item bookkeeping
    Memory,    ///< explicit DRAM/flash persistence (PUT programs)
    NicOut,    ///< server -> client wire
    Request,   ///< whole-request envelope span
};

/** Stable printable name ("nic-in", "store-walk", ...). */
const char *stageName(Stage stage);

/** One recorded stage span. */
struct Span
{
    Tick begin = 0;
    Tick end = 0;
    std::uint64_t arg = 0;   ///< stage-specific (bytes, hit flag...)
    std::uint32_t request = 0;
    Stage stage{};
};

class Tracer
{
  public:
    /** @param capacity spans retained (oldest overwritten beyond). */
    explicit Tracer(std::size_t capacity = 1 << 16);

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** Start a new request; returns its id for subsequent spans. */
    std::uint32_t
    beginRequest()
    {
        return nextRequest_++;
    }

    /** Record one stage span. No-op while disabled. */
    void
    record(std::uint32_t request, Stage stage, Tick begin, Tick end,
           std::uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        Span &span = ring_[written_ % ring_.size()];
        span.begin = begin;
        span.end = end;
        span.arg = arg;
        span.request = request;
        span.stage = stage;
        ++written_;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Spans currently retained in the ring. */
    std::size_t
    size() const
    {
        return written_ < ring_.size()
                   ? static_cast<std::size_t>(written_)
                   : ring_.size();
    }

    /** Spans overwritten because the ring wrapped. */
    std::uint64_t
    droppedSpans() const
    {
        return written_ < ring_.size() ? 0 : written_ - ring_.size();
    }

    std::uint64_t recordedSpans() const { return written_; }

    /** Retained span by age (0 = oldest retained). */
    const Span &span(std::size_t index) const;

    /** One JSON object per line, oldest retained span first. */
    void writeJsonl(std::ostream &os) const;

    /** FNV-1a fold of the retained spans, for drift tests. */
    std::uint64_t digest() const;

    void clear();

  private:
    bool enabled_ = true;
    std::uint32_t nextRequest_ = 0;
    std::uint64_t written_ = 0;
    std::vector<Span> ring_;
};

} // namespace mercury::trace

/**
 * Record a span through an optional tracer pointer. Compiles to
 * nothing when tracing is configured out, so instrumented hot paths
 * carry provably zero cost in that build.
 */
#if MERCURY_TRACING
#define MERCURY_TRACE_SPAN(tracer, request, stage, begin, end, arg)   \
    do {                                                              \
        if (tracer)                                                   \
            (tracer)->record((request), (stage), (begin), (end),      \
                             (arg));                                  \
    } while (0)
#else
#define MERCURY_TRACE_SPAN(tracer, request, stage, begin, end, arg)   \
    do {                                                              \
    } while (0)
#endif

#endif // MERCURY_SIM_TRACE_HH
