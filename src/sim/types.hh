/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator measures time in integer ticks, where one tick is one
 * picosecond. Picosecond resolution lets us express sub-nanosecond
 * device parameters (e.g. DRAM port transfer slots) without rounding,
 * while a 64-bit tick counter still covers more than 100 days of
 * simulated time.
 */

#ifndef MERCURY_SIM_TYPES_HH
#define MERCURY_SIM_TYPES_HH

#include <cstdint>

namespace mercury
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A simulated physical address. */
using Addr = std::uint64_t;

/** A counter of things (requests, instructions, bytes...). */
using Counter = std::uint64_t;

/** Ticks per common time units. */
constexpr Tick tickPs = 1;
constexpr Tick tickNs = 1000 * tickPs;
constexpr Tick tickUs = 1000 * tickNs;
constexpr Tick tickMs = 1000 * tickUs;
constexpr Tick tickSec = 1000 * tickMs;

/** The largest representable tick; used as an "infinite" deadline. */
constexpr Tick maxTick = ~Tick(0);

/** Convert a floating-point duration in seconds to ticks. */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(tickSec));
}

/** Convert ticks to floating-point seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(tickSec);
}

/** Convert ticks to floating-point microseconds. */
constexpr double
ticksToUs(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(tickUs);
}

/** Convert ticks to floating-point nanoseconds. */
constexpr double
ticksToNs(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(tickNs);
}

/** Size constants. */
constexpr std::uint64_t kiB = 1024;
constexpr std::uint64_t miB = 1024 * kiB;
constexpr std::uint64_t giB = 1024 * miB;

} // namespace mercury

#endif // MERCURY_SIM_TYPES_HH
