#include "workload/trace.hh"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

#include "sim/logging.hh"

namespace mercury::workload
{

RequestTrace
RequestTrace::capture(WorkloadGenerator &generator, std::size_t count)
{
    RequestTrace trace;
    trace.requests_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        trace.append(generator.next());
    return trace;
}

void
RequestTrace::save(std::ostream &os) const
{
    os << "mercury-trace v1 " << requests_.size() << "\n";
    for (const Request &request : requests_) {
        os << (request.op == Request::Op::Get ? 'G' : 'S') << ' '
           << request.keyId << ' ' << request.valueBytes << "\n";
    }
}

RequestTrace
RequestTrace::load(std::istream &is)
{
    std::string magic, version;
    std::size_t count = 0;
    if (!(is >> magic >> version >> count) ||
        magic != "mercury-trace" || version != "v1") {
        mercury_fatal("not a mercury trace stream");
    }

    RequestTrace trace;
    trace.requests_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        char op = 0;
        Request request;
        if (!(is >> op >> request.keyId >> request.valueBytes) ||
            (op != 'G' && op != 'S')) {
            mercury_fatal("malformed trace record at index ", i);
        }
        request.op =
            op == 'G' ? Request::Op::Get : Request::Op::Set;
        trace.requests_.push_back(request);
    }
    return trace;
}

RequestTrace::Summary
RequestTrace::summarize() const
{
    Summary summary;
    summary.requests = requests_.size();
    std::set<std::uint64_t> keys;
    for (const Request &request : requests_) {
        if (request.op == Request::Op::Get)
            ++summary.gets;
        else
            ++summary.sets;
        keys.insert(request.keyId);
        summary.totalValueBytes += request.valueBytes;
        summary.maxValueBytes =
            std::max(summary.maxValueBytes, request.valueBytes);
    }
    summary.distinctKeys = keys.size();
    return summary;
}

TraceReplayer::TraceReplayer(const RequestTrace &trace, bool loop)
    : trace_(trace), loop_(loop)
{
    mercury_assert(!trace_.empty() || !loop,
                   "cannot loop an empty trace");
}

bool
TraceReplayer::hasNext() const
{
    return loop_ ? !trace_.empty() : position_ < trace_.size();
}

Request
TraceReplayer::next()
{
    mercury_assert(hasNext(), "trace exhausted");
    const Request request = trace_[position_];
    ++position_;
    if (loop_ && position_ >= trace_.size())
        position_ = 0;
    return request;
}

} // namespace mercury::workload
