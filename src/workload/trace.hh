/**
 * @file
 * Request-trace recording and replay.
 *
 * Workloads can be captured to a compact text format (one request
 * per line: op, key id, value bytes) and replayed deterministically,
 * which makes experiments repeatable across machines and lets users
 * feed their own production-shaped traces into the simulator.
 */

#ifndef MERCURY_WORKLOAD_TRACE_HH
#define MERCURY_WORKLOAD_TRACE_HH

#include <iosfwd>
#include <vector>

#include "workload/workload.hh"

namespace mercury::workload
{

/** An in-memory request trace. */
class RequestTrace
{
  public:
    RequestTrace() = default;

    void
    append(const Request &request)
    {
        requests_.push_back(request);
    }

    /** Capture @p count requests from a generator. */
    static RequestTrace capture(WorkloadGenerator &generator,
                                std::size_t count);

    std::size_t size() const { return requests_.size(); }
    bool empty() const { return requests_.empty(); }

    const Request &operator[](std::size_t i) const
    {
        return requests_[i];
    }

    auto begin() const { return requests_.begin(); }
    auto end() const { return requests_.end(); }

    /** Serialize: header line + one "G|S <keyId> <bytes>" per
     * request. */
    void save(std::ostream &os) const;

    /** Parse a trace written by save(). Throws SimFatalError on a
     * malformed stream. */
    static RequestTrace load(std::istream &is);

    /** Summary statistics of the trace. */
    struct Summary
    {
        std::size_t requests = 0;
        std::size_t gets = 0;
        std::size_t sets = 0;
        std::uint64_t distinctKeys = 0;
        std::uint64_t totalValueBytes = 0;
        std::uint32_t maxValueBytes = 0;
    };

    Summary summarize() const;

  private:
    std::vector<Request> requests_;
};

/** Replays a trace as a request source, optionally looping. */
class TraceReplayer
{
  public:
    explicit TraceReplayer(const RequestTrace &trace,
                           bool loop = false);

    /** True while next() has requests to hand out. */
    bool hasNext() const;

    Request next();

    std::size_t position() const { return position_; }

    void reset() { position_ = 0; }

  private:
    const RequestTrace &trace_;
    bool loop_;
    std::size_t position_ = 0;
};

} // namespace mercury::workload

#endif // MERCURY_WORKLOAD_TRACE_HH
